//! # uw-serve — the async localization serving layer
//!
//! The paper's system localizes a dive network in real time; the matrix
//! engine in [`uw_eval`] runs the same workload as a closed rayon batch.
//! This crate is the architectural split between the two: **computing a
//! cell** (the shared steppable core, [`uw_eval::CellExecution`]) and
//! **running a workload** (this crate's job server) are now separate
//! layers, which is what lets the same execution core serve a streaming
//! front end — localization jobs arriving continuously over a queue, as
//! ranging/messaging rounds do in the authors' companion systems
//! (arXiv:2209.01780, arXiv:2208.10569) — instead of only closed grids.
//!
//! The container this workspace builds in has no registry access, so
//! there is no tokio; the async machinery is hand-rolled from `std` in
//! the spirit of the vendored-deps approach (see `vendor/README.md`):
//!
//! * [`queue`] — [`queue::JobQueue`], a bounded MPMC queue
//!   (`Mutex` + `Condvar`): producers block at capacity (backpressure,
//!   never drops), `close()` drains gracefully.
//! * [`executor`] — [`executor::block_on`], a thread-parking
//!   futures-on-threads executor built on the stable [`std::task::Wake`]
//!   trait; job handles are real `Future`s.
//! * [`job`] — [`job::LocalizationJob`] (a matrix cell, a raw
//!   [`uw_core::Scenario`], or a repeated-session stream),
//!   [`job::JobHandle`] (cancel / wait / `.await`), and the streamed
//!   [`job::CellUpdate`] events: cell started → round completed (one per
//!   localization round, mid-cell) → cell stats finalized.
//! * [`server`] — [`server::Server`]: a sharded worker pool. Jobs route
//!   to shards by cell-id hash (per-shard waveform-asset affinity: a
//!   shard warms the `uw_core::waveform` preamble/plan assets for the
//!   numeric paths it serves), workers honour cooperative cancellation
//!   between rounds, and [`server::Server::shutdown`] drains and joins
//!   gracefully.
//! * [`sink`] — [`sink::ReportBuilder`]: merges out-of-order shard
//!   completions back into submission order. Streaming a matrix through
//!   [`server::serve_matrix`] reconstructs an [`uw_eval::EvalReport`]
//!   **byte-identical** to the batch runner's JSON.
//!
//! Operational semantics (queue sizing, shard tuning, backpressure and
//! cancellation behaviour, shutdown ordering) are documented in
//! `docs/SERVING.md`; the crate-by-crate architecture map is
//! `docs/ARCHITECTURE.md`.
//!
//! ## Example: stream a cell and watch rounds arrive
//!
//! ```
//! use uw_eval::ScenarioMatrix;
//! use uw_serve::{CellUpdate, LocalizationJob, ServeConfig, Server};
//!
//! // The dock headline cell, shortened to 3 rounds.
//! let mut matrix = ScenarioMatrix::smoke();
//! matrix.rounds_per_cell = 3;
//! let cell = matrix.expand().unwrap().remove(0);
//!
//! let (server, updates) = Server::start(ServeConfig::with_shards(2));
//! let handle = server.submit(LocalizationJob::Cell(cell));
//!
//! // Rounds are observable the moment they complete, mid-cell.
//! let mut rounds_seen = 0;
//! loop {
//!     match updates.recv().unwrap() {
//!         CellUpdate::RoundCompleted { summary, .. } => {
//!             assert!(summary.ok);
//!             rounds_seen += 1;
//!         }
//!         CellUpdate::CellFinalized { report, .. } => {
//!             assert_eq!(report.rounds_completed, 3);
//!             break;
//!         }
//!         _ => {}
//!     }
//! }
//! assert_eq!(rounds_seen, 3);
//! assert!(handle.wait().is_completed());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod job;
pub mod queue;
pub mod server;
pub mod sink;

pub use executor::block_on;
pub use job::{CellUpdate, JobHandle, JobId, JobOutcome, LocalizationJob};
pub use queue::JobQueue;
pub use server::{serve_matrix, ServeConfig, Server, ShardStats, UpdateStream};
pub use sink::ReportBuilder;
