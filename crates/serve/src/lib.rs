//! # uw-serve — the async localization serving layer
//!
//! The paper's system localizes a dive network in real time; the matrix
//! engine in [`uw_eval`] runs the same workload as a closed rayon batch.
//! This crate is the architectural split between the two: **computing a
//! cell** (the shared steppable core, [`uw_eval::CellExecution`]) and
//! **running a workload** (this crate's job server) are now separate
//! layers, which is what lets the same execution core serve a streaming
//! front end — localization jobs arriving continuously over a queue, as
//! ranging/messaging rounds do in the authors' companion systems
//! (arXiv:2209.01780, arXiv:2208.10569) — instead of only closed grids.
//!
//! The container this workspace builds in has no registry access, so
//! there is no tokio; the async machinery is hand-rolled from `std` in
//! the spirit of the vendored-deps approach (see `vendor/README.md`):
//!
//! * [`queue`] — [`queue::JobQueue`], a bounded MPMC queue
//!   (`Mutex` + `Condvar`): producers block at capacity (backpressure,
//!   never drops), `close()` drains gracefully.
//! * [`executor`] — [`executor::block_on`], a thread-parking
//!   futures-on-threads executor built on the stable [`std::task::Wake`]
//!   trait; job handles are real `Future`s.
//! * [`job`] — [`job::LocalizationJob`] (a matrix cell, a raw
//!   [`uw_core::Scenario`], or a repeated-session stream),
//!   [`job::JobHandle`] (cancel / wait / `.await`), and the streamed
//!   [`job::CellUpdate`] events: cell started → round completed (one per
//!   localization round, mid-cell) → cell stats finalized.
//! * [`server`] — [`server::Server`]: a sharded worker pool. Jobs route
//!   to shards by cell-id hash (per-shard waveform-asset affinity: a
//!   shard warms the `uw_core::waveform` preamble/plan assets for the
//!   numeric paths it serves), workers honour cooperative cancellation
//!   between rounds, steal from backlogged sibling shards when idle, and
//!   [`server::Server::shutdown`] drains and joins gracefully.
//!   [`server::Server::submit_with`] is the tenant-aware entry point:
//!   priority classes, per-job deadlines (shed at dequeue, never
//!   occupying a shard), and an overload policy (block or shed).
//! * [`tenant`] — multi-tenancy: [`tenant::TenantConfig`] token-bucket
//!   admission control, and [`tenant::FairQueue`], the weighted-fair
//!   strict-priority scheduling queue every shard dequeues through
//!   (live-dive jobs overtake replay; tenants share by weight; a single
//!   tenant degrades to FIFO).
//! * [`wire`] — the versioned binary wire format: length-prefixed
//!   CRC-checked frames ([`wire::encode_frame`] / [`wire::FrameReader`])
//!   carrying jobs as declarative [`wire::JobSpec`] matrix coordinates
//!   and events as mirrors of [`job::CellUpdate`]. Hand-rolled — the
//!   vendored serde is a no-op — like replay's `uwRD` chunk format.
//! * [`tcp`] — [`tcp::TcpServer`]: the wire protocol over
//!   `std::net::TcpListener` (one acceptor; per-connection reader/writer
//!   threads; bounded per-connection event queues so a slow client
//!   throttles only its own jobs) and [`tcp::TcpClient`].
//! * [`sink`] — [`sink::ReportBuilder`]: merges out-of-order shard
//!   completions back into submission order. Streaming a matrix through
//!   [`server::serve_matrix`] reconstructs an [`uw_eval::EvalReport`]
//!   **byte-identical** to the batch runner's JSON — a property that
//!   holds through the loopback-TCP path too (pinned by
//!   `crates/serve/tests/tcp_loopback.rs`).
//!
//! Operational semantics (queue sizing, shard tuning, backpressure and
//! cancellation behaviour, shutdown ordering) and the wire-format
//! specification (frame layout, version negotiation, shedding semantics)
//! are documented in `docs/SERVING.md`; the crate-by-crate architecture
//! map is `docs/ARCHITECTURE.md`.
//!
//! ## Example: stream a cell and watch rounds arrive
//!
//! ```
//! use uw_eval::ScenarioMatrix;
//! use uw_serve::{CellUpdate, LocalizationJob, ServeConfig, Server};
//!
//! // The dock headline cell, shortened to 3 rounds.
//! let mut matrix = ScenarioMatrix::smoke();
//! matrix.rounds_per_cell = 3;
//! let cell = matrix.expand().unwrap().remove(0);
//!
//! let (server, updates) = Server::start(ServeConfig::with_shards(2));
//! let handle = server.submit(LocalizationJob::Cell(cell));
//!
//! // Rounds are observable the moment they complete, mid-cell.
//! let mut rounds_seen = 0;
//! loop {
//!     match updates.recv().unwrap() {
//!         CellUpdate::RoundCompleted { summary, .. } => {
//!             assert!(summary.ok);
//!             rounds_seen += 1;
//!         }
//!         CellUpdate::CellFinalized { report, .. } => {
//!             assert_eq!(report.rounds_completed, 3);
//!             break;
//!         }
//!         _ => {}
//!     }
//! }
//! assert_eq!(rounds_seen, 3);
//! assert!(handle.wait().is_completed());
//! server.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod executor;
pub mod job;
pub mod queue;
pub mod server;
pub mod sink;
pub mod tcp;
pub mod tenant;
pub mod wire;

pub use executor::block_on;
pub use job::{CellUpdate, JobHandle, JobId, JobOutcome, LocalizationJob, RejectReason};
pub use queue::JobQueue;
pub use server::{
    serve_matrix, OverloadPolicy, ServeConfig, Server, ShardStats, SubmitOptions, UpdateFn,
    UpdateStream,
};
pub use sink::ReportBuilder;
pub use tcp::{TcpClient, TcpConfig, TcpServer};
pub use tenant::{FairQueue, Priority, TenantConfig, TenantRegistry};
pub use wire::{FrameReader, JobSpec, WireError, WireMessage};
