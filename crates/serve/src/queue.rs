//! A bounded multi-producer/multi-consumer job queue.
//!
//! [`JobQueue`] is the intake of every serving shard: producers block in
//! [`JobQueue::push`] while the queue is at capacity (backpressure — jobs
//! are never dropped), consumers block in [`JobQueue::pop`] while it is
//! empty, and [`JobQueue::close`] wakes everyone for graceful shutdown
//! (pushes start failing, pops drain the remainder and then return
//! `None`). The implementation is a `Mutex<VecDeque>` with two condition
//! variables — deliberately boring, offline-friendly, and `unsafe`-free;
//! the jobs it carries are far coarser-grained than the queue itself, so
//! lock-free cleverness would buy nothing.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`JobQueue::push`] on a closed queue; carries the
/// rejected item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueClosed<T>(pub T);

/// Error returned by [`JobQueue::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; a blocking [`JobQueue::push`] would wait.
    Full(T),
    /// The queue is closed and accepts nothing more.
    Closed(T),
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

struct Inner<T> {
    state: Mutex<State<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

/// A bounded MPMC queue handle. Clones share the same queue; any handle
/// may push, pop or close.
///
/// ```
/// use uw_serve::queue::JobQueue;
///
/// let queue = JobQueue::bounded(2);
/// let consumer = queue.clone();
/// let worker = std::thread::spawn(move || {
///     let mut seen = Vec::new();
///     while let Some(item) = consumer.pop() {
///         seen.push(item);
///     }
///     seen
/// });
/// for job in 0..5 {
///     queue.push(job).unwrap(); // blocks whenever the worker falls behind
/// }
/// queue.close();
/// assert_eq!(worker.join().unwrap(), vec![0, 1, 2, 3, 4]);
/// ```
pub struct JobQueue<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for JobQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> JobQueue<T> {
    /// Creates a queue with no practical capacity bound: pushes never
    /// block. Used for the server's update stream, where emitting must
    /// never stall a worker (consumers that fall behind cost memory, not
    /// correctness).
    pub fn unbounded() -> Self {
        Self::bounded(usize::MAX)
    }

    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    items: VecDeque::new(),
                    closed: false,
                }),
                not_full: Condvar::new(),
                not_empty: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether [`JobQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().expect("queue lock").closed
    }

    /// Enqueues an item, blocking while the queue is at capacity
    /// (backpressure: producers wait, items are never dropped). Fails only
    /// on a closed queue, returning the item.
    pub fn push(&self, item: T) -> Result<(), QueueClosed<T>> {
        let mut state = self.inner.state.lock().expect("queue lock");
        loop {
            if state.closed {
                return Err(QueueClosed(item));
            }
            if state.items.len() < self.inner.capacity {
                state.items.push_back(item);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("queue lock");
        }
    }

    /// Enqueues without blocking; fails when full or closed.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut state = self.inner.state.lock().expect("queue lock");
        if state.closed {
            return Err(TryPushError::Closed(item));
        }
        if state.items.len() >= self.inner.capacity {
            return Err(TryPushError::Full(item));
        }
        state.items.push_back(item);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is empty.
    /// Returns `None` once the queue is closed *and* drained, so consumer
    /// loops terminate cleanly on shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.inner.not_empty.wait(state).expect("queue lock");
        }
    }

    /// Dequeues without blocking; `None` when empty (closed or not).
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("queue lock");
        let item = state.items.pop_front();
        if item.is_some() {
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: subsequent pushes fail, queued items remain
    /// poppable, and every blocked producer/consumer is woken.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().expect("queue lock");
        state.closed = true;
        self.inner.not_full.notify_all();
        self.inner.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn fifo_order_within_a_producer() {
        let q = JobQueue::bounded(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.try_pop(), None);
    }

    #[test]
    fn push_blocks_at_capacity_until_a_pop_frees_space() {
        let q = JobQueue::bounded(1);
        q.push(0usize).unwrap();
        let producer_done = Arc::new(AtomicUsize::new(0));
        let done = Arc::clone(&producer_done);
        let q2 = q.clone();
        let producer = std::thread::spawn(move || {
            q2.push(1).unwrap(); // must block: capacity 1, queue full
            done.store(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            producer_done.load(Ordering::SeqCst),
            0,
            "push did not block"
        );
        assert_eq!(q.pop(), Some(0));
        producer.join().unwrap();
        assert_eq!(producer_done.load(Ordering::SeqCst), 1);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn try_push_reports_full_and_closed() {
        let q = JobQueue::bounded(1);
        q.try_push(1).unwrap();
        assert_eq!(q.try_push(2), Err(TryPushError::Full(2)));
        q.close();
        assert_eq!(q.try_push(3), Err(TryPushError::Closed(3)));
        // Queued items survive the close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q: JobQueue<usize> = JobQueue::bounded(4);
        let q2 = q.clone();
        let consumer = std::thread::spawn(move || q2.pop());
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
        assert_eq!(q.push(9), Err(QueueClosed(9)));
    }

    #[test]
    fn close_wakes_blocked_producers_with_an_error() {
        // A push blocked on a full queue must wake and fail on close(),
        // not deadlock: close() flips `closed` under the lock and
        // notifies `not_full`, and the push loop re-checks `closed`
        // before re-checking capacity.
        let q = JobQueue::bounded(1);
        q.push(0usize).unwrap();
        let n_blocked = 3;
        let woken = Arc::new(AtomicUsize::new(0));
        let mut producers = Vec::new();
        for i in 0..n_blocked {
            let q = q.clone();
            let woken = Arc::clone(&woken);
            producers.push(std::thread::spawn(move || {
                let result = q.push(i + 1); // blocks: capacity 1, queue full
                woken.fetch_add(1, Ordering::SeqCst);
                result
            }));
        }
        // Let every producer reach the blocked wait.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(woken.load(Ordering::SeqCst), 0, "pushes did not block");
        q.close();
        for (i, p) in producers.into_iter().enumerate() {
            // join() would hang forever on the historical deadlock; the
            // harness timeout is the backstop, the assertions the spec.
            let result = p.join().unwrap();
            assert_eq!(result, Err(QueueClosed(i + 1)));
        }
        assert_eq!(woken.load(Ordering::SeqCst), n_blocked);
        // The pre-close item survives; the blocked items were returned to
        // their callers, not enqueued and not dropped silently.
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = JobQueue::bounded(3);
        let n_producers = 4;
        let per_producer = 25;
        let consumed = Arc::new(AtomicUsize::new(0));
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let consumed = Arc::clone(&consumed);
            consumers.push(std::thread::spawn(move || {
                while q.pop().is_some() {
                    consumed.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        let mut producers = Vec::new();
        for p in 0..n_producers {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                for i in 0..per_producer {
                    q.push(p * per_producer + i).unwrap();
                }
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        for c in consumers {
            c.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::SeqCst), n_producers * per_producer);
    }
}
