//! The sharded, multi-tenant localization server.
//!
//! [`Server::start`] spawns one worker thread per shard, each with its own
//! bounded [`FairQueue`] intake. [`Server::submit`] routes a job to a
//! shard by hashing its cell id — stable affinity, so repeated
//! submissions of the same cell land on a shard that has already ensured
//! its waveform assets are warm — and returns a [`JobHandle`] that can be
//! cancelled, waited on, or `.await`ed. [`Server::submit_with`] is the
//! tenant-aware entry point: it attaches a tenant, a priority class, an
//! optional deadline, an overload policy and an optional per-job event
//! sink (see [`SubmitOptions`]). Workers drive the shared cell-execution
//! core ([`uw_eval::CellExecution`]) one round at a time, publishing
//! [`CellUpdate`] events as they go.
//!
//! Design invariants:
//!
//! * **Backpressure by default, shedding on request** — shard queues are
//!   bounded; `submit` blocks when the target shard is at capacity.
//!   Under [`OverloadPolicy::Shed`] a full queue instead rejects the
//!   arriving job deterministically with
//!   [`RejectReason::Overloaded`] — the job that would
//!   have blocked is the job that is shed, nothing queued is evicted.
//! * **Fairness** — each shard dequeues through a weighted-fair,
//!   strict-priority scheduler (see [`crate::tenant`]): live-dive jobs
//!   overtake replay, tenants share a shard by configured weight, and a
//!   single tenant at one priority degrades to exact FIFO (the
//!   historical behaviour).
//! * **Deadlines cost nothing** — expiry is checked when a worker
//!   *dequeues* a job: an expired job is shed with
//!   [`RejectReason::DeadlineExpired`] before any DSP runs, so a dead
//!   job never occupies a shard.
//! * **Work stealing** — a worker whose own intake stays empty for a
//!   beat scans sibling shards (most-backlogged first) and steals their
//!   queued jobs, so one hot shard cannot serialize the pool.
//! * **Determinism** — a cell's RNG stream depends only on its seed and
//!   round index, never on which shard runs it or when; out-of-order
//!   completions are re-merged by submission order in the sink, so a
//!   streamed matrix reproduces the batch runner's report byte for byte
//!   — with or without stealing.
//! * **Cooperative cancellation** — workers check the cancel flag between
//!   rounds; a cancelled job finalizes partial statistics and the pool
//!   keeps serving.
//! * **Graceful shutdown** — [`Server::shutdown`] closes the intakes,
//!   lets every queued job drain, joins the workers and then ends the
//!   update stream (receivers see `None` after the last event).

use crate::job::{
    CellUpdate, JobHandle, JobId, JobOutcome, JobState, LocalizationJob, RejectReason,
};
use crate::queue::JobQueue;
use crate::sink::ReportBuilder;
use crate::tenant::{FairQueue, PopWait, Priority, TenantConfig, TenantRegistry, DEFAULT_TENANT};
use crate::wire::JobSpec;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};
use uw_core::config::{Fidelity, NumericPath};
use uw_core::{Result, SystemError};
use uw_eval::runner::CellExecution;
use uw_eval::{EvalCell, EvalReport, ImportedCampaign, ScenarioMatrix};

/// How long an idle worker waits on its own intake before sweeping the
/// sibling shards for stealable work.
const STEAL_IDLE: Duration = Duration::from_millis(1);

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards. Each shard is one worker thread with its own bounded
    /// intake queue and its own lazily-warmed waveform-asset state.
    /// Clamped to ≥ 1.
    pub shards: usize,
    /// Capacity of each shard's intake queue; producers block (are
    /// backpressured) while their target shard is full. Clamped to ≥ 1.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    /// One shard per available core (capped at 8 — localization cells are
    /// coarse; more shards than cells buys nothing), queues of 64.
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
        }
    }
}

impl ServeConfig {
    /// A config with the given shard count and the default queue capacity.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// What to do when a job's target shard queue is full at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OverloadPolicy {
    /// Block the submitter until space frees (backpressure; nothing is
    /// ever dropped). The historical — and default — behaviour; over
    /// TCP it composes with the socket's own receive-window
    /// backpressure.
    #[default]
    Block,
    /// Reject the arriving job immediately with
    /// [`RejectReason::Overloaded`]. Deterministic: the shed job is
    /// exactly the one that would otherwise have blocked; queued jobs
    /// are never evicted.
    Shed,
}

/// A per-job event sink: when a job is submitted with one (see
/// [`SubmitOptions::events`]), every one of its [`CellUpdate`]s goes to
/// this closure *instead of* the server-wide [`UpdateStream`]. The TCP
/// front end uses this to fan each connection's events back to its own
/// socket — and, because the closure may block (e.g. on a bounded
/// per-connection queue), a slow consumer throttles only its own jobs.
pub type UpdateFn = Arc<dyn Fn(CellUpdate) + Send + Sync>;

/// Tenancy, scheduling and delivery options for [`Server::submit_with`].
/// `SubmitOptions::default()` reproduces plain [`Server::submit`]: the
/// `"default"` tenant, replay priority, no deadline, blocking
/// backpressure, events to the shared stream.
#[derive(Clone, Default)]
pub struct SubmitOptions {
    /// Tenant the job bills to (admission control + fair-share lane).
    /// `None` means the unlimited [`DEFAULT_TENANT`].
    pub tenant: Option<String>,
    /// Priority class; [`Priority::Live`] overtakes [`Priority::Replay`].
    pub priority: Priority,
    /// Time budget measured from submission: if no worker has *started*
    /// the job when it expires, the job is shed (never partially run).
    pub deadline: Option<Duration>,
    /// Full-queue behaviour: block (default) or shed deterministically.
    pub overload: OverloadPolicy,
    /// Per-job event sink; `None` delivers to the shared [`UpdateStream`].
    pub events: Option<UpdateFn>,
}

impl SubmitOptions {
    /// Options for `tenant` at `priority`, otherwise default.
    pub fn tenant(tenant: &str, priority: Priority) -> Self {
        Self {
            tenant: Some(tenant.to_string()),
            priority,
            ..Self::default()
        }
    }
}

impl std::fmt::Debug for SubmitOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitOptions")
            .field("tenant", &self.tenant)
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .field("overload", &self.overload)
            .field("events", &self.events.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

/// Counters a shard worker reports when it exits (returned by
/// [`Server::shutdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Jobs this shard ran to a terminal state (incl. cancelled/failed).
    pub jobs: usize,
    /// Localization rounds this shard executed.
    pub rounds: usize,
    /// Jobs that ended by cancellation on this shard.
    pub cancelled: usize,
    /// Numeric paths this shard *ensured* were warm before running a
    /// hybrid job (the underlying waveform assets are process-wide: the
    /// first shard to check a path pays the build, later shards' checks
    /// are no-ops but still counted here).
    pub warmed_paths: usize,
    /// Jobs this worker stole from sibling shards' intakes.
    pub stolen: usize,
    /// Jobs this worker shed at dequeue because their deadline had
    /// already expired.
    pub shed: usize,
}

/// The receiving end of the server's [`CellUpdate`] stream (an unbounded
/// [`JobQueue`] under the hood — same close-and-drain semantics as the
/// shard intakes).
///
/// Events are delivered in emission order (per job: `CellStarted`, the
/// `RoundCompleted`s, then one terminal event). The stream is unbounded —
/// consumers that fall behind cost memory, not correctness; drain it from
/// a dedicated thread in long-running deployments. Jobs submitted with a
/// per-job sink ([`SubmitOptions::events`]) bypass this stream entirely.
/// After [`Server::shutdown`] the remaining events are still delivered,
/// then [`UpdateStream::recv`] returns `None`.
pub struct UpdateStream {
    events: JobQueue<CellUpdate>,
}

impl UpdateStream {
    /// Blocks until the next event, or `None` once the server has shut
    /// down and every event has been delivered.
    pub fn recv(&self) -> Option<CellUpdate> {
        self.events.pop()
    }

    /// Returns the next event if one is already queued.
    pub fn try_recv(&self) -> Option<CellUpdate> {
        self.events.try_pop()
    }
}

/// A job as it sits in a shard's intake queue.
struct QueuedJob {
    id: JobId,
    cell: EvalCell,
    state: Arc<JobState>,
    tenant: String,
    deadline: Option<Instant>,
    sink: Option<UpdateFn>,
}

/// The async localization server: sharded workers behind bounded
/// weighted-fair queues, streaming [`CellUpdate`]s.
///
/// ```
/// use uw_serve::{LocalizationJob, ServeConfig, Server};
/// use uw_eval::ScenarioMatrix;
///
/// let mut matrix = ScenarioMatrix::smoke();
/// matrix.rounds_per_cell = 2;
/// let cell = matrix.expand().unwrap().remove(0);
///
/// let (server, updates) = Server::start(ServeConfig::with_shards(2));
/// let handle = server.submit(LocalizationJob::Cell(cell));
/// let outcome = handle.wait();
/// assert!(outcome.is_completed());
/// server.shutdown();
/// // Drain the stream: started, 2 rounds, finalized.
/// let mut events = Vec::new();
/// while let Some(update) = updates.recv() {
///     events.push(update);
/// }
/// assert_eq!(events.len(), 4);
/// assert!(events.last().unwrap().is_terminal());
/// ```
pub struct Server {
    shards: Vec<FairQueue<QueuedJob>>,
    workers: Vec<std::thread::JoinHandle<ShardStats>>,
    events: JobQueue<CellUpdate>,
    tenants: Arc<TenantRegistry>,
    recordings: RwLock<HashMap<String, Arc<ImportedCampaign>>>,
    next_id: AtomicU64,
}

impl Server {
    /// Spawns the worker pool and returns the server plus the single
    /// consumer handle for its update stream.
    pub fn start(config: ServeConfig) -> (Self, UpdateStream) {
        let n_shards = config.shards.max(1);
        let events: JobQueue<CellUpdate> = JobQueue::unbounded();
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(FairQueue::bounded(config.queue_capacity));
        }
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let own = shards[shard].clone();
            let siblings: Vec<(usize, FairQueue<QueuedJob>)> = shards
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != shard)
                .map(|(i, q)| (i, q.clone()))
                .collect();
            let worker_events = events.clone();
            let handle = std::thread::Builder::new()
                .name(format!("uw-serve-shard-{shard}"))
                .spawn(move || shard_worker(shard, own, siblings, worker_events))
                .expect("spawn shard worker");
            workers.push(handle);
        }
        (
            Self {
                shards,
                workers,
                events: events.clone(),
                tenants: Arc::new(TenantRegistry::new()),
                recordings: RwLock::new(HashMap::new()),
                next_id: AtomicU64::new(0),
            },
            UpdateStream { events },
        )
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Installs (or replaces) a tenant's admission and fair-share
    /// configuration. Unconfigured tenants are unlimited at weight 1.
    pub fn configure_tenant(&self, config: TenantConfig) {
        self.tenants.configure(config);
    }

    /// Registers (or replaces) an imported field-recording campaign under
    /// `name`. Wire jobs whose [`JobSpec::recording`] names it are run
    /// against the campaign's recorded audio instead of the simulator;
    /// the audio itself never travels over the wire. Returns the name it
    /// was registered under (the manifest's recording name when `name` is
    /// empty).
    pub fn register_recording(&self, name: &str, campaign: Arc<ImportedCampaign>) -> String {
        let key = if name.is_empty() {
            campaign.manifest.recording.clone()
        } else {
            name.to_string()
        };
        self.recordings
            .write()
            .expect("recording registry poisoned")
            .insert(key.clone(), campaign);
        key
    }

    /// Looks up a registered campaign by name.
    pub fn recording(&self, name: &str) -> Option<Arc<ImportedCampaign>> {
        self.recordings
            .read()
            .expect("recording registry poisoned")
            .get(name)
            .cloned()
    }

    /// Expands a wire spec into a runnable cell, resolving
    /// [`JobSpec::recording`] references through the registry. A
    /// recording job must agree with the registered campaign on every
    /// manifest axis (environment, device count, condition, mobility,
    /// seed, rounds) — only the numeric path selects among the campaign's
    /// cells — so a stale or mistargeted spec fails loudly instead of
    /// silently running someone else's audio.
    pub fn resolve_spec(&self, spec: &JobSpec) -> Result<EvalCell> {
        let name = match &spec.recording {
            None => return spec.to_cell(),
            Some(name) => name,
        };
        let campaign = self
            .recording(name)
            .ok_or_else(|| SystemError::InvalidConfig {
                reason: format!("no recording registered under {name:?}"),
            })?;
        let mut mismatches = Vec::new();
        if spec.environment != campaign.environment {
            mismatches.push("environment");
        }
        if spec.n_devices as usize != campaign.n_devices {
            mismatches.push("n_devices");
        }
        if spec.condition != campaign.condition {
            mismatches.push("condition");
        }
        if spec.mobility != campaign.mobility {
            mismatches.push("mobility");
        }
        if spec.seed != campaign.seed {
            mismatches.push("seed");
        }
        if spec.rounds as usize != campaign.rounds {
            mismatches.push("rounds");
        }
        if spec.fidelity != Fidelity::Hybrid {
            mismatches.push("fidelity");
        }
        if spec.faults.is_some() {
            mismatches.push("faults");
        }
        if !mismatches.is_empty() {
            return Err(SystemError::InvalidConfig {
                reason: format!(
                    "job disagrees with recording {name:?} on: {}",
                    mismatches.join(", ")
                ),
            });
        }
        campaign.cell_with_path(spec.numeric_path)
    }

    /// Submits a job, blocking while the target shard's queue is at
    /// capacity (backpressure — jobs are never dropped). The shard is
    /// chosen by hashing the job's cell id, so identical cells always
    /// land on the same shard and reuse its warmed DSP state. Equivalent
    /// to [`Server::submit_with`] with [`SubmitOptions::default`].
    pub fn submit(&self, job: LocalizationJob) -> JobHandle {
        self.submit_with(job, SubmitOptions::default())
    }

    /// Tenant-aware submission: admission control, priority class,
    /// deadline and overload policy per [`SubmitOptions`]. A rejected
    /// job (admission or [`OverloadPolicy::Shed`]) resolves its handle
    /// to [`JobOutcome::Rejected`] immediately and emits a single
    /// [`CellUpdate::JobRejected`] event.
    pub fn submit_with(&self, job: LocalizationJob, options: SubmitOptions) -> JobHandle {
        let cell = job.into_cell();
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let state = JobState::new();
        let handle = JobHandle::new(id, cell.id.clone(), Arc::clone(&state));
        let tenant = options.tenant.unwrap_or_else(|| DEFAULT_TENANT.to_string());

        let now = Instant::now();
        if let Err(reason) = self.tenants.admit(&tenant, now) {
            self.reject(id, &cell.id, &tenant, reason, &options.events, &state);
            return handle;
        }

        let weight = self.tenants.weight(&tenant);
        let deadline = options.deadline.map(|budget| now + budget);
        let shard = shard_for(&cell.id, self.shards.len());
        let queue = &self.shards[shard];
        let queued = QueuedJob {
            id,
            cell,
            state: Arc::clone(&state),
            tenant: tenant.clone(),
            deadline,
            sink: options.events.clone(),
        };
        match options.overload {
            OverloadPolicy::Block => {
                queue
                    .push(queued, &tenant, options.priority, weight)
                    .unwrap_or_else(|_| unreachable!("shard queues outlive the server handle"));
            }
            OverloadPolicy::Shed => {
                if let Err(rejected) = queue.try_push(queued, &tenant, options.priority, weight) {
                    let reason = RejectReason::Overloaded {
                        queued: queue.len(),
                        capacity: queue.capacity(),
                    };
                    self.reject(
                        rejected.id,
                        &rejected.cell.id,
                        &tenant,
                        reason,
                        &options.events,
                        &state,
                    );
                }
            }
        }
        handle
    }

    /// Emits the rejection event (to the per-job sink if one was given,
    /// else the shared stream) and resolves the handle.
    fn reject(
        &self,
        id: JobId,
        cell_id: &str,
        tenant: &str,
        reason: RejectReason,
        sink: &Option<UpdateFn>,
        state: &Arc<JobState>,
    ) {
        let update = CellUpdate::JobRejected {
            job: id,
            cell_id: cell_id.to_string(),
            tenant: tenant.to_string(),
            reason: reason.clone(),
        };
        match sink {
            Some(f) => f(update),
            None => emit(&self.events, update),
        }
        state.complete(JobOutcome::Rejected(reason));
    }

    /// Graceful shutdown: closes every shard's intake (new submissions
    /// are impossible — `shutdown` consumes the server), waits for all
    /// queued jobs to drain and the workers to exit, then ends the update
    /// stream. Returns per-shard counters.
    pub fn shutdown(mut self) -> Vec<ShardStats> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Vec<ShardStats> {
        for queue in &self.shards {
            queue.close();
        }
        let mut stats = Vec::with_capacity(self.workers.len());
        let mut panicked = 0usize;
        for worker in self.workers.drain(..) {
            match worker.join() {
                Ok(s) => stats.push(s),
                Err(_) => panicked += 1,
            }
        }
        stats.sort_by_key(|s| s.shard);
        self.events.close();
        // A worker panic must surface — but never while another panic is
        // already unwinding (a panic inside Drop would abort the process
        // and mask the original one).
        if panicked > 0 && !std::thread::panicking() {
            panic!("{panicked} shard worker(s) panicked during shutdown");
        }
        stats
    }
}

impl Drop for Server {
    /// Dropping the server without calling [`Server::shutdown`] performs
    /// the same graceful drain, so update streams always terminate.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Stable cell-id → shard mapping (`DefaultHasher` is deterministic
/// within a process, which is all affinity needs).
fn shard_for(cell_id: &str, n_shards: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    cell_id.hash(&mut hasher);
    (hasher.finish() % n_shards as u64) as usize
}

fn path_slot(path: NumericPath) -> usize {
    match path {
        NumericPath::F64 => 0,
        NumericPath::Q15 => 1,
        NumericPath::F32 => 2,
    }
}

/// Publishes an update to the shared stream. The stream is unbounded
/// (never blocks) and is closed only after every worker has been joined,
/// so emitting from a live worker cannot fail.
fn emit(events: &JobQueue<CellUpdate>, update: CellUpdate) {
    events
        .push(update)
        .unwrap_or_else(|_| unreachable!("update stream closed before workers were joined"));
}

/// One shard's worker loop: pop from its own fair queue (stealing from
/// the most-backlogged sibling when idle) → shed if past deadline → warm
/// assets → step rounds (streaming a `RoundCompleted` per round and
/// honouring cancellation between rounds) → finalize → emit the terminal
/// event and resolve the handle. Exits when every intake is closed and
/// drained.
fn shard_worker(
    shard: usize,
    own: FairQueue<QueuedJob>,
    siblings: Vec<(usize, FairQueue<QueuedJob>)>,
    events: JobQueue<CellUpdate>,
) -> ShardStats {
    let mut stats = ShardStats {
        shard,
        jobs: 0,
        rounds: 0,
        cancelled: 0,
        warmed_paths: 0,
        stolen: 0,
        shed: 0,
    };
    let mut warmed = [false; 3];
    // Steal sweep: siblings ordered most-backlogged first, one job per
    // sweep (taken in the victim's own fair order).
    let steal = |stats: &mut ShardStats| -> Option<QueuedJob> {
        let mut order: Vec<(usize, usize)> = siblings
            .iter()
            .enumerate()
            .map(|(slot, (_, q))| (q.len(), slot))
            .filter(|(len, _)| *len > 0)
            .collect();
        order.sort_by(|a, b| b.cmp(a));
        for (_, slot) in order {
            if let Some(job) = siblings[slot].1.try_pop() {
                stats.stolen += 1;
                return Some(job);
            }
        }
        None
    };
    loop {
        let own_drained;
        let job = match own.pop_timeout(STEAL_IDLE) {
            PopWait::Item(job) => {
                own_drained = false;
                Some(job)
            }
            PopWait::TimedOut => {
                own_drained = false;
                steal(&mut stats)
            }
            PopWait::Drained => {
                own_drained = true;
                steal(&mut stats)
            }
        };
        let Some(job) = job else {
            // Nothing local, nothing stealable. Exit only once the whole
            // pool is closed and drained; otherwise wait out a beat (the
            // own-intake wait already elapsed unless it is drained, in
            // which case pop_timeout returned immediately).
            if own.is_drained() && siblings.iter().all(|(_, q)| q.is_drained()) {
                return stats;
            }
            if own_drained {
                std::thread::sleep(STEAL_IDLE);
            }
            continue;
        };
        stats.jobs += 1;
        let QueuedJob {
            id,
            cell,
            state,
            tenant,
            deadline,
            sink,
        } = job;
        // Route this job's events: per-job sink if the submitter gave
        // one, the shared stream otherwise.
        let send = |update: CellUpdate| match &sink {
            Some(f) => f(update),
            None => emit(&events, update),
        };

        // Deadline shedding happens *here*, at dequeue: the job has cost
        // nothing but queue space so far, and a job whose answer is
        // already stale must not occupy the shard.
        if let Some(deadline) = deadline {
            let now = Instant::now();
            if now >= deadline {
                stats.shed += 1;
                let late_ms = now.saturating_duration_since(deadline).as_millis() as u64;
                let reason = RejectReason::DeadlineExpired { late_ms };
                send(CellUpdate::JobRejected {
                    job: id,
                    cell_id: cell.id.clone(),
                    tenant,
                    reason: reason.clone(),
                });
                state.complete(JobOutcome::Rejected(reason));
                continue;
            }
        }

        // Per-shard waveform-asset affinity: the first hybrid job on a
        // numeric path builds the process-wide preamble assets from this
        // shard, so the cost lands here once instead of inside a round.
        let path = cell.scenario.config().numeric_path;
        if cell.scenario.config().fidelity == Fidelity::Hybrid && !warmed[path_slot(path)] {
            uw_core::waveform::warm_assets(path);
            warmed[path_slot(path)] = true;
            stats.warmed_paths += 1;
        }

        let mut exec = match CellExecution::new(&cell) {
            Ok(exec) => exec,
            Err(e) => {
                send(CellUpdate::JobFailed {
                    job: id,
                    cell_id: cell.id.clone(),
                    reason: e.to_string(),
                });
                state.complete(JobOutcome::Failed(e.to_string()));
                continue;
            }
        };

        // Cancelled while still queued: finalize an empty report without
        // starting the cell.
        if state.is_cancelled() {
            stats.cancelled += 1;
            let partial = exec.finalize();
            send(CellUpdate::JobCancelled {
                job: id,
                partial: partial.clone(),
            });
            state.complete(JobOutcome::Cancelled(partial));
            continue;
        }

        send(CellUpdate::CellStarted {
            job: id,
            cell_id: cell.id.clone(),
            rounds: cell.rounds,
        });
        let mut was_cancelled = false;
        while let Some(summary) = exec.step() {
            stats.rounds += 1;
            send(CellUpdate::RoundCompleted {
                job: id,
                cell_id: cell.id.clone(),
                summary,
            });
            // A cancel that lands during the *final* round must not
            // demote a fully-run cell: its statistics are complete.
            if state.is_cancelled() && !exec.is_complete() {
                was_cancelled = true;
                break;
            }
        }
        let report = exec.finalize();
        if was_cancelled {
            stats.cancelled += 1;
            send(CellUpdate::JobCancelled {
                job: id,
                partial: report.clone(),
            });
            state.complete(JobOutcome::Cancelled(report));
        } else {
            send(CellUpdate::CellFinalized {
                job: id,
                report: report.clone(),
            });
            state.complete(JobOutcome::Completed(report));
        }
    }
}

/// Streams every cell of a matrix through a server and reassembles the
/// deterministic report: submit in expansion order, let shards complete
/// out of order, merge by submission order. The result is byte-identical
/// (`EvalReport::to_json`) to [`uw_eval::run_matrix`] on the same matrix.
///
/// Fails if any cell fails to run (mirroring the batch runner's error
/// propagation).
pub fn serve_matrix(matrix: &ScenarioMatrix, config: ServeConfig) -> Result<EvalReport> {
    let cells = matrix.expand()?;
    let expected = cells.len();
    let (server, updates) = Server::start(config);
    let mut handles = Vec::with_capacity(expected);
    for cell in cells {
        handles.push(server.submit(LocalizationJob::Cell(cell)));
    }
    let mut builder = ReportBuilder::new();
    while builder.terminals() < expected {
        match updates.recv() {
            Some(update) => builder.ingest(&update),
            None => break,
        }
    }
    server.shutdown();
    if let Some((job, reason)) = builder.failures().first() {
        return Err(SystemError::Layer {
            layer: "serve",
            reason: format!("{job} failed: {reason}"),
        });
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in 1..5 {
            for id in ["dock/5dev/clear/static/s1", "a", ""] {
                let s = shard_for(id, n);
                assert!(s < n);
                assert_eq!(s, shard_for(id, n));
            }
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.shards >= 1 && c.shards <= 8);
        assert!(c.queue_capacity >= 1);
        assert_eq!(ServeConfig::with_shards(3).shards, 3);
    }

    #[test]
    fn default_options_reproduce_plain_submit() {
        let o = SubmitOptions::default();
        assert!(o.tenant.is_none());
        assert_eq!(o.priority, Priority::Replay);
        assert!(o.deadline.is_none());
        assert_eq!(o.overload, OverloadPolicy::Block);
        assert!(o.events.is_none());
        let t = SubmitOptions::tenant("diver-7", Priority::Live);
        assert_eq!(t.tenant.as_deref(), Some("diver-7"));
        assert_eq!(t.priority, Priority::Live);
    }
}
