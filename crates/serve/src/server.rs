//! The sharded localization server.
//!
//! [`Server::start`] spawns one worker thread per shard, each with its own
//! bounded [`JobQueue`] intake. [`Server::submit`] routes a job to a shard
//! by hashing its cell id — stable affinity, so repeated submissions of
//! the same cell land on a shard that has already ensured its waveform
//! assets are warm — and returns a [`JobHandle`]
//! that can be cancelled, waited on, or `.await`ed. Workers drive the
//! shared cell-execution core ([`uw_eval::CellExecution`]) one round at a
//! time, publishing [`CellUpdate`] events into the [`UpdateStream`] as
//! they go.
//!
//! Design invariants:
//!
//! * **Backpressure, no drops** — shard queues are bounded; `submit`
//!   blocks when the target shard is at capacity. Nothing is ever shed.
//! * **Determinism** — a cell's RNG stream depends only on its seed and
//!   round index, never on which shard runs it or when; out-of-order
//!   completions are re-merged by submission order in the sink, so a
//!   streamed matrix reproduces the batch runner's report byte for byte.
//! * **Cooperative cancellation** — workers check the cancel flag between
//!   rounds; a cancelled job finalizes partial statistics and the pool
//!   keeps serving.
//! * **Graceful shutdown** — [`Server::shutdown`] closes the intakes,
//!   lets every queued job drain, joins the workers and then ends the
//!   update stream (receivers see `None` after the last event).

use crate::job::{CellUpdate, JobHandle, JobId, JobOutcome, JobState, LocalizationJob};
use crate::queue::JobQueue;
use crate::sink::ReportBuilder;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use uw_core::config::{Fidelity, NumericPath};
use uw_core::{Result, SystemError};
use uw_eval::runner::CellExecution;
use uw_eval::{EvalCell, EvalReport, ScenarioMatrix};

/// Tuning knobs of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards. Each shard is one worker thread with its own bounded
    /// intake queue and its own lazily-warmed waveform-asset state.
    /// Clamped to ≥ 1.
    pub shards: usize,
    /// Capacity of each shard's intake queue; producers block (are
    /// backpressured) while their target shard is full. Clamped to ≥ 1.
    pub queue_capacity: usize,
}

impl Default for ServeConfig {
    /// One shard per available core (capped at 8 — localization cells are
    /// coarse; more shards than cells buys nothing), queues of 64.
    fn default() -> Self {
        Self {
            shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(8),
            queue_capacity: 64,
        }
    }
}

impl ServeConfig {
    /// A config with the given shard count and the default queue capacity.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            shards,
            ..Self::default()
        }
    }
}

/// Counters a shard worker reports when it exits (returned by
/// [`Server::shutdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Jobs this shard ran to a terminal state (incl. cancelled/failed).
    pub jobs: usize,
    /// Localization rounds this shard executed.
    pub rounds: usize,
    /// Jobs that ended by cancellation on this shard.
    pub cancelled: usize,
    /// Numeric paths this shard *ensured* were warm before running a
    /// hybrid job (the underlying waveform assets are process-wide: the
    /// first shard to check a path pays the build, later shards' checks
    /// are no-ops but still counted here).
    pub warmed_paths: usize,
}

/// The receiving end of the server's [`CellUpdate`] stream (an unbounded
/// [`JobQueue`] under the hood — same close-and-drain semantics as the
/// shard intakes).
///
/// Events are delivered in emission order (per job: `CellStarted`, the
/// `RoundCompleted`s, then one terminal event). The stream is unbounded —
/// consumers that fall behind cost memory, not correctness; drain it from
/// a dedicated thread in long-running deployments. After
/// [`Server::shutdown`] the remaining events are still delivered, then
/// [`UpdateStream::recv`] returns `None`.
pub struct UpdateStream {
    events: JobQueue<CellUpdate>,
}

impl UpdateStream {
    /// Blocks until the next event, or `None` once the server has shut
    /// down and every event has been delivered.
    pub fn recv(&self) -> Option<CellUpdate> {
        self.events.pop()
    }

    /// Returns the next event if one is already queued.
    pub fn try_recv(&self) -> Option<CellUpdate> {
        self.events.try_pop()
    }
}

/// A job as it sits in a shard's intake queue.
struct QueuedJob {
    id: JobId,
    cell: EvalCell,
    state: Arc<JobState>,
}

/// The async localization server: sharded workers behind bounded queues,
/// streaming [`CellUpdate`]s.
///
/// ```
/// use uw_serve::{LocalizationJob, ServeConfig, Server};
/// use uw_eval::ScenarioMatrix;
///
/// let mut matrix = ScenarioMatrix::smoke();
/// matrix.rounds_per_cell = 2;
/// let cell = matrix.expand().unwrap().remove(0);
///
/// let (server, updates) = Server::start(ServeConfig::with_shards(2));
/// let handle = server.submit(LocalizationJob::Cell(cell));
/// let outcome = handle.wait();
/// assert!(outcome.is_completed());
/// server.shutdown();
/// // Drain the stream: started, 2 rounds, finalized.
/// let mut events = Vec::new();
/// while let Some(update) = updates.recv() {
///     events.push(update);
/// }
/// assert_eq!(events.len(), 4);
/// assert!(events.last().unwrap().is_terminal());
/// ```
pub struct Server {
    shards: Vec<JobQueue<QueuedJob>>,
    workers: Vec<std::thread::JoinHandle<ShardStats>>,
    events: JobQueue<CellUpdate>,
    next_id: AtomicU64,
}

impl Server {
    /// Spawns the worker pool and returns the server plus the single
    /// consumer handle for its update stream.
    pub fn start(config: ServeConfig) -> (Self, UpdateStream) {
        let n_shards = config.shards.max(1);
        let events: JobQueue<CellUpdate> = JobQueue::unbounded();
        let mut shards = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let queue: JobQueue<QueuedJob> = JobQueue::bounded(config.queue_capacity);
            let worker_queue = queue.clone();
            let worker_events = events.clone();
            let handle = std::thread::Builder::new()
                .name(format!("uw-serve-shard-{shard}"))
                .spawn(move || shard_worker(shard, worker_queue, worker_events))
                .expect("spawn shard worker");
            shards.push(queue);
            workers.push(handle);
        }
        (
            Self {
                shards,
                workers,
                events: events.clone(),
                next_id: AtomicU64::new(0),
            },
            UpdateStream { events },
        )
    }

    /// Number of worker shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Submits a job, blocking while the target shard's queue is at
    /// capacity (backpressure — jobs are never dropped). The shard is
    /// chosen by hashing the job's cell id, so identical cells always
    /// land on the same shard and reuse its warmed DSP state.
    pub fn submit(&self, job: LocalizationJob) -> JobHandle {
        let cell = job.into_cell();
        let id = JobId(self.next_id.fetch_add(1, Ordering::Relaxed));
        let state = JobState::new();
        let handle = JobHandle::new(id, cell.id.clone(), Arc::clone(&state));
        let shard = shard_for(&cell.id, self.shards.len());
        self.shards[shard]
            .push(QueuedJob { id, cell, state })
            .unwrap_or_else(|_| unreachable!("shard queues outlive the server handle"));
        handle
    }

    /// Graceful shutdown: closes every shard's intake (new submissions
    /// are impossible — `shutdown` consumes the server), waits for all
    /// queued jobs to drain and the workers to exit, then ends the update
    /// stream. Returns per-shard counters.
    pub fn shutdown(mut self) -> Vec<ShardStats> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Vec<ShardStats> {
        for queue in &self.shards {
            queue.close();
        }
        let mut stats = Vec::with_capacity(self.workers.len());
        let mut panicked = 0usize;
        for worker in self.workers.drain(..) {
            match worker.join() {
                Ok(s) => stats.push(s),
                Err(_) => panicked += 1,
            }
        }
        stats.sort_by_key(|s| s.shard);
        self.events.close();
        // A worker panic must surface — but never while another panic is
        // already unwinding (a panic inside Drop would abort the process
        // and mask the original one).
        if panicked > 0 && !std::thread::panicking() {
            panic!("{panicked} shard worker(s) panicked during shutdown");
        }
        stats
    }
}

impl Drop for Server {
    /// Dropping the server without calling [`Server::shutdown`] performs
    /// the same graceful drain, so update streams always terminate.
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.shutdown_inner();
        }
    }
}

/// Stable cell-id → shard mapping (`DefaultHasher` is deterministic
/// within a process, which is all affinity needs).
fn shard_for(cell_id: &str, n_shards: usize) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    cell_id.hash(&mut hasher);
    (hasher.finish() % n_shards as u64) as usize
}

fn path_slot(path: NumericPath) -> usize {
    match path {
        NumericPath::F64 => 0,
        NumericPath::Q15 => 1,
        NumericPath::F32 => 2,
    }
}

/// Publishes an update. The stream is unbounded (never blocks) and is
/// closed only after every worker has been joined, so emitting from a
/// live worker cannot fail.
fn emit(events: &JobQueue<CellUpdate>, update: CellUpdate) {
    events
        .push(update)
        .unwrap_or_else(|_| unreachable!("update stream closed before workers were joined"));
}

/// One shard's worker loop: pop → warm assets → step rounds (streaming a
/// `RoundCompleted` per round and honouring cancellation between rounds)
/// → finalize → emit the terminal event and resolve the handle.
fn shard_worker(
    shard: usize,
    queue: JobQueue<QueuedJob>,
    events: JobQueue<CellUpdate>,
) -> ShardStats {
    let mut stats = ShardStats {
        shard,
        jobs: 0,
        rounds: 0,
        cancelled: 0,
        warmed_paths: 0,
    };
    let mut warmed = [false; 3];
    while let Some(job) = queue.pop() {
        stats.jobs += 1;
        let QueuedJob { id, cell, state } = job;

        // Per-shard waveform-asset affinity: the first hybrid job on a
        // numeric path builds the process-wide preamble assets from this
        // shard, so the cost lands here once instead of inside a round.
        let path = cell.scenario.config().numeric_path;
        if cell.scenario.config().fidelity == Fidelity::Hybrid && !warmed[path_slot(path)] {
            uw_core::waveform::warm_assets(path);
            warmed[path_slot(path)] = true;
            stats.warmed_paths += 1;
        }

        let mut exec = match CellExecution::new(&cell) {
            Ok(exec) => exec,
            Err(e) => {
                emit(
                    &events,
                    CellUpdate::JobFailed {
                        job: id,
                        cell_id: cell.id.clone(),
                        reason: e.to_string(),
                    },
                );
                state.complete(JobOutcome::Failed(e.to_string()));
                continue;
            }
        };

        // Cancelled while still queued: finalize an empty report without
        // starting the cell.
        if state.is_cancelled() {
            stats.cancelled += 1;
            let partial = exec.finalize();
            emit(
                &events,
                CellUpdate::JobCancelled {
                    job: id,
                    partial: partial.clone(),
                },
            );
            state.complete(JobOutcome::Cancelled(partial));
            continue;
        }

        emit(
            &events,
            CellUpdate::CellStarted {
                job: id,
                cell_id: cell.id.clone(),
                rounds: cell.rounds,
            },
        );
        let mut was_cancelled = false;
        while let Some(summary) = exec.step() {
            stats.rounds += 1;
            emit(
                &events,
                CellUpdate::RoundCompleted {
                    job: id,
                    cell_id: cell.id.clone(),
                    summary,
                },
            );
            // A cancel that lands during the *final* round must not
            // demote a fully-run cell: its statistics are complete.
            if state.is_cancelled() && !exec.is_complete() {
                was_cancelled = true;
                break;
            }
        }
        let report = exec.finalize();
        if was_cancelled {
            stats.cancelled += 1;
            emit(
                &events,
                CellUpdate::JobCancelled {
                    job: id,
                    partial: report.clone(),
                },
            );
            state.complete(JobOutcome::Cancelled(report));
        } else {
            emit(
                &events,
                CellUpdate::CellFinalized {
                    job: id,
                    report: report.clone(),
                },
            );
            state.complete(JobOutcome::Completed(report));
        }
    }
    stats
}

/// Streams every cell of a matrix through a server and reassembles the
/// deterministic report: submit in expansion order, let shards complete
/// out of order, merge by submission order. The result is byte-identical
/// (`EvalReport::to_json`) to [`uw_eval::run_matrix`] on the same matrix.
///
/// Fails if any cell fails to run (mirroring the batch runner's error
/// propagation).
pub fn serve_matrix(matrix: &ScenarioMatrix, config: ServeConfig) -> Result<EvalReport> {
    let cells = matrix.expand()?;
    let expected = cells.len();
    let (server, updates) = Server::start(config);
    let mut handles = Vec::with_capacity(expected);
    for cell in cells {
        handles.push(server.submit(LocalizationJob::Cell(cell)));
    }
    let mut builder = ReportBuilder::new();
    while builder.terminals() < expected {
        match updates.recv() {
            Some(update) => builder.ingest(&update),
            None => break,
        }
    }
    server.shutdown();
    if let Some((job, reason)) = builder.failures().first() {
        return Err(SystemError::Layer {
            layer: "serve",
            reason: format!("{job} failed: {reason}"),
        });
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_stable_and_in_range() {
        for n in 1..5 {
            for id in ["dock/5dev/clear/static/s1", "a", ""] {
                let s = shard_for(id, n);
                assert!(s < n);
                assert_eq!(s, shard_for(id, n));
            }
        }
    }

    #[test]
    fn default_config_is_sane() {
        let c = ServeConfig::default();
        assert!(c.shards >= 1 && c.shards <= 8);
        assert!(c.queue_capacity >= 1);
        assert_eq!(ServeConfig::with_shards(3).shards, 3);
    }
}
