//! Reassembling streamed updates into deterministic reports.
//!
//! Shards complete cells out of order; [`ReportBuilder`] is the sink that
//! makes that invisible. It ingests [`CellUpdate`]s in whatever order
//! they arrive and, because [`JobId`]s are assigned monotonically at
//! submission, re-keys the finalized cells by job id so the finished
//! [`EvalReport`] lists cells in submission order — exactly the order the
//! batch runner would have produced. With the same cells submitted in
//! expansion order, `finish()` therefore yields JSON byte-identical to
//! [`uw_eval::run_matrix`].

use crate::job::{CellUpdate, JobId, RejectReason};
use std::collections::BTreeMap;
use uw_eval::{CellReport, EvalReport};

/// Accumulates streamed [`CellUpdate`]s into an [`EvalReport`].
///
/// ```
/// use uw_serve::sink::ReportBuilder;
/// use uw_serve::job::{CellUpdate, JobId};
///
/// let mut builder = ReportBuilder::new();
/// assert_eq!(builder.terminals(), 0);
/// builder.ingest(&CellUpdate::JobFailed {
///     job: JobId(0),
///     cell_id: "dock/5dev/clear/static/s1".into(),
///     reason: "example".into(),
/// });
/// assert_eq!(builder.terminals(), 1);
/// assert_eq!(builder.failures().len(), 1);
/// assert!(builder.finish().cells.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ReportBuilder {
    finalized: BTreeMap<JobId, CellReport>,
    cancelled: BTreeMap<JobId, CellReport>,
    failures: Vec<(JobId, String)>,
    rejected: Vec<(JobId, RejectReason)>,
    rounds_seen: usize,
}

impl ReportBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one streamed update into the builder. Non-terminal events
    /// only update progress counters; terminal events file the job under
    /// its outcome.
    pub fn ingest(&mut self, update: &CellUpdate) {
        match update {
            CellUpdate::CellStarted { .. } => {}
            CellUpdate::RoundCompleted { .. } => self.rounds_seen += 1,
            CellUpdate::CellFinalized { job, report } => {
                self.finalized.insert(*job, report.clone());
            }
            CellUpdate::JobCancelled { job, partial } => {
                self.cancelled.insert(*job, partial.clone());
            }
            CellUpdate::JobFailed { job, reason, .. } => {
                self.failures.push((*job, reason.clone()));
            }
            CellUpdate::JobRejected { job, reason, .. } => {
                self.rejected.push((*job, reason.clone()));
            }
        }
    }

    /// Terminal events seen so far (finalized + cancelled + failed +
    /// rejected) — compare against the number of submitted jobs to know
    /// when a batch is fully accounted for.
    pub fn terminals(&self) -> usize {
        self.finalized.len() + self.cancelled.len() + self.failures.len() + self.rejected.len()
    }

    /// `RoundCompleted` events seen so far.
    pub fn rounds_seen(&self) -> usize {
        self.rounds_seen
    }

    /// Jobs that failed, in arrival order.
    pub fn failures(&self) -> &[(JobId, String)] {
        &self.failures
    }

    /// Jobs the server refused (admission, deadline or overload), in
    /// arrival order. Rejections are terminal but — unlike failures —
    /// expected under load; callers decide whether they abort a batch.
    pub fn rejected(&self) -> &[(JobId, RejectReason)] {
        &self.rejected
    }

    /// Partial reports of cancelled jobs, in submission order.
    pub fn cancelled(&self) -> impl Iterator<Item = (&JobId, &CellReport)> {
        self.cancelled.iter()
    }

    /// Builds the report over the *completed* cells, ordered by
    /// submission (job id) regardless of completion order. Cancelled,
    /// failed and rejected jobs are excluded — their cells never reached
    /// final statistics.
    pub fn finish(self) -> EvalReport {
        EvalReport::new(self.finalized.into_values().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uw_eval::runner::RoundSummary;
    use uw_eval::ScenarioMatrix;

    fn report_for(id_suffix: u64) -> CellReport {
        let cell = ScenarioMatrix::smoke().expand().unwrap().remove(0);
        let mut report = uw_eval::report::cell_report_skeleton(&cell);
        report.id = format!("cell-{id_suffix}");
        report
    }

    #[test]
    fn out_of_order_terminals_merge_in_submission_order() {
        let mut builder = ReportBuilder::new();
        // Job 2 completes before job 0 (out-of-order shards).
        builder.ingest(&CellUpdate::CellFinalized {
            job: JobId(2),
            report: report_for(2),
        });
        builder.ingest(&CellUpdate::RoundCompleted {
            job: JobId(0),
            cell_id: "cell-0".into(),
            summary: RoundSummary {
                round: 0,
                ok: true,
                median_error_2d_m: 1.0,
                dropped_links: 0,
                flipping_correct: true,
            },
        });
        builder.ingest(&CellUpdate::CellFinalized {
            job: JobId(0),
            report: report_for(0),
        });
        builder.ingest(&CellUpdate::JobCancelled {
            job: JobId(1),
            partial: report_for(1),
        });
        assert_eq!(builder.terminals(), 3);
        assert_eq!(builder.rounds_seen(), 1);
        assert_eq!(builder.cancelled().count(), 1);
        let report = builder.finish();
        // Only completed cells, in submission order.
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].id, "cell-0");
        assert_eq!(report.cells[1].id, "cell-2");
    }
}
