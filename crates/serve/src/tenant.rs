//! Multi-tenant admission control and weighted fair scheduling.
//!
//! The serving layer stops being first-come-first-served here. Every job
//! belongs to a **tenant** (a dive group, an analysis pipeline, a billing
//! identity — the serving layer does not care which) and carries a
//! **priority class**; shards dequeue work through a [`FairQueue`] that
//! interleaves tenants by weighted fair share instead of arrival order.
//!
//! Three mechanisms compose, in submission order:
//!
//! 1. **Admission** — each tenant has a token bucket
//!    (`rate_per_s` jobs per second, `burst` capacity). A submission that
//!    finds the bucket empty is rejected *at the door* with a structured
//!    [`crate::job::RejectReason::AdmissionDenied`] — it never consumes
//!    queue space, never blocks other tenants. The default tenant is
//!    unlimited, so single-tenant workloads (the batch matrix, the
//!    historical in-process API) are never throttled.
//! 2. **Priority classes** — [`Priority::Live`] (a dive in progress)
//!    strictly overtakes [`Priority::Replay`] (recorded-campaign
//!    reprocessing) at every dequeue: a shard only serves replay work
//!    when no live job is queued. Within a class, tenants share fairly.
//! 3. **Weighted fair dequeue** — stride scheduling over per-tenant
//!    lanes: each tenant `t` has a virtual time that advances by
//!    `1 / weight(t)` per dequeued job, and the scheduler always picks
//!    the queued tenant with the smallest virtual time (ties break by
//!    tenant name, so the schedule is deterministic given the queue
//!    state). Offered load beyond a tenant's share queues in its own
//!    lane; it cannot crowd out other tenants' jobs. A single tenant at
//!    a single priority degrades to exact FIFO — the pre-tenancy
//!    behaviour. Lanes live only as long as they hold queued work: a
//!    lane is materialized on first push and garbage-collected when its
//!    last job is dequeued, so a queue that has served a million
//!    one-shot tenants holds state only for the tenants with jobs
//!    currently queued ([`FairQueue::lane_count`]).
//!
//! Determinism: the dequeue order is a pure function of the sequence of
//! pushes and pops (virtual times are rational arithmetic on f64, ties
//! are ordered by name). Admission depends on wall-clock refill, but a
//! `rate_per_s == 0` bucket never refills and an unlimited bucket never
//! empties, so the configurations tests rely on are exactly reproducible.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::job::RejectReason;
use crate::queue::QueueClosed;

/// Name of the implicit tenant used by the tenant-unaware submission
/// paths ([`crate::Server::submit`], [`crate::serve_matrix`]).
pub const DEFAULT_TENANT: &str = "default";

/// Priority class of a job. [`Priority::Live`] strictly overtakes
/// [`Priority::Replay`]: a shard dequeues replay work only when no live
/// job is queued anywhere in its intake.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// A live dive: somebody is in the water waiting for a position fix.
    Live,
    /// Replay / batch reprocessing: important, but nobody is waiting at
    /// the surface. This is the default class, matching the historical
    /// batch-matrix behaviour of the serving layer.
    #[default]
    Replay,
}

impl Priority {
    /// Stable wire tag / identifier fragment.
    pub fn slug(&self) -> &'static str {
        match self {
            Priority::Live => "live",
            Priority::Replay => "replay",
        }
    }
}

/// Per-tenant scheduling and admission parameters.
#[derive(Debug, Clone)]
pub struct TenantConfig {
    /// Tenant name (the key jobs carry).
    pub name: String,
    /// Fair-share weight (clamped to > 0). A weight-3 tenant receives 3×
    /// the dequeues of a weight-1 tenant when both have queued work.
    pub weight: f64,
    /// Token-bucket refill rate in jobs per second. `f64::INFINITY`
    /// disables admission control for the tenant; `0.0` means the bucket
    /// never refills (the tenant gets exactly `burst` jobs, ever —
    /// useful for deterministic tests and hard quotas).
    pub rate_per_s: f64,
    /// Token-bucket capacity: the largest burst admitted at once
    /// (clamped to ≥ 1 unless the rate is infinite).
    pub burst: f64,
}

impl TenantConfig {
    /// An unlimited tenant (no admission control, weight 1).
    pub fn unlimited(name: &str) -> Self {
        Self {
            name: name.to_string(),
            weight: 1.0,
            rate_per_s: f64::INFINITY,
            burst: f64::INFINITY,
        }
    }

    /// A rate-limited tenant with the given weight.
    pub fn limited(name: &str, weight: f64, rate_per_s: f64, burst: f64) -> Self {
        Self {
            name: name.to_string(),
            weight,
            rate_per_s,
            burst,
        }
    }
}

/// A classic token bucket: `tokens` refill at `rate_per_s` up to `burst`;
/// each admitted job takes one token.
#[derive(Debug)]
struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    fn new(config: &TenantConfig, now: Instant) -> Self {
        Self {
            tokens: config.burst.max(1.0),
            last_refill: now,
        }
    }

    /// Refills for the elapsed time and takes one token if available.
    fn try_take(&mut self, config: &TenantConfig, now: Instant) -> bool {
        if config.rate_per_s.is_infinite() {
            return true;
        }
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        let burst = config.burst.max(1.0);
        self.tokens = (self.tokens + elapsed.as_secs_f64() * config.rate_per_s).min(burst);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

struct TenantEntry {
    config: TenantConfig,
    bucket: TokenBucket,
}

/// The server's tenant table: admission buckets and fair-share weights,
/// keyed by tenant name. Unknown tenants are auto-registered as
/// unlimited weight-1 tenants on first use, so tenancy is opt-in.
#[derive(Default)]
pub struct TenantRegistry {
    entries: Mutex<BTreeMap<String, TenantEntry>>,
}

impl TenantRegistry {
    /// An empty registry (every tenant defaults to unlimited, weight 1).
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs (or replaces) a tenant's configuration. The token bucket
    /// restarts full.
    pub fn configure(&self, config: TenantConfig) {
        let now = Instant::now();
        let mut entries = self.entries.lock().expect("tenant registry lock");
        let bucket = TokenBucket::new(&config, now);
        entries.insert(config.name.clone(), TenantEntry { config, bucket });
    }

    /// Admission check for one job of `tenant` at time `now`: takes a
    /// token or returns the structured rejection.
    pub(crate) fn admit(&self, tenant: &str, now: Instant) -> Result<(), RejectReason> {
        let mut entries = self.entries.lock().expect("tenant registry lock");
        let entry = entries.entry(tenant.to_string()).or_insert_with(|| {
            let config = TenantConfig::unlimited(tenant);
            let bucket = TokenBucket::new(&config, now);
            TenantEntry { config, bucket }
        });
        if entry.bucket.try_take(&entry.config, now) {
            Ok(())
        } else {
            Err(RejectReason::AdmissionDenied {
                tenant: tenant.to_string(),
            })
        }
    }

    /// The tenant's fair-share weight (1.0 for unregistered tenants).
    pub(crate) fn weight(&self, tenant: &str) -> f64 {
        let entries = self.entries.lock().expect("tenant registry lock");
        entries
            .get(tenant)
            .map(|e| e.config.weight.max(f64::MIN_POSITIVE))
            .unwrap_or(1.0)
    }
}

/// Result of a bounded-wait dequeue on a [`FairQueue`].
pub enum PopWait<T> {
    /// A job was dequeued.
    Item(T),
    /// The wait expired with the queue still open and empty — the caller
    /// may go steal from a sibling queue.
    TimedOut,
    /// The queue is closed and fully drained; no item will ever arrive.
    Drained,
}

struct Lane<T> {
    weight: f64,
    vtime: f64,
    live: VecDeque<T>,
    replay: VecDeque<T>,
}

impl<T> Lane<T> {
    fn queue(&self, priority: Priority) -> &VecDeque<T> {
        match priority {
            Priority::Live => &self.live,
            Priority::Replay => &self.replay,
        }
    }

    fn queue_mut(&mut self, priority: Priority) -> &mut VecDeque<T> {
        match priority {
            Priority::Live => &mut self.live,
            Priority::Replay => &mut self.replay,
        }
    }
}

struct FairState<T> {
    lanes: BTreeMap<String, Lane<T>>,
    /// Virtual clock: the virtual time of the last dequeued job. Newly
    /// active lanes are clamped up to it so an idle tenant cannot bank
    /// credit and then monopolise the shard.
    virtual_clock: f64,
    len: usize,
    closed: bool,
}

struct FairInner<T> {
    state: Mutex<FairState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

/// A bounded, tenant-aware scheduling queue: the intake of every serving
/// shard. Pushes carry `(tenant, priority, weight)`; pops return jobs in
/// strict-priority, weighted-fair, deterministic order (see the module
/// docs). Clones share the queue.
///
/// ```
/// use uw_serve::tenant::{FairQueue, Priority};
///
/// let q: FairQueue<u32> = FairQueue::bounded(16);
/// // Tenant "b" offers 3 jobs, tenant "a" offers 3; equal weights.
/// for job in 0..3 {
///     q.push(job, "b", Priority::Replay, 1.0).unwrap();
/// }
/// for job in 10..13 {
///     q.push(job, "a", Priority::Replay, 1.0).unwrap();
/// }
/// // Fair dequeue alternates tenants (name order breaks the tie).
/// let order: Vec<u32> = (0..6).map(|_| q.try_pop().unwrap()).collect();
/// assert_eq!(order, vec![10, 0, 11, 1, 12, 2]);
/// ```
pub struct FairQueue<T> {
    inner: Arc<FairInner<T>>,
}

impl<T> Clone for FairQueue<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> FairQueue<T> {
    /// Creates a queue admitting at most `capacity` queued jobs across
    /// all tenants (clamped to ≥ 1).
    pub fn bounded(capacity: usize) -> Self {
        Self {
            inner: Arc::new(FairInner {
                state: Mutex::new(FairState {
                    lanes: BTreeMap::new(),
                    virtual_clock: 0.0,
                    len: 0,
                    closed: false,
                }),
                not_empty: Condvar::new(),
                not_full: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Maximum queued jobs.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Jobs currently queued (all tenants, both classes).
    pub fn len(&self) -> usize {
        self.inner.state.lock().expect("fair queue lock").len
    }

    /// Whether no jobs are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tenant lanes currently materialized. Lanes are created on first
    /// push and garbage-collected when their last queued job is dequeued,
    /// so after a drain this returns the number of tenants with work
    /// still queued — not every tenant name the queue has ever seen.
    pub fn lane_count(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("fair queue lock")
            .lanes
            .len()
    }

    /// Whether the queue has been closed *and* drained — the terminal
    /// state a stealing worker checks before exiting.
    pub fn is_drained(&self) -> bool {
        let state = self.inner.state.lock().expect("fair queue lock");
        state.closed && state.len == 0
    }

    /// Enqueues a job for `tenant` at `priority`, blocking while the
    /// queue is at capacity (backpressure). `weight` updates the
    /// tenant's fair-share weight (latest wins). Fails only on a closed
    /// queue, returning the job.
    pub fn push(
        &self,
        item: T,
        tenant: &str,
        priority: Priority,
        weight: f64,
    ) -> Result<(), QueueClosed<T>> {
        let mut state = self.inner.state.lock().expect("fair queue lock");
        loop {
            if state.closed {
                return Err(QueueClosed(item));
            }
            if state.len < self.inner.capacity {
                Self::enqueue(&mut state, item, tenant, priority, weight);
                self.inner.not_empty.notify_one();
                return Ok(());
            }
            state = self.inner.not_full.wait(state).expect("fair queue lock");
        }
    }

    /// Non-blocking enqueue: `Err(item)` when the queue is full or
    /// closed (the deterministic overload-shedding path — the caller
    /// turns the returned job into a structured rejection).
    pub fn try_push(
        &self,
        item: T,
        tenant: &str,
        priority: Priority,
        weight: f64,
    ) -> Result<(), T> {
        let mut state = self.inner.state.lock().expect("fair queue lock");
        if state.closed || state.len >= self.inner.capacity {
            return Err(item);
        }
        Self::enqueue(&mut state, item, tenant, priority, weight);
        self.inner.not_empty.notify_one();
        Ok(())
    }

    fn enqueue(state: &mut FairState<T>, item: T, tenant: &str, priority: Priority, weight: f64) {
        let virtual_clock = state.virtual_clock;
        let lane = state
            .lanes
            .entry(tenant.to_string())
            .or_insert_with(|| Lane {
                weight,
                vtime: virtual_clock,
                live: VecDeque::new(),
                replay: VecDeque::new(),
            });
        lane.weight = weight.max(f64::MIN_POSITIVE);
        lane.queue_mut(priority).push_back(item);
        state.len += 1;
    }

    /// The tenant lane the fair scheduler would serve next at `priority`,
    /// if any: smallest virtual time among lanes with queued work of that
    /// class, ties broken by tenant-name order (BTreeMap iteration).
    fn next_lane(state: &FairState<T>, priority: Priority) -> Option<String> {
        let mut best: Option<(&String, f64)> = None;
        for (name, lane) in &state.lanes {
            if lane.queue(priority).is_empty() {
                continue;
            }
            match best {
                Some((_, best_v)) if lane.vtime >= best_v => {}
                _ => best = Some((name, lane.vtime)),
            }
        }
        best.map(|(name, _)| name.clone())
    }

    fn dequeue(state: &mut FairState<T>) -> Option<T> {
        for priority in [Priority::Live, Priority::Replay] {
            if let Some(name) = Self::next_lane(state, priority) {
                let virtual_clock = state.virtual_clock;
                let lane = state.lanes.get_mut(&name).expect("selected lane exists");
                let item = lane.queue_mut(priority).pop_front().expect("non-empty");
                let scheduled = lane.vtime.max(virtual_clock);
                state.virtual_clock = scheduled;
                lane.vtime = scheduled + 1.0 / lane.weight;
                state.len -= 1;
                // Garbage-collect the lane once both classes are empty:
                // lanes used to persist for every tenant name ever seen,
                // which is an unbounded leak under campaign-scale tenant
                // churn. A tenant that returns later re-enters at the
                // current virtual clock — the same treatment as a brand-new
                // tenant, which is exactly what stride scheduling gives any
                // lane that was idle long enough for the clock to pass it.
                if lane.live.is_empty() && lane.replay.is_empty() {
                    state.lanes.remove(&name);
                }
                return Some(item);
            }
        }
        None
    }

    /// Dequeues the next job in fair order, blocking while the queue is
    /// empty. Returns `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("fair queue lock");
        loop {
            if let Some(item) = Self::dequeue(&mut state) {
                self.inner.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.inner.not_empty.wait(state).expect("fair queue lock");
        }
    }

    /// Dequeues with a bounded wait, so an idle worker can periodically
    /// go steal from backlogged sibling shards instead of blocking on
    /// its own intake forever.
    pub fn pop_timeout(&self, timeout: Duration) -> PopWait<T> {
        let deadline = Instant::now() + timeout;
        let mut state = self.inner.state.lock().expect("fair queue lock");
        loop {
            if let Some(item) = Self::dequeue(&mut state) {
                self.inner.not_full.notify_one();
                return PopWait::Item(item);
            }
            if state.closed {
                return PopWait::Drained;
            }
            let now = Instant::now();
            if now >= deadline {
                return PopWait::TimedOut;
            }
            let (guard, _result) = self
                .inner
                .not_empty
                .wait_timeout(state, deadline - now)
                .expect("fair queue lock");
            state = guard;
        }
    }

    /// Non-blocking fair dequeue — the work-stealing entry point.
    pub fn try_pop(&self) -> Option<T> {
        let mut state = self.inner.state.lock().expect("fair queue lock");
        let item = Self::dequeue(&mut state);
        if item.is_some() {
            self.inner.not_full.notify_one();
        }
        item
    }

    /// Closes the queue: pushes fail, queued jobs remain dequeuable, and
    /// every blocked producer/consumer wakes.
    pub fn close(&self) {
        let mut state = self.inner.state.lock().expect("fair queue lock");
        state.closed = true;
        self.inner.not_full.notify_all();
        self.inner.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tenant_single_class_is_fifo() {
        let q: FairQueue<usize> = FairQueue::bounded(8);
        for i in 0..5 {
            q.push(i, DEFAULT_TENANT, Priority::Replay, 1.0).unwrap();
        }
        for i in 0..5 {
            assert_eq!(q.try_pop(), Some(i));
        }
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn drained_tenant_lanes_are_garbage_collected() {
        let q: FairQueue<usize> = FairQueue::bounded(1024);
        // A campaign's worth of one-shot tenants, plus two that keep work
        // queued. Before lane GC every tenant name ever pushed left a
        // permanent lane behind.
        for i in 0..100 {
            q.push(i, &format!("one-shot-{i}"), Priority::Replay, 1.0)
                .unwrap();
        }
        q.push(1000, "steady-a", Priority::Live, 1.0).unwrap();
        q.push(1001, "steady-a", Priority::Replay, 1.0).unwrap();
        q.push(1002, "steady-b", Priority::Replay, 1.0).unwrap();
        assert_eq!(q.lane_count(), 102);
        // Drain the one-shots (live jobs dequeue first, then fair order
        // interleaves the rest) until only the steady tenants' backlog
        // remains: exactly their lanes must survive.
        while q.len() > 2 {
            assert!(q.try_pop().is_some());
        }
        assert_eq!(q.lane_count(), 2);
        // Full drain leaves no lanes at all.
        while q.try_pop().is_some() {}
        assert_eq!(q.lane_count(), 0);
        assert!(q.is_empty());
        // A returning tenant simply re-materializes its lane.
        q.push(7, "steady-a", Priority::Replay, 1.0).unwrap();
        assert_eq!(q.lane_count(), 1);
        assert_eq!(q.try_pop(), Some(7));
        assert_eq!(q.lane_count(), 0);
    }

    #[test]
    fn live_strictly_overtakes_replay() {
        let q: FairQueue<&'static str> = FairQueue::bounded(8);
        q.push("r1", "a", Priority::Replay, 1.0).unwrap();
        q.push("r2", "a", Priority::Replay, 1.0).unwrap();
        q.push("l1", "b", Priority::Live, 1.0).unwrap();
        q.push("l2", "a", Priority::Live, 1.0).unwrap();
        // Every live job first (fair across tenants), then the replays.
        assert_eq!(q.try_pop(), Some("l2"));
        assert_eq!(q.try_pop(), Some("l1"));
        assert_eq!(q.try_pop(), Some("r1"));
        assert_eq!(q.try_pop(), Some("r2"));
    }

    #[test]
    fn weighted_shares_hold_in_every_window() {
        let q: FairQueue<(&'static str, usize)> = FairQueue::bounded(256);
        // Tenant "heavy" (weight 3) and "light" (weight 1), both with 80
        // queued jobs: every window of 4 dequeues must contain 3 heavy +
        // 1 light once the schedule settles.
        for i in 0..80 {
            q.push(("heavy", i), "heavy", Priority::Replay, 3.0)
                .unwrap();
            q.push(("light", i), "light", Priority::Replay, 1.0)
                .unwrap();
        }
        let order: Vec<&'static str> = (0..80).map(|_| q.try_pop().unwrap().0).collect();
        for window in order.chunks(4) {
            let heavy = window.iter().filter(|t| **t == "heavy").count();
            assert_eq!(heavy, 3, "window {window:?} broke the 3:1 share");
        }
        // Per-tenant FIFO order is preserved inside the interleave.
        let mut heavy_seen = 0;
        for _ in 0..20 {
            if let Some(("heavy", i)) = q.try_pop() {
                assert_eq!(i, 60 + heavy_seen);
                heavy_seen += 1;
            }
        }
    }

    #[test]
    fn an_idle_tenant_cannot_bank_credit() {
        let q: FairQueue<&'static str> = FairQueue::bounded(64);
        // Tenant "a" runs alone for 10 jobs (virtual clock advances).
        for _ in 0..10 {
            q.push("a", "a", Priority::Replay, 1.0).unwrap();
            assert_eq!(q.try_pop(), Some("a"));
        }
        // Tenant "b" arrives late: its lane is clamped to the current
        // virtual clock, so it gets a fair *alternation*, not 10 jobs of
        // banked catch-up burst.
        for _ in 0..4 {
            q.push("a", "a", Priority::Replay, 1.0).unwrap();
            q.push("b", "b", Priority::Replay, 1.0).unwrap();
        }
        let order: Vec<&'static str> = (0..8).map(|_| q.try_pop().unwrap()).collect();
        for window in order.chunks(2) {
            assert!(
                window.contains(&"a") && window.contains(&"b"),
                "late tenant burst-captured the queue: {order:?}"
            );
        }
    }

    #[test]
    fn try_push_sheds_at_capacity_and_close_drains() {
        let q: FairQueue<usize> = FairQueue::bounded(2);
        assert!(q.try_push(1, "a", Priority::Replay, 1.0).is_ok());
        assert!(q.try_push(2, "b", Priority::Replay, 1.0).is_ok());
        assert_eq!(q.try_push(3, "c", Priority::Replay, 1.0), Err(3));
        q.close();
        assert_eq!(q.try_push(4, "a", Priority::Replay, 1.0), Err(4));
        assert!(matches!(
            q.push(5, "a", Priority::Replay, 1.0),
            Err(QueueClosed(5))
        ));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
        assert!(q.is_drained());
    }

    #[test]
    fn pop_timeout_distinguishes_empty_from_drained() {
        let q: FairQueue<usize> = FairQueue::bounded(2);
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            PopWait::TimedOut
        ));
        q.push(7, "a", Priority::Live, 1.0).unwrap();
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            PopWait::Item(7)
        ));
        q.close();
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(5)),
            PopWait::Drained
        ));
    }

    #[test]
    fn admission_buckets_enforce_burst_and_rate() {
        let registry = TenantRegistry::new();
        registry.configure(TenantConfig::limited("quota", 1.0, 0.0, 2.0));
        let now = Instant::now();
        // rate 0, burst 2: exactly two jobs ever.
        assert!(registry.admit("quota", now).is_ok());
        assert!(registry.admit("quota", now).is_ok());
        let denied = registry.admit("quota", now).unwrap_err();
        assert_eq!(
            denied,
            RejectReason::AdmissionDenied {
                tenant: "quota".into()
            }
        );
        // Refill at 10 jobs/s: 150 ms later one token is back.
        registry.configure(TenantConfig::limited("rate", 1.0, 10.0, 1.0));
        assert!(registry.admit("rate", now).is_ok());
        assert!(registry.admit("rate", now).is_err());
        assert!(registry
            .admit("rate", now + Duration::from_millis(150))
            .is_ok());
        // Unknown tenants are unlimited.
        for _ in 0..100 {
            assert!(registry.admit("unregistered", now).is_ok());
        }
        assert_eq!(registry.weight("unregistered"), 1.0);
    }
}
