//! A minimal futures-on-threads executor.
//!
//! The container this workspace builds in has no registry access, so
//! there is no tokio; what the serving layer actually needs from "async"
//! is small and is implemented here from the standard library alone:
//!
//! * [`block_on`] — drive any `Future` to completion on the current
//!   thread, parking between polls (the waker unparks). This is the whole
//!   "reactor": job completion is the only event source, and completions
//!   arrive from worker threads, so a thread-parking waker is exactly
//!   sufficient — no I/O polling loop to multiplex.
//! * `Completion` (crate-internal) — the one-shot future the workers
//!   resolve: a
//!   `Mutex`-guarded slot plus the list of wakers to notify, with a
//!   `Condvar` for synchronous waiters. `JobHandle` wraps one of these,
//!   which is what makes job handles awaitable.
//!
//! Everything is `unsafe`-free: the waker is built with the stable
//! [`std::task::Wake`] trait over `Arc`, not a hand-rolled vtable.

use std::future::Future;
use std::pin::pin;
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};
use std::thread::Thread;

/// Unparks the thread that is blocked inside [`block_on`].
struct ThreadWaker(Thread);

impl Wake for ThreadWaker {
    fn wake(self: Arc<Self>) {
        self.0.unpark();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.0.unpark();
    }
}

/// Drives a future to completion on the current thread.
///
/// Polls once, and whenever the future is pending, parks until the
/// future's waker fires (spurious unparks merely cause a harmless
/// re-poll). Use it to wait for a submitted job from synchronous code:
///
/// ```
/// use uw_serve::executor::block_on;
///
/// // Any future works, not just job handles.
/// assert_eq!(block_on(async { 6 * 7 }), 42);
/// ```
pub fn block_on<F: Future>(future: F) -> F::Output {
    let waker = Waker::from(Arc::new(ThreadWaker(std::thread::current())));
    let mut context = Context::from_waker(&waker);
    let mut future = pin!(future);
    loop {
        match future.as_mut().poll(&mut context) {
            Poll::Ready(value) => return value,
            Poll::Pending => std::thread::park(),
        }
    }
}

struct CompletionState<T> {
    value: Option<T>,
    wakers: Vec<Waker>,
}

/// A one-shot value set exactly once by a worker and observable both
/// asynchronously (via [`Completion::poll_value`], used by `JobHandle`'s
/// `Future` impl) and synchronously (via [`Completion::wait`]).
pub(crate) struct Completion<T> {
    state: Mutex<CompletionState<T>>,
    ready: Condvar,
}

impl<T: Clone> Completion<T> {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(CompletionState {
                value: None,
                wakers: Vec::new(),
            }),
            ready: Condvar::new(),
        }
    }

    /// Resolves the completion, waking every registered waker and every
    /// synchronous waiter. Later calls are ignored (first value wins).
    pub(crate) fn set(&self, value: T) {
        let wakers = {
            let mut state = self.state.lock().expect("completion lock");
            if state.value.is_some() {
                return;
            }
            state.value = Some(value);
            std::mem::take(&mut state.wakers)
        };
        self.ready.notify_all();
        for waker in wakers {
            waker.wake();
        }
    }

    /// Non-blocking poll: returns the value if resolved, otherwise
    /// registers the context's waker for the eventual [`Completion::set`].
    pub(crate) fn poll_value(&self, cx: &mut Context<'_>) -> Poll<T> {
        let mut state = self.state.lock().expect("completion lock");
        match &state.value {
            Some(value) => Poll::Ready(value.clone()),
            None => {
                let waker = cx.waker();
                if !state.wakers.iter().any(|w| w.will_wake(waker)) {
                    state.wakers.push(waker.clone());
                }
                Poll::Pending
            }
        }
    }

    /// Blocks the calling thread until the completion resolves.
    pub(crate) fn wait(&self) -> T {
        let mut state = self.state.lock().expect("completion lock");
        loop {
            if let Some(value) = &state.value {
                return value.clone();
            }
            state = self.ready.wait(state).expect("completion lock");
        }
    }

    /// Whether the completion has resolved.
    pub(crate) fn is_set(&self) -> bool {
        self.state.lock().expect("completion lock").value.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// A future resolved by a `Completion`, mirroring how `JobHandle`
    /// wraps one.
    struct CompletionFuture(Arc<Completion<u32>>);

    impl Future for CompletionFuture {
        type Output = u32;
        fn poll(self: std::pin::Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<u32> {
            self.0.poll_value(cx)
        }
    }

    #[test]
    fn block_on_ready_future() {
        assert_eq!(block_on(async { 1 + 2 }), 3);
    }

    #[test]
    fn block_on_wakes_for_cross_thread_completion() {
        let completion = Arc::new(Completion::new());
        let setter = Arc::clone(&completion);
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            setter.set(7);
        });
        assert_eq!(block_on(CompletionFuture(Arc::clone(&completion))), 7);
        worker.join().unwrap();
        // A second await sees the same value (completions are one-shot).
        assert_eq!(block_on(CompletionFuture(completion)), 7);
    }

    #[test]
    fn wait_blocks_until_set_and_first_value_wins() {
        let completion = Arc::new(Completion::new());
        assert!(!completion.is_set());
        let setter = Arc::clone(&completion);
        let worker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            setter.set(1);
            setter.set(2); // ignored
        });
        assert_eq!(completion.wait(), 1);
        worker.join().unwrap();
        assert_eq!(completion.wait(), 1);
        assert!(completion.is_set());
    }
}
