//! TCP front end: the wire protocol served over `std::net`.
//!
//! One acceptor thread listens; each connection gets a **reader** thread
//! (decodes frames, submits jobs into the shared sharded [`Server`]) and
//! a **writer** thread (drains a bounded per-connection outbound queue to
//! the socket). Every job submitted over a connection carries a per-job
//! event sink that translates its [`CellUpdate`]s into wire frames and
//! pushes them into that connection's outbound queue — so:
//!
//! * events never touch the server-wide [`crate::UpdateStream`] (which
//!   nothing drains in a TCP deployment), and
//! * the outbound queue is *bounded*: a client that reads slowly fills
//!   its own queue, which blocks the sink, which stalls only the shards
//!   currently running *that connection's* jobs. Slow consumers throttle
//!   themselves; they cannot make the server buffer unboundedly. This is
//!   also exactly the I/O-wait regime the contention bench measures.
//!
//! Protocol per connection: the client sends `Hello` (answered by
//! `HelloAck` with the server's version and payload cap), any number of
//! pipelined `Submit`/`Cancel` frames, then `Goodbye`; the server
//! finishes every in-flight job, flushes the remaining events and closes
//! the socket. A frame with the wrong version or a malformed payload is
//! answered with a `ProtocolError` frame and the connection closes —
//! see `docs/SERVING.md` for the full state machine.

use crate::job::{CellUpdate, JobHandle};
use crate::queue::JobQueue;
use crate::server::{ServeConfig, Server, ShardStats, SubmitOptions, UpdateStream};
use crate::tenant::Priority;
use crate::wire::{
    encode_frame, FrameReader, JobSpec, WireError, WireMessage, MAX_PAYLOAD, WIRE_VERSION,
};
use crate::LocalizationJob;
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Tuning of the TCP front end.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// The worker pool behind the listener.
    pub serve: ServeConfig,
    /// Capacity of each connection's outbound event queue. Small values
    /// couple job execution tightly to the client's read rate (useful
    /// for contention benchmarks); large values absorb bursts. Clamped
    /// to ≥ 1.
    pub conn_queue: usize,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            serve: ServeConfig::default(),
            conn_queue: 256,
        }
    }
}

/// Per-connection bookkeeping shared between the reader thread and the
/// job sinks: how many jobs were submitted and how many have reached a
/// terminal event, so `Goodbye` can wait for the difference to hit zero.
struct ConnProgress {
    counts: Mutex<(usize, usize)>, // (submitted, terminal)
    done: Condvar,
}

impl ConnProgress {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            counts: Mutex::new((0, 0)),
            done: Condvar::new(),
        })
    }

    fn submitted(&self) {
        self.counts.lock().expect("conn progress").0 += 1;
    }

    fn terminal(&self) {
        let mut counts = self.counts.lock().expect("conn progress");
        counts.1 += 1;
        if counts.1 >= counts.0 {
            self.done.notify_all();
        }
    }

    fn wait_drained(&self) {
        let mut counts = self.counts.lock().expect("conn progress");
        while counts.1 < counts.0 {
            counts = self.done.wait(counts).expect("conn progress");
        }
    }
}

/// The serving layer's TCP front end: an acceptor plus per-connection
/// reader/writer threads over a shared sharded [`Server`].
pub struct TcpServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    peers: Arc<Mutex<Vec<TcpStream>>>,
    server: Option<Arc<Server>>,
    updates: Option<UpdateStream>,
}

impl TcpServer {
    /// Binds the listener and spawns the acceptor and the worker pool.
    /// Bind to port 0 to let the OS pick (see [`TcpServer::local_addr`]).
    pub fn bind<A: ToSocketAddrs>(addr: A, config: TcpConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let (server, updates) = Server::start(config.serve.clone());
        let server = Arc::new(server);
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
            Arc::new(Mutex::new(Vec::new()));
        let peers: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));

        let acceptor = {
            let server = Arc::clone(&server);
            let shutdown = Arc::clone(&shutdown);
            let connections = Arc::clone(&connections);
            let peers = Arc::clone(&peers);
            let conn_queue = config.conn_queue.max(1);
            std::thread::Builder::new()
                .name("uw-serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if shutdown.load(Ordering::Acquire) {
                            break;
                        }
                        let Ok(stream) = stream else { continue };
                        let _ = stream.set_nodelay(true);
                        if let Ok(peer) = stream.try_clone() {
                            peers.lock().expect("peer list").push(peer);
                        }
                        let server = Arc::clone(&server);
                        let handle = std::thread::Builder::new()
                            .name("uw-serve-conn".into())
                            .spawn(move || serve_connection(stream, server, conn_queue))
                            .expect("spawn connection");
                        connections.lock().expect("connection list").push(handle);
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Self {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
            connections,
            peers,
            server: Some(server),
            updates: Some(updates),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Installs a tenant's admission/fair-share configuration on the
    /// underlying pool.
    pub fn configure_tenant(&self, config: crate::tenant::TenantConfig) {
        if let Some(server) = &self.server {
            server.configure_tenant(config);
        }
    }

    /// Registers an imported field-recording campaign on the underlying
    /// pool so wire jobs can reference it by name (see
    /// [`crate::server::Server::register_recording`]). Returns the
    /// registered name, or `None` after shutdown.
    pub fn register_recording(
        &self,
        name: &str,
        campaign: std::sync::Arc<uw_eval::ImportedCampaign>,
    ) -> Option<String> {
        self.server
            .as_ref()
            .map(|server| server.register_recording(name, campaign))
    }

    /// Stops accepting, severs remaining connections, drains the worker
    /// pool and returns its per-shard counters. Clients that already
    /// sent `Goodbye` and read to EOF are unaffected; connections still
    /// open are closed abruptly (their queued jobs still run to
    /// completion server-side, events are discarded).
    pub fn shutdown(mut self) -> Vec<ShardStats> {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> Vec<ShardStats> {
        self.shutdown.store(true, Ordering::Release);
        // Wake the blocked accept() with a dummy connection.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Sever lingering peers so their reader threads observe EOF.
        for peer in self.peers.lock().expect("peer list").drain(..) {
            let _ = peer.shutdown(Shutdown::Both);
        }
        let handles: Vec<_> = self
            .connections
            .lock()
            .expect("connection list")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
        drop(self.updates.take());
        match self.server.take() {
            Some(server) => match Arc::try_unwrap(server) {
                Ok(server) => server.shutdown(),
                // Unreachable in practice: every holder was joined above.
                Err(_) => Vec::new(),
            },
            None => Vec::new(),
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        if self.server.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Translates a job's [`CellUpdate`] into the wire event carrying the
/// client's correlation tag.
fn update_to_wire(tag: u64, update: CellUpdate) -> WireMessage {
    match update {
        CellUpdate::CellStarted {
            cell_id, rounds, ..
        } => WireMessage::Started {
            tag,
            cell_id,
            rounds: rounds as u64,
        },
        CellUpdate::RoundCompleted {
            cell_id, summary, ..
        } => WireMessage::Round {
            tag,
            cell_id,
            summary,
        },
        CellUpdate::CellFinalized { report, .. } => WireMessage::Finalized { tag, report },
        CellUpdate::JobCancelled { partial, .. } => WireMessage::Cancelled { tag, partial },
        CellUpdate::JobFailed {
            cell_id, reason, ..
        } => WireMessage::Failed {
            tag,
            cell_id,
            reason,
        },
        CellUpdate::JobRejected {
            cell_id,
            tenant,
            reason,
            ..
        } => WireMessage::Rejected {
            tag,
            cell_id,
            tenant,
            reason,
        },
    }
}

/// One connection's reader loop (runs on the connection thread; the
/// paired writer thread drains `outbound` to the socket).
fn serve_connection(stream: TcpStream, server: Arc<Server>, conn_queue: usize) {
    let outbound: JobQueue<WireMessage> = JobQueue::bounded(conn_queue);
    let writer = {
        let outbound = outbound.clone();
        let stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        std::thread::Builder::new()
            .name("uw-serve-conn-writer".into())
            .spawn(move || write_loop(stream, outbound))
            .expect("spawn connection writer")
    };

    let progress = ConnProgress::new();
    let mut handles: HashMap<u64, JobHandle> = HashMap::new();
    let mut reader = FrameReader::new(stream);
    loop {
        match reader.read_message() {
            Ok(Some(WireMessage::Hello { .. })) => {
                let _ = outbound.push(WireMessage::HelloAck {
                    version: WIRE_VERSION,
                    max_payload: MAX_PAYLOAD,
                });
            }
            Ok(Some(WireMessage::Submit {
                tag,
                tenant,
                priority,
                deadline_ms,
                spec,
            })) => {
                submit_wire_job(
                    &server,
                    &outbound,
                    &progress,
                    &mut handles,
                    tag,
                    tenant,
                    priority,
                    deadline_ms,
                    &spec,
                );
            }
            Ok(Some(WireMessage::Cancel { tag })) => {
                if let Some(handle) = handles.get(&tag) {
                    handle.cancel();
                }
            }
            Ok(Some(WireMessage::Goodbye)) | Ok(None) => break,
            Ok(Some(_)) => {
                // A server→client message arriving at the server is a
                // protocol violation.
                let _ = outbound.push(WireMessage::ProtocolError {
                    message: "unexpected server-side message".into(),
                });
                break;
            }
            Err(e) => {
                let _ = outbound.push(WireMessage::ProtocolError {
                    message: e.to_string(),
                });
                break;
            }
        }
    }
    // Let every in-flight job reach its terminal event (each pushes into
    // `outbound` through its sink), then close the queue so the writer
    // flushes the tail and exits.
    progress.wait_drained();
    outbound.close();
    let _ = writer.join();
}

/// Decodes a `Submit` into a server job with a per-connection sink.
#[allow(clippy::too_many_arguments)]
fn submit_wire_job(
    server: &Arc<Server>,
    outbound: &JobQueue<WireMessage>,
    progress: &Arc<ConnProgress>,
    handles: &mut HashMap<u64, JobHandle>,
    tag: u64,
    tenant: String,
    priority: Priority,
    deadline_ms: Option<u64>,
    spec: &JobSpec,
) {
    let cell = match server.resolve_spec(spec) {
        Ok(cell) => cell,
        Err(e) => {
            // An unexpandable spec fails before it becomes a job.
            let _ = outbound.push(WireMessage::Failed {
                tag,
                cell_id: String::new(),
                reason: e.to_string(),
            });
            return;
        }
    };
    progress.submitted();
    let sink_queue = outbound.clone();
    let sink_progress = Arc::clone(progress);
    let options = SubmitOptions {
        tenant: Some(tenant),
        priority,
        deadline: deadline_ms.map(Duration::from_millis),
        overload: Default::default(),
        events: Some(Arc::new(move |update: CellUpdate| {
            let is_terminal = update.is_terminal();
            // A severed connection closes the queue; the job still runs,
            // its events just have nowhere to go.
            let _ = sink_queue.push(update_to_wire(tag, update));
            if is_terminal {
                sink_progress.terminal();
            }
        })),
    };
    let handle = server.submit_with(LocalizationJob::Cell(cell), options);
    handles.insert(tag, handle);
}

/// Connection writer: pops wire messages and writes frames. On a write
/// error it keeps draining (and discarding) so job sinks never block on
/// a dead socket.
fn write_loop(mut stream: TcpStream, outbound: JobQueue<WireMessage>) {
    let mut broken = false;
    while let Some(msg) = outbound.pop() {
        if broken {
            continue;
        }
        let frame = encode_frame(&msg);
        if stream
            .write_all(&frame)
            .and_then(|_| stream.flush())
            .is_err()
        {
            broken = true;
        }
    }
    let _ = stream.shutdown(Shutdown::Write);
}

/// The sending half of a split [`TcpClient`].
pub struct ClientSender {
    stream: TcpStream,
}

impl ClientSender {
    /// Sends one message as a frame.
    pub fn send(&mut self, msg: &WireMessage) -> Result<(), WireError> {
        let frame = encode_frame(msg);
        self.stream.write_all(&frame)?;
        self.stream.flush()?;
        Ok(())
    }
}

/// The receiving half of a split [`TcpClient`].
pub struct ClientReceiver {
    reader: FrameReader<TcpStream>,
}

impl ClientReceiver {
    /// Reads the next server message; `Ok(None)` once the server has
    /// closed the stream.
    pub fn recv(&mut self) -> Result<Option<WireMessage>, WireError> {
        self.reader.read_message()
    }
}

/// A blocking wire-protocol client. For pipelined use (submit while
/// reading events) split it into its two halves and drive them from
/// separate threads — [`TcpClient::split`].
pub struct TcpClient {
    sender: ClientSender,
    receiver: ClientReceiver,
}

impl TcpClient {
    /// Connects to a [`TcpServer`].
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self {
            sender: ClientSender { stream },
            receiver: ClientReceiver {
                reader: FrameReader::new(read_half),
            },
        })
    }

    /// Sends `Hello` and waits for the `HelloAck`, returning the
    /// server's `(version, max_payload)`.
    pub fn hello(&mut self, client: &str) -> Result<(u16, u32), WireError> {
        self.send(&WireMessage::Hello {
            client: client.to_string(),
        })?;
        match self.recv()? {
            Some(WireMessage::HelloAck {
                version,
                max_payload,
            }) => Ok((version, max_payload)),
            Some(WireMessage::ProtocolError { .. }) | None => Err(WireError::Malformed {
                context: "handshake refused",
            }),
            Some(_) => Err(WireError::Malformed {
                context: "unexpected handshake reply",
            }),
        }
    }

    /// Sends one message.
    pub fn send(&mut self, msg: &WireMessage) -> Result<(), WireError> {
        self.sender.send(msg)
    }

    /// Reads the next server message; `Ok(None)` at EOF.
    pub fn recv(&mut self) -> Result<Option<WireMessage>, WireError> {
        self.receiver.recv()
    }

    /// Splits into independently-owned send/receive halves (separate
    /// threads can then pipeline submissions against event reads).
    pub fn split(self) -> (ClientSender, ClientReceiver) {
        (self.sender, self.receiver)
    }
}
