//! Jobs, job handles and the streamed `CellUpdate` events.

use crate::executor::Completion;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Context, Poll};
use uw_core::prelude::Scenario;
use uw_eval::runner::RoundSummary;
use uw_eval::{CellReport, EvalCell};

/// Identifier of a submitted job, assigned monotonically at submission.
/// Ordering job ids recovers submission order, which is how the sink
/// merges out-of-order shard completions back into a deterministic report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// A unit of localization work accepted by the server.
#[derive(Debug, Clone)]
pub enum LocalizationJob {
    /// One expanded matrix cell, run for its configured number of rounds.
    Cell(EvalCell),
    /// An ad-hoc [`Scenario`] run for a fixed number of rounds (wrapped
    /// into a cell via [`EvalCell::from_scenario`]).
    Scenario {
        /// The deployment to localize.
        scenario: Scenario,
        /// Localization rounds to run.
        rounds: usize,
    },
    /// A repeated-session stream: rounds arrive continuously (as in the
    /// companion ranging/messaging systems) until `max_rounds` or
    /// cancellation — cancellation is the *expected* way such a stream
    /// ends, and still finalizes partial statistics.
    Stream {
        /// The deployment to localize.
        scenario: Scenario,
        /// Upper bound on rounds (a safety stop for unattended streams).
        max_rounds: usize,
    },
}

/// Why the server refused to run a job. Rejections are *structured* —
/// clients and sinks can tell an admission-control denial (retry later,
/// slower) from a deadline miss (the answer is stale, don't retry) from
/// overload shedding (the cluster is saturated, back off) without
/// parsing strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's token bucket was empty at submission: the tenant is
    /// over its configured rate/burst. The job never entered a queue.
    AdmissionDenied {
        /// The throttled tenant.
        tenant: String,
    },
    /// The job's deadline passed while it was still queued. A worker
    /// dequeued it, observed the expiry and shed it without running a
    /// single round — a dead job never occupies a shard.
    DeadlineExpired {
        /// How far past the deadline it was when shed, in milliseconds.
        late_ms: u64,
    },
    /// The target queue was full and the job was submitted with
    /// [`crate::server::OverloadPolicy::Shed`]: deterministic load
    /// shedding instead of blocking backpressure.
    Overloaded {
        /// Jobs queued at the moment of rejection.
        queued: usize,
        /// The queue's capacity.
        capacity: usize,
    },
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::AdmissionDenied { tenant } => {
                write!(f, "admission denied: tenant {tenant} over rate limit")
            }
            RejectReason::DeadlineExpired { late_ms } => {
                write!(f, "deadline expired {late_ms} ms before a shard was free")
            }
            RejectReason::Overloaded { queued, capacity } => {
                write!(f, "overloaded: {queued}/{capacity} jobs queued")
            }
        }
    }
}

impl LocalizationJob {
    /// The cell id / scenario name this job will report under.
    pub fn cell_id(&self) -> &str {
        match self {
            LocalizationJob::Cell(cell) => &cell.id,
            LocalizationJob::Scenario { scenario, .. }
            | LocalizationJob::Stream { scenario, .. } => scenario.name(),
        }
    }

    /// Converts the job into the cell the execution core runs.
    pub(crate) fn into_cell(self) -> EvalCell {
        match self {
            LocalizationJob::Cell(cell) => cell,
            LocalizationJob::Scenario { scenario, rounds } => {
                EvalCell::from_scenario(scenario, rounds)
            }
            LocalizationJob::Stream {
                scenario,
                max_rounds,
            } => EvalCell::from_scenario(scenario, max_rounds),
        }
    }
}

/// One event of a job's progress stream.
///
/// Every job emits `CellStarted`, then one `RoundCompleted` per round,
/// then exactly one terminal event (`CellFinalized`, `JobCancelled`,
/// `JobFailed` or `JobRejected` — a rejected job emits *only* the
/// rejection). Events of a single job are totally ordered; events of
/// different jobs interleave arbitrarily (shards complete out of order —
/// the [`crate::sink::ReportBuilder`] restores submission order).
///
/// ```
/// use uw_serve::CellUpdate;
/// use uw_serve::job::JobId;
///
/// # fn classify(update: &CellUpdate) -> &'static str {
/// match update {
///     CellUpdate::CellStarted { .. } => "started",
///     CellUpdate::RoundCompleted { .. } => "round",
///     CellUpdate::CellFinalized { .. } => "done",
///     CellUpdate::JobCancelled { .. } => "cancelled",
///     CellUpdate::JobFailed { .. } => "failed",
///     CellUpdate::JobRejected { .. } => "rejected",
/// }
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum CellUpdate {
    /// A worker picked the job up and is about to run its first round.
    CellStarted {
        /// The job.
        job: JobId,
        /// Cell id it reports under.
        cell_id: String,
        /// Rounds the job is configured to run.
        rounds: usize,
    },
    /// One localization round finished (successfully or not — see
    /// [`RoundSummary::ok`]).
    RoundCompleted {
        /// The job.
        job: JobId,
        /// Cell id it reports under.
        cell_id: String,
        /// What the round produced.
        summary: RoundSummary,
    },
    /// Every round ran; the cell's statistics are final.
    CellFinalized {
        /// The job.
        job: JobId,
        /// The finalized per-cell report (identical to the batch runner's).
        report: CellReport,
    },
    /// The job was cancelled; `partial` aggregates the rounds that ran
    /// before cancellation took effect (possibly zero).
    JobCancelled {
        /// The job.
        job: JobId,
        /// Statistics over the rounds that completed before cancellation.
        partial: CellReport,
    },
    /// The job could not run (e.g. an invalid scenario configuration).
    JobFailed {
        /// The job.
        job: JobId,
        /// Cell id it reports under.
        cell_id: String,
        /// Why it failed.
        reason: String,
    },
    /// The server refused to run the job (admission control, deadline
    /// expiry, or overload shedding). Emitted as the job's *only* event:
    /// a rejected job never starts, so there is no `CellStarted` before
    /// it and no rounds after.
    JobRejected {
        /// The job.
        job: JobId,
        /// Cell id it would have reported under.
        cell_id: String,
        /// The tenant that submitted it.
        tenant: String,
        /// The structured rejection.
        reason: RejectReason,
    },
}

impl CellUpdate {
    /// The job this event belongs to.
    pub fn job(&self) -> JobId {
        match self {
            CellUpdate::CellStarted { job, .. }
            | CellUpdate::RoundCompleted { job, .. }
            | CellUpdate::CellFinalized { job, .. }
            | CellUpdate::JobCancelled { job, .. }
            | CellUpdate::JobFailed { job, .. }
            | CellUpdate::JobRejected { job, .. } => *job,
        }
    }

    /// Whether this is a job's terminal event (finalized / cancelled /
    /// failed / rejected — exactly one per job).
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            CellUpdate::CellFinalized { .. }
                | CellUpdate::JobCancelled { .. }
                | CellUpdate::JobFailed { .. }
                | CellUpdate::JobRejected { .. }
        )
    }
}

/// How a job ended.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutcome {
    /// All rounds ran; the report is complete.
    Completed(CellReport),
    /// Cancelled mid-cell; the report covers the rounds that ran.
    Cancelled(CellReport),
    /// The job never produced a report.
    Failed(String),
    /// The server refused to run the job (see [`RejectReason`]); not a
    /// single round ran.
    Rejected(RejectReason),
}

impl JobOutcome {
    /// The report, if the job produced one (complete or partial).
    pub fn report(&self) -> Option<&CellReport> {
        match self {
            JobOutcome::Completed(r) | JobOutcome::Cancelled(r) => Some(r),
            JobOutcome::Failed(_) | JobOutcome::Rejected(_) => None,
        }
    }

    /// Whether the job ran every requested round.
    pub fn is_completed(&self) -> bool {
        matches!(self, JobOutcome::Completed(_))
    }
}

/// Shared state between a [`JobHandle`] and the worker running the job.
pub(crate) struct JobState {
    cancelled: AtomicBool,
    outcome: Completion<JobOutcome>,
}

impl JobState {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self {
            cancelled: AtomicBool::new(false),
            outcome: Completion::new(),
        })
    }

    pub(crate) fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    pub(crate) fn complete(&self, outcome: JobOutcome) {
        self.outcome.set(outcome);
    }
}

/// A handle to a submitted job: cancel it, block on it, or `.await` it
/// (the handle is a `Future` resolved by the worker through the
/// hand-rolled executor — see [`crate::executor::block_on`]).
pub struct JobHandle {
    id: JobId,
    cell_id: String,
    state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new(id: JobId, cell_id: String, state: Arc<JobState>) -> Self {
        Self { id, cell_id, state }
    }

    /// The job's id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The cell id the job reports under.
    pub fn cell_id(&self) -> &str {
        &self.cell_id
    }

    /// Requests cooperative cancellation. The worker observes the flag
    /// between rounds: the in-flight round always finishes, later rounds
    /// do not start, and the job resolves to [`JobOutcome::Cancelled`]
    /// with the partial statistics. Cancelling a job that already
    /// finished — or one still queued — is safe; a queued job is dropped
    /// when a worker dequeues it.
    pub fn cancel(&self) {
        self.state.cancelled.store(true, Ordering::Release);
    }

    /// Whether the job has resolved.
    pub fn is_finished(&self) -> bool {
        self.state.outcome.is_set()
    }

    /// Blocks the calling thread until the job resolves.
    pub fn wait(&self) -> JobOutcome {
        self.state.outcome.wait()
    }
}

impl Future for JobHandle {
    type Output = JobOutcome;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<JobOutcome> {
        self.state.outcome.poll_value(cx)
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("cell_id", &self.cell_id)
            .field("finished", &self.is_finished())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_ids_order_by_submission() {
        assert!(JobId(1) < JobId(2));
        assert_eq!(JobId(3).to_string(), "job-3");
    }

    #[test]
    fn jobs_expose_their_cell_id() {
        let scenario = Scenario::dock_five_devices(1);
        let name = scenario.name().to_string();
        let job = LocalizationJob::Scenario {
            scenario,
            rounds: 3,
        };
        assert_eq!(job.cell_id(), name);
        let cell = job.into_cell();
        assert_eq!(cell.rounds, 3);
        assert_eq!(cell.n_devices, 5);
    }

    #[test]
    fn handles_resolve_through_the_shared_state() {
        let state = JobState::new();
        let handle = JobHandle::new(JobId(1), "x".into(), Arc::clone(&state));
        assert!(!handle.is_finished());
        handle.cancel();
        assert!(state.is_cancelled());
        state.complete(JobOutcome::Failed("nope".into()));
        assert!(handle.is_finished());
        assert_eq!(handle.wait(), JobOutcome::Failed("nope".into()));
        assert_eq!(
            crate::executor::block_on(handle),
            JobOutcome::Failed("nope".into())
        );
    }
}
