//! The versioned binary wire format of the serving layer.
//!
//! The vendored serde is a no-op, so — like replay's `uwRD` chunk format —
//! the protocol is an explicit hand-rolled codec. Every message travels in
//! one length-prefixed frame:
//!
//! | offset | size | field   | contents                                  |
//! |-------:|-----:|---------|-------------------------------------------|
//! |      0 |    4 | magic   | `b"UWLZ"`                                 |
//! |      4 |    2 | version | [`WIRE_VERSION`], little-endian           |
//! |      6 |    1 | tag     | message type (see the `tag_` constants)   |
//! |      7 |    1 | flags   | reserved, must be 0                       |
//! |      8 |    4 | length  | payload length in bytes, little-endian    |
//! |     12 |  `n` | payload | message-specific fields                   |
//! | 12+`n` |    4 | crc32   | IEEE CRC-32 of bytes `0..12+n`, LE        |
//!
//! Integers are little-endian; `f64` values travel as their raw IEEE-754
//! bit patterns ([`f64::to_bits`]), so a decoded report is *bit-identical*
//! to the encoded one — NaNs included — which is what lets the TCP path
//! reproduce the batch runner's `EvalReport` JSON byte for byte. Strings
//! are a `u32` length followed by UTF-8 bytes.
//!
//! Defensive decoding: the payload length is validated against
//! [`MAX_PAYLOAD`] *before* any allocation, every inner length (strings,
//! CDF vectors) is checked against the bytes actually remaining, the CRC
//! is verified before the payload is interpreted, and trailing payload
//! bytes are an error. Malformed input of any shape yields a structured
//! [`WireError`], never a panic.
//!
//! Version negotiation: a frame whose version field differs from
//! [`WIRE_VERSION`] decodes to [`WireError::UnsupportedVersion`] — the
//! server answers with a [`WireMessage::ProtocolError`] frame (encoded at
//! *its* version) and closes; [`WireMessage::HelloAck`] tells a client the
//! server's version and payload cap up front.
//!
//! Jobs travel as declarative [`JobSpec`] matrix coordinates, not as
//! serialized scenarios: the server re-expands the spec through a
//! single-entry [`ScenarioMatrix`], which reproduces the exact cell —
//! same id, same RNG seeding, same churn clamping — the submitter's own
//! expansion would have built. Ad-hoc scenario jobs and replay cells
//! (which carry decoded audio) are deliberately not wire-transportable.

use crate::job::RejectReason;
use crate::tenant::Priority;
use std::io::Read;
use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::{EnvironmentKind, FaultSchedule};
use uw_eval::report::ErrorSummary;
use uw_eval::runner::RoundSummary;
use uw_eval::{CellReport, EvalCell, LinkProfile, MobilityProfile, ScenarioMatrix, Topology};

/// Frame magic: the first four bytes of every frame.
pub const WIRE_MAGIC: [u8; 4] = *b"UWLZ";
/// Protocol version this build speaks (frame header field).
pub const WIRE_VERSION: u16 = 1;
/// Hard cap on a frame's payload length, enforced *before* allocation.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Fixed frame-header length (magic + version + tag + flags + length).
pub const HEADER_LEN: usize = 12;
/// CRC trailer length.
pub const TRAILER_LEN: usize = 4;

// Message type tags. Client → server messages use the low range,
// server → client the high range; 0xFE is the shared protocol-error tag.
const TAG_HELLO: u8 = 0x01;
const TAG_SUBMIT: u8 = 0x02;
const TAG_CANCEL: u8 = 0x03;
const TAG_GOODBYE: u8 = 0x04;
const TAG_HELLO_ACK: u8 = 0x81;
const TAG_STARTED: u8 = 0x82;
const TAG_ROUND: u8 = 0x83;
const TAG_FINALIZED: u8 = 0x84;
const TAG_CANCELLED: u8 = 0x85;
const TAG_FAILED: u8 = 0x86;
const TAG_REJECTED: u8 = 0x87;
const TAG_PROTOCOL_ERROR: u8 = 0xFE;

/// Structured decode/transport errors. Every way a byte stream can be
/// wrong maps to exactly one variant — the adversarial-input suite in
/// `crates/serve/tests/wire_fuzz.rs` pins that mapping.
#[derive(Debug)]
pub enum WireError {
    /// The buffer ends mid-frame; more bytes may complete it.
    Truncated,
    /// The first four bytes are not [`WIRE_MAGIC`].
    BadMagic {
        /// The bytes found instead.
        got: [u8; 4],
    },
    /// The frame's version field differs from [`WIRE_VERSION`].
    UnsupportedVersion {
        /// The version the peer sent.
        got: u16,
    },
    /// The frame's type tag names no known message.
    UnknownTag {
        /// The unknown tag.
        tag: u8,
    },
    /// The CRC trailer does not match the frame bytes.
    CrcMismatch {
        /// CRC in the frame trailer.
        got: u32,
        /// CRC computed over the received bytes.
        want: u32,
    },
    /// The length prefix exceeds [`MAX_PAYLOAD`]; nothing was allocated.
    Oversized {
        /// The advertised payload length.
        len: u32,
        /// The enforced cap.
        max: u32,
    },
    /// The payload's internal structure is invalid (short field, bad
    /// UTF-8, trailing bytes, out-of-range enum code, …).
    Malformed {
        /// What was being decoded when the payload ran out of shape.
        context: &'static str,
    },
    /// The underlying transport failed.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadMagic { got } => write!(f, "bad magic {got:02x?}"),
            WireError::UnsupportedVersion { got } => {
                write!(
                    f,
                    "unsupported wire version {got} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::UnknownTag { tag } => write!(f, "unknown message tag 0x{tag:02x}"),
            WireError::CrcMismatch { got, want } => {
                write!(f, "crc mismatch: frame says {got:08x}, computed {want:08x}")
            }
            WireError::Oversized { len, max } => {
                write!(f, "payload length {len} exceeds cap {max}")
            }
            WireError::Malformed { context } => write!(f, "malformed payload: {context}"),
            WireError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            WireError::Truncated
        } else {
            WireError::Io(e)
        }
    }
}

/// IEEE CRC-32 (reflected polynomial 0xEDB88320), bitwise — frames are
/// small enough that a lookup table would be vanity.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Declarative coordinates of one matrix cell — the wire representation
/// of a localization job. [`JobSpec::to_cell`] re-expands it server-side
/// through a single-entry [`ScenarioMatrix`], reproducing the exact cell
/// (id, RNG seeding, churn clamping, fault slug) the submitter's own
/// expansion would build.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Environment preset.
    pub environment: EnvironmentKind,
    /// Group size.
    pub n_devices: u32,
    /// Link condition.
    pub condition: LinkProfile,
    /// Mobility profile.
    pub mobility: MobilityProfile,
    /// Numeric path of the waveform-level DSP.
    pub numeric_path: NumericPath,
    /// Physical-layer fidelity.
    pub fidelity: Fidelity,
    /// RNG seed.
    pub seed: u64,
    /// Rounds to run.
    pub rounds: u32,
    /// Canonical [`FaultSchedule`] spec string, if the cell is faulted.
    pub faults: Option<String>,
    /// Name of a server-registered imported campaign
    /// ([`uw_eval::ImportedCampaign`]) to run the job against instead of
    /// the simulator. Recorded audio itself never travels over the wire —
    /// the server resolves the name in its recording registry
    /// ([`crate::server::Server::register_recording`]) and rejects jobs
    /// naming an unknown recording. When set, `environment`, `n_devices`,
    /// `condition`, `mobility`, `seed` and `rounds` must match the
    /// campaign manifest; only `numeric_path` selects among the
    /// campaign's cells.
    pub recording: Option<String>,
}

impl JobSpec {
    /// Extracts the wire spec from a matrix-expanded cell. Returns `None`
    /// for replay cells — recorded audio does not travel over this
    /// protocol (run replay campaigns through the in-process API).
    pub fn from_cell(cell: &EvalCell) -> Option<Self> {
        if cell.replay.is_some() {
            return None;
        }
        Some(Self {
            environment: cell.environment,
            n_devices: cell.n_devices as u32,
            condition: cell.condition,
            mobility: cell.mobility,
            numeric_path: cell.numeric_path,
            fidelity: cell.scenario.config().fidelity,
            seed: cell.seed,
            rounds: cell.rounds as u32,
            faults: cell.faults.as_ref().map(|f| f.to_spec()),
            recording: None,
        })
    }

    /// Reconstructs the ready-to-run cell by expanding a single-entry
    /// matrix. Deterministic: equal specs yield equal cells (and equal
    /// ids), so the streamed report merges exactly like the batch one.
    pub fn to_cell(&self) -> uw_core::Result<EvalCell> {
        if let Some(name) = &self.recording {
            return Err(uw_core::SystemError::InvalidConfig {
                reason: format!(
                    "job references recording {name:?}: resolve it through the \
                     server's recording registry, not JobSpec::to_cell"
                ),
            });
        }
        let faults = match &self.faults {
            Some(spec) => Some(FaultSchedule::parse(spec)?),
            None => None,
        };
        let matrix = ScenarioMatrix {
            environments: vec![self.environment],
            topologies: vec![Topology::Group(self.n_devices as usize)],
            conditions: vec![self.condition],
            mobilities: vec![self.mobility],
            numeric_paths: vec![self.numeric_path],
            faults: vec![faults],
            seeds: vec![self.seed],
            recordings: vec![],
            rounds_per_cell: self.rounds as usize,
            fidelity: self.fidelity,
        };
        let mut cells = matrix.expand()?;
        Ok(cells.remove(0))
    }
}

/// One protocol message. Client → server: `Hello`, `Submit`, `Cancel`,
/// `Goodbye`. Server → client: `HelloAck`, the per-job event mirror of
/// [`crate::job::CellUpdate`] (`Started` … `Rejected`), and
/// `ProtocolError`. The `tag` fields are *client-chosen* correlation ids
/// — the server echoes them on every event of the job, so a pipelined
/// client can multiplex thousands of jobs over one connection.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Connection opener; `client` is a display name for logs.
    Hello {
        /// Client display name.
        client: String,
    },
    /// Server's reply to `Hello`: its version and payload cap.
    HelloAck {
        /// The server's [`WIRE_VERSION`].
        version: u16,
        /// The server's [`MAX_PAYLOAD`].
        max_payload: u32,
    },
    /// Submit one job.
    Submit {
        /// Client-chosen correlation id, echoed on every event.
        tag: u64,
        /// Tenant the job bills to.
        tenant: String,
        /// Priority class.
        priority: Priority,
        /// Deadline budget in milliseconds from server receipt; `None`
        /// means no deadline.
        deadline_ms: Option<u64>,
        /// The job's matrix coordinates.
        spec: JobSpec,
    },
    /// Request cooperative cancellation of a submitted job.
    Cancel {
        /// Correlation id of the job to cancel.
        tag: u64,
    },
    /// Orderly half-close: no more submissions will follow; the server
    /// finishes in-flight jobs and then closes the connection.
    Goodbye,
    /// Mirror of [`crate::job::CellUpdate::CellStarted`].
    Started {
        /// Correlation id.
        tag: u64,
        /// Cell id the job reports under.
        cell_id: String,
        /// Rounds the job will run.
        rounds: u64,
    },
    /// Mirror of [`crate::job::CellUpdate::RoundCompleted`].
    Round {
        /// Correlation id.
        tag: u64,
        /// Cell id the job reports under.
        cell_id: String,
        /// The round's result.
        summary: RoundSummary,
    },
    /// Mirror of [`crate::job::CellUpdate::CellFinalized`]; the report is
    /// bit-identical to the server-side one.
    Finalized {
        /// Correlation id.
        tag: u64,
        /// The finalized per-cell report.
        report: CellReport,
    },
    /// Mirror of [`crate::job::CellUpdate::JobCancelled`].
    Cancelled {
        /// Correlation id.
        tag: u64,
        /// Statistics over the rounds that ran before cancellation.
        partial: CellReport,
    },
    /// Mirror of [`crate::job::CellUpdate::JobFailed`].
    Failed {
        /// Correlation id.
        tag: u64,
        /// Cell id the job reported under.
        cell_id: String,
        /// Failure reason.
        reason: String,
    },
    /// Mirror of [`crate::job::CellUpdate::JobRejected`].
    Rejected {
        /// Correlation id.
        tag: u64,
        /// Cell id the job would have reported under.
        cell_id: String,
        /// Tenant that submitted it.
        tenant: String,
        /// The structured rejection.
        reason: RejectReason,
    },
    /// The peer violated the protocol; the connection closes after this.
    ProtocolError {
        /// Human-readable description.
        message: String,
    },
}

// ---------------------------------------------------------------------
// Encoding primitives
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn env_code(env: EnvironmentKind) -> u8 {
    match env {
        EnvironmentKind::Pool => 0,
        EnvironmentKind::Dock => 1,
        EnvironmentKind::Viewpoint => 2,
        EnvironmentKind::Boathouse => 3,
        EnvironmentKind::OpenWater => 4,
        EnvironmentKind::TidalChannel => 5,
    }
}

fn path_code(path: NumericPath) -> u8 {
    match path {
        NumericPath::F64 => 0,
        NumericPath::F32 => 1,
        NumericPath::Q15 => 2,
    }
}

fn encode_spec(out: &mut Vec<u8>, spec: &JobSpec) {
    out.push(env_code(spec.environment));
    put_u32(out, spec.n_devices);
    match spec.condition {
        LinkProfile::Clear => out.push(0),
        LinkProfile::Occluded { bias_m } => {
            out.push(1);
            put_f64(out, bias_m);
        }
        LinkProfile::MissingLink => out.push(2),
        LinkProfile::DeviceChurn { after_round } => {
            out.push(3);
            put_u64(out, after_round as u64);
        }
    }
    match spec.mobility {
        MobilityProfile::Static => out.push(0),
        MobilityProfile::RopeOscillation { speed_cm_s } => {
            out.push(1);
            put_f64(out, speed_cm_s);
        }
        MobilityProfile::Swimmer { speed_cm_s } => {
            out.push(2);
            put_f64(out, speed_cm_s);
        }
        MobilityProfile::CurrentDrift { speed_cm_s } => {
            out.push(3);
            put_f64(out, speed_cm_s);
        }
    }
    out.push(path_code(spec.numeric_path));
    out.push(match spec.fidelity {
        Fidelity::Statistical => 0,
        Fidelity::Hybrid => 1,
    });
    put_u64(out, spec.seed);
    put_u32(out, spec.rounds);
    match &spec.faults {
        None => put_bool(out, false),
        Some(s) => {
            put_bool(out, true);
            put_str(out, s);
        }
    }
    match &spec.recording {
        None => put_bool(out, false),
        Some(name) => {
            put_bool(out, true);
            put_str(out, name);
        }
    }
}

fn encode_summary(out: &mut Vec<u8>, s: &RoundSummary) {
    put_u64(out, s.round as u64);
    put_bool(out, s.ok);
    put_f64(out, s.median_error_2d_m);
    put_u64(out, s.dropped_links as u64);
    put_bool(out, s.flipping_correct);
}

fn encode_error_summary(out: &mut Vec<u8>, s: &ErrorSummary) {
    put_u64(out, s.count as u64);
    put_f64(out, s.median);
    put_f64(out, s.p90);
    put_f64(out, s.p99);
    put_f64(out, s.mean);
    put_f64(out, s.max);
}

fn encode_report(out: &mut Vec<u8>, r: &CellReport) {
    put_str(out, &r.id);
    put_str(out, &r.environment);
    put_u64(out, r.n_devices as u64);
    put_str(out, &r.condition);
    put_str(out, &r.mobility);
    put_str(out, &r.numeric_path);
    put_str(out, &r.source);
    put_u64(out, r.seed);
    put_u64(out, r.rounds as u64);
    put_u64(out, r.rounds_completed as u64);
    put_u64(out, r.rounds_failed as u64);
    encode_error_summary(out, &r.error_2d);
    put_u32(out, r.error_cdf.len() as u32);
    for &(e, f) in &r.error_cdf {
        put_f64(out, e);
        put_f64(out, f);
    }
    put_f64(out, r.ranging_median_m);
    put_f64(out, r.flip_rate);
    put_f64(out, r.mean_dropped_links);
    put_u64(out, r.churn_excluded as u64);
    put_f64(out, r.latency_acoustic_s);
    put_f64(out, r.latency_total_s);
}

fn encode_reason(out: &mut Vec<u8>, reason: &RejectReason) {
    match reason {
        RejectReason::AdmissionDenied { tenant } => {
            out.push(0);
            put_str(out, tenant);
        }
        RejectReason::DeadlineExpired { late_ms } => {
            out.push(1);
            put_u64(out, *late_ms);
        }
        RejectReason::Overloaded { queued, capacity } => {
            out.push(2);
            put_u64(out, *queued as u64);
            put_u64(out, *capacity as u64);
        }
    }
}

fn encode_payload(msg: &WireMessage, out: &mut Vec<u8>) -> u8 {
    match msg {
        WireMessage::Hello { client } => {
            put_str(out, client);
            TAG_HELLO
        }
        WireMessage::HelloAck {
            version,
            max_payload,
        } => {
            put_u16(out, *version);
            put_u32(out, *max_payload);
            TAG_HELLO_ACK
        }
        WireMessage::Submit {
            tag,
            tenant,
            priority,
            deadline_ms,
            spec,
        } => {
            put_u64(out, *tag);
            put_str(out, tenant);
            out.push(match priority {
                Priority::Live => 0,
                Priority::Replay => 1,
            });
            match deadline_ms {
                None => put_bool(out, false),
                Some(ms) => {
                    put_bool(out, true);
                    put_u64(out, *ms);
                }
            }
            encode_spec(out, spec);
            TAG_SUBMIT
        }
        WireMessage::Cancel { tag } => {
            put_u64(out, *tag);
            TAG_CANCEL
        }
        WireMessage::Goodbye => TAG_GOODBYE,
        WireMessage::Started {
            tag,
            cell_id,
            rounds,
        } => {
            put_u64(out, *tag);
            put_str(out, cell_id);
            put_u64(out, *rounds);
            TAG_STARTED
        }
        WireMessage::Round {
            tag,
            cell_id,
            summary,
        } => {
            put_u64(out, *tag);
            put_str(out, cell_id);
            encode_summary(out, summary);
            TAG_ROUND
        }
        WireMessage::Finalized { tag, report } => {
            put_u64(out, *tag);
            encode_report(out, report);
            TAG_FINALIZED
        }
        WireMessage::Cancelled { tag, partial } => {
            put_u64(out, *tag);
            encode_report(out, partial);
            TAG_CANCELLED
        }
        WireMessage::Failed {
            tag,
            cell_id,
            reason,
        } => {
            put_u64(out, *tag);
            put_str(out, cell_id);
            put_str(out, reason);
            TAG_FAILED
        }
        WireMessage::Rejected {
            tag,
            cell_id,
            tenant,
            reason,
        } => {
            put_u64(out, *tag);
            put_str(out, cell_id);
            put_str(out, tenant);
            encode_reason(out, reason);
            TAG_REJECTED
        }
        WireMessage::ProtocolError { message } => {
            put_str(out, message);
            TAG_PROTOCOL_ERROR
        }
    }
}

/// Encodes a message into one complete frame (header + payload + CRC).
///
/// Panics if the payload would exceed [`MAX_PAYLOAD`] — impossible for
/// the messages this protocol defines (reports are a few KiB; the cap is
/// 1 MiB).
pub fn encode_frame(msg: &WireMessage) -> Vec<u8> {
    let mut payload = Vec::new();
    let tag = encode_payload(msg, &mut payload);
    assert!(
        payload.len() as u64 <= MAX_PAYLOAD as u64,
        "payload {} exceeds wire cap {MAX_PAYLOAD}",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + TRAILER_LEN);
    out.extend_from_slice(&WIRE_MAGIC);
    put_u16(&mut out, WIRE_VERSION);
    out.push(tag);
    out.push(0); // flags (reserved)
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    let crc = crc32(&out);
    put_u32(&mut out, crc);
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

/// Bounds-checked payload reader.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Malformed { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, context)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    fn bool(&mut self, context: &'static str) -> Result<bool, WireError> {
        match self.u8(context)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed { context }),
        }
    }

    fn usize(&mut self, context: &'static str) -> Result<usize, WireError> {
        let v = self.u64(context)?;
        usize::try_from(v).map_err(|_| WireError::Malformed { context })
    }

    /// String: u32 length + UTF-8 bytes. The length is checked against
    /// the bytes actually remaining before anything is copied, so a lying
    /// prefix cannot trigger a large allocation.
    fn str(&mut self, context: &'static str) -> Result<String, WireError> {
        let len = self.u32(context)? as usize;
        if len > self.remaining() {
            return Err(WireError::Malformed { context });
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed { context })
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::Malformed {
                context: "trailing payload bytes",
            });
        }
        Ok(())
    }
}

fn env_from(code: u8) -> Result<EnvironmentKind, WireError> {
    Ok(match code {
        0 => EnvironmentKind::Pool,
        1 => EnvironmentKind::Dock,
        2 => EnvironmentKind::Viewpoint,
        3 => EnvironmentKind::Boathouse,
        4 => EnvironmentKind::OpenWater,
        5 => EnvironmentKind::TidalChannel,
        _ => {
            return Err(WireError::Malformed {
                context: "environment code",
            })
        }
    })
}

fn decode_spec(c: &mut Cursor<'_>) -> Result<JobSpec, WireError> {
    let environment = env_from(c.u8("spec environment")?)?;
    let n_devices = c.u32("spec n_devices")?;
    let condition = match c.u8("spec condition tag")? {
        0 => LinkProfile::Clear,
        1 => LinkProfile::Occluded {
            bias_m: c.f64("spec occlusion bias")?,
        },
        2 => LinkProfile::MissingLink,
        3 => LinkProfile::DeviceChurn {
            after_round: c.usize("spec churn round")?,
        },
        _ => {
            return Err(WireError::Malformed {
                context: "condition tag",
            })
        }
    };
    let mobility = match c.u8("spec mobility tag")? {
        0 => MobilityProfile::Static,
        1 => MobilityProfile::RopeOscillation {
            speed_cm_s: c.f64("spec rope speed")?,
        },
        2 => MobilityProfile::Swimmer {
            speed_cm_s: c.f64("spec swim speed")?,
        },
        3 => MobilityProfile::CurrentDrift {
            speed_cm_s: c.f64("spec drift speed")?,
        },
        _ => {
            return Err(WireError::Malformed {
                context: "mobility tag",
            })
        }
    };
    let numeric_path = match c.u8("spec numeric path")? {
        0 => NumericPath::F64,
        1 => NumericPath::F32,
        2 => NumericPath::Q15,
        _ => {
            return Err(WireError::Malformed {
                context: "numeric path code",
            })
        }
    };
    let fidelity = match c.u8("spec fidelity")? {
        0 => Fidelity::Statistical,
        1 => Fidelity::Hybrid,
        _ => {
            return Err(WireError::Malformed {
                context: "fidelity code",
            })
        }
    };
    let seed = c.u64("spec seed")?;
    let rounds = c.u32("spec rounds")?;
    let faults = if c.bool("spec faults flag")? {
        Some(c.str("spec faults")?)
    } else {
        None
    };
    let recording = if c.bool("spec recording flag")? {
        Some(c.str("spec recording")?)
    } else {
        None
    };
    Ok(JobSpec {
        environment,
        n_devices,
        condition,
        mobility,
        numeric_path,
        fidelity,
        seed,
        rounds,
        faults,
        recording,
    })
}

fn decode_summary(c: &mut Cursor<'_>) -> Result<RoundSummary, WireError> {
    Ok(RoundSummary {
        round: c.usize("summary round")?,
        ok: c.bool("summary ok")?,
        median_error_2d_m: c.f64("summary median")?,
        dropped_links: c.usize("summary drops")?,
        flipping_correct: c.bool("summary flip")?,
    })
}

fn decode_error_summary(c: &mut Cursor<'_>) -> Result<ErrorSummary, WireError> {
    Ok(ErrorSummary {
        count: c.usize("error count")?,
        median: c.f64("error median")?,
        p90: c.f64("error p90")?,
        p99: c.f64("error p99")?,
        mean: c.f64("error mean")?,
        max: c.f64("error max")?,
    })
}

fn decode_report(c: &mut Cursor<'_>) -> Result<CellReport, WireError> {
    let id = c.str("report id")?;
    let environment = c.str("report environment")?;
    let n_devices = c.usize("report n_devices")?;
    let condition = c.str("report condition")?;
    let mobility = c.str("report mobility")?;
    let numeric_path = c.str("report numeric_path")?;
    let source = c.str("report source")?;
    let seed = c.u64("report seed")?;
    let rounds = c.usize("report rounds")?;
    let rounds_completed = c.usize("report rounds_completed")?;
    let rounds_failed = c.usize("report rounds_failed")?;
    let error_2d = decode_error_summary(c)?;
    let cdf_len = c.u32("report cdf length")? as usize;
    // Each CDF point is 16 bytes; validate against the remaining payload
    // before reserving anything.
    if cdf_len.saturating_mul(16) > c.remaining() {
        return Err(WireError::Malformed {
            context: "report cdf length",
        });
    }
    let mut error_cdf = Vec::with_capacity(cdf_len);
    for _ in 0..cdf_len {
        let e = c.f64("report cdf error")?;
        let f = c.f64("report cdf fraction")?;
        error_cdf.push((e, f));
    }
    Ok(CellReport {
        id,
        environment,
        n_devices,
        condition,
        mobility,
        numeric_path,
        source,
        seed,
        rounds,
        rounds_completed,
        rounds_failed,
        error_2d,
        error_cdf,
        ranging_median_m: c.f64("report ranging")?,
        flip_rate: c.f64("report flip rate")?,
        mean_dropped_links: c.f64("report drops")?,
        churn_excluded: c.usize("report churn")?,
        latency_acoustic_s: c.f64("report latency acoustic")?,
        latency_total_s: c.f64("report latency total")?,
    })
}

fn decode_reason(c: &mut Cursor<'_>) -> Result<RejectReason, WireError> {
    Ok(match c.u8("reject reason tag")? {
        0 => RejectReason::AdmissionDenied {
            tenant: c.str("reject tenant")?,
        },
        1 => RejectReason::DeadlineExpired {
            late_ms: c.u64("reject late_ms")?,
        },
        2 => RejectReason::Overloaded {
            queued: c.usize("reject queued")?,
            capacity: c.usize("reject capacity")?,
        },
        _ => {
            return Err(WireError::Malformed {
                context: "reject reason tag",
            })
        }
    })
}

fn decode_payload(tag: u8, payload: &[u8]) -> Result<WireMessage, WireError> {
    let mut c = Cursor::new(payload);
    let msg = match tag {
        TAG_HELLO => WireMessage::Hello {
            client: c.str("hello client")?,
        },
        TAG_HELLO_ACK => WireMessage::HelloAck {
            version: c.u16("helloack version")?,
            max_payload: c.u32("helloack cap")?,
        },
        TAG_SUBMIT => {
            let tag = c.u64("submit tag")?;
            let tenant = c.str("submit tenant")?;
            let priority = match c.u8("submit priority")? {
                0 => Priority::Live,
                1 => Priority::Replay,
                _ => {
                    return Err(WireError::Malformed {
                        context: "priority code",
                    })
                }
            };
            let deadline_ms = if c.bool("submit deadline flag")? {
                Some(c.u64("submit deadline")?)
            } else {
                None
            };
            let spec = decode_spec(&mut c)?;
            WireMessage::Submit {
                tag,
                tenant,
                priority,
                deadline_ms,
                spec,
            }
        }
        TAG_CANCEL => WireMessage::Cancel {
            tag: c.u64("cancel tag")?,
        },
        TAG_GOODBYE => WireMessage::Goodbye,
        TAG_STARTED => WireMessage::Started {
            tag: c.u64("started tag")?,
            cell_id: c.str("started cell")?,
            rounds: c.u64("started rounds")?,
        },
        TAG_ROUND => WireMessage::Round {
            tag: c.u64("round tag")?,
            cell_id: c.str("round cell")?,
            summary: decode_summary(&mut c)?,
        },
        TAG_FINALIZED => WireMessage::Finalized {
            tag: c.u64("finalized tag")?,
            report: decode_report(&mut c)?,
        },
        TAG_CANCELLED => WireMessage::Cancelled {
            tag: c.u64("cancelled tag")?,
            partial: decode_report(&mut c)?,
        },
        TAG_FAILED => WireMessage::Failed {
            tag: c.u64("failed tag")?,
            cell_id: c.str("failed cell")?,
            reason: c.str("failed reason")?,
        },
        TAG_REJECTED => WireMessage::Rejected {
            tag: c.u64("rejected tag")?,
            cell_id: c.str("rejected cell")?,
            tenant: c.str("rejected tenant")?,
            reason: decode_reason(&mut c)?,
        },
        TAG_PROTOCOL_ERROR => WireMessage::ProtocolError {
            message: c.str("protocol error")?,
        },
        tag => return Err(WireError::UnknownTag { tag }),
    };
    c.finish()?;
    Ok(msg)
}

/// Decodes one frame from the front of `buf`. On success returns the
/// message and the total frame length consumed. [`WireError::Truncated`]
/// means the buffer ends mid-frame: read more bytes and retry.
///
/// Validation order: magic → version → length cap → completeness → CRC →
/// tag → payload structure. The length cap is enforced before the payload
/// is even *looked at*, so a hostile length prefix cannot drive an
/// allocation.
pub fn decode_frame(buf: &[u8]) -> Result<(WireMessage, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    if buf[0..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic {
            got: [buf[0], buf[1], buf[2], buf[3]],
        });
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion { got: version });
    }
    let tag = buf[6];
    if buf[7] != 0 {
        return Err(WireError::Malformed {
            context: "reserved flags",
        });
    }
    let len = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
    if len > MAX_PAYLOAD {
        return Err(WireError::Oversized {
            len,
            max: MAX_PAYLOAD,
        });
    }
    let total = HEADER_LEN + len as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated);
    }
    let body_end = HEADER_LEN + len as usize;
    let want = crc32(&buf[..body_end]);
    let got = u32::from_le_bytes([
        buf[body_end],
        buf[body_end + 1],
        buf[body_end + 2],
        buf[body_end + 3],
    ]);
    if got != want {
        return Err(WireError::CrcMismatch { got, want });
    }
    let msg = decode_payload(tag, &buf[HEADER_LEN..body_end])?;
    Ok((msg, total))
}

/// Incremental frame reader over any [`Read`] — handles arbitrarily split
/// reads (TCP segments, 1-byte trickles) by buffering exactly one frame
/// at a time. The payload cap is enforced from the header before the
/// payload buffer is allocated.
pub struct FrameReader<R> {
    inner: R,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte stream.
    pub fn new(inner: R) -> Self {
        Self { inner }
    }

    /// Consumes and returns the wrapped stream.
    pub fn into_inner(self) -> R {
        self.inner
    }

    fn read_full(&mut self, buf: &mut [u8]) -> Result<(), WireError> {
        self.inner.read_exact(buf).map_err(WireError::from)
    }

    /// Reads the next complete frame. `Ok(None)` on clean EOF at a frame
    /// boundary; EOF mid-frame is [`WireError::Truncated`].
    pub fn read_message(&mut self) -> Result<Option<WireMessage>, WireError> {
        let mut header = [0u8; HEADER_LEN];
        // Distinguish clean EOF (no bytes at all) from a torn frame.
        let mut got = 0usize;
        while got < 1 {
            match self.inner.read(&mut header[..1]) {
                Ok(0) => return Ok(None),
                Ok(n) => got += n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(WireError::from(e)),
            }
        }
        self.read_full(&mut header[1..])?;
        // Pre-validate the header so a hostile length prefix is rejected
        // before any payload allocation.
        if header[0..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic {
                got: [header[0], header[1], header[2], header[3]],
            });
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion { got: version });
        }
        let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]);
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let mut frame = vec![0u8; HEADER_LEN + len as usize + TRAILER_LEN];
        frame[..HEADER_LEN].copy_from_slice(&header);
        self.read_full(&mut frame[HEADER_LEN..])?;
        let (msg, consumed) = decode_frame(&frame)?;
        debug_assert_eq!(consumed, frame.len());
        Ok(Some(msg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32 check: crc32(b"123456789") == 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_round_trip() {
        let msg = WireMessage::Hello {
            client: "bench".into(),
        };
        let bytes = encode_frame(&msg);
        let (decoded, consumed) = decode_frame(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decoded, msg);
        // Byte-exact re-encode.
        assert_eq!(encode_frame(&decoded), bytes);
    }

    #[test]
    fn job_specs_reconstruct_matrix_cells_exactly() {
        let mut matrix = ScenarioMatrix::smoke();
        matrix.rounds_per_cell = 2;
        for cell in matrix.expand().unwrap() {
            let spec = JobSpec::from_cell(&cell).unwrap();
            let rebuilt = spec.to_cell().unwrap();
            assert_eq!(rebuilt.id, cell.id);
            assert_eq!(rebuilt.seed, cell.seed);
            assert_eq!(rebuilt.rounds, cell.rounds);
            assert_eq!(rebuilt.scenario.name(), cell.scenario.name());
        }
    }

    #[test]
    fn truncation_and_corruption_are_structured() {
        let bytes = encode_frame(&WireMessage::Goodbye);
        assert!(matches!(
            decode_frame(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        ));
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(matches!(
            decode_frame(&corrupt),
            Err(WireError::CrcMismatch { .. })
        ));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xFF;
        wrong_version[5] = 0x00;
        assert!(matches!(
            decode_frame(&wrong_version),
            Err(WireError::UnsupportedVersion { got: 255 })
        ));
    }
}
