//! Adversarial decoder tests: the wire decoder faces the network, so it
//! must survive *anything* — truncated frames, corrupted bytes, hostile
//! length prefixes, pure noise — without panicking, without
//! over-allocating, and with structured errors where the cause is
//! identifiable. Mirrors the malformed-WAV suite in `uw-audio`.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::Read;
use uw_serve::wire::{
    crc32, decode_frame, encode_frame, FrameReader, WireError, WireMessage, HEADER_LEN,
    MAX_PAYLOAD, TRAILER_LEN, WIRE_MAGIC, WIRE_VERSION,
};

/// A representative frame of every class: empty payload, strings,
/// numeric-heavy, nested report.
fn sample_frames() -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut matrix = uw_eval::ScenarioMatrix::smoke();
    matrix.rounds_per_cell = 2;
    let cell = matrix.expand().unwrap().remove(0);
    let spec = uw_serve::JobSpec::from_cell(&cell).unwrap();
    let report = uw_eval::report::cell_report_skeleton(&cell);
    let msgs = [
        WireMessage::Goodbye,
        WireMessage::Hello {
            client: "fuzz".into(),
        },
        WireMessage::HelloAck {
            version: WIRE_VERSION,
            max_payload: MAX_PAYLOAD,
        },
        WireMessage::Submit {
            tag: rng.next_u64(),
            tenant: "tenant-a".into(),
            priority: uw_serve::Priority::Live,
            deadline_ms: Some(250),
            spec,
        },
        WireMessage::Finalized { tag: 9, report },
        WireMessage::Rejected {
            tag: 3,
            cell_id: "dock/5dev/clear/static/s1".into(),
            tenant: "tenant-b".into(),
            reason: uw_serve::RejectReason::DeadlineExpired { late_ms: 17 },
        },
    ];
    msgs.iter().map(encode_frame).collect()
}

#[test]
fn truncation_at_every_byte_is_a_clean_error() {
    for frame in sample_frames() {
        for cut in 0..frame.len() {
            let err = decode_frame(&frame[..cut]).expect_err("a truncated frame must never decode");
            // Truncation must never be misread as payload corruption.
            assert!(
                !matches!(err, WireError::CrcMismatch { .. }),
                "cut at {cut}/{} misdiagnosed as {err:?}",
                frame.len()
            );
            // The incremental reader sees the same bytes as a dying
            // socket: EOF at a frame boundary is a clean end-of-stream,
            // EOF mid-frame is Truncated.
            let mut reader = FrameReader::new(&frame[..cut]);
            match reader.read_message() {
                Ok(None) if cut == 0 => {}
                Err(WireError::Truncated) if cut > 0 => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_decodes() {
    for frame in sample_frames() {
        for pos in 0..frame.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut bad = frame.clone();
                bad[pos] ^= flip;
                // Every single-byte change is caught: header fields by
                // their dedicated checks, payload and trailer by the CRC.
                assert!(
                    decode_frame(&bad).is_err(),
                    "flip {flip:#x} at byte {pos} slipped through"
                );
            }
        }
    }
}

#[test]
fn corruption_errors_are_attributable() {
    let frame = encode_frame(&WireMessage::Hello {
        client: "attribution".into(),
    });

    let mut bad_magic = frame.clone();
    bad_magic[0] = b'X';
    assert!(matches!(
        decode_frame(&bad_magic),
        Err(WireError::BadMagic { .. })
    ));

    let mut bad_version = frame.clone();
    bad_version[4] = 0xFF;
    assert!(matches!(
        decode_frame(&bad_version),
        Err(WireError::UnsupportedVersion { got: 0xFF })
    ));

    let mut bad_flags = frame.clone();
    bad_flags[7] = 0x01;
    assert!(matches!(
        decode_frame(&bad_flags),
        Err(WireError::Malformed { .. })
    ));

    let mut bad_payload = frame.clone();
    bad_payload[HEADER_LEN] ^= 0xFF;
    assert!(matches!(
        decode_frame(&bad_payload),
        Err(WireError::CrcMismatch { .. })
    ));

    let mut bad_trailer = frame.clone();
    let last = bad_trailer.len() - 1;
    bad_trailer[last] ^= 0xFF;
    assert!(matches!(
        decode_frame(&bad_trailer),
        Err(WireError::CrcMismatch { .. })
    ));
}

/// Build a syntactically plausible header claiming `len` payload bytes.
fn header_claiming(len: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.extend_from_slice(&WIRE_MAGIC);
    buf.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    buf.push(0x04); // Goodbye
    buf.push(0x00); // flags
    buf.extend_from_slice(&len.to_le_bytes());
    buf
}

#[test]
fn hostile_length_prefixes_are_rejected_before_allocation() {
    // If the decoder trusted these prefixes it would try to allocate up
    // to 4 GiB per frame; the cap check runs on the raw header instead.
    for len in [
        MAX_PAYLOAD + 1,
        MAX_PAYLOAD * 2,
        u32::MAX / 2,
        u32::MAX - TRAILER_LEN as u32,
        u32::MAX,
    ] {
        let header = header_claiming(len);
        match decode_frame(&header) {
            Err(WireError::Oversized { len: got, max }) => {
                assert_eq!(got, len);
                assert_eq!(max, MAX_PAYLOAD);
            }
            other => panic!("len={len}: expected Oversized, got {other:?}"),
        }
        // The stream reader validates the header before reserving the
        // payload buffer — same structured error, no allocation.
        let mut reader = FrameReader::new(header.as_slice());
        assert!(matches!(
            reader.read_message(),
            Err(WireError::Oversized { .. })
        ));
    }
}

#[test]
fn a_length_prefix_at_the_cap_is_not_rejected_for_size() {
    // Exactly MAX_PAYLOAD must pass the cap check (the frame is then
    // incomplete, which is a different, honest error).
    let header = header_claiming(MAX_PAYLOAD);
    assert!(matches!(decode_frame(&header), Err(WireError::Truncated)));
}

#[test]
fn random_byte_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xF0CC);
    for _ in 0..2000 {
        let len = rng.gen_range(0usize..512);
        let noise: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = decode_frame(&noise); // must return, not panic
        let mut reader = FrameReader::new(noise.as_slice());
        // Drain until the reader gives up; bounded by construction.
        for _ in 0..8 {
            match reader.read_message() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
    }
}

#[test]
fn noise_behind_a_valid_prefix_never_panics() {
    // Harder fuzz: correct magic + version + known tag, random rest —
    // penetrates past the header checks into the payload decoders.
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let tags = [
        0x01u8, 0x02, 0x03, 0x04, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0xFE,
    ];
    for _ in 0..2000 {
        let tag = tags[rng.gen_range(0usize..tags.len())];
        let payload_len = rng.gen_range(0usize..256);
        let mut frame = Vec::new();
        frame.extend_from_slice(&WIRE_MAGIC);
        frame.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        frame.push(tag);
        frame.push(0x00);
        frame.extend_from_slice(&(payload_len as u32).to_le_bytes());
        for _ in 0..payload_len {
            frame.push(rng.next_u64() as u8);
        }
        // Valid CRC so the payload decoder actually runs on the noise.
        let crc = crc32(&frame).to_le_bytes();
        frame.extend_from_slice(&crc);
        match decode_frame(&frame) {
            Ok((msg, consumed)) => {
                // Rare but legal: noise that parses must re-encode to a
                // frame the decoder accepts again.
                assert_eq!(consumed, frame.len());
                let bytes = encode_frame(&msg);
                assert!(decode_frame(&bytes).is_ok());
            }
            Err(WireError::Malformed { .. })
            | Err(WireError::Truncated)
            | Err(WireError::Oversized { .. }) => {}
            Err(other) => panic!("tag {tag:#x}: unexpected error class {other:?}"),
        }
    }
}

#[test]
fn truncated_inner_lengths_cannot_force_allocation() {
    // A Finalized payload whose CDF claims u32::MAX entries: the decoder
    // must check the claim against the remaining bytes before reserving.
    let good = encode_frame(&WireMessage::Failed {
        tag: 1,
        cell_id: String::new(),
        reason: String::new(),
    });
    // Patch the inner cell_id length field (first payload bytes after
    // the tag's u64) to a huge value and fix the CRC.
    let mut bad = good.clone();
    let inner = HEADER_LEN + 8; // skip tag
    bad[inner..inner + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let body_end = bad.len() - TRAILER_LEN;
    let crc = crc32(&bad[..body_end]).to_le_bytes();
    bad[body_end..].copy_from_slice(&crc);
    assert!(matches!(
        decode_frame(&bad),
        Err(WireError::Malformed { .. })
    ));
}

/// An interrupting reader: returns `ErrorKind::Interrupted` on every
/// other call, as signal-heavy processes see.
struct InterruptingReader<'a> {
    data: &'a [u8],
    pos: usize,
    tick: bool,
}

impl Read for InterruptingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.tick = !self.tick;
        if self.tick {
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "signal",
            ));
        }
        let n = buf.len().min(self.data.len() - self.pos).min(3);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

#[test]
fn interrupted_reads_are_retried_not_fatal() {
    let frames = sample_frames();
    let stream: Vec<u8> = frames.iter().flatten().copied().collect();
    let mut reader = FrameReader::new(InterruptingReader {
        data: &stream,
        pos: 0,
        tick: false,
    });
    for frame in &frames {
        let msg = reader.read_message().unwrap().expect("frame expected");
        assert_eq!(&encode_frame(&msg), frame);
    }
    assert!(matches!(reader.read_message(), Ok(None)));
}

#[test]
fn garbage_between_frames_poisons_the_stream_not_the_process() {
    // A valid frame, then noise: the reader yields the frame, then a
    // structured error — never a phantom message, never a panic.
    let good = encode_frame(&WireMessage::Cancel { tag: 42 });
    let mut stream = good.clone();
    stream.extend_from_slice(b"\xDE\xAD\xBE\xEF garbage follows");
    let mut reader = FrameReader::new(stream.as_slice());
    assert_eq!(
        reader.read_message().unwrap(),
        Some(WireMessage::Cancel { tag: 42 })
    );
    assert!(reader.read_message().is_err());
}
