//! Multi-tenant scheduling integration tests: weighted fair shares,
//! priority overtaking, deadline shedding, admission quotas, overload
//! policy, and work stealing — and the invariant that none of that
//! machinery perturbs the reports themselves (byte-identical to the
//! batch runner).
//!
//! The deterministic pattern throughout: pin the single worker down with
//! a long "occupier" job, queue the contested jobs behind it, and let
//! the fair queue arbitrate the backlog with no races on arrival order.

use std::sync::{Arc, Mutex};
use std::time::Duration;
use uw_core::prelude::Scenario;
use uw_eval::{run_matrix, EvalReport, ScenarioMatrix};
use uw_serve::{
    CellUpdate, JobId, JobOutcome, LocalizationJob, OverloadPolicy, Priority, RejectReason,
    ServeConfig, Server, SubmitOptions, TenantConfig, UpdateStream,
};

/// A 1-round copy of the smoke matrix's dock cell.
fn quick_cell(rounds: usize) -> uw_eval::EvalCell {
    let mut matrix = ScenarioMatrix::smoke();
    matrix.rounds_per_cell = rounds;
    matrix.expand().unwrap().remove(0)
}

/// A job long enough to hold a worker for tens of milliseconds while
/// the test stacks a backlog behind it.
fn occupier() -> LocalizationJob {
    LocalizationJob::Scenario {
        scenario: Scenario::dock_five_devices(1),
        rounds: 60,
    }
}

/// Blocks until the update stream reports `job` started.
fn wait_started(updates: &UpdateStream, job: JobId) {
    loop {
        match updates.recv() {
            Some(CellUpdate::CellStarted { job: j, .. }) if j == job => return,
            Some(_) => continue,
            None => panic!("stream closed before job {job:?} started"),
        }
    }
}

/// Drains the stream and returns job ids in the order they *started*.
fn drain_start_order(updates: &UpdateStream) -> Vec<JobId> {
    let mut order = Vec::new();
    while let Some(update) = updates.recv() {
        if let CellUpdate::CellStarted { job, .. } = update {
            order.push(job);
        }
    }
    order
}

#[test]
fn unequal_offered_load_converges_to_weighted_shares() {
    let (server, updates) = Server::start(ServeConfig::with_shards(1));
    server.configure_tenant(TenantConfig::limited(
        "heavy",
        3.0,
        f64::INFINITY,
        f64::INFINITY,
    ));
    server.configure_tenant(TenantConfig::unlimited("light"));

    // Pin the worker, then stack an unequal backlog: 24 heavy jobs vs 8
    // light jobs, all queued before any of them can be dequeued.
    let pin = server.submit(occupier());
    wait_started(&updates, pin.id());

    let cell = quick_cell(1);
    let mut heavy = Vec::new();
    let mut light = Vec::new();
    for _ in 0..24 {
        heavy.push(
            server
                .submit_with(
                    LocalizationJob::Cell(cell.clone()),
                    SubmitOptions::tenant("heavy", Priority::Replay),
                )
                .id(),
        );
    }
    for _ in 0..8 {
        light.push(
            server
                .submit_with(
                    LocalizationJob::Cell(cell.clone()),
                    SubmitOptions::tenant("light", Priority::Replay),
                )
                .id(),
        );
    }
    server.shutdown();

    let order: Vec<JobId> = drain_start_order(&updates)
        .into_iter()
        .filter(|id| *id != pin.id())
        .collect();
    assert_eq!(order.len(), 32);
    // A 3:1 weight ratio must hold in *every* window of 4 dequeues, not
    // just on average — that is what "converges to fair shares" means
    // for a stride scheduler.
    for (w, window) in order.chunks(4).enumerate() {
        let h = window.iter().filter(|id| heavy.contains(id)).count();
        let l = window.iter().filter(|id| light.contains(id)).count();
        assert_eq!((h, l), (3, 1), "window {w} broke the 3:1 share: {window:?}");
    }
}

#[test]
fn live_jobs_overtake_queued_replay_jobs() {
    let (server, updates) = Server::start(ServeConfig::with_shards(1));
    let pin = server.submit(occupier());
    wait_started(&updates, pin.id());

    let cell = quick_cell(1);
    // Replay jobs arrive *first* and still lose the head of the queue.
    let replay: Vec<JobId> = (0..3)
        .map(|_| {
            server
                .submit_with(
                    LocalizationJob::Cell(cell.clone()),
                    SubmitOptions::tenant("archive", Priority::Replay),
                )
                .id()
        })
        .collect();
    let live: Vec<JobId> = (0..2)
        .map(|_| {
            server
                .submit_with(
                    LocalizationJob::Cell(cell.clone()),
                    SubmitOptions::tenant("diver", Priority::Live),
                )
                .id()
        })
        .collect();
    server.shutdown();

    let order: Vec<JobId> = drain_start_order(&updates)
        .into_iter()
        .filter(|id| *id != pin.id())
        .collect();
    assert_eq!(&order[..2], &live[..], "live class must run first");
    assert_eq!(&order[2..], &replay[..], "then replay, in FIFO order");
}

#[test]
fn expired_deadlines_shed_at_dequeue_without_occupying_the_shard() {
    let (server, updates) = Server::start(ServeConfig::with_shards(1));
    let pin = server.submit(occupier());
    wait_started(&updates, pin.id());

    // Queued behind ~60 rounds of work with a 1 ms budget: by the time
    // a worker reaches it, the answer is stale.
    let doomed = server.submit_with(
        LocalizationJob::Cell(quick_cell(5)),
        SubmitOptions {
            deadline: Some(Duration::from_millis(1)),
            ..SubmitOptions::default()
        },
    );
    match doomed.wait() {
        JobOutcome::Rejected(RejectReason::DeadlineExpired { .. }) => {}
        other => panic!("expected a deadline rejection, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats[0].shed, 1);
    // The shard executed only the occupier's rounds: the shed job never
    // ran a single localization round.
    assert_eq!(stats[0].rounds, 60);

    // And the event stream tells the same story: a JobRejected terminal,
    // no CellStarted, ever, for the doomed job.
    let mut saw_rejection = false;
    while let Some(update) = updates.recv() {
        match update {
            CellUpdate::CellStarted { job, .. } => {
                assert_ne!(job, doomed.id(), "shed job must never start");
            }
            CellUpdate::JobRejected { job, reason, .. } if job == doomed.id() => {
                assert!(matches!(reason, RejectReason::DeadlineExpired { .. }));
                saw_rejection = true;
            }
            _ => {}
        }
    }
    assert!(saw_rejection);
}

#[test]
fn admission_quota_rejects_at_submission() {
    let (server, updates) = Server::start(ServeConfig::with_shards(1));
    // rate 0, burst 1: exactly one job, ever — a hard quota.
    server.configure_tenant(TenantConfig::limited("metered", 1.0, 0.0, 1.0));

    let admitted = server.submit_with(
        LocalizationJob::Cell(quick_cell(1)),
        SubmitOptions::tenant("metered", Priority::Replay),
    );
    let denied = server.submit_with(
        LocalizationJob::Cell(quick_cell(1)),
        SubmitOptions::tenant("metered", Priority::Replay),
    );

    assert_eq!(
        denied.wait(),
        JobOutcome::Rejected(RejectReason::AdmissionDenied {
            tenant: "metered".into()
        })
    );
    assert!(matches!(admitted.wait(), JobOutcome::Completed(_)));
    server.shutdown();

    let rejected: Vec<JobId> = std::iter::from_fn(|| updates.recv())
        .filter_map(|u| match u {
            CellUpdate::JobRejected { job, .. } => Some(job),
            _ => None,
        })
        .collect();
    assert_eq!(rejected, vec![denied.id()]);
}

#[test]
fn shed_policy_rejects_deterministically_when_the_queue_is_full() {
    let (server, updates) = Server::start(ServeConfig {
        shards: 1,
        queue_capacity: 1,
    });
    let pin = server.submit(occupier());
    // Wait until the worker *dequeued* the occupier, so the single queue
    // slot is demonstrably free...
    wait_started(&updates, pin.id());
    // ...then fill it (Block policy: would wait, but the slot is open).
    let queued = server.submit(LocalizationJob::Cell(quick_cell(1)));
    // A third arrival under Shed policy sees 1/1 occupied and is turned
    // away with the exact queue depth in the reason.
    let shed = server.submit_with(
        LocalizationJob::Cell(quick_cell(1)),
        SubmitOptions {
            overload: OverloadPolicy::Shed,
            ..SubmitOptions::default()
        },
    );
    assert_eq!(
        shed.wait(),
        JobOutcome::Rejected(RejectReason::Overloaded {
            queued: 1,
            capacity: 1
        })
    );
    assert!(matches!(queued.wait(), JobOutcome::Completed(_)));
    server.shutdown();
}

#[test]
fn idle_workers_steal_from_backlogged_shards() {
    // Every copy of the same cell hashes to the same shard; with 2
    // shards, one worker sits idle next to a 12-job backlog unless it
    // steals.
    let (server, _updates) = Server::start(ServeConfig::with_shards(2));
    let cell = quick_cell(3);
    let handles: Vec<_> = (0..12)
        .map(|_| server.submit(LocalizationJob::Cell(cell.clone())))
        .collect();
    for h in &handles {
        assert!(matches!(h.wait(), JobOutcome::Completed(_)));
    }
    let stats = server.shutdown();
    assert_eq!(stats.iter().map(|s| s.jobs).sum::<usize>(), 12);
    let stolen: usize = stats.iter().map(|s| s.stolen).sum();
    assert!(stolen >= 1, "the idle shard never stole: {stats:?}");
    assert!(
        stats.iter().all(|s| s.jobs > 0),
        "both workers should have run jobs: {stats:?}"
    );
}

#[test]
fn tenancy_and_stealing_preserve_byte_identical_reports() {
    // The entire scheduling apparatus — tenants, weights, priorities,
    // stealing across 3 shards, per-job sinks — must be invisible in the
    // numbers: the reconstructed report matches the batch runner's JSON
    // byte for byte.
    let mut matrix = ScenarioMatrix::smoke();
    matrix.rounds_per_cell = 3;
    let baseline = run_matrix(&matrix).unwrap().to_json();

    let cells = matrix.expand().unwrap();
    let (server, _updates) = Server::start(ServeConfig::with_shards(3));
    server.configure_tenant(TenantConfig::limited(
        "team-a",
        2.0,
        f64::INFINITY,
        f64::INFINITY,
    ));
    let collected: Arc<Mutex<Vec<(usize, uw_eval::CellReport)>>> = Arc::new(Mutex::new(Vec::new()));
    let handles: Vec<_> = cells
        .into_iter()
        .enumerate()
        .map(|(i, cell)| {
            let sink = Arc::clone(&collected);
            let options = SubmitOptions {
                tenant: Some(if i % 2 == 0 { "team-a" } else { "team-b" }.into()),
                priority: if i % 2 == 0 {
                    Priority::Live
                } else {
                    Priority::Replay
                },
                events: Some(Arc::new(move |update: CellUpdate| {
                    if let CellUpdate::CellFinalized { report, .. } = update {
                        sink.lock().unwrap().push((i, report));
                    }
                })),
                ..SubmitOptions::default()
            };
            server.submit_with(LocalizationJob::Cell(cell), options)
        })
        .collect();
    for h in &handles {
        assert!(matches!(h.wait(), JobOutcome::Completed(_)));
    }
    server.shutdown();

    let mut reports = Arc::try_unwrap(collected).unwrap().into_inner().unwrap();
    reports.sort_by_key(|(i, _)| *i);
    let served = EvalReport::new(reports.into_iter().map(|(_, r)| r).collect()).to_json();
    assert_eq!(served, baseline);
}
