//! Loopback-TCP integration tests: the full wire path — handshake,
//! declarative job submission, streamed per-round events, cancellation,
//! deadlines, protocol errors — against a real `TcpListener`, pinning
//! the headline property end to end: an [`uw_eval::EvalReport`]
//! reconstructed from frames that crossed a socket is byte-identical to
//! the batch runner's JSON.

use std::io::Write;
use uw_eval::{run_matrix, EvalReport, ScenarioMatrix};
use uw_serve::wire::{
    crc32, encode_frame, FrameReader, JobSpec, WireMessage, MAX_PAYLOAD, TRAILER_LEN, WIRE_VERSION,
};
use uw_serve::{Priority, RejectReason, ServeConfig, TcpClient, TcpConfig, TcpServer};

fn spawn_server(shards: usize) -> TcpServer {
    TcpServer::bind(
        "127.0.0.1:0",
        TcpConfig {
            serve: ServeConfig {
                shards,
                queue_capacity: 64,
            },
            conn_queue: 64,
        },
    )
    .expect("bind loopback")
}

fn smoke_specs(rounds: usize) -> Vec<JobSpec> {
    let mut matrix = ScenarioMatrix::smoke();
    matrix.rounds_per_cell = rounds;
    matrix
        .expand()
        .unwrap()
        .iter()
        .map(|cell| JobSpec::from_cell(cell).expect("simulated cells have specs"))
        .collect()
}

#[test]
fn handshake_negotiates_version_and_payload_cap() {
    let server = spawn_server(1);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    let (version, max_payload) = client.hello("handshake-test").unwrap();
    assert_eq!(version, WIRE_VERSION);
    assert_eq!(max_payload, MAX_PAYLOAD);
    client.send(&WireMessage::Goodbye).unwrap();
    assert!(matches!(client.recv(), Ok(None)), "clean EOF after Goodbye");
    server.shutdown();
}

#[test]
fn a_single_job_streams_ordered_events_over_tcp() {
    let server = spawn_server(1);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("single-job").unwrap();

    let spec = smoke_specs(3).remove(0);
    let expected_cell = spec.to_cell().unwrap();
    client
        .send(&WireMessage::Submit {
            tag: 7,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: None,
            spec,
        })
        .unwrap();

    // Started → one Round per localization round, in order → Finalized.
    match client.recv().unwrap() {
        Some(WireMessage::Started {
            tag,
            cell_id,
            rounds,
        }) => {
            assert_eq!(tag, 7);
            assert_eq!(cell_id, expected_cell.id);
            assert_eq!(rounds, 3);
        }
        other => panic!("expected Started, got {other:?}"),
    }
    for expected_round in 0..3 {
        match client.recv().unwrap() {
            Some(WireMessage::Round { tag, summary, .. }) => {
                assert_eq!(tag, 7);
                assert_eq!(summary.round, expected_round);
            }
            other => panic!("expected Round {expected_round}, got {other:?}"),
        }
    }
    let report = match client.recv().unwrap() {
        Some(WireMessage::Finalized { tag: 7, report }) => report,
        other => panic!("expected Finalized, got {other:?}"),
    };
    client.send(&WireMessage::Goodbye).unwrap();
    server.shutdown();

    // The report that crossed the socket equals the batch runner's for
    // the same cell — full struct equality, not a summary check.
    let mut matrix = ScenarioMatrix::smoke();
    matrix.rounds_per_cell = 3;
    let baseline = run_matrix(&matrix).unwrap();
    assert_eq!(&report, baseline.cell(&expected_cell.id).unwrap());
}

#[test]
fn matrix_over_tcp_reconstructs_byte_identical_report() {
    // Three shards so the single-cell-id hash imbalance forces work
    // stealing *underneath* the socket path.
    let mut matrix = ScenarioMatrix::smoke();
    matrix.rounds_per_cell = 3;
    let baseline = run_matrix(&matrix).unwrap().to_json();

    let server = spawn_server(3);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("matrix-client").unwrap();
    let specs = smoke_specs(3);
    let n = specs.len();
    for (i, spec) in specs.into_iter().enumerate() {
        client
            .send(&WireMessage::Submit {
                tag: i as u64,
                tenant: format!("tenant-{}", i % 2),
                priority: if i % 2 == 0 {
                    Priority::Live
                } else {
                    Priority::Replay
                },
                deadline_ms: None,
                spec,
            })
            .unwrap();
    }

    // Events from different jobs interleave; collect Finalized by tag.
    let mut reports = vec![None; n];
    let mut done = 0;
    while done < n {
        match client.recv().unwrap() {
            Some(WireMessage::Finalized { tag, report }) => {
                assert!(reports[tag as usize].replace(report).is_none());
                done += 1;
            }
            Some(WireMessage::Started { .. }) | Some(WireMessage::Round { .. }) => {}
            other => panic!("unexpected frame mid-matrix: {other:?}"),
        }
    }
    client.send(&WireMessage::Goodbye).unwrap();
    server.shutdown();

    let served = EvalReport::new(reports.into_iter().map(Option::unwrap).collect()).to_json();
    assert_eq!(served, baseline);
}

#[test]
fn cancel_over_tcp_yields_a_partial_report() {
    let server = spawn_server(1);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("cancel-client").unwrap();

    let mut spec = smoke_specs(1).remove(0);
    spec.rounds = 500; // long enough to cancel mid-flight
    client
        .send(&WireMessage::Submit {
            tag: 11,
            tenant: "default".into(),
            priority: Priority::Live,
            deadline_ms: None,
            spec,
        })
        .unwrap();
    // Wait for the job to actually start, then cancel it.
    loop {
        match client.recv().unwrap() {
            Some(WireMessage::Started { tag: 11, .. }) => break,
            Some(_) => continue,
            None => panic!("stream ended before Started"),
        }
    }
    client.send(&WireMessage::Cancel { tag: 11 }).unwrap();
    let partial = loop {
        match client.recv().unwrap() {
            Some(WireMessage::Cancelled { tag: 11, partial }) => break partial,
            Some(WireMessage::Round { .. }) => continue,
            other => panic!("expected Cancelled, got {other:?}"),
        }
    };
    assert!(
        partial.rounds_completed < 500,
        "cancellation should land mid-cell ({} rounds ran)",
        partial.rounds_completed
    );
    client.send(&WireMessage::Goodbye).unwrap();
    server.shutdown();
}

#[test]
fn wrong_version_and_unknown_tags_get_protocol_error_replies() {
    let server = spawn_server(1);

    // A frame from protocol version 3: the server must answer with a
    // structured ProtocolError frame, then close.
    let mut bytes = encode_frame(&WireMessage::Goodbye);
    bytes[4..6].copy_from_slice(&3u16.to_le_bytes());
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&bytes).unwrap();
    let mut reader = FrameReader::new(raw.try_clone().unwrap());
    match reader.read_message().unwrap() {
        Some(WireMessage::ProtocolError { message }) => {
            assert!(
                message.contains("version"),
                "error should name the cause: {message}"
            );
        }
        other => panic!("expected ProtocolError, got {other:?}"),
    }
    assert!(matches!(reader.read_message(), Ok(None)), "then EOF");

    // A server-to-client tag sent by a client is a protocol violation.
    let mut bytes = encode_frame(&WireMessage::Goodbye);
    bytes[6] = 0x83; // Round — server-only
    let body_end = bytes.len() - TRAILER_LEN;
    let crc = crc32(&bytes[..body_end]).to_le_bytes();
    bytes[body_end..].copy_from_slice(&crc);
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&bytes).unwrap();
    let mut reader = FrameReader::new(raw.try_clone().unwrap());
    assert!(matches!(
        reader.read_message().unwrap(),
        Some(WireMessage::ProtocolError { .. })
    ));
    assert!(matches!(reader.read_message(), Ok(None)));

    server.shutdown();
}

#[test]
fn an_invalid_spec_fails_cleanly_without_becoming_a_job() {
    let server = spawn_server(1);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("bad-spec").unwrap();

    // MissingLink needs ≥ 4 devices; 3 cannot expand.
    let mut spec = smoke_specs(1).remove(0);
    spec.n_devices = 3;
    spec.condition = uw_eval::LinkProfile::MissingLink;
    client
        .send(&WireMessage::Submit {
            tag: 21,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: None,
            spec,
        })
        .unwrap();
    match client.recv().unwrap() {
        Some(WireMessage::Failed { tag, reason, .. }) => {
            assert_eq!(tag, 21);
            assert!(!reason.is_empty());
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // The connection is still healthy: a valid job afterwards completes.
    client
        .send(&WireMessage::Submit {
            tag: 22,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: None,
            spec: smoke_specs(1).remove(0),
        })
        .unwrap();
    loop {
        match client.recv().unwrap() {
            Some(WireMessage::Finalized { tag: 22, .. }) => break,
            Some(_) => continue,
            None => panic!("stream closed before the valid job finished"),
        }
    }
    client.send(&WireMessage::Goodbye).unwrap();
    server.shutdown();
}

#[test]
fn deadlines_travel_the_wire_and_shed_as_rejections() {
    let server = spawn_server(1);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("deadline-client").unwrap();

    // Pin the single shard with a long job first...
    let mut long = smoke_specs(1).remove(0);
    long.rounds = 60;
    client
        .send(&WireMessage::Submit {
            tag: 1,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: None,
            spec: long,
        })
        .unwrap();
    // ...then a job whose 1 ms budget expires while it queues behind it.
    client
        .send(&WireMessage::Submit {
            tag: 2,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: Some(1),
            spec: smoke_specs(1).remove(0),
        })
        .unwrap();

    let mut saw_rejected = false;
    let mut saw_long_finalized = false;
    while !(saw_rejected && saw_long_finalized) {
        match client.recv().unwrap() {
            Some(WireMessage::Rejected {
                tag: 2,
                tenant,
                reason,
                ..
            }) => {
                assert_eq!(tenant, "default");
                assert!(matches!(reason, RejectReason::DeadlineExpired { .. }));
                saw_rejected = true;
            }
            Some(WireMessage::Finalized { tag: 1, .. }) => saw_long_finalized = true,
            Some(WireMessage::Started { tag, .. }) => {
                assert_ne!(tag, 2, "a shed job must never start");
            }
            Some(_) => continue,
            None => panic!("stream closed early"),
        }
    }
    client.send(&WireMessage::Goodbye).unwrap();
    server.shutdown();
}

#[test]
fn recording_jobs_resolve_through_the_server_registry() {
    use uw_core::config::{Fidelity, NumericPath};
    use uw_eval::replay::{fixture_cell, record_cell, FIXTURE_ROUNDS};
    use uw_eval::{import_campaign, ImportParams, RenderOptions};

    // Import a rendered field recording once, server-side; the audio
    // never crosses the socket — jobs reference it by name.
    let cell = fixture_cell().unwrap();
    let recording = record_cell(&cell).unwrap();
    let wav = uw_eval::render_campaign_wav(&recording, &RenderOptions::default()).unwrap();
    let params = ImportParams::new(uw_core::prelude::EnvironmentKind::Dock, 5, 1);
    let (campaign, _) = import_campaign(&wav, &params).unwrap();
    let campaign = std::sync::Arc::new(campaign);

    let server = spawn_server(1);
    let name = server
        .register_recording("dock-campaign", campaign.clone())
        .expect("server is live");
    assert_eq!(name, "dock-campaign");

    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("recording-client").unwrap();

    let spec = JobSpec {
        environment: campaign.environment,
        n_devices: campaign.n_devices as u32,
        condition: campaign.condition,
        mobility: campaign.mobility,
        numeric_path: NumericPath::F64,
        fidelity: Fidelity::Hybrid,
        seed: campaign.seed,
        rounds: campaign.rounds as u32,
        faults: None,
        recording: Some("dock-campaign".into()),
    };

    // An unknown recording name fails before becoming a job.
    let mut unknown = spec.clone();
    unknown.recording = Some("nonexistent".into());
    client
        .send(&WireMessage::Submit {
            tag: 1,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: None,
            spec: unknown,
        })
        .unwrap();
    match client.recv().unwrap() {
        Some(WireMessage::Failed { tag: 1, reason, .. }) => {
            assert!(reason.contains("nonexistent"), "unattributed: {reason}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // A spec that disagrees with the campaign's manifest axes fails too.
    let mut mismatched = spec.clone();
    mismatched.seed = 999;
    mismatched.rounds = 50;
    client
        .send(&WireMessage::Submit {
            tag: 2,
            tenant: "default".into(),
            priority: Priority::Replay,
            deadline_ms: None,
            spec: mismatched,
        })
        .unwrap();
    match client.recv().unwrap() {
        Some(WireMessage::Failed { tag: 2, reason, .. }) => {
            assert!(reason.contains("seed"), "unattributed: {reason}");
            assert!(reason.contains("rounds"), "unattributed: {reason}");
        }
        other => panic!("expected Failed, got {other:?}"),
    }

    // The matching spec runs against the recorded audio and streams the
    // import cell's events.
    client
        .send(&WireMessage::Submit {
            tag: 3,
            tenant: "default".into(),
            priority: Priority::Live,
            deadline_ms: None,
            spec,
        })
        .unwrap();
    match client.recv().unwrap() {
        Some(WireMessage::Started {
            tag: 3,
            cell_id,
            rounds,
        }) => {
            assert_eq!(cell_id, "dock/5dev/clear/static/import/s1");
            assert_eq!(rounds, FIXTURE_ROUNDS as u64);
        }
        other => panic!("expected Started, got {other:?}"),
    }
    let report = loop {
        match client.recv().unwrap() {
            Some(WireMessage::Finalized { tag: 3, report }) => break report,
            Some(WireMessage::Round { tag: 3, .. }) => continue,
            other => panic!("expected Round/Finalized, got {other:?}"),
        }
    };
    assert_eq!(report.id, "dock/5dev/clear/static/import/s1");
    assert_eq!(report.source, "import");
    assert_eq!(report.rounds_completed, FIXTURE_ROUNDS);
    assert_eq!(report.rounds_failed, 0);

    client.send(&WireMessage::Goodbye).unwrap();
    server.shutdown();
}

#[test]
fn split_client_halves_work_from_different_threads() {
    // The bench's fleet mode drives submissions and event draining from
    // separate threads over one connection; pin that pattern here.
    let server = spawn_server(2);
    let mut client = TcpClient::connect(server.local_addr()).unwrap();
    client.hello("split-client").unwrap();
    let (mut tx, mut rx) = client.split();

    let specs = smoke_specs(2);
    let n = 6usize;
    let writer = std::thread::spawn(move || {
        for i in 0..n {
            tx.send(&WireMessage::Submit {
                tag: i as u64,
                tenant: format!("t{}", i % 3),
                priority: Priority::Replay,
                deadline_ms: None,
                spec: specs[i % specs.len()].clone(),
            })
            .unwrap();
        }
        tx.send(&WireMessage::Goodbye).unwrap();
        tx
    });

    let mut finalized = 0;
    loop {
        match rx.recv().unwrap() {
            Some(WireMessage::Finalized { .. }) => finalized += 1,
            Some(_) => continue,
            None => break, // server closed after Goodbye drained
        }
    }
    writer.join().unwrap();
    assert_eq!(finalized, n);
    server.shutdown();
}
