//! Codec round-trip properties for the wire format.
//!
//! Every frame type must encode→decode→encode *byte-exact* across
//! randomized payloads — including non-finite floats, which travel as
//! raw IEEE-754 bits (`NaN != NaN` under `PartialEq`, so byte equality
//! of the re-encoded frame is the honest identity check). The stream
//! reader must reassemble frames from arbitrarily split reads (1-byte
//! trickles, odd chunk sizes), payloads at the size cap must round-trip,
//! and version-mismatch / unknown-tag inputs must yield their structured
//! errors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::Read;
use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::{EnvironmentKind, FaultSchedule};
use uw_eval::report::ErrorSummary;
use uw_eval::runner::RoundSummary;
use uw_eval::{CellReport, LinkProfile, MobilityProfile};
use uw_serve::job::RejectReason;
use uw_serve::tenant::Priority;
use uw_serve::wire::{
    crc32, decode_frame, encode_frame, FrameReader, JobSpec, WireError, WireMessage, HEADER_LEN,
    MAX_PAYLOAD, TRAILER_LEN, WIRE_VERSION,
};

// ---------------------------------------------------------------------
// Random message construction (driven by a seed the property generates,
// so every case is reproducible from the printed seed).
// ---------------------------------------------------------------------

fn arb_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..max_len.max(1));
    (0..len)
        .map(|_| {
            // Mix ASCII with multi-byte code points to exercise UTF-8.
            match rng.gen_range(0u32..10) {
                0 => 'π',
                1 => '/',
                2 => '"',
                _ => char::from(rng.gen_range(0x20u32..0x7F) as u8),
            }
        })
        .collect()
}

/// Any f64 bit pattern — NaNs, infinities, subnormals included.
fn arb_f64(rng: &mut StdRng) -> f64 {
    f64::from_bits(rng.next_u64())
}

fn arb_spec(rng: &mut StdRng) -> JobSpec {
    let environment = EnvironmentKind::ALL[rng.gen_range(0usize..6)];
    let condition = match rng.gen_range(0u32..4) {
        0 => LinkProfile::Clear,
        1 => LinkProfile::Occluded {
            bias_m: arb_f64(rng),
        },
        2 => LinkProfile::MissingLink,
        _ => LinkProfile::DeviceChurn {
            after_round: rng.gen_range(0usize..1000),
        },
    };
    let mobility = match rng.gen_range(0u32..4) {
        0 => MobilityProfile::Static,
        1 => MobilityProfile::RopeOscillation {
            speed_cm_s: arb_f64(rng),
        },
        2 => MobilityProfile::Swimmer {
            speed_cm_s: arb_f64(rng),
        },
        _ => MobilityProfile::CurrentDrift {
            speed_cm_s: arb_f64(rng),
        },
    };
    JobSpec {
        environment,
        n_devices: rng.gen_range(0u32..64),
        condition,
        mobility,
        numeric_path: [NumericPath::F64, NumericPath::F32, NumericPath::Q15]
            [rng.gen_range(0usize..3)],
        fidelity: [Fidelity::Statistical, Fidelity::Hybrid][rng.gen_range(0usize..2)],
        seed: rng.next_u64(),
        rounds: rng.gen_range(0u32..10_000),
        faults: if rng.gen_bool(0.3) {
            Some(arb_string(rng, 60))
        } else {
            None
        },
        recording: if rng.gen_bool(0.2) {
            Some(arb_string(rng, 40))
        } else {
            None
        },
    }
}

fn arb_summary(rng: &mut StdRng) -> RoundSummary {
    RoundSummary {
        round: rng.gen_range(0usize..100_000),
        ok: rng.gen::<bool>(),
        median_error_2d_m: arb_f64(rng),
        dropped_links: rng.gen_range(0usize..100),
        flipping_correct: rng.gen::<bool>(),
    }
}

fn arb_report(rng: &mut StdRng) -> CellReport {
    let cdf_len = rng.gen_range(0usize..20);
    CellReport {
        id: arb_string(rng, 80),
        environment: arb_string(rng, 20),
        n_devices: rng.gen_range(0usize..100),
        condition: arb_string(rng, 20),
        mobility: arb_string(rng, 20),
        numeric_path: arb_string(rng, 8),
        source: arb_string(rng, 8),
        seed: rng.next_u64(),
        rounds: rng.gen_range(0usize..100_000),
        rounds_completed: rng.gen_range(0usize..100_000),
        rounds_failed: rng.gen_range(0usize..100_000),
        error_2d: ErrorSummary {
            count: rng.gen_range(0usize..1_000_000),
            median: arb_f64(rng),
            p90: arb_f64(rng),
            p99: arb_f64(rng),
            mean: arb_f64(rng),
            max: arb_f64(rng),
        },
        error_cdf: (0..cdf_len).map(|_| (arb_f64(rng), arb_f64(rng))).collect(),
        ranging_median_m: arb_f64(rng),
        flip_rate: arb_f64(rng),
        mean_dropped_links: arb_f64(rng),
        churn_excluded: rng.gen_range(0usize..10),
        latency_acoustic_s: arb_f64(rng),
        latency_total_s: arb_f64(rng),
    }
}

fn arb_reason(rng: &mut StdRng) -> RejectReason {
    match rng.gen_range(0u32..3) {
        0 => RejectReason::AdmissionDenied {
            tenant: arb_string(rng, 30),
        },
        1 => RejectReason::DeadlineExpired {
            late_ms: rng.next_u64(),
        },
        _ => RejectReason::Overloaded {
            queued: rng.gen_range(0usize..100_000),
            capacity: rng.gen_range(0usize..100_000),
        },
    }
}

/// One random message of any of the twelve frame types.
fn arb_message(rng: &mut StdRng) -> WireMessage {
    match rng.gen_range(0u32..12) {
        0 => WireMessage::Hello {
            client: arb_string(rng, 40),
        },
        1 => WireMessage::HelloAck {
            version: rng.next_u64() as u16,
            max_payload: rng.next_u64() as u32,
        },
        2 => WireMessage::Submit {
            tag: rng.next_u64(),
            tenant: arb_string(rng, 30),
            priority: if rng.gen::<bool>() {
                Priority::Live
            } else {
                Priority::Replay
            },
            deadline_ms: if rng.gen::<bool>() {
                Some(rng.next_u64())
            } else {
                None
            },
            spec: arb_spec(rng),
        },
        3 => WireMessage::Cancel {
            tag: rng.next_u64(),
        },
        4 => WireMessage::Goodbye,
        5 => WireMessage::Started {
            tag: rng.next_u64(),
            cell_id: arb_string(rng, 80),
            rounds: rng.next_u64(),
        },
        6 => WireMessage::Round {
            tag: rng.next_u64(),
            cell_id: arb_string(rng, 80),
            summary: arb_summary(rng),
        },
        7 => WireMessage::Finalized {
            tag: rng.next_u64(),
            report: arb_report(rng),
        },
        8 => WireMessage::Cancelled {
            tag: rng.next_u64(),
            partial: arb_report(rng),
        },
        9 => WireMessage::Failed {
            tag: rng.next_u64(),
            cell_id: arb_string(rng, 80),
            reason: arb_string(rng, 120),
        },
        10 => WireMessage::Rejected {
            tag: rng.next_u64(),
            cell_id: arb_string(rng, 80),
            tenant: arb_string(rng, 30),
            reason: arb_reason(rng),
        },
        _ => WireMessage::ProtocolError {
            message: arb_string(rng, 120),
        },
    }
}

/// A reader that hands out at most `chunk` bytes per `read()` call, to
/// model TCP segmentation.
struct ChunkedReader {
    data: Vec<u8>,
    pos: usize,
    chunk: usize,
}

impl Read for ChunkedReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_frame_type_round_trips_byte_exact(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = arb_message(&mut rng);
        let bytes = encode_frame(&msg);
        let (decoded, consumed) = match decode_frame(&bytes) {
            Ok(ok) => ok,
            Err(e) => return Err(TestCaseError::fail(format!("decode failed: {e} for {msg:?}"))),
        };
        prop_assert_eq!(consumed, bytes.len());
        // Byte-exact re-encode — the identity that survives NaN payloads.
        let reencoded = encode_frame(&decoded);
        prop_assert_eq!(&reencoded, &bytes);
        // And for messages without floats the values compare too.
        match (&msg, &decoded) {
            (WireMessage::Hello { .. }, _)
            | (WireMessage::HelloAck { .. }, _)
            | (WireMessage::Cancel { .. }, _)
            | (WireMessage::Goodbye, _)
            | (WireMessage::Failed { .. }, _)
            | (WireMessage::ProtocolError { .. }, _) => {
                prop_assert_eq!(&decoded, &msg);
            }
            _ => {}
        }
    }

    #[test]
    fn split_reads_reassemble_frames(seed in any::<u64>(), chunk in 1usize..7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msgs: Vec<WireMessage> = (0..3).map(|_| arb_message(&mut rng)).collect();
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend_from_slice(&encode_frame(m));
        }
        // Both a 1-byte trickle and the generated odd chunk size.
        for chunk in [1usize, chunk] {
            let mut reader = FrameReader::new(ChunkedReader {
                data: stream.clone(),
                pos: 0,
                chunk,
            });
            for expected in &msgs {
                let got = match reader.read_message() {
                    Ok(Some(m)) => m,
                    other => {
                        return Err(TestCaseError::fail(format!(
                            "chunk={chunk}: expected a frame, got {other:?}"
                        )))
                    }
                };
                prop_assert_eq!(encode_frame(&got), encode_frame(expected));
            }
            prop_assert!(matches!(reader.read_message(), Ok(None)));
        }
    }

    #[test]
    fn version_mismatch_is_a_structured_error(seed in any::<u64>(), version in 0u32..0xFFFF) {
        let mut rng = StdRng::seed_from_u64(seed);
        let version = version as u16;
        // Skip the one version that is actually ours.
        prop_assume!(version != WIRE_VERSION);
        let mut bytes = encode_frame(&arb_message(&mut rng));
        bytes[4..6].copy_from_slice(&version.to_le_bytes());
        // The version field is checked before the CRC, so a frame from a
        // different protocol era gets the right error even though its
        // CRC convention might differ too.
        match decode_frame(&bytes) {
            Err(WireError::UnsupportedVersion { got }) => prop_assert_eq!(got, version),
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected UnsupportedVersion, got {other:?}"
                )))
            }
        }
    }

    #[test]
    fn unknown_tags_are_a_structured_error(seed in any::<u64>(), tag in 0u32..255) {
        let known = [0x01u8, 0x02, 0x03, 0x04, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0xFE];
        let tag = tag as u8;
        prop_assume!(!known.contains(&tag));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut bytes = encode_frame(&arb_message(&mut rng));
        bytes[6] = tag;
        // The tag is under the CRC, so recompute the trailer: the error
        // must come from the *tag*, not from the checksum.
        let body_end = bytes.len() - TRAILER_LEN;
        let crc = crc32(&bytes[..body_end]).to_le_bytes();
        bytes[body_end..].copy_from_slice(&crc);
        match decode_frame(&bytes) {
            Err(WireError::UnknownTag { tag: got }) => prop_assert_eq!(got, tag),
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected UnknownTag, got {other:?}"
                )))
            }
        }
    }

    #[test]
    fn valid_specs_survive_the_cell_round_trip(seed in any::<u64>()) {
        // A spec that expands must come back identical from the expanded
        // cell — this is what makes the TCP path reproduce batch cells.
        let mut rng = StdRng::seed_from_u64(seed);
        let environment = EnvironmentKind::ALL[rng.gen_range(0usize..6)];
        let condition = match rng.gen_range(0u32..4) {
            0 => LinkProfile::Clear,
            1 => LinkProfile::Occluded { bias_m: 12.0 },
            2 => LinkProfile::MissingLink,
            _ => LinkProfile::DeviceChurn { after_round: rng.gen_range(0usize..3) },
        };
        let mobility = match rng.gen_range(0u32..4) {
            0 => MobilityProfile::Static,
            1 => MobilityProfile::RopeOscillation { speed_cm_s: 40.0 },
            2 => MobilityProfile::Swimmer { speed_cm_s: 40.0 },
            _ => MobilityProfile::CurrentDrift { speed_cm_s: 30.0 },
        };
        let faults = if rng.gen_bool(0.25) {
            // Canonicalize through parse→to_spec so the string matches
            // what from_cell re-derives.
            Some(FaultSchedule::parse("seed=7;loss:1..2:*:0.3").unwrap().to_spec())
        } else {
            None
        };
        let spec = JobSpec {
            environment,
            n_devices: rng.gen_range(4u32..8),
            condition,
            mobility,
            numeric_path: NumericPath::F64,
            fidelity: Fidelity::Statistical,
            seed: rng.gen_range(1u64..100),
            rounds: rng.gen_range(4u32..8),
            faults,
            recording: None,
        };
        let cell = match spec.to_cell() {
            Ok(cell) => cell,
            Err(e) => return Err(TestCaseError::fail(format!("expand failed: {e}"))),
        };
        let back = JobSpec::from_cell(&cell).expect("simulated cells have wire specs");
        prop_assert_eq!(&back, &spec);
        // And a second expansion is the identical cell (id + scenario).
        let again = back.to_cell().unwrap();
        prop_assert_eq!(&again.id, &cell.id);
        prop_assert_eq!(again.rounds, cell.rounds);
        prop_assert_eq!(again.seed, cell.seed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn payloads_at_the_size_cap_round_trip(extra in 0usize..64) {
        // A ProtocolError payload is 4 (length prefix) + message bytes;
        // push it to within `extra` bytes of the cap, and once exactly
        // onto it.
        let len = MAX_PAYLOAD as usize - 4 - extra;
        let msg = WireMessage::ProtocolError {
            message: "x".repeat(len),
        };
        let bytes = encode_frame(&msg);
        prop_assert_eq!(bytes.len(), HEADER_LEN + 4 + len + TRAILER_LEN);
        let (decoded, consumed) = decode_frame(&bytes).unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(&decoded, &msg);
        // Through the incremental reader too, in coarse chunks.
        let mut reader = FrameReader::new(ChunkedReader {
            data: bytes,
            pos: 0,
            chunk: 8192,
        });
        prop_assert_eq!(reader.read_message().unwrap(), Some(msg));
    }
}
