//! Integration tests of the serving layer against the batch runner.
//!
//! The three acceptance properties of the serving PR live here:
//!
//! 1. **Determinism** — streaming a mini-matrix through the sharded
//!    server reconstructs an `EvalReport` byte-identical to the batch
//!    rayon runner, regardless of shard count / completion order.
//! 2. **Backpressure** — bounded shard queues block producers instead of
//!    dropping jobs.
//! 3. **Cancellation** — a job cancelled mid-cell finalizes partial
//!    statistics and leaves the pool serving subsequent jobs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::EnvironmentKind;
use uw_eval::runner::run_matrix;
use uw_eval::{LinkProfile, MobilityProfile, ScenarioMatrix, Topology};
use uw_serve::{serve_matrix, CellUpdate, JobOutcome, LocalizationJob, ServeConfig, Server};

/// Dock/boathouse × 4/5 devices: four quick statistical cells.
fn four_cell_matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock, EnvironmentKind::Boathouse],
        topologies: vec![Topology::FourDevice, Topology::FiveDevice],
        conditions: vec![LinkProfile::Clear],
        mobilities: vec![MobilityProfile::Static],
        numeric_paths: vec![NumericPath::F64],
        faults: vec![None],
        seeds: vec![1],
        recordings: vec![],
        rounds_per_cell: 3,
        fidelity: Fidelity::Statistical,
    }
}

#[test]
fn streamed_matrix_matches_batch_byte_for_byte() {
    let matrix = four_cell_matrix();
    assert_eq!(matrix.cell_count(), 4);
    let batch_json = run_matrix(&matrix).unwrap().to_json();
    // Several shard counts: 1 (fully serial), 3 (cells complete out of
    // order and must be re-merged by submission order).
    for shards in [1, 3] {
        let streamed = serve_matrix(&matrix, ServeConfig::with_shards(shards)).unwrap();
        assert_eq!(
            streamed.to_json(),
            batch_json,
            "streamed report diverged from batch with {shards} shard(s)"
        );
    }
}

#[test]
fn per_job_event_order_is_started_rounds_terminal() {
    let matrix = four_cell_matrix();
    let cells = matrix.expand().unwrap();
    let (server, updates) = Server::start(ServeConfig::with_shards(2));
    let handles: Vec<_> = cells
        .into_iter()
        .map(|c| server.submit(LocalizationJob::Cell(c)))
        .collect();
    for h in &handles {
        assert!(h.wait().is_completed());
    }
    server.shutdown();

    let mut per_job: std::collections::BTreeMap<_, Vec<CellUpdate>> = Default::default();
    while let Some(update) = updates.recv() {
        per_job.entry(update.job()).or_default().push(update);
    }
    assert_eq!(per_job.len(), handles.len());
    for (job, events) in per_job {
        assert!(
            matches!(events[0], CellUpdate::CellStarted { rounds: 3, .. }),
            "{job}: first event {:?}",
            events[0]
        );
        assert_eq!(events.len(), 5, "{job}: started + 3 rounds + terminal");
        for (k, event) in events[1..4].iter().enumerate() {
            match event {
                CellUpdate::RoundCompleted { summary, .. } => {
                    assert_eq!(summary.round, k);
                    assert!(summary.ok);
                }
                other => panic!("{job}: expected round {k}, got {other:?}"),
            }
        }
        assert!(matches!(events[4], CellUpdate::CellFinalized { .. }));
    }
}

#[test]
fn scenario_and_stream_jobs_run_outside_any_matrix() {
    let (server, _updates) = Server::start(ServeConfig::with_shards(1));
    let scenario = uw_core::Scenario::dock_five_devices(11);
    let handle = server.submit(LocalizationJob::Scenario {
        scenario: scenario.clone(),
        rounds: 2,
    });
    let outcome = handle.wait();
    let report = outcome.report().expect("scenario job yields a report");
    assert_eq!(report.rounds_completed, 2);
    assert_eq!(report.id, scenario.name());

    // A stream job with a max-rounds safety stop runs like a fixed job
    // when never cancelled.
    let handle = server.submit(LocalizationJob::Stream {
        scenario,
        max_rounds: 2,
    });
    assert!(handle.wait().is_completed());
    let stats = server.shutdown();
    assert_eq!(stats.iter().map(|s| s.jobs).sum::<usize>(), 2);
}

#[test]
fn bounded_queue_blocks_producers_and_drops_nothing() {
    // One shard with a one-slot queue: job A occupies the worker, job B
    // fills the queue, so submitting job C must block until A finishes
    // and the worker pops B.
    let (server, _updates) = Server::start(ServeConfig {
        shards: 1,
        queue_capacity: 1,
    });
    let server = Arc::new(server);
    // Long enough that the job cannot finish inside the sleeps below even
    // in release (~0.5 ms/round → ~2 s); the test cancels it right after
    // the assertions, so the actual runtime stays ~0.2 s.
    let mut long_matrix = four_cell_matrix();
    long_matrix.rounds_per_cell = 4000;
    let long_cell = long_matrix.expand().unwrap().remove(0);
    let mut quick_matrix = four_cell_matrix();
    quick_matrix.rounds_per_cell = 1;
    let quick_cell = quick_matrix.expand().unwrap().remove(1);

    let a = server.submit(LocalizationJob::Cell(long_cell.clone()));
    // Give the worker a moment to pop A so B lands in the empty queue.
    std::thread::sleep(Duration::from_millis(50));
    let b = server.submit(LocalizationJob::Cell(quick_cell.clone()));

    let c_submitted = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&c_submitted);
    let submitter = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let c = server.submit(LocalizationJob::Cell(quick_cell)); // must block: queue full
            flag.store(true, Ordering::SeqCst);
            c.wait()
        })
    };
    std::thread::sleep(Duration::from_millis(100));
    assert!(
        !c_submitted.load(Ordering::SeqCst),
        "submit did not backpressure on a full shard queue"
    );
    assert!(!a.is_finished(), "long job finished before the check");

    // Unblock: cancel the long job; the worker finalizes it, pops B, and
    // the blocked producer gets its slot.
    a.cancel();
    let c_outcome = submitter.join().unwrap();
    assert!(c_submitted.load(Ordering::SeqCst));

    // No drops: every job reached a terminal state.
    assert!(matches!(a.wait(), JobOutcome::Cancelled(_)));
    assert!(b.wait().is_completed());
    assert!(c_outcome.is_completed());
    let server = Arc::into_inner(server).unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].jobs, 3);
    assert_eq!(stats[0].cancelled, 1);
}

#[test]
fn mid_cell_cancellation_leaves_the_pool_reusable() {
    let (server, updates) = Server::start(ServeConfig::with_shards(1));
    let mut matrix = four_cell_matrix();
    matrix.rounds_per_cell = 400;
    let long_cell = matrix.expand().unwrap().remove(0);
    let total_rounds = long_cell.rounds;
    let handle = server.submit(LocalizationJob::Cell(long_cell));

    // Wait until at least two rounds have streamed, then cancel mid-cell.
    let mut rounds_seen = 0;
    while rounds_seen < 2 {
        match updates.recv().expect("stream open") {
            CellUpdate::RoundCompleted { summary, .. } => {
                assert!(summary.ok);
                rounds_seen += 1;
            }
            CellUpdate::CellStarted { .. } => {}
            other => panic!("unexpected event before cancel: {other:?}"),
        }
    }
    handle.cancel();
    let outcome = handle.wait();
    let partial = match &outcome {
        JobOutcome::Cancelled(partial) => partial,
        other => panic!("expected cancellation, got {other:?}"),
    };
    assert!(partial.rounds_completed >= 2);
    assert!(
        partial.rounds_completed < total_rounds,
        "cancellation did not cut the cell short"
    );
    // Partial statistics are real aggregates of the rounds that ran.
    assert_eq!(
        partial.error_2d.count,
        partial.rounds_completed * (partial.n_devices - 1)
    );
    assert!(partial.error_2d.median.is_finite());

    // The pool is immediately reusable: a fresh job on the same shard
    // completes normally.
    let mut quick = four_cell_matrix();
    quick.rounds_per_cell = 2;
    let fresh = server.submit(LocalizationJob::Cell(quick.expand().unwrap().remove(3)));
    let outcome = fresh.wait();
    assert!(outcome.is_completed());
    assert_eq!(outcome.report().unwrap().rounds_completed, 2);

    let stats = server.shutdown();
    assert_eq!(stats[0].jobs, 2);
    assert_eq!(stats[0].cancelled, 1);
    // The terminal event of the cancelled job carries the same partial.
    let mut saw_cancelled = false;
    while let Some(update) = updates.recv() {
        if let CellUpdate::JobCancelled { partial: p, .. } = update {
            assert_eq!(&p, partial);
            saw_cancelled = true;
        }
    }
    assert!(saw_cancelled);
}

#[test]
fn graceful_shutdown_drains_queued_jobs() {
    let (server, updates) = Server::start(ServeConfig {
        shards: 1,
        queue_capacity: 8,
    });
    let mut matrix = four_cell_matrix();
    matrix.rounds_per_cell = 1;
    let handles: Vec<_> = matrix
        .expand()
        .unwrap()
        .into_iter()
        .map(|c| server.submit(LocalizationJob::Cell(c)))
        .collect();
    // Shut down immediately: everything already queued must still run.
    let stats = server.shutdown();
    assert_eq!(stats[0].jobs, 4);
    for h in &handles {
        assert!(h.is_finished());
        assert!(h.wait().is_completed());
    }
    // The stream terminates after delivering every event.
    let mut terminals = 0;
    while let Some(update) = updates.recv() {
        if update.is_terminal() {
            terminals += 1;
        }
    }
    assert_eq!(terminals, 4);
}

#[test]
fn replay_cells_serve_identically_to_batch() {
    // A replay cell — recorded audio standing in for the simulator — is
    // just another EvalCell to the serving layer: the job carries its
    // decoded captures, shards attach them to their sessions, and the
    // streamed report is byte-identical to the batch run of the same
    // replay cell.
    let hybrid = ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Clear],
        mobilities: vec![MobilityProfile::Static],
        numeric_paths: vec![NumericPath::F64],
        faults: vec![None],
        seeds: vec![1],
        recordings: vec![],
        rounds_per_cell: 1,
        fidelity: Fidelity::Hybrid,
    };
    let recording = uw_eval::record_cell(&hybrid.expand().unwrap()[0]).unwrap();
    let replay_cell = uw_eval::EvalCell::from_recording(&recording).unwrap();
    assert_eq!(replay_cell.id, "dock/5dev/clear/static/replay/s1");

    let batch = uw_eval::runner::run_cell(&replay_cell).unwrap();
    let (server, updates) = Server::start(ServeConfig::with_shards(2));
    let handle = server.submit(LocalizationJob::Cell(replay_cell));
    let outcome = handle.wait();
    server.shutdown();
    drop(updates);
    let streamed = outcome.report().expect("replay job completes").clone();
    assert_eq!(streamed, batch);
    assert_eq!(streamed.rounds_completed, 1);
}
