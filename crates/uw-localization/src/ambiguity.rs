//! Rotation and flipping ambiguity resolution (§2.1.4).
//!
//! SMACOF recovers the network *shape*; the absolute pose in the horizontal
//! plane is still free to rotate about the leader and to mirror across any
//! line. Two pieces of side information pin it down:
//!
//! * **Rotation** — the dive leader physically points their device at a
//!   visible diver (device 1). After translating the topology so the leader
//!   sits at the origin, we rotate it so the bearing of device 1 equals the
//!   leader's pointing azimuth.
//! * **Flipping** — the remaining mirror ambiguity (across the
//!   leader→device-1 line) is resolved by a vote over the leader's
//!   dual-microphone observations: for every other device `i`, the sign of
//!   the inter-microphone arrival difference says which side of the pointing
//!   line the device is on. The configuration (original or mirrored) whose
//!   geometric sides agree with more of the microphone signs wins.
//!
//! ### Sign convention
//!
//! `side_signs[i] = +1` means the leader's *right* microphone (the one
//! offset clockwise from the pointing direction) heard device `i` first,
//! i.e. the device is believed to be on the right-hand side of the pointing
//! line. The geometric side is `sgn((xᵢ−x₀)(y₁−y₀) − (yᵢ−y₀)(x₁−x₀))`,
//! which is +1 exactly when device `i` lies to the right of the ray from
//! the leader towards device 1 — the same formula as the paper's
//! `V({Pᵢ})` voting function.

use crate::matrix::Vec2;
use crate::{LocalizationError, Result};
use serde::{Deserialize, Serialize};

/// Outcome of the ambiguity-resolution stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolvedTopology {
    /// Final 2D positions (leader at the origin, device 1 on the pointing
    /// bearing).
    pub positions: Vec<Vec2>,
    /// True when the mirrored configuration was chosen.
    pub flipped: bool,
    /// The unweighted vote margin `V(chosen) − V(rejected)` of the paper's
    /// ±1 voting function; larger is more confident. Zero when no usable
    /// votes were available. The *decision* uses the margin-weighted vote,
    /// so this can be negative when the plain head-count disagrees with the
    /// weighted outcome — a low-confidence flip worth flagging downstream.
    pub vote_margin: i32,
}

/// Translates the topology so device 0 (the leader) is at the origin and
/// rotates it so device 1 lies at bearing `pointing_azimuth_rad` from the
/// leader (the direction the leader physically points).
pub fn align_to_pointing(positions: &[Vec2], pointing_azimuth_rad: f64) -> Result<Vec<Vec2>> {
    if positions.len() < 2 {
        return Err(LocalizationError::InvalidInput {
            reason: "need at least the leader and the pointed device to align".into(),
        });
    }
    let origin = positions[0];
    let translated: Vec<Vec2> = positions.iter().map(|p| p.sub(&origin)).collect();
    let current_bearing = translated[1].y.atan2(translated[1].x);
    if translated[1].norm() < 1e-9 {
        return Err(LocalizationError::InvalidInput {
            reason: "pointed device coincides with the leader; bearing undefined".into(),
        });
    }
    let rotation = pointing_azimuth_rad - current_bearing;
    Ok(translated.iter().map(|p| p.rotate(rotation)).collect())
}

/// Mirrors a topology across the line through the origin at angle
/// `axis_azimuth_rad` (the leader→device-1 line after alignment).
pub fn mirror_across_pointing(positions: &[Vec2], axis_azimuth_rad: f64) -> Vec<Vec2> {
    positions
        .iter()
        .map(|p| p.reflect_across(axis_azimuth_rad))
        .collect()
}

/// Geometric side sign of device `i` relative to the ray from device 0
/// towards device 1: +1 on the right-hand side, −1 on the left, 0 on the
/// line. This is the `sgn((xᵢ−x₀)(y₁−y₀) − (yᵢ−y₀)(x₁−x₀))` term of the
/// paper's voting function.
pub fn geometric_side(positions: &[Vec2], i: usize) -> i8 {
    let p0 = positions[0];
    let p1 = positions[1];
    let pi = positions[i];
    let cross = (pi.x - p0.x) * (p1.y - p0.y) - (pi.y - p0.y) * (p1.x - p0.x);
    if cross > 1e-12 {
        1
    } else if cross < -1e-12 {
        -1
    } else {
        0
    }
}

/// The paper's voting function `V({Pᵢ})`: agreement between microphone
/// side signs and geometric sides, summed over devices 2..N−1. Devices with
/// no usable microphone sign (`None` or 0) contribute nothing.
pub fn vote(positions: &[Vec2], side_signs: &[Option<i8>]) -> i32 {
    let mut v = 0i32;
    for i in 2..positions.len() {
        let Some(mic_sign) = side_signs.get(i).copied().flatten() else {
            continue;
        };
        if mic_sign == 0 {
            continue;
        }
        let geo = geometric_side(positions, i);
        v += (mic_sign.signum() as i32) * (geo as i32);
    }
    v
}

/// Margin-weighted variant of the voting function: each device's vote is
/// weighted by its (unnormalised) distance from the pointing line — the
/// cross product used by [`geometric_side`]. A device whose estimate sits
/// close to the line carries a near-zero weight, because its *estimated*
/// side is dominated by position noise and would otherwise inject coin-flip
/// votes into the decision.
pub fn weighted_vote(positions: &[Vec2], side_signs: &[Option<i8>]) -> f64 {
    let p0 = positions[0];
    let p1 = positions[1];
    let mut v = 0.0;
    for (i, pi) in positions.iter().enumerate().skip(2) {
        let Some(mic_sign) = side_signs.get(i).copied().flatten() else {
            continue;
        };
        if mic_sign == 0 {
            continue;
        }
        let cross = (pi.x - p0.x) * (p1.y - p0.y) - (pi.y - p0.y) * (p1.x - p0.x);
        v += mic_sign.signum() as f64 * cross;
    }
    v
}

/// Resolves rotation and flipping: aligns the topology to the pointing
/// direction and picks the mirror image that agrees best with the
/// microphone side signs.
///
/// `side_signs[i]` is the leader's dual-microphone observation for device
/// `i` (see the module docs for the convention); entries for devices 0 and
/// 1 are ignored. When no votes are available the unmirrored configuration
/// is returned with `vote_margin = 0`.
pub fn resolve_ambiguities(
    positions: &[Vec2],
    pointing_azimuth_rad: f64,
    side_signs: &[Option<i8>],
) -> Result<ResolvedTopology> {
    if side_signs.len() != positions.len() {
        return Err(LocalizationError::InvalidInput {
            reason: format!(
                "{} side signs for {} devices",
                side_signs.len(),
                positions.len()
            ),
        });
    }
    let aligned = align_to_pointing(positions, pointing_azimuth_rad)?;
    let mirrored = mirror_across_pointing(&aligned, pointing_azimuth_rad);

    let v_original = vote(&aligned, side_signs);
    let v_mirrored = vote(&mirrored, side_signs);

    // Decide with the margin-weighted vote (robust to near-line devices
    // whose estimated side is noise); report the paper's ±1 vote margin.
    let w_original = weighted_vote(&aligned, side_signs);
    let w_mirrored = weighted_vote(&mirrored, side_signs);

    if w_mirrored > w_original {
        Ok(ResolvedTopology {
            positions: mirrored,
            flipped: true,
            vote_margin: v_mirrored - v_original,
        })
    } else {
        Ok(ResolvedTopology {
            positions: aligned,
            flipped: false,
            vote_margin: v_original - v_mirrored,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 5-device topology: leader at origin, device 1 north of it, devices
    /// 2–4 scattered on both sides.
    fn truth() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 7.0),
            Vec2::new(6.0, 10.0), // right of the pointing line
            Vec2::new(-8.0, 4.0), // left
            Vec2::new(3.0, -5.0), // right
        ]
    }

    /// Microphone signs consistent with `truth()` and a leader pointing
    /// north: +1 for right-side devices, −1 for left-side.
    fn truth_signs() -> Vec<Option<i8>> {
        vec![None, None, Some(1), Some(-1), Some(1)]
    }

    #[test]
    fn alignment_puts_leader_at_origin_and_device1_on_bearing() {
        // Start from an arbitrarily rotated/translated copy of the truth.
        let rotated: Vec<Vec2> = truth()
            .iter()
            .map(|p| p.rotate(1.1).add(&Vec2::new(40.0, -17.0)))
            .collect();
        let pointing = std::f64::consts::FRAC_PI_2; // leader points "north"
        let aligned = align_to_pointing(&rotated, pointing).unwrap();
        assert!(aligned[0].norm() < 1e-9);
        let bearing = aligned[1].y.atan2(aligned[1].x);
        assert!((bearing - pointing).abs() < 1e-9);
        // Distances are preserved by the rigid alignment.
        for i in 0..truth().len() {
            for j in (i + 1)..truth().len() {
                let orig = rotated[i].distance(&rotated[j]);
                let now = aligned[i].distance(&aligned[j]);
                assert!((orig - now).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn geometric_side_signs_match_layout() {
        let t = truth();
        assert_eq!(geometric_side(&t, 2), 1);
        assert_eq!(geometric_side(&t, 3), -1);
        assert_eq!(geometric_side(&t, 4), 1);
        // A device exactly on the line has side 0.
        let mut with_online = t.clone();
        with_online.push(Vec2::new(0.0, 3.0));
        assert_eq!(geometric_side(&with_online, 5), 0);
    }

    #[test]
    fn correct_configuration_wins_the_vote() {
        let t = truth();
        let signs = truth_signs();
        let resolved = resolve_ambiguities(&t, std::f64::consts::FRAC_PI_2, &signs).unwrap();
        assert!(!resolved.flipped);
        assert_eq!(resolved.vote_margin, 6); // 3 votes, each worth ±1 → margin 6
        for (a, b) in resolved.positions.iter().zip(t.iter()) {
            assert!((a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
        }
    }

    #[test]
    fn mirrored_input_is_flipped_back() {
        // Feed the solver the mirror image of the truth (what SMACOF might
        // produce); the microphone votes should flip it back.
        let pointing = std::f64::consts::FRAC_PI_2;
        let mirrored_input = mirror_across_pointing(&truth(), pointing);
        let resolved = resolve_ambiguities(&mirrored_input, pointing, &truth_signs()).unwrap();
        assert!(resolved.flipped);
        for (a, b) in resolved.positions.iter().zip(truth().iter()) {
            assert!(
                (a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9,
                "{a:?} vs {b:?}"
            );
        }
    }

    #[test]
    fn single_wrong_vote_is_outvoted() {
        // Device 2's sign is wrong (multipath flipped it) but devices 3 and 4
        // still carry the vote — this is the 90.1% → 100% improvement the
        // paper reports when using all devices.
        let mut signs = truth_signs();
        signs[2] = Some(-1);
        let resolved = resolve_ambiguities(&truth(), std::f64::consts::FRAC_PI_2, &signs).unwrap();
        assert!(!resolved.flipped);
        assert_eq!(resolved.vote_margin, 2);
    }

    #[test]
    fn single_voter_can_be_wrong() {
        // With only one (wrong) voter the result flips — the failure mode
        // that limits single-device disambiguation to ~90% in the paper.
        let signs = vec![None, None, Some(-1), None, None];
        let resolved = resolve_ambiguities(&truth(), std::f64::consts::FRAC_PI_2, &signs).unwrap();
        assert!(resolved.flipped);
    }

    #[test]
    fn no_votes_defaults_to_unflipped() {
        let signs = vec![None; 5];
        let resolved = resolve_ambiguities(&truth(), std::f64::consts::FRAC_PI_2, &signs).unwrap();
        assert!(!resolved.flipped);
        assert_eq!(resolved.vote_margin, 0);
        // Zero-valued signs are also ignored.
        let signs = vec![None, None, Some(0), Some(0), Some(0)];
        let resolved = resolve_ambiguities(&truth(), std::f64::consts::FRAC_PI_2, &signs).unwrap();
        assert_eq!(resolved.vote_margin, 0);
    }

    #[test]
    fn error_cases() {
        let t = truth();
        assert!(resolve_ambiguities(&t, 0.0, &[None; 3]).is_err());
        assert!(align_to_pointing(&t[..1], 0.0).is_err());
        // Device 1 on top of the leader: bearing undefined.
        let degenerate = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 1.0),
        ];
        assert!(align_to_pointing(&degenerate, 0.0).is_err());
    }

    #[test]
    fn mirror_is_an_involution_and_preserves_the_axis() {
        let t = truth();
        let axis = 0.3;
        let once = mirror_across_pointing(&t, axis);
        let twice = mirror_across_pointing(&once, axis);
        for (a, b) in twice.iter().zip(t.iter()) {
            assert!((a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
        }
        // A point on the axis is unchanged.
        let on_axis = vec![Vec2::new(axis.cos() * 5.0, axis.sin() * 5.0)];
        let mirrored = mirror_across_pointing(&on_axis, axis);
        assert!((mirrored[0].x - on_axis[0].x).abs() < 1e-9);
        assert!((mirrored[0].y - on_axis[0].y).abs() < 1e-9);
    }
}
