//! Small data structures shared by the localization solver: 2D points,
//! symmetric pairwise-distance matrices with optional (missing) entries,
//! weight matrices and a tiny dense linear solver for the SMACOF Guttman
//! transform.

use crate::{LocalizationError, Result};
use serde::{Deserialize, Serialize};

/// A 2D point (the plane after depth projection). Units are metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Horizontal x coordinate (m).
    pub x: f64,
    /// Horizontal y coordinate (m).
    pub y: f64,
}

impl Vec2 {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Vec2) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Vector difference.
    pub fn sub(&self, other: &Vec2) -> Vec2 {
        Vec2::new(self.x - other.x, self.y - other.y)
    }

    /// Vector sum.
    pub fn add(&self, other: &Vec2) -> Vec2 {
        Vec2::new(self.x + other.x, self.y + other.y)
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y).sqrt()
    }

    /// Rotates the point by `theta` radians counter-clockwise about the
    /// origin.
    pub fn rotate(&self, theta: f64) -> Vec2 {
        let (s, c) = theta.sin_cos();
        Vec2::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// Reflects the point across the line through the origin at angle
    /// `theta` (radians).
    pub fn reflect_across(&self, theta: f64) -> Vec2 {
        let (s, c) = (2.0 * theta).sin_cos();
        Vec2::new(c * self.x + s * self.y, s * self.x - c * self.y)
    }
}

/// A symmetric pairwise measurement matrix with optional entries. `None`
/// marks a missing link (devices out of range of each other).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceMatrix {
    n: usize,
    entries: Vec<Option<f64>>,
}

impl DistanceMatrix {
    /// Creates an empty (all missing) matrix for `n` devices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            entries: vec![None; n * n],
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the matrix covers zero devices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets the symmetric entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, value: f64) -> Result<()> {
        if i >= self.n || j >= self.n {
            return Err(LocalizationError::InvalidInput {
                reason: format!("index ({i}, {j}) outside a {0}×{0} matrix", self.n),
            });
        }
        if i == j {
            return Ok(()); // self-distances are implicitly zero
        }
        if !(value.is_finite() && value >= 0.0) {
            return Err(LocalizationError::InvalidInput {
                reason: format!("distance ({i}, {j}) must be finite and non-negative, got {value}"),
            });
        }
        self.entries[i * self.n + j] = Some(value);
        self.entries[j * self.n + i] = Some(value);
        Ok(())
    }

    /// Clears the symmetric entry `(i, j)` (marks the link missing).
    pub fn clear(&mut self, i: usize, j: usize) {
        if i < self.n && j < self.n && i != j {
            self.entries[i * self.n + j] = None;
            self.entries[j * self.n + i] = None;
        }
    }

    /// Gets the entry `(i, j)`; `Some(0.0)` on the diagonal.
    pub fn get(&self, i: usize, j: usize) -> Option<f64> {
        if i >= self.n || j >= self.n {
            return None;
        }
        if i == j {
            return Some(0.0);
        }
        self.entries[i * self.n + j]
    }

    /// Returns true when the link `(i, j)` has a measurement.
    pub fn has_link(&self, i: usize, j: usize) -> bool {
        i != j && self.get(i, j).is_some()
    }

    /// All present links as `(i, j)` pairs with `i < j`.
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self.has_link(i, j) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Number of present links.
    pub fn link_count(&self) -> usize {
        self.links().len()
    }

    /// Builds a fully-populated matrix from exact 2D positions (useful for
    /// tests and the analytical evaluation).
    pub fn from_points_2d(points: &[Vec2]) -> Self {
        let n = points.len();
        let mut m = Self::new(n);
        for i in 0..n {
            for j in (i + 1)..n {
                // Positions are finite ⇒ set cannot fail.
                let _ = m.set(i, j, points[i].distance(&points[j]));
            }
        }
        m
    }
}

/// Symmetric 0/1 (or weighted) link-weight matrix used by SMACOF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightMatrix {
    n: usize,
    weights: Vec<f64>,
}

impl WeightMatrix {
    /// All-ones weights for `n` devices (no self weights).
    pub fn ones(n: usize) -> Self {
        let mut weights = vec![1.0; n * n];
        for i in 0..n {
            weights[i * n + i] = 0.0;
        }
        Self { n, weights }
    }

    /// Weights matching the availability pattern of a distance matrix:
    /// 1 where a link exists, 0 where it is missing.
    pub fn from_distances(distances: &DistanceMatrix) -> Self {
        let n = distances.len();
        let mut w = Self::ones(n);
        for i in 0..n {
            for j in 0..n {
                if i != j && !distances.has_link(i, j) {
                    w.weights[i * n + j] = 0.0;
                }
            }
        }
        w
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true when the matrix covers zero devices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Gets the weight of link `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i >= self.n || j >= self.n || i == j {
            0.0
        } else {
            self.weights[i * self.n + j]
        }
    }

    /// Sets the symmetric weight of link `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, w: f64) {
        if i < self.n && j < self.n && i != j {
            self.weights[i * self.n + j] = w;
            self.weights[j * self.n + i] = w;
        }
    }

    /// Zeroes the weights of every link in `links`.
    pub fn drop_links(&mut self, links: &[(usize, usize)]) {
        for &(i, j) in links {
            self.set(i, j, 0.0);
        }
    }
}

/// Solves the dense linear system `A·x = b` by Gaussian elimination with
/// partial pivoting. `a` is row-major `n×n`. Used for the SMACOF
/// pseudo-inverse on the small matrices (N ≤ a dozen devices) this system
/// works with.
pub fn solve_linear(a: &[f64], b: &[f64], n: usize) -> Result<Vec<f64>> {
    if a.len() != n * n || b.len() != n {
        return Err(LocalizationError::InvalidInput {
            reason: "linear system dimensions mismatch".into(),
        });
    }
    let mut m = a.to_vec();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if m[row * n + col].abs() > m[pivot * n + col].abs() {
                pivot = row;
            }
        }
        if m[pivot * n + col].abs() < 1e-12 {
            return Err(LocalizationError::SolverFailure {
                reason: "singular matrix in Guttman transform".into(),
            });
        }
        if pivot != col {
            for k in 0..n {
                m.swap(col * n + k, pivot * n + k);
            }
            rhs.swap(col, pivot);
        }
        // Eliminate.
        for row in (col + 1)..n {
            let factor = m[row * n + col] / m[col * n + col];
            for k in col..n {
                m[row * n + k] -= factor * m[col * n + k];
            }
            rhs[row] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for k in (row + 1)..n {
            acc -= m[row * n + k] * x[k];
        }
        x[row] = acc / m[row * n + row];
    }
    Ok(x)
}

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// `a` is row-major `n×n` and must be symmetric. Returns `(eigenvalues,
/// eigenvectors)` where `eigenvectors[k]` is the unit eigenvector for
/// `eigenvalues[k]`, sorted by decreasing eigenvalue. Exact enough for the
/// small matrices (N ≤ a dozen devices) used by the classical-MDS
/// initialisation.
pub fn symmetric_eigen(a: &[f64], n: usize) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    if a.len() != n * n {
        return Err(LocalizationError::InvalidInput {
            reason: "eigen input is not n×n".into(),
        });
    }
    let mut m = a.to_vec();
    // Eigenvector accumulator starts as identity.
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    for _sweep in 0..100 {
        // Largest off-diagonal magnitude.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in (i + 1)..n {
                off = off.max(m[i * n + j].abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let phi = 0.5 * (2.0 * apq).atan2(app - aqq);
                let (s, c) = phi.sin_cos();
                // Apply the rotation G(p,q,phi): A ← Gᵀ A G, V ← V G.
                for k in 0..n {
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    m[k * n + p] = c * akp + s * akq;
                    m[k * n + q] = -s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = m[p * n + k];
                    let aqk = m[q * n + k];
                    m[p * n + k] = c * apk + s * aqk;
                    m[q * n + k] = -s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp + s * vkq;
                    v[k * n + q] = -s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|k| (m[k * n + k], (0..n).map(|i| v[i * n + k]).collect()))
        .collect();
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    let values = pairs.iter().map(|(val, _)| *val).collect();
    let vectors = pairs.into_iter().map(|(_, vec)| vec).collect();
    Ok((values, vectors))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec2_ops() {
        let a = Vec2::new(3.0, 4.0);
        assert!((a.norm() - 5.0).abs() < 1e-12);
        assert!((a.distance(&Vec2::new(0.0, 0.0)) - 5.0).abs() < 1e-12);
        assert_eq!(a.add(&Vec2::new(1.0, -1.0)), Vec2::new(4.0, 3.0));
        assert_eq!(a.sub(&Vec2::new(1.0, 1.0)), Vec2::new(2.0, 3.0));
        assert_eq!(a.scale(2.0), Vec2::new(6.0, 8.0));
    }

    #[test]
    fn rotation_preserves_norm_and_quarter_turn() {
        let a = Vec2::new(1.0, 0.0);
        let r = a.rotate(std::f64::consts::FRAC_PI_2);
        assert!((r.x - 0.0).abs() < 1e-12 && (r.y - 1.0).abs() < 1e-12);
        let b = Vec2::new(2.5, -1.5);
        assert!((b.rotate(1.234).norm() - b.norm()).abs() < 1e-12);
    }

    #[test]
    fn reflection_across_x_axis_and_diagonal() {
        let p = Vec2::new(1.0, 2.0);
        let rx = p.reflect_across(0.0);
        assert!((rx.x - 1.0).abs() < 1e-12 && (rx.y + 2.0).abs() < 1e-12);
        // Reflection across the 45° line swaps coordinates.
        let rd = p.reflect_across(std::f64::consts::FRAC_PI_4);
        assert!((rd.x - 2.0).abs() < 1e-12 && (rd.y - 1.0).abs() < 1e-12);
        // Reflecting twice is the identity.
        let twice = p.reflect_across(0.7).reflect_across(0.7);
        assert!((twice.x - p.x).abs() < 1e-12 && (twice.y - p.y).abs() < 1e-12);
    }

    #[test]
    fn distance_matrix_symmetry_and_links() {
        let mut d = DistanceMatrix::new(4);
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        d.set(0, 1, 5.0).unwrap();
        d.set(2, 3, 7.0).unwrap();
        assert_eq!(d.get(1, 0), Some(5.0));
        assert_eq!(d.get(0, 0), Some(0.0));
        assert_eq!(d.get(0, 2), None);
        assert!(d.has_link(0, 1));
        assert!(!d.has_link(0, 2));
        assert!(!d.has_link(1, 1));
        assert_eq!(d.links(), vec![(0, 1), (2, 3)]);
        assert_eq!(d.link_count(), 2);
        d.clear(0, 1);
        assert!(!d.has_link(0, 1));
    }

    #[test]
    fn distance_matrix_rejects_bad_input() {
        let mut d = DistanceMatrix::new(3);
        assert!(d.set(0, 5, 1.0).is_err());
        assert!(d.set(0, 1, -1.0).is_err());
        assert!(d.set(0, 1, f64::NAN).is_err());
        assert!(d.set(1, 1, 3.0).is_ok()); // diagonal is a no-op
        assert_eq!(d.get(1, 1), Some(0.0));
        assert_eq!(d.get(9, 0), None);
    }

    #[test]
    fn matrix_from_points_reproduces_distances() {
        let pts = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(3.0, 0.0),
            Vec2::new(0.0, 4.0),
        ];
        let d = DistanceMatrix::from_points_2d(&pts);
        assert_eq!(d.get(0, 1), Some(3.0));
        assert_eq!(d.get(0, 2), Some(4.0));
        assert_eq!(d.get(1, 2), Some(5.0));
        assert_eq!(d.link_count(), 3);
    }

    #[test]
    fn weight_matrix_tracks_missing_links() {
        let mut d = DistanceMatrix::new(3);
        d.set(0, 1, 1.0).unwrap();
        d.set(1, 2, 1.0).unwrap();
        let w = WeightMatrix::from_distances(&d);
        assert_eq!(w.get(0, 1), 1.0);
        assert_eq!(w.get(0, 2), 0.0);
        assert_eq!(w.get(1, 1), 0.0);
        let mut w2 = WeightMatrix::ones(3);
        assert!(!w2.is_empty());
        assert_eq!(w2.len(), 3);
        w2.drop_links(&[(0, 1)]);
        assert_eq!(w2.get(1, 0), 0.0);
        assert_eq!(w2.get(1, 2), 1.0);
        assert_eq!(w2.get(0, 9), 0.0);
    }

    #[test]
    fn linear_solver_solves_known_system() {
        // 2x + y = 5; x + 3y = 10  →  x = 1, y = 3.
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let b = vec![5.0, 10.0];
        let x = solve_linear(&a, &b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn linear_solver_detects_singularity_and_bad_dims() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(solve_linear(&a, &[1.0, 2.0], 2).is_err());
        assert!(solve_linear(&a, &[1.0], 2).is_err());
        assert!(solve_linear(&[1.0], &[1.0, 2.0], 2).is_err());
    }

    #[test]
    fn jacobi_eigen_diagonal_matrix() {
        // Diagonal matrix: eigenvalues are the diagonal, sorted descending.
        let a = vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, -1.0];
        let (vals, vecs) = symmetric_eigen(&a, 3).unwrap();
        assert!((vals[0] - 5.0).abs() < 1e-9);
        assert!((vals[1] - 2.0).abs() < 1e-9);
        assert!((vals[2] + 1.0).abs() < 1e-9);
        // Eigenvector for 5.0 is the y axis (up to sign).
        assert!(vecs[0][1].abs() > 0.999);
    }

    #[test]
    fn jacobi_eigen_known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = vec![2.0, 1.0, 1.0, 2.0];
        let (vals, vecs) = symmetric_eigen(&a, 2).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        assert!((vecs[0][0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!(symmetric_eigen(&a, 3).is_err());
    }

    #[test]
    fn jacobi_eigen_reconstructs_matrix() {
        // A = Q Λ Qᵀ must reproduce the input for a random symmetric matrix.
        let n = 5;
        let mut a = vec![0.0; n * n];
        let mut seed = 1234u64;
        let mut next = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let (vals, vecs) = symmetric_eigen(&a, n).unwrap();
        for i in 0..n {
            for j in 0..n {
                let mut recon = 0.0;
                for k in 0..n {
                    recon += vals[k] * vecs[k][i] * vecs[k][j];
                }
                assert!(
                    (recon - a[i * n + j]).abs() < 1e-8,
                    "({i},{j}): {recon} vs {}",
                    a[i * n + j]
                );
            }
        }
    }

    #[test]
    fn linear_solver_handles_permuted_pivot() {
        // Leading zero forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let x = solve_linear(&a, &[2.0, 3.0], 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }
}
