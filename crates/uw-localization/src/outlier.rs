//! Iterative outlier detection (§2.1.3, Algorithm 1) with a validated,
//! evidence-based drop pipeline.
//!
//! Occluded links mistake a reflection for the direct path, producing a
//! distance that is wrong by metres yet not wrong enough to violate the
//! triangle inequality. Because SMACOF weights every link equally, even one
//! such outlier distorts the whole topology.
//!
//! The paper's Algorithm 1 exploits two observations: without outliers the
//! normalised stress stays below a threshold (1.5 m), and dropping exactly
//! the outlier links makes the stress collapse. A blind implementation of
//! that recipe misfires under severe occlusion, though: a +12 m biased link
//! is often still *embeddable*, so dropping some clean link can free the
//! topology to warp itself around the corrupted measurement and reach a low
//! stress on a geometrically wrong solution. This module therefore treats
//! every candidate drop as a hypothesis that must survive three independent
//! pieces of evidence before it is accepted:
//!
//! 1. **Huber coincidence** — a Huber-IRLS refinement of the *full* link
//!    set ([`crate::smacof::refine_robust`]) concentrates the misfit on the
//!    corrupted links and the links their warp squeezed. The residuals
//!    `measured − embedded` of the plain and robust embeddings rank the
//!    candidate ordering, and multi-link subsets are restricted to links
//!    whose misfit exceeds the Huber scale (which also collapses the blind
//!    O(L³) subset sweep to the handful of suspicious links); single-link
//!    drops are still screened exhaustively, because a deep warp can hide
//!    the occluded link's own residual.
//! 2. **Plausibility in the candidate embedding** — each dropped link must
//!    still look like an occlusion outlier *after* the drop: measured well
//!    longer than embedded ([`OutlierConfig::min_drop_residual_m`]), and
//!    the embedding must respect the triangle lower bound the remaining
//!    clean legs put on every dropped pair's separation (a mirror fold
//!    buys its low stress by collapsing the clean link it condemned).
//! 3. **Per-drop validation re-solve** — re-inserting any dropped link must
//!    measurably degrade the normalised stress
//!    ([`OutlierConfig::validation_margin_m`]), and in a multi-link subset
//!    the re-inserted link must *itself* misfit in the re-inserted solve —
//!    a link whose removal merely rode along with a genuine outlier's
//!    stress relief ("free rider") is rejected.
//!
//! Surviving hypotheses then compete on a single Occam cost in metres:
//! claimed bias (the metres of measurement each drop calls corrupted) plus
//! stress-weighted residual misfit, minus cross-round persistence credit.
//! When the pipeline arbitrates across hypotheses it re-prices the stress
//! term with [`crate::smacof::robust_misfit_decomposition`]: in-band
//! residuals stay quadratic, while misfit beyond the Huber scale is
//! charged *linearly*, the same unit as claimed bias — an embedding that
//! keeps a biased link and smears its bias across the topology pays those
//! metres exactly as a drop hypothesis pays for claiming them. The
//! reduced-graph solver compares candidate basins on the same robust
//! score, preventing a secondary outlier from steering basin selection
//! toward a fold.
//!
//! On top of the per-round evidence, a cross-round [`DropEvidence`]
//! accumulator (threaded through `uw_core::Session`) lets repeated rounds
//! on a static topology converge on a persistently occluded link: a link
//! dropped in most prior rounds is promoted in the candidate ordering and
//! accepted on a clear fit improvement even when a single noisy round's
//! stress collapse falls short of the `improvement_factor` bar.
//!
//! Subsets that would destroy unique realizability are never evaluated
//! ([`crate::rigidity::realizable_after_dropping`]), so the solution cannot
//! silently become ambiguous; subsets containing an unmeasured link are
//! skipped explicitly rather than poisoning the residual score.

use crate::matrix::{DistanceMatrix, WeightMatrix};
use crate::rigidity::realizable_after_dropping;
use crate::smacof::{refine, refine_robust, smacof, SmacofConfig, SmacofSolution};
use crate::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The single residual scale (m) every robustness decision in the pipeline
/// is judged on: the Huber-IRLS refinement of stage 2b downweights links
/// whose residual exceeds it, the drop-validation evidence pass uses it to
/// nominate candidates, and the hard-drop floor
/// [`MIN_DROP_RESIDUAL_M`] is derived from it. Deriving both from one
/// constant keeps the validation pass and the refinement judging residuals
/// on the same scale (they used to be set independently and could
/// disagree).
pub const RESIDUAL_SCALE_M: f64 = 0.75;

/// Minimum residual `measured − embedded` (m) a dropped link must show in
/// the candidate embedding: twice the Huber scale, i.e. a link must misfit
/// well beyond what the IRLS refinement would simply downweight before
/// Algorithm 1 is allowed to discard it outright.
pub const MIN_DROP_RESIDUAL_M: f64 = 2.0 * RESIDUAL_SCALE_M;

/// Dimensionless weight converting a hypothesis' residual normalised
/// stress into the Occam cost's metres-of-unexplained-measurement
/// currency. Neither term alone ranks hypotheses safely: candidate stress
/// alone prefers a mirror fold that buys a low-stress reflected topology
/// by condemning a clean link, and claimed bias alone prefers a fold that
/// calls fewer metres wrong while leaving systematic stress behind. The
/// units differ — normalised stress is an RMS-like per-link misfit while
/// claimed bias is a sum over the dropped links — so the weight restores
/// comparability: at 40, the ~0.1 m of extra systematic stress a fold
/// leaves across the topology outweighs the ~3 m of claimed bias it can
/// save, while the ~0.2 m stress penalty of an honest noisy round does not
/// overturn a 10 m difference in claimed corruption.
pub const STRESS_COST_WEIGHT: f64 = 40.0;

/// Occam-cost credit (m) per prior round that dropped a link of the
/// subset: on a static topology the genuinely occluded link recurs every
/// round, so each recurrence is worth metres of claimed bias when ranking
/// otherwise comparable hypotheses. The credit only applies while the
/// link's drops keep a majority rate over the observed rounds (a stale
/// spurious drop decays as clean rounds accumulate) and is capped at
/// [`PERSISTENCE_CREDIT_CAP_M`] so a long session cannot make one link
/// unconditionally droppable.
pub const PERSISTENCE_CREDIT_M: f64 = 6.0;

/// Upper bound (m) on the per-link cross-round credit.
pub const PERSISTENCE_CREDIT_CAP_M: f64 = 16.0;

/// Arbitration penalty (m of Occam cost) per dual-mic side vote a resolved
/// hypothesis contradicts. One vote is deliberately weaker than the
/// typical cost gap between the truth and a fold (votes flip with ~10%
/// probability near the leader–device-1 line), so a single noisy vote
/// cannot override clear geometric evidence — but a fold that reflects a
/// device across the line earns the penalty on top of its already higher
/// cost and loses decisively.
pub const VOTE_MISMATCH_PENALTY_M: f64 = 4.0;

/// A drop hypothesis that passed gates 1–2b and awaits gate-3 validation:
/// candidate solution, dropped links, summed claimed bias of the drops.
type PassingHypothesis = (SmacofSolution, Vec<(usize, usize)>, f64);

/// Parameters of the outlier-detection loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierConfig {
    /// Normalised-stress threshold below which the solution is accepted
    /// (1.5 m in the paper).
    pub stress_threshold_m: f64,
    /// Maximum number of links that may be dropped (3 in the paper).
    pub max_outliers: usize,
    /// Required relative stress reduction for a drop subset to be considered
    /// an outlier set (0.9 in the paper) when the candidate stress does not
    /// collapse below `stress_threshold_m` outright.
    pub improvement_factor: f64,
    /// Minimum residual `measured − embedded` (m) a dropped link must show
    /// in the candidate solution. Occlusion outliers detect a reflection and
    /// are therefore biased *long*; a candidate drop whose link fits the
    /// embedding (small or negative residual) is a spurious drop that merely
    /// freed the topology to warp, and is rejected. Defaults to
    /// [`MIN_DROP_RESIDUAL_M`].
    pub min_drop_residual_m: f64,
    /// Huber scale (m) of the full-link IRLS evidence pass: only links whose
    /// robust residual exceeds it are drop candidates. Defaults to
    /// [`RESIDUAL_SCALE_M`] — the same constant the pipeline's stage-2b
    /// refinement (`LocalizerConfig::robust_delta_m`) defaults to, so drops
    /// and downweights are judged on the same residual scale.
    pub huber_delta_m: f64,
    /// Minimum normalised-stress degradation (m) that re-inserting a
    /// dropped link must cause in the validation re-solve; a drop below the
    /// margin is rejected as spurious. Defaults to [`RESIDUAL_SCALE_M`].
    pub validation_margin_m: f64,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        Self {
            stress_threshold_m: 1.5,
            max_outliers: 3,
            improvement_factor: 0.9,
            min_drop_residual_m: MIN_DROP_RESIDUAL_M,
            huber_delta_m: RESIDUAL_SCALE_M,
            validation_margin_m: RESIDUAL_SCALE_M,
        }
    }
}

/// Result of outlier-aware topology estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierResult {
    /// Estimated 2D positions.
    pub positions: Vec<crate::matrix::Vec2>,
    /// Links identified as outliers and excluded from the final solve.
    pub dropped_links: Vec<(usize, usize)>,
    /// Normalised stress of the final solution (m).
    pub normalized_stress: f64,
    /// True when the final stress is below the acceptance threshold.
    pub converged: bool,
    /// Occam cost of this drop hypothesis (m): the metres of measurement
    /// it calls wrong (`claimed bias + stress-weighted residual misfit`,
    /// less a credit when every dropped link is cross-round persistent).
    /// Hypotheses from one [`drop_hypotheses`] call are ordered by this
    /// cost; downstream arbitration (side-sign votes) adds its own
    /// penalties on top. No-drop results (fast path included) claim no
    /// bias and carry only the stress term.
    pub occam_cost_m: f64,
}

/// Cross-round drop evidence: which links Algorithm 1 dropped in previous
/// rounds of the same session. On a static topology an occluded link is
/// occluded in *every* round, so its drop count tracks the round count; a
/// spurious drop never recurs. [`localize_with_drop_validation`] uses the
/// accumulated evidence to promote persistently dropped links in the
/// candidate ordering and to accept their drop on a clear fit improvement
/// even when one noisy round's stress collapse falls short of the
/// `improvement_factor` bar — so repeated rounds converge on the persistent
/// occluded link instead of re-deciding from scratch.
///
/// Link indices are whatever index space the caller solves in;
/// `uw_core::Session` keeps evidence in full device indices and projects it
/// onto the reduced (churn-excised) index set per round via
/// [`DropEvidence::project`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DropEvidence {
    rounds: usize,
    counts: BTreeMap<(usize, usize), usize>,
}

impl DropEvidence {
    /// An empty accumulator (no rounds observed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed round's drop decisions (an empty slice counts
    /// the round without accusing any link).
    pub fn observe_round(&mut self, dropped: &[(usize, usize)]) {
        self.rounds += 1;
        for &(i, j) in dropped {
            let key = if i <= j { (i, j) } else { (j, i) };
            *self.counts.entry(key).or_insert(0) += 1;
        }
    }

    /// Number of rounds observed so far.
    pub fn rounds_observed(&self) -> usize {
        self.rounds
    }

    /// How many observed rounds dropped the link `(i, j)`.
    pub fn drop_count(&self, i: usize, j: usize) -> usize {
        let key = if i <= j { (i, j) } else { (j, i) };
        self.counts.get(&key).copied().unwrap_or(0)
    }

    /// Whether the link `(i, j)` is *persistently* dropped: at least two
    /// prior rounds dropped it, and at least half of all observed rounds
    /// did. One spurious drop never makes a link persistent; a static
    /// occlusion does from the second round on.
    pub fn is_persistent(&self, i: usize, j: usize) -> bool {
        let c = self.drop_count(i, j);
        c >= 2 && 2 * c >= self.rounds
    }

    /// All links currently flagged persistent, sorted.
    pub fn persistent_links(&self) -> Vec<(usize, usize)> {
        self.counts
            .keys()
            .copied()
            .filter(|&(i, j)| self.is_persistent(i, j))
            .collect()
    }

    /// Projects evidence kept in full device indices onto a reduced index
    /// set: `active[a]` is the full index of reduced device `a`. Links with
    /// a silent endpoint are dropped from the projection; the round count
    /// carries over.
    pub fn project(&self, active: &[usize]) -> DropEvidence {
        let position = |full: usize| active.iter().position(|&f| f == full);
        let counts = self
            .counts
            .iter()
            .filter_map(|(&(i, j), &c)| {
                let (a, b) = (position(i)?, position(j)?);
                Some((if a <= b { (a, b) } else { (b, a) }, c))
            })
            .collect();
        DropEvidence {
            rounds: self.rounds,
            counts,
        }
    }
}

/// Runs Algorithm 1 with the validated drop pipeline and no cross-round
/// evidence (each call decides from this round's measurements alone).
pub fn localize_with_outlier_detection<R: Rng>(
    distances_2d: &DistanceMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    rng: &mut R,
) -> Result<OutlierResult> {
    localize_with_drop_validation(distances_2d, smacof_config, outlier_config, None, rng)
}

/// Runs Algorithm 1: SMACOF topology estimation with evidence-based,
/// validated outlier-subset dropping (see the module docs for the three
/// acceptance gates), optionally biased by cross-round [`DropEvidence`].
///
/// Returns the single preferred hypothesis; callers with independent
/// evidence to arbitrate on (the pipeline's dual-microphone side votes)
/// should use [`drop_hypotheses`] instead.
pub fn localize_with_drop_validation<R: Rng>(
    distances_2d: &DistanceMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    evidence: Option<&DropEvidence>,
    rng: &mut R,
) -> Result<OutlierResult> {
    let mut hypotheses =
        drop_hypotheses(distances_2d, smacof_config, outlier_config, evidence, rng)?;
    Ok(hypotheses.remove(0))
}

/// Runs Algorithm 1 and returns *every* validated drop hypothesis across
/// all subset sizes up to the drop budget, in ascending Occam-cost order
/// (claimed bias plus stress-weighted misfit minus cross-round
/// persistence credit).
///
/// Distance data alone cannot always pick between two validated
/// hypotheses: under severe occlusion, dropping a clean long link can
/// admit a *partially reflected* topology whose stress is as low as the
/// truth's — each hypothesis claims the other's link is the outlier, and
/// the measured distances are symmetric between them. The list is never
/// empty: the fast path, a decided drop, and the no-drop fallthrough all
/// yield at least one entry, and callers holding independent evidence
/// (the leader's side-sign votes, which a partial reflection contradicts)
/// can arbitrate among the rest.
pub fn drop_hypotheses<R: Rng>(
    distances_2d: &DistanceMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    evidence: Option<&DropEvidence>,
    rng: &mut R,
) -> Result<Vec<OutlierResult>> {
    enumerate_hypotheses(
        distances_2d,
        smacof_config,
        outlier_config,
        evidence,
        false,
        rng,
    )
}

/// Rescue enumeration for a solution that contradicts independent
/// evidence: like [`drop_hypotheses`], but the fast path is skipped (a
/// full-link solve can *absorb* a severe occlusion below the stress
/// threshold while warping the topology by many metres) and gate 3's
/// stress-degradation margin is waived (an absorbed bias degrades the
/// stress only marginally when re-inserted, precisely because the warp
/// hides it). Gate 2 still applies in full: every dropped link must stay
/// measured-long beyond the drop floor in its candidate embedding, which
/// clean rounds cannot satisfy — so a rescue pass over clean data finds
/// nothing and the caller keeps its original solution.
///
/// Callers must only adopt a rescue hypothesis on *strictly better*
/// external evidence (the pipeline requires strictly fewer side-sign
/// contradictions); the relaxed gate 3 is not sufficient acceptance on
/// its own.
pub fn rescue_hypotheses<R: Rng>(
    distances_2d: &DistanceMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    evidence: Option<&DropEvidence>,
    rng: &mut R,
) -> Result<Vec<OutlierResult>> {
    let relaxed = OutlierConfig {
        validation_margin_m: 0.0,
        ..*outlier_config
    };
    enumerate_hypotheses(distances_2d, smacof_config, &relaxed, evidence, true, rng)
}

fn enumerate_hypotheses<R: Rng>(
    distances_2d: &DistanceMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    evidence: Option<&DropEvidence>,
    skip_fast_path: bool,
    rng: &mut R,
) -> Result<Vec<OutlierResult>> {
    let base_weights = WeightMatrix::from_distances(distances_2d);
    let initial = smacof(distances_2d, &base_weights, smacof_config, rng)?;

    // Fast path: no outliers suspected. Clean rounds never enter the drop
    // machinery (and consume no additional RNG), so their results are
    // bit-identical to a solver without it.
    if !skip_fast_path && initial.normalized_stress < outlier_config.stress_threshold_m {
        return Ok(vec![OutlierResult {
            positions: initial.positions,
            dropped_links: Vec::new(),
            normalized_stress: initial.normalized_stress,
            converged: true,
            // Same pricing rule as every other no-drop result: zero
            // claimed bias plus the stress-weighted misfit. Clean rounds
            // are single-hypothesis so the value never competes, but a
            // rescue pass comparing against an *absorbed* occlusion needs
            // the honest residual cost, not a free pass.
            occam_cost_m: STRESS_COST_WEIGHT * initial.normalized_stress,
        }]);
    }

    // Evidence pass: Huber-IRLS refinement of the FULL link set. The IRLS
    // downweights misfitting links instead of fitting them exactly, so the
    // robust embedding concentrates the misfit: links whose residual
    // exceeds the Huber scale in either the plain or the robust embedding
    // are where the corruption (or the warp it induced) lives.
    // Deterministic (warm-started from `initial`, no RNG).
    //
    // Note the warp subtlety this pass must survive: when the full-link
    // solve deforms the topology to *fit* the biased link, the occluded
    // link's own residual can be small while nearby clean links misfit
    // instead. The residuals therefore guide the *ordering* and bound the
    // multi-link subsets, but single-link drops are still screened
    // exhaustively — selection relies on the acceptance gates (stress
    // collapse, positive drop residual, validation re-solve), not on the
    // full-link residuals alone, to tell the occluded link from the links
    // its warp squeezed.
    let refined = refine_robust(
        distances_2d,
        &base_weights,
        smacof_config,
        outlier_config.huber_delta_m,
        initial.clone(),
    )?;
    let residual_of = |sol: &SmacofSolution, i: usize, j: usize| -> Option<f64> {
        distances_2d
            .get(i, j)
            .map(|m| m - sol.positions[i].distance(&sol.positions[j]))
    };
    let is_persistent = |i: usize, j: usize| evidence.is_some_and(|e| e.is_persistent(i, j));

    // Score every measured link by its worst misfit across the two
    // embeddings. Ordered persistent-first, then by descending misfit, so
    // the subsets tried first are the highest-evidence ones.
    let mut scored: Vec<((usize, usize), f64)> = distances_2d
        .links()
        .into_iter()
        .filter_map(|(i, j)| {
            let r_plain = residual_of(&initial, i, j)?;
            let r_robust = residual_of(&refined, i, j)?;
            Some(((i, j), r_plain.abs().max(r_robust.abs())))
        })
        .collect();
    scored.sort_by(|a, b| {
        let (pa, pb) = (is_persistent(a.0 .0, a.0 .1), is_persistent(b.0 .0, b.0 .1));
        pb.cmp(&pa)
            .then(b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal))
    });
    let singles: Vec<(usize, usize)> = scored.iter().map(|&(l, _)| l).collect();
    // Multi-link subsets are restricted to links with actual Huber
    // evidence (misfit beyond the Huber scale, or cross-round
    // persistence): dropping a clean link alongside the outlier is exactly
    // the misfire this pass kills, and the restriction also collapses the
    // blind O(L³) sweep to the handful of suspicious links.
    let mut multi: Vec<(usize, usize)> = scored
        .iter()
        .filter(|&&((i, j), misfit)| misfit > outlier_config.huber_delta_m || is_persistent(i, j))
        .map(|&(l, _)| l)
        .collect();

    // Every subset size up to the budget is enumerated and the survivors
    // compete on one Occam cost. Smaller subsets are not given a hard
    // priority: each extra dropped link adds its own claimed bias (at
    // least the drop floor) to the hypothesis' cost, so a spurious extra
    // drop loses on cost — while a genuine second outlier (a noisy round
    // on top of the occlusion) buys enough stress reduction to pay for
    // itself. A hard smallest-size-first rule would never even consider
    // the pair in that round and leave the truth hypothesis carrying the
    // second outlier's misfit.
    let mut passing: Vec<PassingHypothesis> = Vec::new();
    for n_drop in 1..=outlier_config.max_outliers {
        if n_drop == 2 {
            // Residual-guided pool extension: the full-link warp can hide
            // a second outlier (its misfit spreads over the whole
            // topology), but in a passing single-drop candidate embedding
            // the remaining outlier's residual stands out. Links that
            // misfit beyond the Huber scale in any such embedding join
            // the multi-link pool, in the deterministic `scored` order.
            for &((i, j), _) in &scored {
                if multi.contains(&(i, j)) {
                    continue;
                }
                let suspicious = passing.iter().any(|(candidate, subset, _)| {
                    !subset.contains(&(i, j))
                        && residual_of(candidate, i, j)
                            .is_some_and(|r| r.abs() > outlier_config.huber_delta_m)
                });
                if suspicious {
                    multi.push((i, j));
                }
            }
        }
        let pool = if n_drop == 1 { &singles } else { &multi };
        for subset in subsets_of_size(pool, n_drop) {
            // A subset containing an unmeasured link cannot be scored —
            // skip it explicitly instead of letting a sentinel poison the
            // residual minimum (candidates are measured today, but churn
            // may excise links between nomination and scoring).
            if subset
                .iter()
                .any(|&(i, j)| distances_2d.get(i, j).is_none())
            {
                continue;
            }
            // Never evaluate a drop set that destroys unique realizability.
            // Rescue mode relaxes this for single links whose endpoints
            // both keep degree ≥ 2, but only when the *measured* graph is
            // already missing a link: a round with a ranging dropout can
            // leave the occluded link formally un-droppable (the reduced
            // graph admits a discrete reflection), yet keeping the biased
            // link is certain to be wrong. The finite ambiguity is
            // arbitrated downstream — the caller adopts a rescue
            // hypothesis only when it contradicts strictly fewer measured
            // side votes, and a wrong reflection contradicts them. On a
            // *complete* measured graph the relaxation stays off: there
            // the un-droppability is structural (a small topology such as
            // K4, where removing any link admits a perfect-fit hinge
            // fold), and a single noisy vote must not be allowed to adopt
            // that fold.
            if !realizable_after_dropping(distances_2d, &subset) {
                let degree_without = |node: usize| {
                    (0..distances_2d.len())
                        .filter(|&k| {
                            let l = (node.min(k), node.max(k));
                            k != node
                                && !subset.contains(&l)
                                && distances_2d.get(l.0, l.1).is_some()
                        })
                        .count()
                };
                let n = distances_2d.len();
                let has_dropout =
                    (0..n).any(|i| ((i + 1)..n).any(|j| distances_2d.get(i, j).is_none()));
                let finite_ambiguity = skip_fast_path
                    && has_dropout
                    && subset.len() == 1
                    && subset
                        .iter()
                        .all(|&(i, j)| degree_without(i) >= 2 && degree_without(j) >= 2);
                if !finite_ambiguity {
                    continue;
                }
            }
            let Some(candidate) = best_reduced_solve(
                distances_2d,
                &base_weights,
                &subset,
                smacof_config,
                outlier_config.huber_delta_m,
                &[&initial, &refined],
                rng,
            ) else {
                continue;
            };
            // Gate 2: every dropped link must look like an occlusion
            // outlier in the candidate embedding — measured well *longer*
            // than embedded.
            let min_residual = subset
                .iter()
                .filter_map(|&(i, j)| residual_of(&candidate, i, j))
                .fold(f64::INFINITY, f64::min);
            if min_residual <= outlier_config.min_drop_residual_m {
                continue;
            }
            // Gate 2b: triangle consistency. The measured clean links put a
            // hard lower bound `max_k |d(i,k) − d(j,k)|` on every dropped
            // pair's true separation; an embedding that squeezes a dropped
            // pair well below that bound contradicts the data it claims to
            // fit. This is the signature of the mirror-basin misfire: a
            // *reflected* topology can fit the biased link with low stress,
            // but only by collapsing the clean link it dropped instead.
            let triangle_ok = subset.iter().all(|&(i, j)| {
                let embedded = candidate.positions[i].distance(&candidate.positions[j]);
                let mut bound: f64 = 0.0;
                for k in 0..distances_2d.len() {
                    if k == i || k == j {
                        continue;
                    }
                    // A leg that is itself being dropped may carry the
                    // occlusion bias — it proves nothing about geometry.
                    let ik = (i.min(k), i.max(k));
                    let jk = (j.min(k), j.max(k));
                    if subset.contains(&ik) || subset.contains(&jk) {
                        continue;
                    }
                    if let (Some(a), Some(b)) = (distances_2d.get(i, k), distances_2d.get(j, k)) {
                        bound = bound.max((a - b).abs());
                    }
                }
                // The bound difference is built from two measured legs,
                // each carrying its own ranging noise. For a single drop
                // the slack covers both legs: an honest drop whose legs
                // drew opposite-sign noise must pass, while a fold
                // squeezes its dropped link by the full occlusion bias
                // and still fails. Multi-link subsets keep the strict
                // one-leg slack: every removed link widens the reduced
                // graph's fold basins, and a pair that needs the loose
                // bound is the classic truth-plus-clean-link fold.
                let slack = if subset.len() == 1 {
                    2.0 * outlier_config.min_drop_residual_m
                } else {
                    outlier_config.min_drop_residual_m
                };
                embedded >= bound - slack
            });
            if !triangle_ok {
                continue;
            }
            // Stress evidence: the drop either collapses the stress below
            // the acceptance threshold, or reduces it by the paper's
            // improvement factor. A subset of persistently dropped links
            // (static occlusion, cross-round evidence) is also accepted on
            // a clear improvement, so one noisy round cannot un-decide a
            // link the whole session has converged on.
            let collapsed = candidate.normalized_stress < outlier_config.stress_threshold_m;
            let improved = initial.normalized_stress - candidate.normalized_stress
                > outlier_config.improvement_factor * initial.normalized_stress;
            let persistent_ok = subset.iter().all(|&(i, j)| is_persistent(i, j))
                && initial.normalized_stress - candidate.normalized_stress
                    > outlier_config.validation_margin_m;
            if collapsed || improved || persistent_ok {
                let claimed_bias: f64 = subset
                    .iter()
                    .filter_map(|&(i, j)| residual_of(&candidate, i, j))
                    .sum();
                passing.push((candidate, subset, claimed_bias));
            }
        }
    }

    // Gate 3 ordering: cheapest Occam cost first, across every subset
    // size. Each hypothesis implicitly claims its dropped links are
    // biased by `measured − embedded` and leaves its residual stress
    // unexplained; the cost sums both in metres ([`STRESS_COST_WEIGHT`]).
    // Neither term alone is safe: candidate stress alone prefers a mirror
    // basin that folds a *clean* long link into a reflected topology
    // fitting the biased link with *lower* stress than the truth (the
    // discarded clean link then looks measured-long, exactly like an
    // occlusion), and claimed bias alone prefers a fold that calls fewer
    // metres wrong while leaving systematic stress behind. Every dropped
    // link earns [`PERSISTENCE_CREDIT_M`] per prior round that dropped it
    // (majority-rate gated, capped at [`PERSISTENCE_CREDIT_CAP_M`]): on a
    // static topology the genuine occlusion recurs every round, so its
    // evidence compounds while a spurious drop's one-off credit decays.
    // In normal mode a single prior drop earns nothing — one misfired
    // round must not compound into a self-confirming streak. The rescue
    // pass (vote contradiction already corroborates that something is
    // wrong) accepts evidence from the first drop on.
    let min_credit_count = if skip_fast_path { 1 } else { 2 };
    let cost_of = |candidate: &SmacofSolution, subset: &[(usize, usize)], bias: f64| {
        let credit: f64 = subset
            .iter()
            .map(|&(i, j)| {
                evidence.map_or(0.0, |e| {
                    let c = e.drop_count(i, j);
                    if c >= min_credit_count && 2 * c >= e.rounds {
                        (PERSISTENCE_CREDIT_M * c as f64).min(PERSISTENCE_CREDIT_CAP_M)
                    } else {
                        0.0
                    }
                })
            })
            .sum();
        bias + STRESS_COST_WEIGHT * candidate.normalized_stress - credit
    };
    passing.sort_by(|a, b| {
        let ca = cost_of(&a.0, &a.1, a.2);
        let cb = cost_of(&b.0, &b.1, b.2);
        ca.partial_cmp(&cb).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut validated: Vec<OutlierResult> = Vec::new();
    for (candidate, subset, claimed_bias) in passing {
        if validate_drop_set(
            distances_2d,
            &base_weights,
            smacof_config,
            outlier_config,
            &initial,
            &candidate,
            &subset,
            rng,
        ) {
            let converged = candidate.normalized_stress < outlier_config.stress_threshold_m;
            let occam_cost_m = cost_of(&candidate, &subset, claimed_bias);
            validated.push(OutlierResult {
                positions: candidate.positions,
                dropped_links: subset,
                normalized_stress: candidate.normalized_stress,
                converged,
                occam_cost_m,
            });
        }
    }
    if !validated.is_empty() {
        return Ok(validated);
    }

    // No drop subset survived all three gates: keep the full-link solve and
    // report the unresolved stress (stage 2b's Huber refinement will still
    // downweight moderate misfits).
    Ok(vec![OutlierResult {
        positions: initial.positions,
        dropped_links: Vec::new(),
        normalized_stress: initial.normalized_stress,
        converged: false,
        occam_cost_m: STRESS_COST_WEIGHT * initial.normalized_stress,
    }])
}

/// Validation re-solve (gate 3): for every link of the accepted subset,
/// re-inserting it — i.e. solving with the *rest* of the subset dropped —
/// must degrade the normalised stress by at least the validation margin.
/// A spurious drop fails this test: its link fits the remaining topology
/// nearly as well re-inserted, so the degradation is marginal.
///
/// For multi-link subsets the stress margin alone is not attributive: a
/// *different* misfit (a moderate secondary outlier the subset never
/// dropped) can inflate the re-inserted solve and make an innocent link
/// look load-bearing. The re-inserted link must therefore also misfit
/// *itself* — measured longer than embedded by the drop floor — in the
/// re-inserted solve, or its drop is rejected as a free rider.
#[allow(clippy::too_many_arguments)]
fn validate_drop_set<R: Rng>(
    distances_2d: &DistanceMatrix,
    base_weights: &WeightMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    initial: &SmacofSolution,
    candidate: &SmacofSolution,
    subset: &[(usize, usize)],
    rng: &mut R,
) -> bool {
    for &link in subset {
        let reinserted_stress = if subset.len() == 1 {
            // Re-inserting the only dropped link is the full-link solve,
            // which already exists.
            initial.normalized_stress
        } else {
            let rest: Vec<(usize, usize)> = subset.iter().copied().filter(|&l| l != link).collect();
            match best_reduced_solve(
                distances_2d,
                base_weights,
                &rest,
                smacof_config,
                outlier_config.huber_delta_m,
                &[initial, candidate],
                rng,
            ) {
                Some(s) => {
                    let own_misfit = distances_2d
                        .get(link.0, link.1)
                        .map(|m| m - s.positions[link.0].distance(&s.positions[link.1]));
                    if own_misfit.is_none_or(|r| r < outlier_config.min_drop_residual_m) {
                        return false;
                    }
                    s.normalized_stress
                }
                // If the topology cannot even be embedded with the link
                // back, re-insertion clearly degrades the fit.
                None => f64::INFINITY,
            }
        };
        if reinserted_stress - candidate.normalized_stress < outlier_config.validation_margin_m {
            return false;
        }
    }
    true
}

/// Solves a reduced (links-dropped) link set as the best of three start
/// strategies, because each alone has a known failure basin:
///
/// - the random-restart [`smacof`] solve — its classical-MDS init completes
///   a dropped link by graph shortest path, a bad overestimate for links
///   much shorter than any two-hop detour, so every restart can land in a
///   warped minimum;
/// - deterministic warm-started [`refine`] descents from the given
///   full-link embeddings — recover when the clean links alone pull the
///   full-link embedding into the reduced set's own minimum, but stay
///   trapped when the warp is deep enough to be self-supporting;
/// - a deterministic *lower-bound* start: each dropped link `(i, j)` is
///   completed with `max_k |d(i,k) − d(j,k)|` (a true geometric lower
///   bound on the direct distance), the completed matrix is solved once
///   from its MDS init, and the result seeds a descent under the real
///   reduced weights. When the dropped link is the occluded one, the lower
///   bound is close to the true distance — far closer than the
///   shortest-path overestimate — and the descent lands in the correct
///   basin even when both other strategies miss it.
fn best_reduced_solve<R: Rng>(
    distances: &DistanceMatrix,
    base_weights: &WeightMatrix,
    dropped: &[(usize, usize)],
    config: &SmacofConfig,
    huber_delta_m: f64,
    warm_starts: &[&SmacofSolution],
    rng: &mut R,
) -> Option<SmacofSolution> {
    let mut weights = base_weights.clone();
    weights.drop_links(dropped);
    // A reduced graph has fewer constraints than the full one, so its
    // fold basins are wider and the cold solve misses the global basin
    // more often — and a hypothesis solved into a fold is misjudged by
    // every gate downstream (its stress looks high, its dropped links can
    // violate the triangle bound). Hypothesis solves are few per round,
    // so buy the extra restarts.
    let config = &SmacofConfig {
        restarts: config.restarts.max(1) * 3,
        ..*config
    };
    // Basins compete on the *robust* misfit score, not the quadratic
    // stress: a round can carry moderate secondary outliers on the kept
    // links, and under the quadratic criterion the basin that wins is the
    // one that folds the topology to absorb them — the honest basin that
    // leaves each secondary sticking out loses despite placing every
    // device right. The quadratic stress of the returned solution is
    // still what the acceptance gates judge.
    let robust_score = |s: &SmacofSolution| {
        let (trim, excess) = crate::smacof::robust_misfit_decomposition(
            &s.positions,
            distances,
            &weights,
            huber_delta_m,
        );
        STRESS_COST_WEIGHT * trim + excess
    };
    let mut best: Option<SmacofSolution> = smacof(distances, &weights, config, rng).ok();
    let consider = |s: SmacofSolution, best: &mut Option<SmacofSolution>| {
        if best
            .as_ref()
            .is_none_or(|b| robust_score(&s) < robust_score(b))
        {
            *best = Some(s);
        }
    };
    // Each start is descended twice: plain quadratic, and Huber-IRLS. The
    // quadratic descent from a good init can still drift into a fold when
    // the kept links carry a moderate secondary outlier (the pull is
    // proportional to the residual), while the robust descent downweights
    // the secondary and stays in the honest basin.
    let descend = |positions: &[crate::matrix::Vec2], best: &mut Option<SmacofSolution>| {
        if let Ok(s) = refine(distances, &weights, config, positions) {
            if let Ok(r) = refine_robust(distances, &weights, config, huber_delta_m, s.clone()) {
                consider(r, best);
            }
            consider(s, best);
        }
    };
    for warm in warm_starts {
        descend(&warm.positions, &mut best);
    }
    // Lower-bound start.
    let mut completed = distances.clone();
    let mut completable = true;
    for &(i, j) in dropped {
        let mut bound: f64 = 0.1;
        for k in 0..distances.len() {
            if k == i || k == j {
                continue;
            }
            if let (Some(a), Some(b)) = (distances.get(i, k), distances.get(j, k)) {
                bound = bound.max((a - b).abs());
            }
        }
        if completed.set(i, j, bound).is_err() {
            completable = false;
            break;
        }
    }
    if completable {
        let single_start = SmacofConfig {
            restarts: 1,
            ..*config
        };
        if let Ok(est) = smacof(&completed, base_weights, &single_start, rng) {
            descend(&est.positions, &mut best);
        }
    }
    best
}

/// Enumerates all subsets of `items` with exactly `k` elements, in
/// lexicographic index order — so when `items` is sorted by descending
/// misfit, the highest-evidence subsets come first.
fn subsets_of_size<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if k == 0 || k > items.len() {
        return out;
    }
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        out.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in (i + 1)..k {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Vec2;
    use crate::smacof::procrustes_errors;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn testbed_points() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(8.0, 0.0),
            Vec2::new(12.0, 9.0),
            Vec2::new(2.0, 14.0),
            Vec2::new(-6.0, 7.0),
        ]
    }

    fn mean(errors: &[f64]) -> f64 {
        errors.iter().sum::<f64>() / errors.len() as f64
    }

    #[test]
    fn subsets_enumeration() {
        let items = vec![1, 2, 3, 4];
        assert_eq!(subsets_of_size(&items, 1).len(), 4);
        assert_eq!(subsets_of_size(&items, 2).len(), 6);
        assert_eq!(subsets_of_size(&items, 3).len(), 4);
        assert_eq!(subsets_of_size(&items, 4).len(), 1);
        assert!(subsets_of_size(&items, 0).is_empty());
        assert!(subsets_of_size(&items, 5).is_empty());
        // Each 2-subset is distinct.
        let twos = subsets_of_size(&items, 2);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert_ne!(twos[a], twos[b]);
        }
        // Sorted input → lexicographic order → highest-ranked first.
        assert_eq!(twos[0], vec![1, 2]);
    }

    #[test]
    fn thresholds_derive_from_the_shared_residual_scale() {
        let config = OutlierConfig::default();
        assert_eq!(config.huber_delta_m, RESIDUAL_SCALE_M);
        assert_eq!(config.min_drop_residual_m, MIN_DROP_RESIDUAL_M);
        assert_eq!(config.min_drop_residual_m, 2.0 * config.huber_delta_m);
        assert_eq!(config.validation_margin_m, RESIDUAL_SCALE_M);
    }

    #[test]
    fn clean_distances_need_no_outlier_removal() {
        let truth = testbed_points();
        let d = DistanceMatrix::from_points_2d(&truth);
        let mut rng = StdRng::seed_from_u64(1);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.converged);
        assert!(result.dropped_links.is_empty());
        assert!(result.normalized_stress < 0.1);
        let errs = procrustes_errors(&result.positions, &truth).unwrap();
        assert!(mean(&errs) < 0.05, "mean error {}", mean(&errs));
    }

    #[test]
    fn single_outlier_link_is_identified_and_dropped() {
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        // Corrupt one link by +15 m (an occluded direct path replaced by a
        // long reflection) — large enough that the stress cannot be absorbed
        // by deforming the topology, so Algorithm 1 must drop the link.
        let true_d01 = d.get(0, 1).unwrap();
        d.set(0, 1, true_d01 + 15.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.converged, "stress {}", result.normalized_stress);
        assert_eq!(result.dropped_links, vec![(0, 1)]);
        let errs = procrustes_errors(&result.positions, &truth).unwrap();
        assert!(mean(&errs) < 0.5, "mean error {}", mean(&errs));
    }

    #[test]
    fn outlier_detection_improves_over_plain_smacof() {
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        let true_d13 = d.get(1, 3).unwrap();
        d.set(1, 3, true_d13 + 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);

        // Plain SMACOF with the corrupted link.
        let w = WeightMatrix::from_distances(&d);
        let plain = smacof(&d, &w, &SmacofConfig::default(), &mut rng).unwrap();
        let plain_err = mean(&procrustes_errors(&plain.positions, &truth).unwrap());

        let with_outliers = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        let outlier_err = mean(&procrustes_errors(&with_outliers.positions, &truth).unwrap());
        assert!(
            outlier_err < plain_err * 0.5,
            "outlier detection {outlier_err} should beat plain {plain_err}"
        );
    }

    #[test]
    fn two_outliers_within_budget_are_dropped() {
        // Two disjoint links are corrupted so badly (+30 m / +25 m on a
        // ~15 m-wide layout) that no alternative embedding can absorb them:
        // the only way to collapse the stress is to drop exactly those two.
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        d.set(0, 2, d.get(0, 2).unwrap() + 30.0).unwrap();
        d.set(1, 4, d.get(1, 4).unwrap() + 25.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        let mut dropped = result.dropped_links.clone();
        dropped.sort_unstable();
        assert!(result.converged, "stress {}", result.normalized_stress);
        assert_eq!(dropped, vec![(0, 2), (1, 4)]);
        let errs = procrustes_errors(&result.positions, &truth).unwrap();
        assert!(mean(&errs) < 0.5, "mean error {}", mean(&errs));
    }

    #[test]
    fn small_noise_does_not_trigger_dropping() {
        // Uniform ±0.4 m noise keeps normalized stress below 1.5 m, so no
        // links should be dropped even though the stress is non-zero.
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        let mut rng = StdRng::seed_from_u64(5);
        for (i, j) in d.links() {
            let v = d.get(i, j).unwrap();
            d.set(i, j, (v + rng.gen_range(-0.4..0.4)).max(0.1))
                .unwrap();
        }
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.converged);
        assert!(
            result.dropped_links.is_empty(),
            "dropped {:?}",
            result.dropped_links
        );
    }

    #[test]
    fn realizability_guard_prevents_excessive_dropping() {
        // A 4-node complete graph: dropping any link makes it non-unique, so
        // even with a huge outlier nothing can be dropped and the result is
        // flagged as not converged.
        let truth = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
            Vec2::new(0.0, 10.0),
        ];
        let mut d = DistanceMatrix::from_points_2d(&truth);
        d.set(0, 2, 40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.dropped_links.is_empty());
        assert!(!result.converged);
        assert!(result.normalized_stress >= 1.5);
    }

    #[test]
    fn spurious_extra_drop_is_rejected_by_validation() {
        // One +12 m occluded link on the 5-node testbed: the misfire mode
        // this pipeline exists to kill is dropping a *clean* link alongside
        // the occluded one. Whatever subset is accepted must be exactly
        // {(0, 1)} — the validation re-solve rejects any 2-link set whose
        // clean member barely degrades the fit when re-inserted.
        let truth = testbed_points();
        for seed in 0..20u64 {
            let mut d = DistanceMatrix::from_points_2d(&truth);
            let mut rng = StdRng::seed_from_u64(seed);
            for (i, j) in d.links() {
                let v = d.get(i, j).unwrap();
                d.set(i, j, (v + rng.gen_range(-0.5..0.5)).max(0.1))
                    .unwrap();
            }
            let v = d.get(0, 1).unwrap();
            d.set(0, 1, v + 12.0).unwrap();
            let result = localize_with_outlier_detection(
                &d,
                &SmacofConfig::default(),
                &OutlierConfig::default(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(
                result.dropped_links,
                vec![(0, 1)],
                "seed {seed}: dropped {:?}",
                result.dropped_links
            );
        }
    }

    #[test]
    fn drop_evidence_accumulates_and_projects() {
        let mut evidence = DropEvidence::new();
        assert_eq!(evidence.rounds_observed(), 0);
        assert!(!evidence.is_persistent(0, 1));
        evidence.observe_round(&[(1, 0)]); // normalised to (0, 1)
        assert_eq!(evidence.drop_count(0, 1), 1);
        assert!(!evidence.is_persistent(0, 1), "one drop is not persistent");
        evidence.observe_round(&[(0, 1)]);
        assert!(evidence.is_persistent(0, 1));
        assert_eq!(evidence.persistent_links(), vec![(0, 1)]);
        // A clean round dilutes persistence but two of three still hold.
        evidence.observe_round(&[]);
        assert!(evidence.is_persistent(0, 1));
        assert_eq!(evidence.rounds_observed(), 3);
        // Projection onto a reduced index set (device 2 silent): full link
        // (0, 3) becomes reduced (0, 2); links touching device 2 vanish.
        let mut full = DropEvidence::new();
        full.observe_round(&[(0, 3), (1, 2)]);
        full.observe_round(&[(0, 3), (1, 2)]);
        let reduced = full.project(&[0, 1, 3]);
        assert_eq!(reduced.rounds_observed(), 2);
        assert_eq!(reduced.drop_count(0, 2), 2);
        assert!(reduced.is_persistent(0, 2));
        assert_eq!(reduced.persistent_links(), vec![(0, 2)]);
    }

    #[test]
    fn persistent_evidence_relaxes_a_borderline_drop() {
        // A +12 m occlusion with heavy noise can leave the post-drop stress
        // above threshold while the relative improvement misses the 0.9
        // bar; with persistent evidence the drop is still accepted on the
        // clear fit improvement.
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        let mut noise_rng = StdRng::seed_from_u64(40);
        for (i, j) in d.links() {
            let v = d.get(i, j).unwrap();
            d.set(i, j, (v + noise_rng.gen_range(-1.2..1.2)).max(0.1))
                .unwrap();
        }
        let v = d.get(0, 1).unwrap();
        d.set(0, 1, v + 12.0).unwrap();

        let mut evidence = DropEvidence::new();
        evidence.observe_round(&[(0, 1)]);
        evidence.observe_round(&[(0, 1)]);
        let mut rng = StdRng::seed_from_u64(41);
        let with_evidence = localize_with_drop_validation(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            Some(&evidence),
            &mut rng,
        )
        .unwrap();
        assert_eq!(with_evidence.dropped_links, vec![(0, 1)]);
    }

    #[test]
    fn unmeasured_link_subsets_are_skipped_not_poisoned() {
        // A matrix with a missing link used to let a candidate subset
        // containing it score `min_residual = -inf` silently (the old code
        // read `get(i, j).unwrap_or(f64::NEG_INFINITY)`). Candidates are
        // now nominated from measured links only and subsets with an
        // unmeasured member are skipped explicitly; with the occluded link
        // measured the right drop still happens. A 6-node testbed is used
        // because 15 − 1 links keep the topology rigid enough that the
        // +15 m bias cannot be absorbed (5 nodes minus a link can flex
        // around it below the stress threshold).
        let truth = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(8.0, 0.0),
            Vec2::new(12.0, 9.0),
            Vec2::new(2.0, 14.0),
            Vec2::new(-6.0, 7.0),
            Vec2::new(4.0, 6.0),
        ];
        let mut d = DistanceMatrix::from_points_2d(&truth);
        d.clear(2, 4);
        let v = d.get(0, 1).unwrap();
        d.set(0, 1, v + 15.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(result.dropped_links, vec![(0, 1)]);
        assert!(result.converged, "stress {}", result.normalized_stress);
    }
}
