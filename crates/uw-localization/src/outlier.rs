//! Iterative outlier detection (§2.1.3, Algorithm 1).
//!
//! Occluded links mistake a reflection for the direct path, producing a
//! distance that is wrong by metres yet not wrong enough to violate the
//! triangle inequality. Because SMACOF weights every link equally, even one
//! such outlier distorts the whole topology.
//!
//! The paper's Algorithm 1 exploits two observations: without outliers the
//! normalised stress stays below a threshold (1.5 m), and dropping exactly
//! the outlier links makes the stress collapse (by more than 90%). The
//! algorithm therefore:
//!
//! 1. solves with all links; if the normalised stress is already below the
//!    threshold, done;
//! 2. otherwise tries dropping every subset of links of size 1, then 2, …,
//!    up to `max_outliers` (3), keeping the subset that most reduces the
//!    stress *and* reduces it by at least the improvement factor;
//! 3. only evaluates subsets whose removal leaves the graph uniquely
//!    realizable, so the solution cannot silently become ambiguous.

use crate::matrix::{DistanceMatrix, Vec2, WeightMatrix};
use crate::rigidity::realizable_after_dropping;
use crate::smacof::{smacof, SmacofConfig, SmacofSolution};
use crate::Result;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the outlier-detection loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OutlierConfig {
    /// Normalised-stress threshold below which the solution is accepted
    /// (1.5 m in the paper).
    pub stress_threshold_m: f64,
    /// Maximum number of links that may be dropped (3 in the paper).
    pub max_outliers: usize,
    /// Required relative stress reduction for a drop subset to be considered
    /// an outlier set (0.9 in the paper).
    pub improvement_factor: f64,
    /// Minimum residual `measured − embedded` (m) a dropped link must show
    /// in the candidate solution. Occlusion outliers detect a reflection and
    /// are therefore biased *long*; a candidate drop whose link fits the
    /// embedding (small or negative residual) is a spurious drop that merely
    /// freed the topology to warp, and is rejected.
    pub min_drop_residual_m: f64,
}

impl Default for OutlierConfig {
    fn default() -> Self {
        Self {
            stress_threshold_m: 1.5,
            max_outliers: 3,
            improvement_factor: 0.9,
            min_drop_residual_m: 1.5,
        }
    }
}

/// Result of outlier-aware topology estimation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutlierResult {
    /// Estimated 2D positions.
    pub positions: Vec<Vec2>,
    /// Links identified as outliers and excluded from the final solve.
    pub dropped_links: Vec<(usize, usize)>,
    /// Normalised stress of the final solution (m).
    pub normalized_stress: f64,
    /// True when the final stress is below the acceptance threshold.
    pub converged: bool,
}

/// Runs Algorithm 1: SMACOF with iterative outlier-subset dropping.
pub fn localize_with_outlier_detection<R: Rng>(
    distances_2d: &DistanceMatrix,
    smacof_config: &SmacofConfig,
    outlier_config: &OutlierConfig,
    rng: &mut R,
) -> Result<OutlierResult> {
    let base_weights = WeightMatrix::from_distances(distances_2d);
    let initial = smacof(distances_2d, &base_weights, smacof_config, rng)?;

    // Fast path: no outliers suspected.
    if initial.normalized_stress < outlier_config.stress_threshold_m {
        return Ok(OutlierResult {
            positions: initial.positions,
            dropped_links: Vec::new(),
            normalized_stress: initial.normalized_stress,
            converged: true,
        });
    }

    let links = distances_2d.links();
    let mut current_best: SmacofSolution = initial;
    let mut current_drop: Vec<(usize, usize)> = Vec::new();

    // (candidate solution, dropped links, min residual of the dropped links)
    type DropCandidate = (SmacofSolution, Vec<(usize, usize)>, f64);
    for n_drop in 1..=outlier_config.max_outliers {
        let mut round_best: Option<DropCandidate> = None;
        for subset in subsets_of_size(&links, n_drop) {
            // Never evaluate a drop set that destroys unique realizability.
            if !realizable_after_dropping(distances_2d, &subset) {
                continue;
            }
            let mut weights = base_weights.clone();
            weights.drop_links(&subset);
            let candidate = match smacof(distances_2d, &weights, smacof_config, rng) {
                Ok(c) => c,
                Err(_) => continue,
            };
            let improved = current_best.normalized_stress - candidate.normalized_stress
                > outlier_config.improvement_factor * current_best.normalized_stress;
            // Every dropped link must look like an occlusion outlier in the
            // candidate embedding: measured well *longer* than embedded.
            // Without this test, a +12 m occluded link is often still
            // embeddable — dropping some *good* link can free the topology
            // to warp itself around the corrupted measurement and reach a
            // low stress on a geometrically wrong solution.
            let min_residual = subset
                .iter()
                .map(|&(i, j)| {
                    let measured = distances_2d.get(i, j).unwrap_or(f64::NEG_INFINITY);
                    measured - candidate.positions[i].distance(&candidate.positions[j])
                })
                .fold(f64::INFINITY, f64::min);
            let plausible_outlier = min_residual > outlier_config.min_drop_residual_m;
            // Among plausible candidates prefer the one whose dropped links
            // misfit the most — that subset, not the lowest-stress warp, is
            // the actual outlier set.
            let better_than_round = round_best
                .as_ref()
                .is_none_or(|&(_, _, best_res)| min_residual > best_res);
            if improved && plausible_outlier && better_than_round {
                round_best = Some((candidate, subset, min_residual));
            }
        }

        if let Some((best, drop, _)) = round_best {
            current_best = best;
            current_drop = drop;
            if current_best.normalized_stress < outlier_config.stress_threshold_m {
                return Ok(OutlierResult {
                    positions: current_best.positions,
                    dropped_links: current_drop,
                    normalized_stress: current_best.normalized_stress,
                    converged: true,
                });
            }
        }
    }

    let converged = current_best.normalized_stress < outlier_config.stress_threshold_m;
    Ok(OutlierResult {
        positions: current_best.positions,
        dropped_links: current_drop,
        normalized_stress: current_best.normalized_stress,
        converged,
    })
}

/// Enumerates all subsets of `items` with exactly `k` elements.
fn subsets_of_size<T: Clone>(items: &[T], k: usize) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    if k == 0 || k > items.len() {
        return out;
    }
    let mut indices: Vec<usize> = (0..k).collect();
    loop {
        out.push(indices.iter().map(|&i| items[i].clone()).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if indices[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        indices[i] += 1;
        for j in (i + 1)..k {
            indices[j] = indices[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smacof::procrustes_errors;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn testbed_points() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(8.0, 0.0),
            Vec2::new(12.0, 9.0),
            Vec2::new(2.0, 14.0),
            Vec2::new(-6.0, 7.0),
        ]
    }

    fn mean(errors: &[f64]) -> f64 {
        errors.iter().sum::<f64>() / errors.len() as f64
    }

    #[test]
    fn subsets_enumeration() {
        let items = vec![1, 2, 3, 4];
        assert_eq!(subsets_of_size(&items, 1).len(), 4);
        assert_eq!(subsets_of_size(&items, 2).len(), 6);
        assert_eq!(subsets_of_size(&items, 3).len(), 4);
        assert_eq!(subsets_of_size(&items, 4).len(), 1);
        assert!(subsets_of_size(&items, 0).is_empty());
        assert!(subsets_of_size(&items, 5).is_empty());
        // Each 2-subset is distinct.
        let twos = subsets_of_size(&items, 2);
        for (a, b) in [(0, 1), (0, 2), (1, 2)] {
            assert_ne!(twos[a], twos[b]);
        }
    }

    #[test]
    fn clean_distances_need_no_outlier_removal() {
        let truth = testbed_points();
        let d = DistanceMatrix::from_points_2d(&truth);
        let mut rng = StdRng::seed_from_u64(1);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.converged);
        assert!(result.dropped_links.is_empty());
        assert!(result.normalized_stress < 0.1);
        let errs = procrustes_errors(&result.positions, &truth).unwrap();
        assert!(mean(&errs) < 0.05, "mean error {}", mean(&errs));
    }

    #[test]
    fn single_outlier_link_is_identified_and_dropped() {
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        // Corrupt one link by +15 m (an occluded direct path replaced by a
        // long reflection) — large enough that the stress cannot be absorbed
        // by deforming the topology, so Algorithm 1 must drop the link.
        let true_d01 = d.get(0, 1).unwrap();
        d.set(0, 1, true_d01 + 15.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.converged, "stress {}", result.normalized_stress);
        assert_eq!(result.dropped_links, vec![(0, 1)]);
        let errs = procrustes_errors(&result.positions, &truth).unwrap();
        assert!(mean(&errs) < 0.5, "mean error {}", mean(&errs));
    }

    #[test]
    fn outlier_detection_improves_over_plain_smacof() {
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        let true_d13 = d.get(1, 3).unwrap();
        d.set(1, 3, true_d13 + 10.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);

        // Plain SMACOF with the corrupted link.
        let w = WeightMatrix::from_distances(&d);
        let plain = smacof(&d, &w, &SmacofConfig::default(), &mut rng).unwrap();
        let plain_err = mean(&procrustes_errors(&plain.positions, &truth).unwrap());

        let with_outliers = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        let outlier_err = mean(&procrustes_errors(&with_outliers.positions, &truth).unwrap());
        assert!(
            outlier_err < plain_err * 0.5,
            "outlier detection {outlier_err} should beat plain {plain_err}"
        );
    }

    #[test]
    fn two_outliers_within_budget_are_dropped() {
        // Two disjoint links are corrupted so badly (+30 m / +25 m on a
        // ~15 m-wide layout) that no alternative embedding can absorb them:
        // the only way to collapse the stress is to drop exactly those two.
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        d.set(0, 2, d.get(0, 2).unwrap() + 30.0).unwrap();
        d.set(1, 4, d.get(1, 4).unwrap() + 25.0).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        let mut dropped = result.dropped_links.clone();
        dropped.sort_unstable();
        assert!(result.converged, "stress {}", result.normalized_stress);
        assert_eq!(dropped, vec![(0, 2), (1, 4)]);
        let errs = procrustes_errors(&result.positions, &truth).unwrap();
        assert!(mean(&errs) < 0.5, "mean error {}", mean(&errs));
    }

    #[test]
    fn small_noise_does_not_trigger_dropping() {
        // Uniform ±0.4 m noise keeps normalized stress below 1.5 m, so no
        // links should be dropped even though the stress is non-zero.
        let truth = testbed_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        let mut rng = StdRng::seed_from_u64(5);
        for (i, j) in d.links() {
            let v = d.get(i, j).unwrap();
            d.set(i, j, (v + rng.gen_range(-0.4..0.4)).max(0.1))
                .unwrap();
        }
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.converged);
        assert!(
            result.dropped_links.is_empty(),
            "dropped {:?}",
            result.dropped_links
        );
    }

    #[test]
    fn realizability_guard_prevents_excessive_dropping() {
        // A 4-node complete graph: dropping any link makes it non-unique, so
        // even with a huge outlier nothing can be dropped and the result is
        // flagged as not converged.
        let truth = vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
            Vec2::new(0.0, 10.0),
        ];
        let mut d = DistanceMatrix::from_points_2d(&truth);
        d.set(0, 2, 40.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(result.dropped_links.is_empty());
        assert!(!result.converged);
        assert!(result.normalized_stress >= 1.5);
    }
}
