//! End-to-end localization pipeline.
//!
//! [`localize`] chains the four stages of §2.1 — depth projection, SMACOF
//! topology estimation with outlier detection, rotation alignment and
//! flipping disambiguation — and lifts the result back to 3D with the
//! measured depths. It also provides the error metrics every evaluation
//! figure uses (per-device 2D error against ground truth).

use crate::ambiguity::{geometric_side, resolve_ambiguities};
use crate::matrix::{DistanceMatrix, Vec2};
use crate::outlier::{
    drop_hypotheses, DropEvidence, OutlierConfig, OutlierResult, VOTE_MISMATCH_PENALTY_M,
};
use crate::project::{lift_to_3d, project_to_2d};
use crate::smacof::SmacofConfig;
use crate::{LocalizationError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use uw_channel::geometry::Point3;

/// Configuration of the full localization pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalizerConfig {
    /// SMACOF solver parameters.
    pub smacof: SmacofConfig,
    /// Outlier-detection parameters.
    pub outlier: OutlierConfig,
    /// When true, skip outlier detection entirely (used by the Fig. 19a
    /// ablation).
    pub disable_outlier_detection: bool,
    /// Huber threshold (m) for the IRLS refinement of the accepted link
    /// set; links whose residual exceeds it are downweighted by
    /// `delta / |residual|`. Catches moderate ranging outliers that stay
    /// below the hard-drop stress threshold. `0` disables refinement.
    /// Defaults to [`crate::outlier::RESIDUAL_SCALE_M`], the same constant
    /// Algorithm 1's drop-validation pass judges residuals on.
    pub robust_delta_m: f64,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        Self {
            smacof: SmacofConfig::default(),
            outlier: OutlierConfig::default(),
            disable_outlier_detection: false,
            robust_delta_m: crate::outlier::RESIDUAL_SCALE_M,
        }
    }
}

/// Input to one localization round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizationInput {
    /// Pairwise 3D (slant) distance measurements; missing links allowed.
    pub distances: DistanceMatrix,
    /// Measured depth of each device (m), index = device ID.
    pub depths: Vec<f64>,
    /// Azimuth the leader is pointing towards device 1, in radians in the
    /// world frame the output should be expressed in.
    pub pointing_azimuth_rad: f64,
    /// Leader dual-microphone side signs per device (see
    /// [`crate::ambiguity`] for the convention). Entries for devices 0 and 1
    /// are ignored; `None` marks devices whose signal the leader did not
    /// hear or could not classify.
    pub side_signs: Vec<Option<i8>>,
}

/// Output of one localization round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalizationOutput {
    /// Estimated 3D positions relative to the leader (device 0 is at the
    /// origin of the horizontal plane, at its own measured depth).
    pub positions: Vec<Point3>,
    /// Estimated 2D (horizontal) positions.
    pub positions_2d: Vec<Vec2>,
    /// Links dropped as outliers.
    pub dropped_links: Vec<(usize, usize)>,
    /// Normalised stress of the accepted topology (m).
    pub normalized_stress: f64,
    /// Whether the mirrored configuration was selected.
    pub flipped: bool,
    /// Whether the stress threshold was met.
    pub converged: bool,
}

/// Runs the full localization pipeline.
pub fn localize<R: Rng>(
    input: &LocalizationInput,
    config: &LocalizerConfig,
    rng: &mut R,
) -> Result<LocalizationOutput> {
    localize_with_evidence(input, config, None, rng)
}

/// Runs the full localization pipeline, optionally biasing Algorithm 1's
/// drop decisions with cross-round [`DropEvidence`] (see
/// [`crate::outlier`]). Pass `None` for a single standalone round;
/// `uw_core::Session` threads its per-session accumulator through here so
/// repeated rounds on a static topology converge on a persistently
/// occluded link.
pub fn localize_with_evidence<R: Rng>(
    input: &LocalizationInput,
    config: &LocalizerConfig,
    evidence: Option<&DropEvidence>,
    rng: &mut R,
) -> Result<LocalizationOutput> {
    let n = input.distances.len();
    if n < 3 {
        return Err(LocalizationError::InvalidInput {
            reason: format!("localization needs at least 3 devices, got {n}"),
        });
    }
    if input.depths.len() != n {
        return Err(LocalizationError::InvalidInput {
            reason: format!("{} depths for {n} devices", input.depths.len()),
        });
    }
    if input.side_signs.len() != n {
        return Err(LocalizationError::InvalidInput {
            reason: format!("{} side signs for {n} devices", input.side_signs.len()),
        });
    }

    // Stage 1: depth projection.
    let distances_2d = project_to_2d(&input.distances, &input.depths)?;

    // Stage 2: topology estimation (with or without outlier handling). The
    // drop pass can return several validated hypotheses: under severe
    // occlusion, discarding a clean long link sometimes admits a partially
    // *reflected* topology whose stress matches the truth's, and the
    // distance data alone cannot tell the two apart. Each hypothesis is
    // carried through refinement and ambiguity resolution, and the
    // side-sign votes arbitrate below.
    let hypotheses = if config.disable_outlier_detection {
        let weights = crate::matrix::WeightMatrix::from_distances(&distances_2d);
        let sol = crate::smacof::smacof(&distances_2d, &weights, &config.smacof, rng)?;
        vec![OutlierResult {
            positions: sol.positions,
            dropped_links: Vec::new(),
            normalized_stress: sol.normalized_stress,
            converged: sol.normalized_stress < config.outlier.stress_threshold_m,
            occam_cost_m: 0.0,
        }]
    } else {
        drop_hypotheses(
            &distances_2d,
            &config.smacof,
            &config.outlier,
            evidence,
            rng,
        )?
    };

    // Stages 2b–4 per hypothesis; the winner minimises the arbitration
    // score `occam_cost + penalty × side-vote mismatches`. A partial
    // reflection puts at least one device on the wrong side of the
    // leader–device-1 line, so a fold that survived the drop gates still
    // pays [`VOTE_MISMATCH_PENALTY_M`] per contradicted vote on top of its
    // higher Occam cost — while a single noisy vote (the dual-mic sign
    // flips with ~10% probability near the line) is too cheap to override
    // the geometric evidence. With one hypothesis — every clean round — no
    // extra work happens and no side-sign comparison is made.
    let assess = |topo: OutlierResult| -> Result<(f64, usize, LocalizationOutput)> {
        let mut cost = topo.occam_cost_m;
        // Stage 2b: Huber-reweighted refinement on the accepted link set,
        // so moderate ranging outliers (too small for Algorithm 1's hard
        // drop) stop dragging the topology. Skipped together with outlier
        // detection: the Fig. 19a ablation must measure a truly
        // unmitigated solve.
        let topo = if config.robust_delta_m > 0.0 && !config.disable_outlier_detection {
            let mut weights = crate::matrix::WeightMatrix::from_distances(&distances_2d);
            weights.drop_links(&topo.dropped_links);
            let initial = crate::smacof::SmacofSolution {
                normalized_stress: topo.normalized_stress,
                stress: crate::smacof::stress(&topo.positions, &distances_2d, &weights),
                positions: topo.positions,
                iterations: 0,
            };
            let refined = crate::smacof::refine_robust(
                &distances_2d,
                &weights,
                &config.smacof,
                config.robust_delta_m,
                initial,
            )?;
            // Re-score the hypothesis on its *refined* embedding with the
            // robust decomposition: in-band misfit keeps the quadratic
            // stress weight, while residual beyond the Huber δ is charged
            // linearly in metres — the same unit the hypothesis pays for
            // its claimed bias. A genuine secondary ranging outlier — too
            // small to drop, exactly what the IRLS refinement absorbs —
            // then costs its few excess metres instead of dominating the
            // quadratic stress of the correct hypothesis, while a fold
            // that *keeps* the biased link pays every unexplained metre it
            // smears across the topology. The drop pass's quadratic cost
            // decided admission and ordering; this swap only re-ranks the
            // finalists.
            let (trimmed, excess_m) = crate::smacof::robust_misfit_decomposition(
                &refined.positions,
                &distances_2d,
                &weights,
                config.robust_delta_m,
            );
            cost +=
                crate::outlier::STRESS_COST_WEIGHT * (trimmed - topo.normalized_stress) + excess_m;
            OutlierResult {
                positions: refined.positions,
                normalized_stress: refined.normalized_stress,
                dropped_links: topo.dropped_links,
                converged: topo.converged,
                occam_cost_m: topo.occam_cost_m,
            }
        } else {
            topo
        };

        // Stage 3: rotation + flipping.
        let resolved = resolve_ambiguities(
            &topo.positions,
            input.pointing_azimuth_rad,
            &input.side_signs,
        )?;
        let mismatches = input
            .side_signs
            .iter()
            .enumerate()
            .skip(2)
            .filter(|&(i, sign)| {
                sign.is_some_and(|s| {
                    let geo = geometric_side(&resolved.positions, i);
                    s != 0 && geo != 0 && geo != s
                })
            })
            .count();

        // Stage 4: lift back to 3D with the measured depths.
        let positions = lift_to_3d(&resolved.positions, &input.depths)?;

        Ok((
            cost,
            mismatches,
            LocalizationOutput {
                positions,
                positions_2d: resolved.positions,
                dropped_links: topo.dropped_links,
                normalized_stress: topo.normalized_stress,
                flipped: resolved.flipped,
                converged: topo.converged,
            },
        ))
    };

    let mut best: Option<(f64, usize, LocalizationOutput)> = None;
    for topo in hypotheses {
        let (cost, mismatches, out) = assess(topo)?;
        let score = cost + VOTE_MISMATCH_PENALTY_M * mismatches as f64;
        if best.as_ref().is_none_or(|(s, _, _)| score < *s) {
            best = Some((score, mismatches, out));
        }
    }
    let (mut best_score, mut best_mismatches, mut best_out) =
        best.expect("drop_hypotheses returns at least one hypothesis");

    // Rescue pass: the chosen solution still contradicts measured side
    // signs. A severe occlusion can be *absorbed* by the full-link solve —
    // the warped topology fits the biased link below the stress threshold,
    // so the fast path accepts it without ever hypothesising a drop — and
    // the warp typically pushes a device across the leader–device-1 line.
    // Re-enumerate with the fast path skipped and gate 3's margin waived
    // (see [`rescue_hypotheses`](crate::outlier::rescue_hypotheses)); a
    // rescue hypothesis is adopted only when it contradicts strictly fewer
    // side signs AND wins on the arbitration score — a relaxed-gate fold
    // that merely gets lucky with the noisy votes cannot override a main
    // pick it loses to on cost. Clean rounds with a noisy vote reach here
    // too, but gate 2 rejects every drop on clean data, so they keep their
    // solution.
    if best_mismatches > 0 && !config.disable_outlier_detection {
        for topo in crate::outlier::rescue_hypotheses(
            &distances_2d,
            &config.smacof,
            &config.outlier,
            evidence,
            rng,
        )? {
            if topo.dropped_links.is_empty() {
                continue;
            }
            let (cost, mismatches, out) = assess(topo)?;
            let score = cost + VOTE_MISMATCH_PENALTY_M * mismatches as f64;
            if mismatches < best_mismatches && score < best_score {
                let decisive = mismatches == 0;
                best_mismatches = mismatches;
                best_score = score;
                best_out = out;
                if decisive {
                    break;
                }
            }
        }
    }
    Ok(best_out)
}

/// Per-device horizontal (2D) localization error against ground truth,
/// excluding the leader (device 0), matching how the paper reports
/// localization error. Ground truth is expressed in the same leader-centred
/// frame as the output.
pub fn localization_errors_2d(estimate: &[Vec2], truth: &[Vec2]) -> Result<Vec<f64>> {
    if estimate.len() != truth.len() || estimate.len() < 2 {
        return Err(LocalizationError::InvalidInput {
            reason: "estimate and truth must be equal-length with at least 2 devices".into(),
        });
    }
    Ok(estimate
        .iter()
        .zip(truth.iter())
        .skip(1)
        .map(|(e, t)| e.distance(t))
        .collect())
}

/// Ground-truth helper: expresses absolute device positions in the
/// leader-centred frame used by [`localize`] (leader at the horizontal
/// origin, world axes preserved) and returns the 2D coordinates.
pub fn truth_in_leader_frame(positions: &[Point3]) -> Vec<Vec2> {
    if positions.is_empty() {
        return Vec::new();
    }
    let leader = positions[0];
    positions
        .iter()
        .map(|p| Vec2::new(p.x - leader.x, p.y - leader.y))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::distances_from_positions;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A 5-device deployment in 3D (leader at index 0). Device 1 is the one
    /// the leader points at.
    fn deployment() -> Vec<Point3> {
        vec![
            Point3::new(0.0, 0.0, 1.5),
            Point3::new(1.0, 6.0, 2.0),
            Point3::new(9.0, 9.0, 3.0),
            Point3::new(-7.0, 6.0, 1.0),
            Point3::new(4.0, -6.0, 4.0),
        ]
    }

    fn pointing_azimuth(positions: &[Point3]) -> f64 {
        positions[0].azimuth_to(&positions[1])
    }

    /// Microphone side signs consistent with the geometry: +1 when the
    /// device is on the right of the ray leader→device 1.
    fn consistent_signs(positions: &[Point3]) -> Vec<Option<i8>> {
        let frame = truth_in_leader_frame(positions);
        (0..positions.len())
            .map(|i| {
                if i < 2 {
                    None
                } else {
                    Some(crate::ambiguity::geometric_side(&frame, i))
                }
            })
            .collect()
    }

    fn input_from_truth(truth: &[Point3]) -> LocalizationInput {
        LocalizationInput {
            distances: distances_from_positions(truth),
            depths: truth.iter().map(|p| p.z).collect(),
            pointing_azimuth_rad: pointing_azimuth(truth),
            side_signs: consistent_signs(truth),
        }
    }

    #[test]
    fn exact_inputs_recover_exact_positions() {
        let truth = deployment();
        let input = input_from_truth(&truth);
        let mut rng = StdRng::seed_from_u64(1);
        let out = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
        assert!(out.converged);
        assert!(!out.flipped || out.positions_2d.len() == truth.len());
        let truth_2d = truth_in_leader_frame(&truth);
        let errs = localization_errors_2d(&out.positions_2d, &truth_2d).unwrap();
        for (i, e) in errs.iter().enumerate() {
            assert!(*e < 0.05, "device {} error {e}", i + 1);
        }
        // Depths are carried through unchanged.
        for (p, t) in out.positions.iter().zip(truth.iter()) {
            assert!((p.z - t.z).abs() < 1e-12);
        }
        // Leader is at the origin of the horizontal plane.
        assert!(out.positions[0].x.abs() < 1e-9 && out.positions[0].y.abs() < 1e-9);
    }

    #[test]
    fn noisy_inputs_give_sub_metre_errors() {
        let truth = deployment();
        let mut input = input_from_truth(&truth);
        let mut rng = StdRng::seed_from_u64(2);
        // ±0.5 m ranging noise, ±0.3 m depth noise — the paper's regime.
        for (i, j) in input.distances.links() {
            let v = input.distances.get(i, j).unwrap();
            input
                .distances
                .set(i, j, (v + rng.gen_range(-0.5..0.5)).max(0.1))
                .unwrap();
        }
        for d in input.depths.iter_mut() {
            *d = (*d + rng.gen_range(-0.3..0.3)).max(0.0);
        }
        let out = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
        let truth_2d = truth_in_leader_frame(&truth);
        let errs = localization_errors_2d(&out.positions_2d, &truth_2d).unwrap();
        let mean: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 1.5, "mean error {mean}");
    }

    #[test]
    fn occluded_link_is_recovered_by_outlier_detection() {
        let truth = deployment();
        let mut input = input_from_truth(&truth);
        // Corrupt the leader–device-1 link as an occlusion would (the
        // strongest reflection is several metres longer than the direct
        // path), as in Fig. 19a.
        let v = input.distances.get(0, 1).unwrap();
        input.distances.set(0, 1, v + 12.0).unwrap();
        let mut rng = StdRng::seed_from_u64(3);

        let with = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
        let without = localize(
            &input,
            &LocalizerConfig {
                disable_outlier_detection: true,
                ..LocalizerConfig::default()
            },
            &mut rng,
        )
        .unwrap();

        let truth_2d = truth_in_leader_frame(&truth);
        let err_with: f64 = localization_errors_2d(&with.positions_2d, &truth_2d)
            .unwrap()
            .iter()
            .sum();
        let err_without: f64 = localization_errors_2d(&without.positions_2d, &truth_2d)
            .unwrap()
            .iter()
            .sum();
        assert!(
            err_with < err_without,
            "with outlier detection {err_with} vs without {err_without}"
        );
        assert_eq!(with.dropped_links, vec![(0, 1)]);
        assert!(without.dropped_links.is_empty());
    }

    #[test]
    fn missing_link_is_tolerated() {
        let truth = deployment();
        let mut input = input_from_truth(&truth);
        input.distances.clear(2, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let out = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
        let truth_2d = truth_in_leader_frame(&truth);
        let errs = localization_errors_2d(&out.positions_2d, &truth_2d).unwrap();
        for e in errs {
            assert!(e < 0.5, "error {e}");
        }
    }

    #[test]
    fn four_device_network_works() {
        let truth = deployment()[..4].to_vec();
        let input = input_from_truth(&truth);
        let mut rng = StdRng::seed_from_u64(5);
        let out = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
        let truth_2d = truth_in_leader_frame(&truth);
        let errs = localization_errors_2d(&out.positions_2d, &truth_2d).unwrap();
        for e in errs {
            assert!(e < 0.1, "error {e}");
        }
    }

    #[test]
    fn input_validation() {
        let truth = deployment();
        let mut rng = StdRng::seed_from_u64(6);
        let mut input = input_from_truth(&truth);
        input.depths.pop();
        assert!(localize(&input, &LocalizerConfig::default(), &mut rng).is_err());
        let mut input = input_from_truth(&truth);
        input.side_signs.pop();
        assert!(localize(&input, &LocalizerConfig::default(), &mut rng).is_err());
        let two = deployment()[..2].to_vec();
        let input = LocalizationInput {
            distances: distances_from_positions(&two),
            depths: two.iter().map(|p| p.z).collect(),
            pointing_azimuth_rad: 0.0,
            side_signs: vec![None; 2],
        };
        assert!(localize(&input, &LocalizerConfig::default(), &mut rng).is_err());
        assert!(localization_errors_2d(&[Vec2::default()], &[Vec2::default()]).is_err());
        assert!(localization_errors_2d(&[Vec2::default(); 3], &[Vec2::default(); 2]).is_err());
    }

    #[test]
    fn truth_frame_helper_centres_on_leader() {
        let truth = deployment();
        let frame = truth_in_leader_frame(&truth);
        assert_eq!(frame[0], Vec2::new(0.0, 0.0));
        assert_eq!(frame[2], Vec2::new(9.0, 9.0));
        assert!(truth_in_leader_frame(&[]).is_empty());
    }

    #[test]
    fn flipping_recovery_with_wrong_initial_chirality() {
        // Run many seeds; the SMACOF output chirality is arbitrary, so this
        // exercises both the flipped and non-flipped code paths. Every run
        // must land near the truth because the votes are consistent.
        let truth = deployment();
        let truth_2d = truth_in_leader_frame(&truth);
        let input = input_from_truth(&truth);
        let mut flips = 0;
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
            if out.flipped {
                flips += 1;
            }
            let errs = localization_errors_2d(&out.positions_2d, &truth_2d).unwrap();
            for e in errs {
                assert!(e < 0.1, "seed {seed} error {e}");
            }
        }
        // Not asserting a particular flip count — only that both outcomes,
        // whenever they occur, produce correct positions.
        assert!(flips <= 10);
    }
}
