//! Weighted SMACOF multidimensional scaling (§2.1.2).
//!
//! SMACOF (Scaling by MAjorizing a COmplicated Function) minimises the
//! weighted stress
//!
//! ```text
//! S(P) = Σ_{i<j} w_ij (D_ij − ‖P_i − P_j‖)²
//! ```
//!
//! by iterating the Guttman transform, which majorises the stress with a
//! convex quadratic at each step and therefore decreases monotonically —
//! the property the paper relies on for fast, reliable convergence compared
//! with plain gradient descent. Missing links carry weight 0 and simply
//! drop out of both the stress and the transform.
//!
//! The embedding is recovered only up to rotation, translation and
//! reflection; [`crate::ambiguity`] fixes those gauge freedoms afterwards.

use crate::matrix::{solve_linear, symmetric_eigen, DistanceMatrix, Vec2, WeightMatrix};
use crate::{LocalizationError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// SMACOF solver parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmacofConfig {
    /// Maximum number of Guttman iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the relative stress decrease per iteration.
    pub tolerance: f64,
    /// Number of random restarts; the embedding with the lowest stress wins.
    pub restarts: usize,
    /// Scale of the random initial placement (m). Should be on the order of
    /// the deployment extent.
    pub init_scale: f64,
}

impl Default for SmacofConfig {
    fn default() -> Self {
        Self {
            max_iterations: 300,
            tolerance: 1e-9,
            restarts: 4,
            init_scale: 30.0,
        }
    }
}

/// Result of one SMACOF solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmacofSolution {
    /// Estimated 2D positions, one per device.
    pub positions: Vec<Vec2>,
    /// Raw (unnormalised) stress of the solution.
    pub stress: f64,
    /// Normalised stress: `sqrt(stress / link_count)` in metres — the
    /// quantity the paper thresholds at 1.5 m for outlier detection.
    pub normalized_stress: f64,
    /// Number of iterations used by the best restart.
    pub iterations: usize,
}

/// Computes the weighted raw stress of an embedding.
pub fn stress(positions: &[Vec2], distances: &DistanceMatrix, weights: &WeightMatrix) -> f64 {
    let n = positions.len();
    let mut s = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let w = weights.get(i, j);
            if w == 0.0 {
                continue;
            }
            if let Some(d) = distances.get(i, j) {
                let emb = positions[i].distance(&positions[j]);
                s += w * (d - emb) * (d - emb);
            }
        }
    }
    s
}

/// Normalised stress in metres: root-mean-square residual per weighted link.
pub fn normalized_stress(
    positions: &[Vec2],
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
) -> f64 {
    let n_links = active_link_count(distances, weights);
    if n_links == 0 {
        return 0.0;
    }
    (stress(positions, distances, weights) / n_links as f64).sqrt()
}

/// Robust misfit decomposition of an embedding, in metres. Splits each
/// active link's residual `r = measured − embedded` at the Huber scale δ:
///
/// * the **trimmed stress** (first component) is [`normalized_stress`]
///   with every squared residual capped at `δ²` — the in-band geometric
///   misfit no single corrupted link can dominate;
/// * the **excess misfit** (second component) is `Σ max(0, |r| − δ)` —
///   the metres of measurement the embedding leaves unexplained beyond
///   the noise band, charged *linearly*, the same unit a drop hypothesis
///   pays for its claimed bias.
///
/// The split prices the two failure modes symmetrically: an embedding
/// that keeps a biased link and smears its bias across the topology pays
/// the smeared metres as excess, exactly as a hypothesis that drops the
/// link pays them as claimed bias — while a moderate secondary outlier
/// the IRLS refinement absorbs costs its few excess metres instead of
/// dominating the quadratic stress. Used to *rank* competing drop
/// hypotheses, not to accept them: acceptance thresholds stay on the
/// quadratic [`normalized_stress`].
pub fn robust_misfit_decomposition(
    positions: &[Vec2],
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
    delta_m: f64,
) -> (f64, f64) {
    let n_links = active_link_count(distances, weights);
    if n_links == 0 {
        return (0.0, 0.0);
    }
    let n = positions.len();
    let mut s = 0.0;
    let mut excess = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let w = weights.get(i, j);
            if w == 0.0 {
                continue;
            }
            if let Some(d) = distances.get(i, j) {
                let r = (d - positions[i].distance(&positions[j])).abs();
                if delta_m <= 0.0 {
                    s += w * r * r;
                } else {
                    s += w * (r * r).min(delta_m * delta_m);
                    excess += w * (r - delta_m).max(0.0);
                }
            }
        }
    }
    ((s / n_links as f64).sqrt(), excess)
}

/// Number of links that both have a measurement and a non-zero weight.
pub fn active_link_count(distances: &DistanceMatrix, weights: &WeightMatrix) -> usize {
    distances
        .links()
        .iter()
        .filter(|&&(i, j)| weights.get(i, j) > 0.0)
        .count()
}

/// Runs weighted SMACOF and returns the best embedding over the configured
/// restarts. `rng` drives the random initial placements, so results are
/// reproducible for a seeded generator.
pub fn smacof<R: Rng>(
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
    config: &SmacofConfig,
    rng: &mut R,
) -> Result<SmacofSolution> {
    let n = distances.len();
    if n < 3 {
        return Err(LocalizationError::InvalidInput {
            reason: format!("need at least 3 devices to localize, got {n}"),
        });
    }
    if weights.len() != n {
        return Err(LocalizationError::InvalidInput {
            reason: "weight matrix size mismatch".into(),
        });
    }
    if active_link_count(distances, weights) < 2 * n - 3 {
        // Fewer links than degrees of freedom: the solve is hopeless.
        return Err(LocalizationError::NotLocalizable {
            reason: format!(
                "{} links present but a rigid 2D embedding of {n} nodes needs at least {}",
                active_link_count(distances, weights),
                2 * n - 3
            ),
        });
    }

    let mut best: Option<SmacofSolution> = None;
    for restart in 0..config.restarts.max(1) {
        // The first start uses a classical-MDS (Torgerson) embedding of the
        // shortest-path-completed distance matrix — it lands close to the
        // global optimum for most inputs. Subsequent restarts use random
        // placements to escape local minima when the data is inconsistent.
        let init: Vec<Vec2> = if restart == 0 {
            classical_mds_init(distances, weights).unwrap_or_else(|| {
                (0..n)
                    .map(|_| {
                        Vec2::new(
                            rng.gen_range(-config.init_scale..config.init_scale),
                            rng.gen_range(-config.init_scale..config.init_scale),
                        )
                    })
                    .collect()
            })
        } else {
            (0..n)
                .map(|_| {
                    Vec2::new(
                        rng.gen_range(-config.init_scale..config.init_scale),
                        rng.gen_range(-config.init_scale..config.init_scale),
                    )
                })
                .collect()
        };
        let (positions, stress_val, iterations) = run_single(init, distances, weights, config)?;
        let solution = SmacofSolution {
            normalized_stress: {
                let links = active_link_count(distances, weights);
                if links == 0 {
                    0.0
                } else {
                    (stress_val / links as f64).sqrt()
                }
            },
            positions,
            stress: stress_val,
            iterations,
        };
        if best.as_ref().is_none_or(|b| solution.stress < b.stress) {
            best = Some(solution);
        }
    }
    best.ok_or(LocalizationError::SolverFailure {
        reason: "no SMACOF restart produced a solution".into(),
    })
}

/// Huber-reweighted (IRLS) SMACOF refinement.
///
/// Runs [`smacof`], then iteratively downweights links whose residual
/// `|measured − embedded|` exceeds `delta_m` (Huber weight `delta/|r|`) and
/// re-solves. Moderate ranging outliers — a missed direct path biasing one
/// link by a couple of metres, too small to trip the 1.5 m hard-drop
/// threshold of Algorithm 1 — stop dragging the whole topology while clean
/// links keep their full weight. Two reweight rounds are enough for the
/// weights to stabilise at this problem size.
pub fn smacof_robust<R: Rng>(
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
    config: &SmacofConfig,
    delta_m: f64,
    rng: &mut R,
) -> Result<SmacofSolution> {
    let initial = smacof(distances, weights, config, rng)?;
    refine_robust(distances, weights, config, delta_m, initial)
}

/// The reweighting half of [`smacof_robust`]: warm-started Guttman
/// iterations from an existing solution (e.g. the embedding Algorithm 1
/// just accepted), so the refinement polishes the validated embedding
/// instead of re-solving from fresh random/MDS inits and possibly landing
/// in a different local minimum.
pub fn refine_robust(
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
    config: &SmacofConfig,
    delta_m: f64,
    initial: SmacofSolution,
) -> Result<SmacofSolution> {
    let mut solution = initial;
    if delta_m <= 0.0 {
        return Ok(solution);
    }
    for _ in 0..2 {
        let mut reweighted = weights.clone();
        let mut changed = false;
        for (i, j) in distances.links() {
            let w = weights.get(i, j);
            if w == 0.0 {
                continue;
            }
            let Some(measured) = distances.get(i, j) else {
                continue;
            };
            let residual =
                (measured - solution.positions[i].distance(&solution.positions[j])).abs();
            if residual > delta_m {
                reweighted.set(i, j, w * delta_m / residual);
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let (positions, _, iterations) =
            run_single(solution.positions, distances, &reweighted, config)?;
        // Keep the refined embedding but report the stress against the
        // *original* weights so thresholds stay comparable.
        solution = SmacofSolution {
            normalized_stress: normalized_stress(&positions, distances, weights),
            stress: stress(&positions, distances, weights),
            positions,
            iterations,
        };
    }
    Ok(solution)
}

/// Plain warm-started Guttman descent: runs the SMACOF majorization from
/// `initial` under the given weights, with no random restarts and no
/// reweighting. Deterministic (consumes no RNG).
///
/// Algorithm 1's drop validation uses this to score candidate link drops
/// from an embedding it already trusts: the random-restart [`smacof`] solve
/// can miss the global minimum of a reduced link set (its classical-MDS
/// init completes a dropped link by graph shortest path, which badly
/// overestimates links much shorter than any two-hop detour), while the
/// clean links alone reliably pull a full-link embedding into the reduced
/// set's own minimum.
pub fn refine(
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
    config: &SmacofConfig,
    initial: &[Vec2],
) -> Result<SmacofSolution> {
    let (positions, stress_val, iterations) =
        run_single(initial.to_vec(), distances, weights, config)?;
    Ok(SmacofSolution {
        normalized_stress: normalized_stress(&positions, distances, weights),
        stress: stress_val,
        positions,
        iterations,
    })
}

/// Classical-MDS (Torgerson) initial embedding. Missing or zero-weight
/// links are filled with graph shortest-path distances; returns `None`
/// when the active-link graph is disconnected (the caller falls back to a
/// random start).
fn classical_mds_init(distances: &DistanceMatrix, weights: &WeightMatrix) -> Option<Vec<Vec2>> {
    let n = distances.len();
    const INF: f64 = 1e18;
    let mut d = vec![INF; n * n];
    for i in 0..n {
        d[i * n + i] = 0.0;
    }
    for (i, j) in distances.links() {
        if weights.get(i, j) > 0.0 {
            let v = distances.get(i, j)?;
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    // Floyd–Warshall completion.
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i * n + k] + d[k * n + j];
                if via < d[i * n + j] {
                    d[i * n + j] = via;
                }
            }
        }
    }
    if d.iter().any(|&v| v >= INF) {
        return None;
    }
    // Double centring: B = −½ J D² J.
    let d2: Vec<f64> = d.iter().map(|&v| v * v).collect();
    let row_mean: Vec<f64> = (0..n)
        .map(|i| (0..n).map(|j| d2[i * n + j]).sum::<f64>() / n as f64)
        .collect();
    let grand_mean: f64 = row_mean.iter().sum::<f64>() / n as f64;
    let mut b = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            b[i * n + j] = -0.5 * (d2[i * n + j] - row_mean[i] - row_mean[j] + grand_mean);
        }
    }
    let (vals, vecs) = symmetric_eigen(&b, n).ok()?;
    if vals.len() < 2 || vals[0] <= 0.0 {
        return None;
    }
    let s0 = vals[0].max(0.0).sqrt();
    let s1 = vals.get(1).copied().unwrap_or(0.0).max(0.0).sqrt();
    Some(
        (0..n)
            .map(|i| Vec2::new(vecs[0][i] * s0, vecs[1][i] * s1))
            .collect(),
    )
}

/// One SMACOF run from a given initial placement.
fn run_single(
    mut positions: Vec<Vec2>,
    distances: &DistanceMatrix,
    weights: &WeightMatrix,
    config: &SmacofConfig,
) -> Result<(Vec<Vec2>, f64, usize)> {
    let n = positions.len();

    // V matrix of the Guttman transform (constant across iterations):
    // V_ij = -w_ij (i≠j), V_ii = Σ_j w_ij. V is rank n-1; the standard
    // trick adds 1·1ᵀ/n to make it invertible without changing the solution
    // (the embedding is centred).
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        for j in 0..n {
            if i != j {
                let w = weights.get(i, j);
                v[i * n + j] = -w;
                v[i * n + i] += w;
            }
        }
    }
    for i in 0..n {
        for j in 0..n {
            v[i * n + j] += 1.0 / n as f64;
        }
    }

    let mut prev_stress = stress(&positions, distances, weights);
    let mut iterations = 0;
    for iter in 0..config.max_iterations {
        iterations = iter + 1;
        // B(X) matrix.
        let mut b = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let w = weights.get(i, j);
                if w == 0.0 {
                    continue;
                }
                if let Some(d) = distances.get(i, j) {
                    let emb = positions[i].distance(&positions[j]).max(1e-9);
                    let val = -w * d / emb;
                    b[i * n + j] += val;
                    b[i * n + i] -= val;
                }
            }
        }
        // Right-hand sides B(X)·X for x and y coordinates.
        let mut bx = vec![0.0; n];
        let mut by = vec![0.0; n];
        for i in 0..n {
            for j in 0..n {
                bx[i] += b[i * n + j] * positions[j].x;
                by[i] += b[i * n + j] * positions[j].y;
            }
        }
        let new_x = solve_linear(&v, &bx, n)?;
        let new_y = solve_linear(&v, &by, n)?;
        positions = new_x
            .iter()
            .zip(new_y.iter())
            .map(|(&x, &y)| Vec2::new(x, y))
            .collect();

        let s = stress(&positions, distances, weights);
        if prev_stress - s < config.tolerance * prev_stress.max(1e-12) {
            prev_stress = s;
            break;
        }
        prev_stress = s;
    }
    Ok((positions, prev_stress, iterations))
}

/// Computes the per-device embedding error between two point sets after
/// optimally aligning them (translation + rotation + optional reflection):
/// a Procrustes alignment. Returns the per-device distances after
/// alignment. Used to score topology recovery independent of the gauge
/// freedoms SMACOF cannot resolve.
pub fn procrustes_errors(estimate: &[Vec2], truth: &[Vec2]) -> Result<Vec<f64>> {
    if estimate.len() != truth.len() || estimate.is_empty() {
        return Err(LocalizationError::InvalidInput {
            reason: "procrustes requires equal-length, non-empty point sets".into(),
        });
    }
    let n = estimate.len() as f64;
    let cent = |pts: &[Vec2]| {
        let mut c = Vec2::default();
        for p in pts {
            c = c.add(p);
        }
        c.scale(1.0 / n)
    };
    let ce = cent(estimate);
    let ct = cent(truth);
    let est: Vec<Vec2> = estimate.iter().map(|p| p.sub(&ce)).collect();
    let tru: Vec<Vec2> = truth.iter().map(|p| p.sub(&ct)).collect();

    let mut best: Option<Vec<f64>> = None;
    for reflect in [false, true] {
        let est_r: Vec<Vec2> = if reflect {
            est.iter().map(|p| Vec2::new(p.x, -p.y)).collect()
        } else {
            est.clone()
        };
        // Optimal rotation angle via the cross/dot sums.
        let mut num = 0.0;
        let mut den = 0.0;
        for (e, t) in est_r.iter().zip(tru.iter()) {
            num += e.x * t.y - e.y * t.x;
            den += e.x * t.x + e.y * t.y;
        }
        let theta = num.atan2(den);
        let errors: Vec<f64> = est_r
            .iter()
            .zip(tru.iter())
            .map(|(e, t)| e.rotate(theta).distance(t))
            .collect();
        let total: f64 = errors.iter().map(|e| e * e).sum();
        let is_better = match &best {
            None => true,
            Some(b) => total < b.iter().map(|e| e * e).sum::<f64>(),
        };
        if is_better {
            best = Some(errors);
        }
    }
    Ok(best.expect("at least one orientation evaluated"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn square_points() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(10.0, 0.0),
            Vec2::new(10.0, 10.0),
            Vec2::new(0.0, 10.0),
            Vec2::new(5.0, 5.0),
        ]
    }

    #[test]
    fn recovers_exact_topology_from_exact_distances() {
        let truth = square_points();
        let d = DistanceMatrix::from_points_2d(&truth);
        let w = WeightMatrix::ones(truth.len());
        let mut rng = StdRng::seed_from_u64(1);
        let sol = smacof(&d, &w, &SmacofConfig::default(), &mut rng).unwrap();
        assert!(
            sol.normalized_stress < 1e-3,
            "stress {}",
            sol.normalized_stress
        );
        let errs = procrustes_errors(&sol.positions, &truth).unwrap();
        for e in errs {
            assert!(e < 0.01, "embedding error {e}");
        }
    }

    #[test]
    fn stress_decreases_with_better_fit() {
        let truth = square_points();
        let d = DistanceMatrix::from_points_2d(&truth);
        let w = WeightMatrix::ones(truth.len());
        let bad = vec![Vec2::new(0.0, 0.0); 5];
        let good = truth.clone();
        assert!(stress(&good, &d, &w) < stress(&bad, &d, &w));
        assert!(normalized_stress(&good, &d, &w) < 1e-9);
    }

    #[test]
    fn handles_noisy_distances_with_bounded_error() {
        let truth = square_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        // Add ±0.5 m noise.
        let mut rng = StdRng::seed_from_u64(2);
        for (i, j) in d.links() {
            let v = d.get(i, j).unwrap();
            let noisy = (v + rng.gen_range(-0.5..0.5)).max(0.1);
            d.set(i, j, noisy).unwrap();
        }
        let w = WeightMatrix::ones(truth.len());
        let sol = smacof(&d, &w, &SmacofConfig::default(), &mut rng).unwrap();
        let errs = procrustes_errors(&sol.positions, &truth).unwrap();
        let mean: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        assert!(mean < 1.0, "mean embedding error {mean}");
        assert!(sol.normalized_stress < 1.5);
    }

    #[test]
    fn missing_link_is_tolerated() {
        let truth = square_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        d.clear(0, 2); // drop one diagonal
        let w = WeightMatrix::from_distances(&d);
        let mut rng = StdRng::seed_from_u64(3);
        let sol = smacof(&d, &w, &SmacofConfig::default(), &mut rng).unwrap();
        let errs = procrustes_errors(&sol.positions, &truth).unwrap();
        for e in errs {
            assert!(e < 0.1, "error {e}");
        }
    }

    #[test]
    fn too_few_devices_or_links_rejected() {
        let d = DistanceMatrix::from_points_2d(&[Vec2::new(0.0, 0.0), Vec2::new(1.0, 0.0)]);
        let w = WeightMatrix::ones(2);
        let mut rng = StdRng::seed_from_u64(4);
        assert!(smacof(&d, &w, &SmacofConfig::default(), &mut rng).is_err());

        // 5 nodes but only 4 links (< 2n-3 = 7): not localizable.
        let mut sparse = DistanceMatrix::new(5);
        sparse.set(0, 1, 1.0).unwrap();
        sparse.set(1, 2, 1.0).unwrap();
        sparse.set(2, 3, 1.0).unwrap();
        sparse.set(3, 4, 1.0).unwrap();
        let w = WeightMatrix::from_distances(&sparse);
        assert!(matches!(
            smacof(&sparse, &w, &SmacofConfig::default(), &mut rng),
            Err(LocalizationError::NotLocalizable { .. })
        ));

        // Mismatched weight matrix size.
        let d = DistanceMatrix::from_points_2d(&square_points());
        let w = WeightMatrix::ones(3);
        assert!(smacof(&d, &w, &SmacofConfig::default(), &mut rng).is_err());
    }

    #[test]
    fn wrong_distance_raises_stress() {
        // One corrupted link: the normalized stress should exceed the clean
        // case substantially (this is what drives outlier detection).
        let truth = square_points();
        let mut d = DistanceMatrix::from_points_2d(&truth);
        let clean_w = WeightMatrix::ones(truth.len());
        let mut rng = StdRng::seed_from_u64(5);
        let clean = smacof(&d, &clean_w, &SmacofConfig::default(), &mut rng).unwrap();
        d.set(0, 2, 25.0).unwrap(); // true distance is 14.14 m
        let corrupted = smacof(&d, &clean_w, &SmacofConfig::default(), &mut rng).unwrap();
        assert!(corrupted.normalized_stress > 10.0 * clean.normalized_stress.max(1e-6));
        assert!(
            corrupted.normalized_stress > 1.5,
            "stress {}",
            corrupted.normalized_stress
        );
    }

    #[test]
    fn procrustes_is_invariant_to_rigid_motions() {
        let truth = square_points();
        let moved: Vec<Vec2> = truth
            .iter()
            .map(|p| p.rotate(0.7).add(&Vec2::new(100.0, -50.0)))
            .collect();
        let errs = procrustes_errors(&moved, &truth).unwrap();
        for e in errs {
            assert!(e < 1e-9);
        }
        // Reflection is also absorbed.
        let mirrored: Vec<Vec2> = truth.iter().map(|p| Vec2::new(-p.x, p.y)).collect();
        let errs = procrustes_errors(&mirrored, &truth).unwrap();
        for e in errs {
            assert!(e < 1e-9);
        }
        assert!(procrustes_errors(&truth, &truth[..3]).is_err());
        assert!(procrustes_errors(&[], &[]).is_err());
    }

    #[test]
    fn iterations_are_reported_and_bounded() {
        let truth = square_points();
        let d = DistanceMatrix::from_points_2d(&truth);
        let w = WeightMatrix::ones(truth.len());
        let config = SmacofConfig {
            max_iterations: 50,
            ..SmacofConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let sol = smacof(&d, &w, &config, &mut rng).unwrap();
        assert!(sol.iterations >= 1 && sol.iterations <= 50);
    }
}
