//! Projection of 3D ranging measurements onto the horizontal plane (§2.1.1).
//!
//! Every device reports its depth `hᵢ` from an on-board sensor, so the 3D
//! problem collapses to 2D: the horizontal component of each measured
//! distance is `D²ᵢⱼ(2D) = D²ᵢⱼ − (hᵢ − hⱼ)²`. When ranging noise makes the
//! measured slant distance *smaller* than the depth difference the term
//! under the square root goes negative; the projection clamps it at zero
//! (the devices are then treated as horizontally coincident), mirroring how
//! a practical implementation must behave.

use crate::matrix::DistanceMatrix;
use crate::{LocalizationError, Result};
use uw_channel::geometry::Point3;

/// Projects a matrix of 3D (slant) distances to horizontal 2D distances
/// using the per-device depths.
pub fn project_to_2d(distances_3d: &DistanceMatrix, depths: &[f64]) -> Result<DistanceMatrix> {
    let n = distances_3d.len();
    if depths.len() != n {
        return Err(LocalizationError::InvalidInput {
            reason: format!("{} depths provided for {n} devices", depths.len()),
        });
    }
    if let Some(bad) = depths.iter().find(|d| !d.is_finite()) {
        return Err(LocalizationError::InvalidInput {
            reason: format!("non-finite depth {bad}"),
        });
    }
    let mut out = DistanceMatrix::new(n);
    for (i, j) in distances_3d.links() {
        let d3 = distances_3d.get(i, j).expect("link exists");
        let dh = depths[i] - depths[j];
        let sq = d3 * d3 - dh * dh;
        out.set(i, j, sq.max(0.0).sqrt())?;
    }
    Ok(out)
}

/// Reconstructs 3D positions from solved 2D positions and the measured
/// depths (the inverse of the projection step).
pub fn lift_to_3d(positions_2d: &[crate::matrix::Vec2], depths: &[f64]) -> Result<Vec<Point3>> {
    if positions_2d.len() != depths.len() {
        return Err(LocalizationError::InvalidInput {
            reason: format!(
                "{} positions but {} depths",
                positions_2d.len(),
                depths.len()
            ),
        });
    }
    Ok(positions_2d
        .iter()
        .zip(depths.iter())
        .map(|(p, &h)| Point3::new(p.x, p.y, h))
        .collect())
}

/// Builds the ground-truth 3D distance matrix from exact positions (used by
/// the analytical evaluation and the simulator's ground truth).
pub fn distances_from_positions(positions: &[Point3]) -> DistanceMatrix {
    let n = positions.len();
    let mut m = DistanceMatrix::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let _ = m.set(i, j, positions[i].distance(&positions[j]));
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Vec2;

    #[test]
    fn projection_removes_depth_component() {
        // Two devices 3 m apart horizontally with a 4 m depth difference:
        // slant distance 5 m, projected distance 3 m.
        let positions = vec![Point3::new(0.0, 0.0, 1.0), Point3::new(3.0, 0.0, 5.0)];
        let d3 = distances_from_positions(&positions);
        assert!((d3.get(0, 1).unwrap() - 5.0).abs() < 1e-12);
        let d2 = project_to_2d(&d3, &[1.0, 5.0]).unwrap();
        assert!((d2.get(0, 1).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn projection_preserves_missing_links() {
        let mut d3 = DistanceMatrix::new(3);
        d3.set(0, 1, 10.0).unwrap();
        let d2 = project_to_2d(&d3, &[0.0, 0.0, 0.0]).unwrap();
        assert!(d2.has_link(0, 1));
        assert!(!d2.has_link(0, 2));
        assert!(!d2.has_link(1, 2));
    }

    #[test]
    fn projection_clamps_impossible_geometry() {
        // Measured slant distance smaller than the depth difference (ranging
        // noise): projected distance clamps to 0 rather than NaN.
        let mut d3 = DistanceMatrix::new(2);
        d3.set(0, 1, 1.0).unwrap();
        let d2 = project_to_2d(&d3, &[0.0, 3.0]).unwrap();
        assert_eq!(d2.get(0, 1), Some(0.0));
    }

    #[test]
    fn projection_validates_inputs() {
        let d3 = DistanceMatrix::new(3);
        assert!(project_to_2d(&d3, &[0.0, 0.0]).is_err());
        assert!(project_to_2d(&d3, &[0.0, f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn lift_combines_positions_and_depths() {
        let pts = vec![Vec2::new(1.0, 2.0), Vec2::new(-3.0, 4.0)];
        let lifted = lift_to_3d(&pts, &[2.5, 7.0]).unwrap();
        assert_eq!(lifted[0], Point3::new(1.0, 2.0, 2.5));
        assert_eq!(lifted[1], Point3::new(-3.0, 4.0, 7.0));
        assert!(lift_to_3d(&pts, &[1.0]).is_err());
    }

    #[test]
    fn projection_roundtrip_through_lift() {
        let truth = vec![
            Point3::new(0.0, 0.0, 2.0),
            Point3::new(10.0, 0.0, 4.0),
            Point3::new(3.0, 8.0, 1.0),
            Point3::new(-5.0, 6.0, 6.0),
        ];
        let depths: Vec<f64> = truth.iter().map(|p| p.z).collect();
        let d3 = distances_from_positions(&truth);
        let d2 = project_to_2d(&d3, &depths).unwrap();
        // The projected distances must equal the horizontal distances.
        for i in 0..truth.len() {
            for j in (i + 1)..truth.len() {
                let expected = truth[i].horizontal_distance(&truth[j]);
                assert!((d2.get(i, j).unwrap() - expected).abs() < 1e-9);
            }
        }
    }
}
