//! Graph rigidity and unique realizability (§2.1.2).
//!
//! The topology solver only makes sense when the link graph pins the shape
//! down. Three properties matter, with dive-group-sized graphs (N ≤ ~10)
//! small enough for exact checks:
//!
//! * **Rigidity** (Laman's theorem): a graph with `n` nodes and `2n − 3`
//!   links is rigid in 2D iff no subgraph on `n'` nodes has more than
//!   `2n' − 3` links. We check the generic-rigidity condition directly with
//!   a pebble-game-equivalent subset test (exponential, but trivial at this
//!   scale).
//! * **Redundant rigidity**: the graph stays rigid after removing any
//!   single link.
//! * **Unique realizability** (global rigidity): redundantly rigid *and*
//!   3-connected (deleting any two nodes leaves the graph connected) — the
//!   condition quoted in the paper from Goldenberg et al.
//!
//! The outlier-detection loop calls [`is_uniquely_realizable`] before
//! dropping a link subset, so it never evaluates a candidate whose solution
//! would be ambiguous anyway.

use crate::matrix::DistanceMatrix;

/// An undirected link graph over `n` nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkGraph {
    n: usize,
    edges: Vec<(usize, usize)>,
}

impl LinkGraph {
    /// Builds a graph from an explicit edge list (edges with out-of-range or
    /// self-loop endpoints are ignored).
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut normalized: Vec<(usize, usize)> = edges
            .iter()
            .filter(|(a, b)| a != b && *a < n && *b < n)
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        normalized.sort_unstable();
        normalized.dedup();
        Self {
            n,
            edges: normalized,
        }
    }

    /// Builds the graph of present links in a distance matrix.
    pub fn from_distances(distances: &DistanceMatrix) -> Self {
        Self::new(distances.len(), &distances.links())
    }

    /// Builds the graph after removing the links in `dropped`.
    pub fn from_distances_without(distances: &DistanceMatrix, dropped: &[(usize, usize)]) -> Self {
        let dropped_normalized: Vec<(usize, usize)> = dropped
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        let edges: Vec<(usize, usize)> = distances
            .links()
            .into_iter()
            .filter(|e| !dropped_normalized.contains(e))
            .collect();
        Self::new(distances.len(), &edges)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge list (sorted, deduplicated).
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Degree of each node.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.n];
        for &(a, b) in &self.edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg
    }

    /// Whether the graph (restricted to the nodes in `keep`) is connected.
    /// An empty or single-node restriction counts as connected.
    pub fn is_connected_over(&self, keep: &[bool]) -> bool {
        let nodes: Vec<usize> = (0..self.n).filter(|&i| keep[i]).collect();
        if nodes.len() <= 1 {
            return true;
        }
        let mut visited = vec![false; self.n];
        let mut stack = vec![nodes[0]];
        visited[nodes[0]] = true;
        while let Some(u) = stack.pop() {
            for &(a, b) in &self.edges {
                let (x, y) = (a, b);
                if x == u && keep[y] && !visited[y] {
                    visited[y] = true;
                    stack.push(y);
                } else if y == u && keep[x] && !visited[x] {
                    visited[x] = true;
                    stack.push(x);
                }
            }
        }
        nodes.iter().all(|&i| visited[i])
    }

    /// Whether the whole graph is connected.
    pub fn is_connected(&self) -> bool {
        self.is_connected_over(&vec![true; self.n])
    }
}

/// Generic 2D rigidity via the Laman condition, checked exactly: the graph
/// must contain a spanning Laman subgraph, i.e. have at least `2n − 3`
/// edges with some subset of exactly `2n − 3` edges that is independent
/// (no sub-multigraph violates `e' ≤ 2n' − 3`).
///
/// For the graph sizes this system handles (dive groups of ≤ ~10 devices)
/// we use the equivalent characterisation: the rank of the rigidity matroid
/// equals `2n − 3`. Rank is computed with the pebble-game-equivalent
/// subset check over *edge-induced* node subsets, which is exact for these
/// sizes.
pub fn is_rigid(graph: &LinkGraph) -> bool {
    let n = graph.node_count();
    if n <= 1 {
        return true;
    }
    if n == 2 {
        return graph.edge_count() >= 1;
    }
    if graph.edge_count() < 2 * n - 3 {
        return false;
    }
    if !graph.is_connected() {
        return false;
    }
    // Count the generic rank by greedily inserting edges that keep every
    // node-subset count within the Laman bound (matroid greedy works because
    // independence in the rigidity matroid is checked exactly below).
    let mut independent: Vec<(usize, usize)> = Vec::new();
    for &edge in graph.edges() {
        let mut candidate = independent.clone();
        candidate.push(edge);
        if laman_independent(n, &candidate) {
            independent = candidate;
            if independent.len() == 2 * n - 3 {
                return true;
            }
        }
    }
    independent.len() == 2 * n - 3
}

/// Checks Laman independence: every subset of nodes `S` with `|S| ≥ 2`
/// induces at most `2|S| − 3` of the given edges. Exponential in `n`, fine
/// for n ≤ ~12.
fn laman_independent(n: usize, edges: &[(usize, usize)]) -> bool {
    if n > 20 {
        // Defensive cap: the exact check is exponential. Graphs this large
        // never occur in a dive group.
        return false;
    }
    for mask in 1u32..(1u32 << n) {
        let size = mask.count_ones() as usize;
        if size < 2 {
            continue;
        }
        let induced = edges
            .iter()
            .filter(|&&(a, b)| (mask >> a) & 1 == 1 && (mask >> b) & 1 == 1)
            .count();
        if induced > 2 * size - 3 {
            return false;
        }
    }
    true
}

/// Redundant rigidity: the graph remains rigid after removing any single
/// edge.
pub fn is_redundantly_rigid(graph: &LinkGraph) -> bool {
    if !is_rigid(graph) {
        return false;
    }
    for skip in 0..graph.edge_count() {
        let reduced: Vec<(usize, usize)> = graph
            .edges()
            .iter()
            .enumerate()
            .filter(|(k, _)| *k != skip)
            .map(|(_, &e)| e)
            .collect();
        if !is_rigid(&LinkGraph::new(graph.node_count(), &reduced)) {
            return false;
        }
    }
    true
}

/// 3-connectivity in the sense used by the unique-realizability theorem:
/// deleting any two nodes leaves the remaining graph connected.
pub fn is_three_connected(graph: &LinkGraph) -> bool {
    let n = graph.node_count();
    if n <= 3 {
        // For n ≤ 3, deleting two nodes leaves at most one node.
        return graph.is_connected();
    }
    for a in 0..n {
        for b in (a + 1)..n {
            let mut keep = vec![true; n];
            keep[a] = false;
            keep[b] = false;
            if !graph.is_connected_over(&keep) {
                return false;
            }
        }
    }
    true
}

/// Unique realizability (global rigidity) per the condition quoted in the
/// paper: redundantly rigid and still connected after deleting any two
/// nodes. Triangles (n = 3 with all three links) are uniquely realizable.
pub fn is_uniquely_realizable(graph: &LinkGraph) -> bool {
    let n = graph.node_count();
    if n < 3 {
        return false;
    }
    if n == 3 {
        return graph.edge_count() == 3;
    }
    is_redundantly_rigid(graph) && is_three_connected(graph)
}

/// Convenience check on a distance matrix after dropping a set of links.
pub fn realizable_after_dropping(distances: &DistanceMatrix, dropped: &[(usize, usize)]) -> bool {
    is_uniquely_realizable(&LinkGraph::from_distances_without(distances, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete_graph(n: usize) -> LinkGraph {
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                edges.push((i, j));
            }
        }
        LinkGraph::new(n, &edges)
    }

    #[test]
    fn complete_graphs_are_uniquely_realizable() {
        for n in 3..=7 {
            let g = complete_graph(n);
            assert!(is_rigid(&g), "K{n} should be rigid");
            assert!(
                is_uniquely_realizable(&g),
                "K{n} should be uniquely realizable"
            );
        }
        // Redundant rigidity holds for K4 and larger; K3 loses rigidity when
        // any of its three edges is removed (it is globally rigid anyway,
        // which is why the triangle gets a special case).
        assert!(!is_redundantly_rigid(&complete_graph(3)));
        for n in 4..=7 {
            assert!(
                is_redundantly_rigid(&complete_graph(n)),
                "K{n} should be redundantly rigid"
            );
        }
    }

    #[test]
    fn square_without_diagonal_is_not_rigid() {
        // Fig. 4a: a 4-cycle can be continuously deformed.
        let g = LinkGraph::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert!(!is_rigid(&g));
        assert!(!is_uniquely_realizable(&g));
    }

    #[test]
    fn square_with_one_diagonal_is_rigid_but_not_redundant() {
        let g = LinkGraph::new(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        assert!(is_rigid(&g));
        // Removing the diagonal breaks rigidity.
        assert!(!is_redundantly_rigid(&g));
        assert!(!is_uniquely_realizable(&g));
    }

    #[test]
    fn partial_reflection_case_is_rigid_but_not_unique() {
        // Fig. 4b: two triangles sharing an edge — node 3 can reflect across
        // the mirror line through nodes 1 and 2. Rigid, but not redundantly
        // rigid, hence not uniquely realizable.
        let g = LinkGraph::new(4, &[(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]);
        assert!(is_rigid(&g));
        assert!(!is_uniquely_realizable(&g));
    }

    #[test]
    fn triangle_is_uniquely_realizable() {
        let g = complete_graph(3);
        assert!(is_uniquely_realizable(&g));
        let open = LinkGraph::new(3, &[(0, 1), (1, 2)]);
        assert!(!is_uniquely_realizable(&open));
    }

    #[test]
    fn k5_minus_one_edge_is_still_uniquely_realizable() {
        // A fully-connected 5-device network tolerates a missing link — the
        // property the paper's missing-link evaluation relies on.
        let mut edges = Vec::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                if (i, j) != (0, 3) {
                    edges.push((i, j));
                }
            }
        }
        let g = LinkGraph::new(5, &edges);
        assert!(is_uniquely_realizable(&g));
    }

    #[test]
    fn star_graph_is_not_rigid() {
        // A node connected to everyone else (and no other links) can rotate
        // each leaf independently.
        let g = LinkGraph::new(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        assert!(!is_rigid(&g));
        assert!(!is_three_connected(&g));
    }

    #[test]
    fn disconnected_graph_is_not_rigid() {
        let g = LinkGraph::new(6, &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
        assert!(!g.is_connected());
        assert!(!is_rigid(&g));
    }

    #[test]
    fn graph_helpers() {
        let g = LinkGraph::new(4, &[(0, 1), (1, 0), (1, 2), (3, 3), (0, 9)]);
        // Duplicates, self-loops and out-of-range edges are dropped.
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.degrees(), vec![1, 2, 1, 0]);
        assert!(!g.is_connected());
    }

    #[test]
    fn from_distances_and_dropping() {
        let mut d = DistanceMatrix::new(4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                d.set(i, j, 1.0).unwrap();
            }
        }
        assert!(realizable_after_dropping(&d, &[]));
        // K4 minus one edge is rigid but NOT redundantly rigid.
        assert!(!realizable_after_dropping(&d, &[(0, 1)]));
        let g = LinkGraph::from_distances(&d);
        assert_eq!(g.edge_count(), 6);
        let g = LinkGraph::from_distances_without(&d, &[(1, 0), (2, 3)]);
        assert_eq!(g.edge_count(), 4);
    }
}
