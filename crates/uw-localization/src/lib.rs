//! # uw-localization — topology-based 3D localization
//!
//! Implements §2.1 of the paper: given noisy (and possibly incomplete or
//! partially wrong) pairwise distances between N devices plus per-device
//! depth readings, recover every device's 3D position relative to the dive
//! leader.
//!
//! The solver runs in stages:
//!
//! 1. **Projection** ([`project`]) — use depths to reduce the 3D problem to
//!    2D: `D²ᵢⱼ(2D) = D²ᵢⱼ − (hᵢ − hⱼ)²`.
//! 2. **Topology estimation** ([`smacof`]) — weighted SMACOF
//!    multidimensional scaling minimises the stress function over the
//!    available links (missing links get weight 0).
//! 3. **Outlier detection** ([`outlier`]) — if the normalised stress exceeds
//!    a threshold, hypothesise link drops and accept only the ones that
//!    survive a three-gate validation pass: the drop must coincide with the
//!    Huber-IRLS misfit evidence of the full-link refinement, the dropped
//!    link must remain measured-long in the candidate embedding (an
//!    occlusion signature), and re-inserting it must measurably degrade the
//!    fit in a validation re-solve. Candidate subsets are tried in
//!    misfit-ranked order, cross-round [`outlier::DropEvidence`] lets a
//!    session converge on a persistently occluded link, and the remaining
//!    graph always stays uniquely realizable ([`rigidity`]). All residual
//!    thresholds derive from the single documented
//!    [`outlier::RESIDUAL_SCALE_M`] constant.
//! 4. **Ambiguity resolution** ([`ambiguity`]) — rotate the topology so the
//!    leader points at device 1, then resolve the remaining mirror ambiguity
//!    by voting over the leader's dual-microphone arrival signs.
//!
//! [`pipeline`] ties the stages together, arbitrates the surviving drop
//! hypotheses on a robustly priced Occam cost plus side-vote agreement
//! (with a rescue re-enumeration when the chosen solution still
//! contradicts measured side signs — the signature of an *absorbed*
//! occlusion), and computes the error metrics used throughout the
//! evaluation. The distance matrices come from the protocol
//! layer (`uw-protocol`) and the depths from the device sensors modelled in
//! `uw-device`; positions are expressed relative to the leader, in the
//! frame fixed by [`uw_channel::geometry::Point3`] coordinates.
//!
//! ## Example
//!
//! ```
//! use uw_channel::geometry::Point3;
//! use uw_localization::pipeline::{localize, LocalizationInput, LocalizerConfig};
//! use uw_localization::project::distances_from_positions;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Exact distances and depths for four devices recover exact positions.
//! let truth = [
//!     Point3::new(0.0, 0.0, 1.5),
//!     Point3::new(1.0, 6.0, 2.0),
//!     Point3::new(9.0, 9.0, 3.0),
//!     Point3::new(-7.0, 6.0, 1.0),
//! ];
//! // Dual-microphone side votes consistent with the geometry.
//! let frame: Vec<uw_localization::matrix::Vec2> = truth
//!     .iter()
//!     .map(|p| uw_localization::matrix::Vec2::new(p.x, p.y))
//!     .collect();
//! let side_signs = (0..truth.len())
//!     .map(|i| (i >= 2).then(|| uw_localization::ambiguity::geometric_side(&frame, i)))
//!     .collect();
//! let input = LocalizationInput {
//!     distances: distances_from_positions(&truth),
//!     depths: truth.iter().map(|p| p.z).collect(),
//!     pointing_azimuth_rad: truth[0].azimuth_to(&truth[1]),
//!     side_signs,
//! };
//! let mut rng = StdRng::seed_from_u64(1);
//! let out = localize(&input, &LocalizerConfig::default(), &mut rng).unwrap();
//! assert!(out.converged);
//! assert!((out.positions[2].x - 9.0).abs() < 0.1);
//! assert!((out.positions[2].y - 9.0).abs() < 0.1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ambiguity;
pub mod matrix;
pub mod outlier;
pub mod pipeline;
pub mod project;
pub mod rigidity;
pub mod smacof;

pub use matrix::{DistanceMatrix, Vec2};
pub use pipeline::{localize, LocalizationInput, LocalizationOutput, LocalizerConfig};

/// Errors produced by the localization layer.
#[derive(Debug, Clone, PartialEq)]
pub enum LocalizationError {
    /// The input matrices were inconsistent or too small.
    InvalidInput {
        /// Description of the problem.
        reason: String,
    },
    /// The link graph is not rigid / uniquely realizable enough to localize.
    NotLocalizable {
        /// Description of the failed requirement.
        reason: String,
    },
    /// The optimisation failed to produce a usable embedding.
    SolverFailure {
        /// Description of the failure.
        reason: String,
    },
}

impl std::fmt::Display for LocalizationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocalizationError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            LocalizationError::NotLocalizable { reason } => {
                write!(f, "network not localizable: {reason}")
            }
            LocalizationError::SolverFailure { reason } => write!(f, "solver failure: {reason}"),
        }
    }
}

impl std::error::Error for LocalizationError {}

/// Convenience result alias for the localization layer.
pub type Result<T> = std::result::Result<T, LocalizationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = LocalizationError::InvalidInput {
            reason: "matrix not square".into(),
        };
        assert!(e.to_string().contains("matrix not square"));
        let e = LocalizationError::NotLocalizable {
            reason: "graph not rigid".into(),
        };
        assert!(e.to_string().contains("graph not rigid"));
        let e = LocalizationError::SolverFailure {
            reason: "diverged".into(),
        };
        assert!(e.to_string().contains("diverged"));
    }
}
