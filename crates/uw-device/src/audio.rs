//! Unsynchronised speaker/microphone sample streams and self-calibration.
//!
//! The appendix of the paper explains the central low-level problem: the OS
//! fills the microphone buffer and drains the speaker buffer independently,
//! so sample index `m` in the microphone stream and sample index `n` in the
//! speaker stream map to true time through *different* unknown start
//! offsets and slightly different actual sampling rates:
//!
//! ```text
//! t_s(n) = n / f_s^spk + t0_spk        t_m(m) = m / f_s^mic + t0_mic
//! ```
//!
//! The device cannot observe `t0_spk` or `t0_mic`. What it can do is play a
//! calibration signal through its own speaker at a chosen speaker index
//! `n1`, detect it in its own microphone stream at index `m1`, and remember
//! the offset `Δn = n1 − m1`. As long as both streams stay open, that offset
//! stays constant, so a reply can later be scheduled at speaker index
//! `n2 = m2 + Δn + f_s · t_reply` to leave the device exactly `t_reply`
//! after an incoming message arrived at microphone index `m2` — which is
//! what the distributed timestamp protocol requires.
//!
//! [`AudioStack`] simulates both streams with configurable per-converter
//! clock skew (α for the speaker, β for the microphone) so the residual
//! reply-time error derived in the appendix (Eq. 6) can be measured.

use crate::{DeviceError, Result};
use serde::{Deserialize, Serialize};

/// Nominal audio sampling rate (Hz) used by the scheduling arithmetic.
pub const NOMINAL_SAMPLE_RATE: f64 = 44_100.0;

/// Simulated speaker + microphone sample streams of one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AudioStack {
    /// Nominal sampling rate the software assumes (Hz).
    pub nominal_rate: f64,
    /// Speaker converter skew α: actual rate is `nominal / (1 − α)`.
    pub speaker_skew: f64,
    /// Microphone converter skew β: actual rate is `nominal / (1 − β)`.
    pub mic_skew: f64,
    /// True time at which speaker stream sample 0 plays (unknown to the
    /// device software).
    pub speaker_start_true_s: f64,
    /// True time at which microphone stream sample 0 was captured (unknown
    /// to the device software).
    pub mic_start_true_s: f64,
    /// Acoustic propagation delay from the device's own speaker to its own
    /// microphone (δ₂ in the appendix), in seconds.
    pub self_loopback_delay_s: f64,
    /// Buffer offset Δn measured by the last calibration, if any.
    pub calibrated_offset: Option<f64>,
}

impl AudioStack {
    /// Creates an audio stack with ideal converters and aligned streams.
    pub fn ideal() -> Self {
        Self {
            nominal_rate: NOMINAL_SAMPLE_RATE,
            speaker_skew: 0.0,
            mic_skew: 0.0,
            speaker_start_true_s: 0.0,
            mic_start_true_s: 0.0,
            self_loopback_delay_s: 0.0001,
            calibrated_offset: None,
        }
    }

    /// Creates an audio stack with the given converter skews (dimensionless,
    /// e.g. `40e-6` for 40 ppm) and stream start offsets in true seconds.
    pub fn new(
        speaker_skew: f64,
        mic_skew: f64,
        speaker_start_true_s: f64,
        mic_start_true_s: f64,
        self_loopback_delay_s: f64,
    ) -> Result<Self> {
        if speaker_skew.abs() >= 0.01 || mic_skew.abs() >= 0.01 {
            return Err(DeviceError::InvalidParameter {
                reason: "converter skew must be well below 1% (expected a few ppm)".into(),
            });
        }
        if self_loopback_delay_s < 0.0 {
            return Err(DeviceError::InvalidParameter {
                reason: "loopback delay must be non-negative".into(),
            });
        }
        Ok(Self {
            nominal_rate: NOMINAL_SAMPLE_RATE,
            speaker_skew,
            mic_skew,
            speaker_start_true_s,
            mic_start_true_s,
            self_loopback_delay_s,
            calibrated_offset: None,
        })
    }

    /// Actual speaker sampling rate in Hz.
    pub fn speaker_rate(&self) -> f64 {
        self.nominal_rate / (1.0 - self.speaker_skew)
    }

    /// Actual microphone sampling rate in Hz.
    pub fn mic_rate(&self) -> f64 {
        self.nominal_rate / (1.0 - self.mic_skew)
    }

    /// True time at which speaker stream sample `n` is emitted.
    pub fn speaker_index_to_true(&self, n: f64) -> f64 {
        self.speaker_start_true_s + n / self.speaker_rate()
    }

    /// True time at which microphone stream sample `m` was captured.
    pub fn mic_index_to_true(&self, m: f64) -> f64 {
        self.mic_start_true_s + m / self.mic_rate()
    }

    /// Microphone stream index corresponding to a true time.
    pub fn true_to_mic_index(&self, true_time_s: f64) -> Result<f64> {
        let idx = (true_time_s - self.mic_start_true_s) * self.mic_rate();
        if idx < 0.0 {
            return Err(DeviceError::BufferRange {
                reason: format!("true time {true_time_s} s precedes the microphone stream start"),
            });
        }
        Ok(idx)
    }

    /// Speaker stream index corresponding to a true time.
    pub fn true_to_speaker_index(&self, true_time_s: f64) -> Result<f64> {
        let idx = (true_time_s - self.speaker_start_true_s) * self.speaker_rate();
        if idx < 0.0 {
            return Err(DeviceError::BufferRange {
                reason: format!("true time {true_time_s} s precedes the speaker stream start"),
            });
        }
        Ok(idx)
    }

    /// Runs the initial self-calibration: the device writes a calibration
    /// signal at speaker index `n1` and detects it in its own microphone at
    /// index `m1` (after the self-loopback delay δ₂ plus a detection error
    /// of `detection_error_samples`). Stores and returns the offset
    /// `Δn = n1 − m1`.
    pub fn calibrate(&mut self, n1: f64, detection_error_samples: f64) -> Result<f64> {
        if n1 < 0.0 {
            return Err(DeviceError::InvalidParameter {
                reason: "calibration index must be non-negative".into(),
            });
        }
        let emit_true = self.speaker_index_to_true(n1);
        let arrive_true = emit_true + self.self_loopback_delay_s;
        let m1 = self.true_to_mic_index(arrive_true)? + detection_error_samples;
        let offset = n1 - m1;
        self.calibrated_offset = Some(offset);
        Ok(offset)
    }

    /// Schedules a reply: given that an incoming message was detected at
    /// microphone index `m2`, returns the speaker index `n2` at which the
    /// reply must be written so that the reply *arrives at this device's own
    /// microphone* `t_reply` seconds after `m2` (Eq. 4 of the appendix).
    ///
    /// Requires a prior [`calibrate`](Self::calibrate) call.
    pub fn schedule_reply(&self, m2: f64, t_reply_s: f64) -> Result<f64> {
        let offset = self
            .calibrated_offset
            .ok_or_else(|| DeviceError::InvalidParameter {
                reason: "schedule_reply called before calibration".into(),
            })?;
        if t_reply_s <= 0.0 {
            return Err(DeviceError::InvalidParameter {
                reason: "reply interval must be positive".into(),
            });
        }
        Ok(m2 + offset + self.nominal_rate * t_reply_s)
    }

    /// The *actual* reply interval achieved when the reply is written at
    /// speaker index `n2` in response to a message detected at microphone
    /// index `m2`: the true time between the incoming arrival and the moment
    /// the reply signal reaches this device's own microphone (Eq. 2).
    pub fn actual_reply_interval(&self, m2: f64, n2: f64) -> f64 {
        let incoming_arrival = self.mic_index_to_true(m2);
        let reply_emitted = self.speaker_index_to_true(n2);
        reply_emitted + self.self_loopback_delay_s - incoming_arrival
    }

    /// Residual scheduling error for a desired reply interval, in seconds:
    /// `actual − desired` (Eq. 6 predicts this is dominated by
    /// `−α·t_reply + (m2 − m1)(β − α)/fs`).
    pub fn reply_error(&self, m2: f64, t_reply_s: f64) -> Result<f64> {
        let n2 = self.schedule_reply(m2, t_reply_s)?;
        Ok(self.actual_reply_interval(m2, n2) - t_reply_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn skewed_stack() -> AudioStack {
        // 30 ppm fast speaker, 10 ppm slow mic, very different stream starts.
        AudioStack::new(30e-6, -10e-6, 0.320, 0.087, 0.0001).unwrap()
    }

    #[test]
    fn rates_reflect_skew() {
        let s = skewed_stack();
        assert!(s.speaker_rate() > NOMINAL_SAMPLE_RATE);
        assert!(s.mic_rate() < NOMINAL_SAMPLE_RATE);
        let ideal = AudioStack::ideal();
        assert_eq!(ideal.speaker_rate(), NOMINAL_SAMPLE_RATE);
        assert_eq!(ideal.mic_rate(), NOMINAL_SAMPLE_RATE);
    }

    #[test]
    fn index_time_roundtrips() {
        let s = skewed_stack();
        for n in [0.0, 100.0, 88_200.0] {
            let t = s.speaker_index_to_true(n);
            let back = s.true_to_speaker_index(t).unwrap();
            assert!((back - n).abs() < 1e-6);
        }
        for m in [0.0, 441.0, 123_456.0] {
            let t = s.mic_index_to_true(m);
            let back = s.true_to_mic_index(t).unwrap();
            assert!((back - m).abs() < 1e-6);
        }
        // Times before the stream start are rejected.
        assert!(s.true_to_mic_index(0.0).is_err());
        assert!(s.true_to_speaker_index(0.0).is_err());
    }

    #[test]
    fn calibration_then_reply_is_accurate_on_ideal_hardware() {
        let mut s = AudioStack::ideal();
        s.calibrate(1000.0, 0.0).unwrap();
        let t_reply = 0.6;
        let m2 = 44_100.0; // message arrived 1 s into the mic stream
        let err = s.reply_error(m2, t_reply).unwrap();
        assert!(
            err.abs() < 1e-9,
            "ideal hardware should reply exactly on time, err {err}"
        );
    }

    #[test]
    fn reply_error_is_bounded_by_ppm_skew() {
        let mut s = skewed_stack();
        s.calibrate(2000.0, 0.0).unwrap();
        // Reply 600 ms after a message that arrives 3 s into the stream.
        let m2 = 3.0 * NOMINAL_SAMPLE_RATE;
        let err = s.reply_error(m2, 0.6).unwrap();
        // Appendix Eq. 6: error ≈ −α·t_reply + (m2−m1)(β−α)/fs.
        // With tens of ppm and a few seconds this is tens of microseconds —
        // well below a sample period (22.7 µs is one sample at 44.1 kHz,
        // and 150 µs is ~22 cm at 1500 m/s).
        assert!(err.abs() < 200e-6, "reply error {err}");
        // And the error should be non-zero for skewed hardware.
        assert!(err.abs() > 1e-9);
    }

    #[test]
    fn reply_error_grows_with_time_since_calibration() {
        let mut s = AudioStack::new(40e-6, -40e-6, 0.1, 0.05, 0.0001).unwrap();
        s.calibrate(500.0, 0.0).unwrap();
        let early = s.reply_error(1.0 * NOMINAL_SAMPLE_RATE, 0.6).unwrap().abs();
        let late = s
            .reply_error(60.0 * NOMINAL_SAMPLE_RATE, 0.6)
            .unwrap()
            .abs();
        assert!(
            late > early,
            "drift should accumulate: early {early}, late {late}"
        );
    }

    #[test]
    fn recalibration_removes_accumulated_drift() {
        let mut s = AudioStack::new(40e-6, -40e-6, 0.1, 0.05, 0.0001).unwrap();
        s.calibrate(500.0, 0.0).unwrap();
        let late_m2 = 60.0 * NOMINAL_SAMPLE_RATE;
        let drifted = s.reply_error(late_m2, 0.6).unwrap().abs();
        // Re-calibrate at a speaker index around the same wall-clock time as
        // the late message (the paper re-uses the device's own response
        // signal for this).
        let n_recal = s
            .true_to_speaker_index(s.mic_index_to_true(late_m2))
            .unwrap();
        s.calibrate(n_recal, 0.0).unwrap();
        let fresh = s.reply_error(late_m2, 0.6).unwrap().abs();
        assert!(
            fresh < drifted,
            "recalibration should reduce error: {fresh} vs {drifted}"
        );
    }

    #[test]
    fn detection_error_propagates_to_offset() {
        let mut a = AudioStack::ideal();
        let mut b = AudioStack::ideal();
        let clean = a.calibrate(1000.0, 0.0).unwrap();
        let noisy = b.calibrate(1000.0, 2.0).unwrap();
        assert!((clean - noisy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn error_cases() {
        assert!(AudioStack::new(0.5, 0.0, 0.0, 0.0, 0.0).is_err());
        assert!(AudioStack::new(0.0, 0.0, 0.0, 0.0, -1.0).is_err());
        let mut s = AudioStack::ideal();
        assert!(s.schedule_reply(100.0, 0.6).is_err()); // not calibrated
        assert!(s.calibrate(-5.0, 0.0).is_err());
        s.calibrate(100.0, 0.0).unwrap();
        assert!(s.schedule_reply(100.0, 0.0).is_err());
        assert!(s.schedule_reply(100.0, -1.0).is_err());
    }
}
