//! # uw-device — smart-device model
//!
//! The paper runs on commodity Android phones and the Apple Watch Ultra.
//! This crate models the parts of those devices that matter for underwater
//! ranging and localization, so the rest of the workspace can run
//! waveform-accurately without hardware:
//!
//! * [`clock`] — per-device local clocks with parts-per-million skew and an
//!   arbitrary offset; no global clock exists underwater.
//! * [`audio`] — the unsynchronised speaker/microphone sample streams the
//!   appendix describes, with the self-calibration procedure that measures
//!   the buffer offset Δn and schedules replies at exact sample indices.
//! * [`sensors`] — pressure-sensor depth estimation (with noise and the
//!   0.2 m quantisation used by the communication payload), the smartwatch
//!   depth gauge, and device orientation.
//! * [`mobility`] — trajectories for static, swept and oscillating devices
//!   (the rope/pole experiments and the moving-diver evaluations).
//! * [`device`] — [`device::SmartDevice`] ties the pieces together, adds the
//!   dual-microphone geometry (16 cm separation) and per-model presets for
//!   the phones the paper tested.
//!
//! The positions this crate reports feed the ground truth of
//! [`uw_channel::propagate::ChannelSimulator`]-driven experiments, and the
//! clocks drive the timestamp protocol in `uw-protocol`.
//!
//! ## Example
//!
//! ```
//! use uw_channel::geometry::Point3;
//! use uw_device::clock::LocalClock;
//! use uw_device::mobility::swimmer_circuit;
//! use uw_device::sensors::quantize_depth;
//!
//! // A skewed clock round-trips between local and true time.
//! let clock = LocalClock::new(20.0, 0.35);
//! let local = clock.local_from_true(10.0);
//! assert!((clock.true_from_local(local) - 10.0).abs() < 1e-9);
//!
//! // Depth reports are quantised to the 0.2 m the payload encodes.
//! assert!((quantize_depth(3.27) - 3.2).abs() < 1e-9);
//!
//! // A swimmer circuit moves the device but returns it every lap.
//! let swim = swimmer_circuit(Point3::new(0.0, 0.0, 2.0), 40.0);
//! assert!(swim.position_at(5.0).distance(&swim.position_at(0.0)) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audio;
pub mod clock;
pub mod device;
pub mod mobility;
pub mod sensors;

pub use device::{DeviceId, DeviceModel, SmartDevice};

/// Errors produced by the device layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DeviceError {
    /// A configuration value was out of range.
    InvalidParameter {
        /// Description of the offending parameter.
        reason: String,
    },
    /// An audio-buffer operation referenced samples that do not exist yet.
    BufferRange {
        /// Description of the range problem.
        reason: String,
    },
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            DeviceError::BufferRange { reason } => write!(f, "buffer range error: {reason}"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// Convenience result alias for the device layer.
pub type Result<T> = std::result::Result<T, DeviceError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = DeviceError::InvalidParameter {
            reason: "negative ppm bound".into(),
        };
        assert!(e.to_string().contains("negative ppm bound"));
        let e = DeviceError::BufferRange {
            reason: "index before stream start".into(),
        };
        assert!(e.to_string().contains("index before stream start"));
    }
}
