//! Device mobility: trajectories for the paper's motion experiments and the
//! extended scenario matrix.
//!
//! The paper's evaluation moves devices in two ways:
//!
//! * a phone on an extension pole swept **linearly** along the dock at
//!   32–56 cm/s (Fig. 15), and
//! * a phone on a rope moved **back and forth** around its original position
//!   at 15–50 cm/s while its orientation keeps changing (Fig. 20).
//!
//! The scenario-matrix evaluation adds a third pattern motivated by the
//! companion ranging work (arXiv:2209.01780): a **swimmer** covering a
//! closed horizontal circuit while bobbing gently in depth, as a diver
//! finning around the group does ([`swimmer_circuit`]).
//!
//! [`Trajectory`] provides those motion patterns (plus static placement) as
//! pure functions of time so every subsystem sees a consistent ground-truth
//! position.

use serde::{Deserialize, Serialize};
use uw_channel::geometry::Point3;

/// A deterministic motion pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Trajectory {
    /// The device does not move.
    Static {
        /// Fixed position.
        position: Point3,
    },
    /// Constant-velocity motion starting at `start`.
    Linear {
        /// Position at `t = 0`.
        start: Point3,
        /// Velocity vector in m/s.
        velocity: Point3,
    },
    /// Sinusoidal back-and-forth motion around `center` along `direction`.
    Oscillating {
        /// Centre of the oscillation (also the position at `t = 0` ±
        /// phase).
        center: Point3,
        /// Unit-ish direction of the oscillation (not required to be
        /// normalised; amplitude scales it).
        direction: Point3,
        /// Peak displacement from the centre in metres.
        amplitude_m: f64,
        /// Oscillation period in seconds.
        period_s: f64,
    },
    /// A swimmer finning around a closed horizontal circuit of radius
    /// `radius_m` centred one radius in front of the start point, with a
    /// gentle sinusoidal depth bob. The position at `t = 0` is `start`.
    Swimmer {
        /// Position at `t = 0` (on the circuit).
        start: Point3,
        /// Radius of the horizontal circuit in metres.
        radius_m: f64,
        /// Horizontal swimming speed along the circuit in m/s.
        speed_m_s: f64,
        /// Peak depth excursion from the start depth in metres.
        depth_bob_m: f64,
        /// Period of the depth bob in seconds (one fin-stroke cycle group).
        bob_period_s: f64,
    },
}

impl Trajectory {
    /// Convenience constructor for a static device.
    pub fn fixed(position: Point3) -> Self {
        Trajectory::Static { position }
    }

    /// Ground-truth position at time `t` seconds.
    pub fn position_at(&self, t: f64) -> Point3 {
        match self {
            Trajectory::Static { position } => *position,
            Trajectory::Linear { start, velocity } => start.add(&velocity.scale(t)),
            Trajectory::Oscillating {
                center,
                direction,
                amplitude_m,
                period_s,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t / period_s.max(1e-9);
                let norm = direction.norm().max(1e-12);
                let unit = direction.scale(1.0 / norm);
                center.add(&unit.scale(amplitude_m * phase.sin()))
            }
            Trajectory::Swimmer {
                start,
                radius_m,
                speed_m_s,
                depth_bob_m,
                bob_period_s,
            } => {
                // Angular rate around the circuit; the circuit centre sits
                // one radius along +y from the start so position_at(0) is
                // exactly `start`.
                let omega = speed_m_s / radius_m.max(1e-9);
                let omega_b = 2.0 * std::f64::consts::PI / bob_period_s.max(1e-9);
                Point3::new(
                    start.x + radius_m * (omega * t).sin(),
                    start.y + radius_m * (1.0 - (omega * t).cos()),
                    start.z + depth_bob_m * (omega_b * t).sin(),
                )
            }
        }
    }

    /// Instantaneous speed at time `t` in m/s (numerically exact for the
    /// closed forms used here).
    pub fn speed_at(&self, t: f64) -> f64 {
        match self {
            Trajectory::Static { .. } => 0.0,
            Trajectory::Linear { velocity, .. } => velocity.norm(),
            Trajectory::Oscillating {
                amplitude_m,
                period_s,
                ..
            } => {
                let omega = 2.0 * std::f64::consts::PI / period_s.max(1e-9);
                (amplitude_m * omega * (omega * t).cos()).abs()
            }
            Trajectory::Swimmer {
                speed_m_s,
                depth_bob_m,
                bob_period_s,
                ..
            } => {
                // Horizontal speed along the circuit is constant; the depth
                // bob adds a small vertical component.
                let omega_b = 2.0 * std::f64::consts::PI / bob_period_s.max(1e-9);
                let vz = depth_bob_m * omega_b * (omega_b * t).cos();
                (speed_m_s * speed_m_s + vz * vz).sqrt()
            }
        }
    }

    /// Mean speed over the interval `[0, duration]`, estimated from the path
    /// length at a 10 ms resolution.
    pub fn mean_speed(&self, duration_s: f64) -> f64 {
        if duration_s <= 0.0 {
            return 0.0;
        }
        let dt = 0.01;
        let steps = (duration_s / dt).ceil() as usize;
        let mut length = 0.0;
        let mut prev = self.position_at(0.0);
        for k in 1..=steps {
            let t = (k as f64 * dt).min(duration_s);
            let p = self.position_at(t);
            length += prev.distance(&p);
            prev = p;
        }
        length / duration_s
    }

    /// Midpoint of the trajectory over `[0, duration]` — the paper uses the
    /// trajectory midpoint as the ground truth for moving devices (Fig. 20).
    pub fn midpoint(&self, duration_s: f64) -> Point3 {
        match self {
            Trajectory::Static { position } => *position,
            Trajectory::Linear { .. } => {
                let a = self.position_at(0.0);
                let b = self.position_at(duration_s);
                a.add(&b).scale(0.5)
            }
            Trajectory::Oscillating { center, .. } => *center,
            Trajectory::Swimmer { .. } => self.position_at(duration_s / 2.0),
        }
    }
}

/// Builds the paper's Fig. 15 sweep: linear motion parallel to the coast at
/// the given speed (cm/s), starting at `start` and moving along +y.
pub fn dock_sweep(start: Point3, speed_cm_s: f64) -> Trajectory {
    Trajectory::Linear {
        start,
        velocity: Point3::new(0.0, speed_cm_s / 100.0, 0.0),
    }
}

/// Builds the paper's Fig. 20 motion: back-and-forth around the original
/// position with roughly the requested peak speed (cm/s).
pub fn rope_oscillation(center: Point3, peak_speed_cm_s: f64) -> Trajectory {
    // Peak speed of A·sin(ωt) motion is A·ω. Pick a 1.5 m amplitude (a rope
    // swings about that much) and derive the period.
    let amplitude = 1.5;
    let omega = (peak_speed_cm_s / 100.0) / amplitude;
    let period = 2.0 * std::f64::consts::PI / omega.max(1e-9);
    Trajectory::Oscillating {
        center,
        direction: Point3::new(1.0, 0.0, 0.0),
        amplitude_m: amplitude,
        period_s: period,
    }
}

/// Builds the scenario matrix's swimmer profile: a diver finning around a
/// 2 m-radius circuit at the given speed (cm/s) with a gentle ±0.15 m depth
/// bob (slow enough that the vertical speed stays well below the swimming
/// speed). The device starts at `start` and returns there every lap.
pub fn swimmer_circuit(start: Point3, speed_cm_s: f64) -> Trajectory {
    Trajectory::Swimmer {
        start,
        radius_m: 2.0,
        speed_m_s: speed_cm_s / 100.0,
        depth_bob_m: 0.15,
        bob_period_s: 8.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_trajectory_never_moves() {
        let p = Point3::new(1.0, 2.0, 3.0);
        let t = Trajectory::fixed(p);
        assert_eq!(t.position_at(0.0), p);
        assert_eq!(t.position_at(100.0), p);
        assert_eq!(t.speed_at(5.0), 0.0);
        assert_eq!(t.mean_speed(10.0), 0.0);
        assert_eq!(t.midpoint(10.0), p);
    }

    #[test]
    fn linear_trajectory_speed_and_midpoint() {
        let t = dock_sweep(Point3::new(0.0, 0.0, 2.0), 32.0);
        assert!((t.speed_at(3.0) - 0.32).abs() < 1e-12);
        assert!((t.mean_speed(10.0) - 0.32).abs() < 1e-3);
        let p = t.position_at(10.0);
        assert!((p.y - 3.2).abs() < 1e-12);
        assert_eq!(p.z, 2.0);
        let mid = t.midpoint(10.0);
        assert!((mid.y - 1.6).abs() < 1e-12);
    }

    #[test]
    fn oscillation_stays_within_amplitude() {
        let center = Point3::new(5.0, 5.0, 2.0);
        let t = rope_oscillation(center, 50.0);
        for k in 0..500 {
            let p = t.position_at(k as f64 * 0.1);
            assert!(p.distance(&center) <= 1.5 + 1e-9);
            assert_eq!(p.y, center.y);
            assert_eq!(p.z, center.z);
        }
        assert_eq!(t.midpoint(60.0), center);
    }

    #[test]
    fn oscillation_peak_speed_matches_request() {
        let t = rope_oscillation(Point3::ORIGIN, 50.0);
        // Peak of |cos| is at t = 0 for the sine motion.
        assert!((t.speed_at(0.0) - 0.5).abs() < 1e-9);
        // Mean speed of sinusoidal motion is 2/π of the peak.
        let mean = t.mean_speed(120.0);
        let expected = 0.5 * 2.0 * std::f64::consts::FRAC_1_PI;
        assert!((mean - expected).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn mobility_speeds_cover_paper_range() {
        // The paper evaluates 15–56 cm/s; make sure both builders can hit
        // the endpoints.
        let slow = rope_oscillation(Point3::ORIGIN, 15.0);
        let fast = dock_sweep(Point3::ORIGIN, 56.0);
        assert!((slow.speed_at(0.0) - 0.15).abs() < 1e-9);
        assert!((fast.speed_at(0.0) - 0.56).abs() < 1e-9);
    }

    #[test]
    fn swimmer_starts_at_start_and_stays_on_circuit() {
        let start = Point3::new(3.0, -4.0, 2.0);
        let t = swimmer_circuit(start, 40.0);
        assert_eq!(t.position_at(0.0), start);
        // The circuit centre is one radius along +y from the start; every
        // sample keeps that horizontal distance and bobs within ±0.3 m.
        let centre = Point3::new(start.x, start.y + 2.0, start.z);
        for k in 0..600 {
            let p = t.position_at(k as f64 * 0.25);
            let horizontal = ((p.x - centre.x).powi(2) + (p.y - centre.y).powi(2)).sqrt();
            assert!((horizontal - 2.0).abs() < 1e-9, "off circuit: {horizontal}");
            assert!((p.z - start.z).abs() <= 0.15 + 1e-9);
        }
    }

    #[test]
    fn swimmer_speed_matches_request() {
        let t = swimmer_circuit(Point3::ORIGIN, 40.0);
        // Horizontal speed is exactly the request; the depth bob only adds
        // a small vertical component on top.
        for k in 0..40 {
            let s = t.speed_at(k as f64 * 0.3);
            assert!((0.4 - 1e-9..0.42).contains(&s), "speed {s}");
        }
        // Path-length mean speed agrees with the analytical speed.
        let mean = t.mean_speed(60.0);
        assert!((mean - 0.40).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn swimmer_laps_are_periodic() {
        let t = swimmer_circuit(Point3::new(1.0, 1.0, 1.5), 50.0);
        // One lap takes 2πr/v = 2π·2/0.5 ≈ 25.13 s; the 8 s bob period is
        // incommensurate with it, so check the horizontal projection only,
        // which is exactly lap-periodic.
        let lap = 2.0 * std::f64::consts::PI * 2.0 / 0.5;
        let a = t.position_at(3.0);
        let b = t.position_at(3.0 + lap);
        assert!((a.x - b.x).abs() < 1e-9 && (a.y - b.y).abs() < 1e-9);
    }

    #[test]
    fn degenerate_durations() {
        let t = dock_sweep(Point3::ORIGIN, 30.0);
        assert_eq!(t.mean_speed(0.0), 0.0);
        assert_eq!(t.mean_speed(-5.0), 0.0);
    }
}
