//! Per-device local clocks.
//!
//! There is no global clock underwater: each device timestamps events with
//! its own oscillator, which runs at `f_nominal · (1 + skew)` where the skew
//! is a few tens of parts per million on Android hardware [Guggenberger et
//! al., 2015], plus an arbitrary offset from the moment the app started.
//! The distributed timestamp protocol (§2.3) is designed so these offsets
//! cancel; the simulator needs an explicit clock model to prove that.

use serde::{Deserialize, Serialize};

/// A local clock with constant frequency skew and offset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalClock {
    /// Frequency skew in parts per million; positive means the clock runs
    /// fast (its seconds are shorter than true seconds).
    pub skew_ppm: f64,
    /// Offset in seconds: the local time reported at true time 0.
    pub offset_s: f64,
}

impl Default for LocalClock {
    fn default() -> Self {
        Self {
            skew_ppm: 0.0,
            offset_s: 0.0,
        }
    }
}

impl LocalClock {
    /// An ideal clock (no skew, no offset).
    pub fn ideal() -> Self {
        Self::default()
    }

    /// Creates a clock with the given skew and offset.
    pub fn new(skew_ppm: f64, offset_s: f64) -> Self {
        Self { skew_ppm, offset_s }
    }

    /// Converts a true (wall) time to this clock's local time.
    pub fn local_from_true(&self, true_time_s: f64) -> f64 {
        self.offset_s + true_time_s * (1.0 + self.skew_ppm * 1e-6)
    }

    /// Converts a local time reported by this clock back to true time.
    pub fn true_from_local(&self, local_time_s: f64) -> f64 {
        (local_time_s - self.offset_s) / (1.0 + self.skew_ppm * 1e-6)
    }

    /// The duration, in local seconds, of `true_duration_s` true seconds.
    pub fn local_duration(&self, true_duration_s: f64) -> f64 {
        true_duration_s * (1.0 + self.skew_ppm * 1e-6)
    }

    /// The duration, in true seconds, of `local_duration_s` local seconds.
    pub fn true_duration(&self, local_duration_s: f64) -> f64 {
        local_duration_s / (1.0 + self.skew_ppm * 1e-6)
    }

    /// Clock drift accumulated over `true_duration_s` seconds, in seconds
    /// (how far apart this clock and an ideal clock drift over the window).
    pub fn drift_over(&self, true_duration_s: f64) -> f64 {
        self.local_duration(true_duration_s) - true_duration_s
    }
}

/// Draws a random clock with skew uniform in `±max_skew_ppm` and offset
/// uniform in `[0, max_offset_s)`.
pub fn random_clock<R: rand::Rng>(max_skew_ppm: f64, max_offset_s: f64, rng: &mut R) -> LocalClock {
    let skew = if max_skew_ppm > 0.0 {
        rng.gen_range(-max_skew_ppm..max_skew_ppm)
    } else {
        0.0
    };
    let offset = if max_offset_s > 0.0 {
        rng.gen_range(0.0..max_offset_s)
    } else {
        0.0
    };
    LocalClock::new(skew, offset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ideal_clock_is_identity() {
        let c = LocalClock::ideal();
        assert_eq!(c.local_from_true(12.5), 12.5);
        assert_eq!(c.true_from_local(12.5), 12.5);
        assert_eq!(c.drift_over(1000.0), 0.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let c = LocalClock::new(37.0, 123.456);
        for t in [0.0, 1.0, 17.3, 1000.0] {
            let local = c.local_from_true(t);
            let back = c.true_from_local(local);
            assert!((back - t).abs() < 1e-9);
        }
    }

    #[test]
    fn positive_skew_runs_fast() {
        let c = LocalClock::new(80.0, 0.0);
        // After 100 true seconds the local clock shows more elapsed time.
        assert!(c.local_duration(100.0) > 100.0);
        // 80 ppm over 100 s is 8 ms.
        assert!((c.drift_over(100.0) - 0.008).abs() < 1e-9);
        let slow = LocalClock::new(-80.0, 0.0);
        assert!(slow.local_duration(100.0) < 100.0);
    }

    #[test]
    fn drift_magnitude_matches_paper_assumptions() {
        // 1–80 ppm (appendix): over a 2 s protocol round the worst-case
        // drift is 160 µs ≈ 0.24 m at 1500 m/s — comfortably sub-metre.
        let worst = LocalClock::new(80.0, 0.0);
        let drift = worst.drift_over(2.0);
        assert!(drift < 200e-6);
        assert!(drift * 1500.0 < 0.3);
    }

    #[test]
    fn random_clock_within_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let c = random_clock(80.0, 10.0, &mut rng);
            assert!(c.skew_ppm.abs() <= 80.0);
            assert!(c.offset_s >= 0.0 && c.offset_s < 10.0);
        }
        let c = random_clock(0.0, 0.0, &mut rng);
        assert_eq!(c, LocalClock::ideal());
    }
}
