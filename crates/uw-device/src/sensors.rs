//! On-device sensors: pressure-based depth, smartwatch depth gauge and
//! orientation.
//!
//! Android phones have no dive depth gauge, so the paper estimates depth
//! from the barometric pressure sensor with the hydrostatic relation
//! `h = (P − P0) / (ρ g)` (§3.1). The Apple Watch Ultra has a dedicated
//! depth gauge with roughly 3× lower error (0.15 m vs 0.42 m average in
//! Fig. 13b). Depth is then quantised to 0.2 m for transmission (§2.4).

use crate::{DeviceError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Density of fresh water used in the paper's conversion (kg/m³).
pub const WATER_DENSITY: f64 = 997.0;

/// Gravitational acceleration (m/s²).
pub const GRAVITY: f64 = 9.81;

/// Atmospheric pressure at sea level (Pa).
pub const ATMOSPHERIC_PRESSURE: f64 = 101_325.0;

/// Depth quantisation step used in the report payload (m).
pub const DEPTH_QUANTIZATION_M: f64 = 0.2;

/// Maximum depth representable in the 8-bit report field (m).
pub const MAX_REPORT_DEPTH_M: f64 = 40.0;

/// Converts an absolute pressure reading in Pascals to depth in metres.
pub fn pressure_to_depth(pressure_pa: f64) -> f64 {
    ((pressure_pa - ATMOSPHERIC_PRESSURE) / (WATER_DENSITY * GRAVITY)).max(0.0)
}

/// Converts a depth in metres to the absolute pressure in Pascals.
pub fn depth_to_pressure(depth_m: f64) -> f64 {
    ATMOSPHERIC_PRESSURE + WATER_DENSITY * GRAVITY * depth_m.max(0.0)
}

/// Quantises a depth to the 0.2 m payload resolution and clamps to the
/// representable range.
pub fn quantize_depth(depth_m: f64) -> f64 {
    let clamped = depth_m.clamp(0.0, MAX_REPORT_DEPTH_M);
    (clamped / DEPTH_QUANTIZATION_M).round() * DEPTH_QUANTIZATION_M
}

/// Encodes a depth as the 8-bit field used in the report payload.
pub fn encode_depth(depth_m: f64) -> u8 {
    let clamped = depth_m.clamp(0.0, MAX_REPORT_DEPTH_M);
    ((clamped / DEPTH_QUANTIZATION_M).round() as u16).min(u8::MAX as u16) as u8
}

/// Decodes the 8-bit depth field back to metres.
pub fn decode_depth(code: u8) -> f64 {
    code as f64 * DEPTH_QUANTIZATION_M
}

/// Kind of depth sensor fitted to a device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DepthSensorKind {
    /// Smartphone barometric pressure sensor inside a waterproof pouch
    /// (average error ≈ 0.42 m in the paper).
    PhonePressure,
    /// Dedicated dive depth gauge (Apple Watch Ultra, average error ≈ 0.15 m).
    WatchDepthGauge,
}

impl DepthSensorKind {
    /// One-sigma measurement noise in metres.
    pub fn noise_sigma_m(&self) -> f64 {
        match self {
            DepthSensorKind::PhonePressure => 0.42,
            DepthSensorKind::WatchDepthGauge => 0.15,
        }
    }
}

/// A depth sensor with Gaussian noise and a constant bias.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthSensor {
    /// Which hardware this models.
    pub kind: DepthSensorKind,
    /// Constant bias in metres (calibration residual).
    pub bias_m: f64,
}

impl DepthSensor {
    /// Creates a sensor of the given kind with zero bias.
    pub fn new(kind: DepthSensorKind) -> Self {
        Self { kind, bias_m: 0.0 }
    }

    /// Simulates one measurement of the true depth.
    pub fn measure<R: Rng>(&self, true_depth_m: f64, rng: &mut R) -> Result<f64> {
        if true_depth_m < 0.0 {
            return Err(DeviceError::InvalidParameter {
                reason: "true depth must be non-negative".into(),
            });
        }
        let sigma = self.kind.noise_sigma_m();
        // Box–Muller Gaussian noise.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        Ok((true_depth_m + self.bias_m + sigma * g).max(0.0))
    }

    /// Simulates a measurement for the phone pressure path: depth → pressure
    /// → noisy pressure → depth, mirroring how the real pipeline works.
    pub fn measure_via_pressure<R: Rng>(&self, true_depth_m: f64, rng: &mut R) -> Result<f64> {
        if true_depth_m < 0.0 {
            return Err(DeviceError::InvalidParameter {
                reason: "true depth must be non-negative".into(),
            });
        }
        let true_pressure = depth_to_pressure(true_depth_m);
        let sigma_pa = self.kind.noise_sigma_m() * WATER_DENSITY * GRAVITY;
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let measured_pressure =
            true_pressure + self.bias_m * WATER_DENSITY * GRAVITY + sigma_pa * g;
        Ok(pressure_to_depth(measured_pressure))
    }
}

/// Device orientation: azimuth (heading in the horizontal plane) and polar
/// angle (tilt from straight down), both in radians. Used for the
/// speaker/microphone directivity experiments (Fig. 14a) and for the
/// leader's pointing direction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Orientation {
    /// Azimuth in radians, measured counter-clockwise from the +x axis.
    pub azimuth_rad: f64,
    /// Polar angle in radians; 0 points the speaker horizontally forward,
    /// π/2 points it upward toward the surface.
    pub polar_rad: f64,
}

impl Orientation {
    /// Creates an orientation from degrees.
    pub fn from_degrees(azimuth_deg: f64, polar_deg: f64) -> Self {
        Self {
            azimuth_rad: azimuth_deg.to_radians(),
            polar_rad: polar_deg.to_radians(),
        }
    }

    /// Extra transmission loss in dB caused by speaker/mic directivity when
    /// the device is rotated away from the receiver by `angle_off_axis_rad`.
    /// Phones are roughly omnidirectional underwater but the pouch and body
    /// shadowing cost a few dB at 90–180°, and pointing at the surface adds
    /// near-surface multipath (handled by the channel, not here).
    pub fn directivity_loss_db(angle_off_axis_rad: f64) -> f64 {
        // Smooth cardioid-like pattern: 0 dB on-axis, ~4 dB at 90°, ~6 dB at 180°.
        let x = (1.0 - angle_off_axis_rad.cos()) / 2.0; // 0 at 0°, 1 at 180°
        6.0 * x.powf(0.8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pressure_depth_roundtrip() {
        for d in [0.0, 1.0, 2.5, 9.0, 40.0] {
            let p = depth_to_pressure(d);
            assert!((pressure_to_depth(p) - d).abs() < 1e-9);
        }
        // 1 m of water is about 9.78 kPa above atmospheric.
        assert!((depth_to_pressure(1.0) - ATMOSPHERIC_PRESSURE - 9780.57).abs() < 1.0);
        // Below-atmospheric pressure clamps to zero depth.
        assert_eq!(pressure_to_depth(50_000.0), 0.0);
    }

    #[test]
    fn depth_quantisation_and_encoding() {
        assert!((quantize_depth(1.23) - 1.2).abs() < 1e-9);
        assert!((quantize_depth(1.31) - 1.4).abs() < 1e-9);
        assert_eq!(quantize_depth(-3.0), 0.0);
        assert_eq!(quantize_depth(100.0), 40.0);
        // 8-bit encode/decode round-trips to within half a step.
        for d in [0.0, 0.2, 5.3, 17.77, 39.9, 40.0] {
            let code = encode_depth(d);
            let back = decode_depth(code);
            assert!(
                (back - d).abs() <= DEPTH_QUANTIZATION_M / 2.0 + 1e-9,
                "d {d} back {back}"
            );
        }
        // 40 m fits in 8 bits: 40 / 0.2 = 200 < 256.
        assert_eq!(encode_depth(40.0), 200);
    }

    #[test]
    fn watch_is_more_accurate_than_phone() {
        let watch = DepthSensor::new(DepthSensorKind::WatchDepthGauge);
        let phone = DepthSensor::new(DepthSensorKind::PhonePressure);
        let mut rng = StdRng::seed_from_u64(1);
        let true_depth = 5.0;
        let n = 3000;
        let mean_abs_err = |sensor: &DepthSensor, rng: &mut StdRng| {
            (0..n)
                .map(|_| (sensor.measure(true_depth, rng).unwrap() - true_depth).abs())
                .sum::<f64>()
                / n as f64
        };
        let watch_err = mean_abs_err(&watch, &mut rng);
        let phone_err = mean_abs_err(&phone, &mut rng);
        assert!(
            watch_err < phone_err,
            "watch {watch_err} vs phone {phone_err}"
        );
        // Mean absolute error of a Gaussian is sigma·sqrt(2/π) ≈ 0.8·sigma.
        assert!((watch_err - 0.12).abs() < 0.05, "watch err {watch_err}");
        assert!((phone_err - 0.335).abs() < 0.08, "phone err {phone_err}");
    }

    #[test]
    fn pressure_path_matches_direct_path_statistics() {
        let phone = DepthSensor::new(DepthSensorKind::PhonePressure);
        let mut rng = StdRng::seed_from_u64(2);
        let true_depth = 3.0;
        let n = 2000;
        let errs: Vec<f64> = (0..n)
            .map(|_| phone.measure_via_pressure(true_depth, &mut rng).unwrap() - true_depth)
            .collect();
        let mean = errs.iter().sum::<f64>() / n as f64;
        let std = (errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n as f64).sqrt();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((std - 0.42).abs() < 0.08, "std {std}");
    }

    #[test]
    fn sensors_reject_negative_depth() {
        let s = DepthSensor::new(DepthSensorKind::PhonePressure);
        let mut rng = StdRng::seed_from_u64(3);
        assert!(s.measure(-1.0, &mut rng).is_err());
        assert!(s.measure_via_pressure(-1.0, &mut rng).is_err());
    }

    #[test]
    fn measurements_never_go_negative() {
        let s = DepthSensor::new(DepthSensorKind::PhonePressure);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            assert!(s.measure(0.1, &mut rng).unwrap() >= 0.0);
        }
    }

    #[test]
    fn orientation_directivity_monotone() {
        let on_axis = Orientation::directivity_loss_db(0.0);
        let side = Orientation::directivity_loss_db(std::f64::consts::FRAC_PI_2);
        let behind = Orientation::directivity_loss_db(std::f64::consts::PI);
        assert!(on_axis.abs() < 1e-9);
        assert!(side > on_axis && behind > side);
        assert!(behind <= 6.0 + 1e-9);
        let o = Orientation::from_degrees(90.0, 180.0);
        assert!((o.azimuth_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        assert!((o.polar_rad - std::f64::consts::PI).abs() < 1e-12);
    }
}
