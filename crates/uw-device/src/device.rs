//! The smart-device model: everything one diver carries.
//!
//! A [`SmartDevice`] bundles:
//!
//! * a device ID (0 is always the dive leader),
//! * a hardware model preset ([`DeviceModel`]) giving source level,
//!   microphone noise spread and depth-sensor type,
//! * a local clock with ppm skew,
//! * an audio stack (speaker/microphone streams with independent starts),
//! * a depth sensor,
//! * an orientation and a motion trajectory,
//! * the dual-microphone geometry: two microphones separated by
//!   [`MIC_SEPARATION_M`] (16 cm, the paper's phone top/bottom spacing),
//!   oriented along the device's azimuth.

use crate::audio::AudioStack;
use crate::clock::{random_clock, LocalClock};
use crate::mobility::Trajectory;
use crate::sensors::{DepthSensor, DepthSensorKind, Orientation};
use crate::{DeviceError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};
use uw_channel::geometry::Point3;

/// Distance between the two microphones on the device (m). The paper uses
/// the top and bottom microphones of a phone, 16 cm apart.
pub const MIC_SEPARATION_M: f64 = 0.16;

/// Identifier of a device within a dive group. The leader is always ID 0.
pub type DeviceId = usize;

/// Hardware presets for the devices the paper evaluates (Fig. 14b tests
/// Samsung, Pixel and OnePlus pairs; the battery test uses an Apple Watch
/// Ultra).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceModel {
    /// Samsung Galaxy S9 (the paper's primary phone).
    GalaxyS9,
    /// Google Pixel.
    Pixel,
    /// OnePlus.
    OnePlus,
    /// Apple Watch Ultra (depth gauge, smaller speaker).
    AppleWatchUltra,
}

impl DeviceModel {
    /// All phone models used in the cross-model experiment.
    pub const PHONES: [DeviceModel; 3] = [
        DeviceModel::GalaxyS9,
        DeviceModel::Pixel,
        DeviceModel::OnePlus,
    ];

    /// Relative transmit amplitude (1.0 = Galaxy S9 at maximum volume).
    pub fn source_level(&self) -> f64 {
        match self {
            DeviceModel::GalaxyS9 => 1.0,
            DeviceModel::Pixel => 0.85,
            DeviceModel::OnePlus => 0.9,
            DeviceModel::AppleWatchUltra => 0.6,
        }
    }

    /// Noise-level scale factors for the two microphones (hardware gain
    /// spread between the bottom and top microphones).
    pub fn mic_noise_scales(&self) -> [f64; 2] {
        match self {
            DeviceModel::GalaxyS9 => [1.0, 1.3],
            DeviceModel::Pixel => [1.1, 1.2],
            DeviceModel::OnePlus => [0.9, 1.4],
            DeviceModel::AppleWatchUltra => [1.0, 1.1],
        }
    }

    /// The kind of depth sensor this model carries.
    pub fn depth_sensor_kind(&self) -> DepthSensorKind {
        match self {
            DeviceModel::AppleWatchUltra => DepthSensorKind::WatchDepthGauge,
            _ => DepthSensorKind::PhonePressure,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            DeviceModel::GalaxyS9 => "Samsung Galaxy S9",
            DeviceModel::Pixel => "Google Pixel",
            DeviceModel::OnePlus => "OnePlus",
            DeviceModel::AppleWatchUltra => "Apple Watch Ultra",
        }
    }
}

/// One diver's device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmartDevice {
    /// Device ID within the dive group (0 = leader).
    pub id: DeviceId,
    /// Hardware preset.
    pub model: DeviceModel,
    /// Local clock.
    pub clock: LocalClock,
    /// Audio speaker/microphone stack.
    pub audio: AudioStack,
    /// Depth sensor.
    pub depth_sensor: DepthSensor,
    /// Current orientation.
    pub orientation: Orientation,
    /// Motion trajectory (ground truth).
    pub trajectory: Trajectory,
}

impl SmartDevice {
    /// Creates a static device of the given model at a fixed position with
    /// ideal clock and audio hardware.
    pub fn ideal(id: DeviceId, model: DeviceModel, position: Point3) -> Self {
        Self {
            id,
            model,
            clock: LocalClock::ideal(),
            audio: AudioStack::ideal(),
            depth_sensor: DepthSensor::new(model.depth_sensor_kind()),
            orientation: Orientation::default(),
            trajectory: Trajectory::fixed(position),
        }
    }

    /// Creates a device with realistic hardware imperfections drawn from the
    /// RNG: clock skew up to ±80 ppm, audio converter skews up to ±40 ppm,
    /// stream start offsets up to 500 ms.
    pub fn realistic<R: Rng>(
        id: DeviceId,
        model: DeviceModel,
        position: Point3,
        rng: &mut R,
    ) -> Result<Self> {
        let clock = random_clock(80.0, 10.0, rng);
        let audio = AudioStack::new(
            rng.gen_range(-40e-6..40e-6),
            rng.gen_range(-40e-6..40e-6),
            rng.gen_range(0.0..0.5),
            rng.gen_range(0.0..0.5),
            rng.gen_range(0.00005..0.0005),
        )?;
        Ok(Self {
            id,
            model,
            clock,
            audio,
            depth_sensor: DepthSensor::new(model.depth_sensor_kind()),
            orientation: Orientation::default(),
            trajectory: Trajectory::fixed(position),
        })
    }

    /// True if this is the dive-leader device.
    pub fn is_leader(&self) -> bool {
        self.id == 0
    }

    /// Ground-truth position at time `t`.
    pub fn position_at(&self, t: f64) -> Point3 {
        self.trajectory.position_at(t)
    }

    /// Ground-truth depth at time `t` (m).
    pub fn depth_at(&self, t: f64) -> f64 {
        self.position_at(t).z
    }

    /// Positions of the two microphones at time `t`. The microphones are
    /// separated by [`MIC_SEPARATION_M`] along the direction perpendicular
    /// to the device's azimuth in the horizontal plane (holding the phone
    /// upright, the top and bottom microphones project onto a horizontal
    /// baseline when the device is tilted as divers hold it).
    pub fn mic_positions_at(&self, t: f64) -> [Point3; 2] {
        let centre = self.position_at(t);
        let az = self.orientation.azimuth_rad;
        // Baseline perpendicular to the pointing direction.
        let dx = -az.sin() * MIC_SEPARATION_M / 2.0;
        let dy = az.cos() * MIC_SEPARATION_M / 2.0;
        [
            Point3::new(centre.x - dx, centre.y - dy, centre.z),
            Point3::new(centre.x + dx, centre.y + dy, centre.z),
        ]
    }

    /// Simulates a depth-sensor reading at time `t`.
    pub fn measure_depth<R: Rng>(&self, t: f64, rng: &mut R) -> Result<f64> {
        self.depth_sensor.measure(self.depth_at(t), rng)
    }

    /// Points the device towards a target position (sets the azimuth, with
    /// an optional pointing error in radians).
    pub fn point_towards(&mut self, target: &Point3, t: f64, pointing_error_rad: f64) {
        let here = self.position_at(t);
        self.orientation.azimuth_rad = here.azimuth_to(target) + pointing_error_rad;
    }

    /// Validates that the device ID fits within a group of `group_size`.
    pub fn validate_for_group(&self, group_size: usize) -> Result<()> {
        if self.id >= group_size {
            return Err(DeviceError::InvalidParameter {
                reason: format!(
                    "device id {} does not fit in a group of {group_size}",
                    self.id
                ),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn model_presets_are_distinct_and_sane() {
        for m in [
            DeviceModel::GalaxyS9,
            DeviceModel::Pixel,
            DeviceModel::OnePlus,
            DeviceModel::AppleWatchUltra,
        ] {
            assert!(m.source_level() > 0.0 && m.source_level() <= 1.0);
            let [a, b] = m.mic_noise_scales();
            assert!(a > 0.0 && b > 0.0);
            assert!(!m.name().is_empty());
        }
        assert_eq!(
            DeviceModel::AppleWatchUltra.depth_sensor_kind(),
            DepthSensorKind::WatchDepthGauge
        );
        assert_eq!(
            DeviceModel::GalaxyS9.depth_sensor_kind(),
            DepthSensorKind::PhonePressure
        );
        assert_eq!(DeviceModel::PHONES.len(), 3);
    }

    #[test]
    fn leader_is_id_zero() {
        let leader = SmartDevice::ideal(0, DeviceModel::GalaxyS9, Point3::ORIGIN);
        let diver = SmartDevice::ideal(3, DeviceModel::GalaxyS9, Point3::ORIGIN);
        assert!(leader.is_leader());
        assert!(!diver.is_leader());
    }

    #[test]
    fn mic_positions_are_separated_by_16cm() {
        let mut device = SmartDevice::ideal(1, DeviceModel::GalaxyS9, Point3::new(5.0, 5.0, 2.0));
        for az_deg in [0.0, 45.0, 90.0, 180.0, 270.0] {
            device.orientation = Orientation::from_degrees(az_deg, 0.0);
            let [m0, m1] = device.mic_positions_at(0.0);
            assert!((m0.distance(&m1) - MIC_SEPARATION_M).abs() < 1e-12);
            // Midpoint is the device position.
            let mid = m0.add(&m1).scale(0.5);
            assert!(mid.distance(&device.position_at(0.0)) < 1e-12);
            // Microphones stay at the device depth.
            assert_eq!(m0.z, 2.0);
            assert_eq!(m1.z, 2.0);
        }
    }

    #[test]
    fn point_towards_sets_azimuth() {
        let mut device = SmartDevice::ideal(0, DeviceModel::GalaxyS9, Point3::ORIGIN);
        let target = Point3::new(0.0, 7.0, 1.0);
        device.point_towards(&target, 0.0, 0.0);
        assert!((device.orientation.azimuth_rad - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
        device.point_towards(&target, 0.0, 0.1);
        assert!((device.orientation.azimuth_rad - std::f64::consts::FRAC_PI_2 - 0.1).abs() < 1e-12);
    }

    #[test]
    fn realistic_devices_have_imperfections_but_valid_hardware() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = SmartDevice::realistic(2, DeviceModel::Pixel, Point3::new(1.0, 2.0, 3.0), &mut rng)
            .unwrap();
        assert!(d.clock.skew_ppm.abs() <= 80.0);
        assert!(d.audio.speaker_skew.abs() <= 40e-6);
        assert!(d.audio.mic_skew.abs() <= 40e-6);
        assert!(d.audio.self_loopback_delay_s > 0.0);
        // Depth readings track the true depth.
        let reading = d.measure_depth(0.0, &mut rng).unwrap();
        assert!((reading - 3.0).abs() < 2.0);
    }

    #[test]
    fn group_validation() {
        let d = SmartDevice::ideal(4, DeviceModel::GalaxyS9, Point3::ORIGIN);
        assert!(d.validate_for_group(5).is_ok());
        assert!(d.validate_for_group(4).is_err());
    }

    #[test]
    fn moving_device_changes_position() {
        let mut d = SmartDevice::ideal(1, DeviceModel::GalaxyS9, Point3::ORIGIN);
        d.trajectory = crate::mobility::dock_sweep(Point3::new(0.0, 0.0, 2.5), 50.0);
        let p0 = d.position_at(0.0);
        let p10 = d.position_at(10.0);
        assert!((p0.distance(&p10) - 5.0).abs() < 1e-9);
        assert_eq!(d.depth_at(10.0), 2.5);
    }
}
