//! Image-method multipath model for a shallow-water channel.
//!
//! The water column is bounded by the surface (`z = 0`) and the bottom
//! (`z = water_depth`). Every acoustic path between a source and a receiver
//! can be described by an *image* of the source obtained by repeatedly
//! mirroring it about those two planes. Enumerating images up to a maximum
//! number of boundary interactions yields the familiar dense underwater
//! impulse response: a direct arrival followed by clusters of surface and
//! bottom reflections whose spacing shrinks as the devices approach a
//! boundary — exactly the effect the paper measures in Fig. 13a (errors are
//! lowest at mid-depth).
//!
//! Each path carries:
//! * a propagation delay (path length / sound speed),
//! * an amplitude from spreading + absorption + per-bounce boundary loss,
//! * a sign flip for every surface reflection (pressure-release boundary).
//!
//! Occlusion of the direct path (a diver, rock or the thick sheet used in
//! the paper's Fig. 19a experiment) is modelled by attenuating the
//! zero-bounce path by a configurable number of dB, which is what turns
//! multipath arrivals into "outlier" distance estimates.

use crate::absorption::{db_loss_to_amplitude, transmission_loss_db, BoundaryLoss, Spreading};
use crate::geometry::Point3;
use crate::{ChannelError, Result};
use serde::{Deserialize, Serialize};

/// One propagation path between a source and a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathComponent {
    /// One-way propagation delay in seconds.
    pub delay_s: f64,
    /// Linear amplitude gain of this path (signed: surface bounces flip the
    /// sign).
    pub amplitude: f64,
    /// Number of surface reflections along the path.
    pub n_surface: usize,
    /// Number of bottom reflections along the path.
    pub n_bottom: usize,
}

impl PathComponent {
    /// Total number of boundary interactions.
    pub fn bounces(&self) -> usize {
        self.n_surface + self.n_bottom
    }

    /// True for the direct (line-of-sight) path.
    pub fn is_direct(&self) -> bool {
        self.bounces() == 0
    }
}

/// Parameters of the multipath model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultipathConfig {
    /// Water depth in metres.
    pub water_depth_m: f64,
    /// Sound speed in m/s.
    pub sound_speed: f64,
    /// Maximum total number of boundary bounces to enumerate.
    pub max_bounces: usize,
    /// Spreading model.
    pub spreading: Spreading,
    /// Per-bounce boundary losses.
    pub boundary_loss: BoundaryLoss,
    /// Representative frequency (Hz) used for the absorption term.
    pub center_freq_hz: f64,
    /// Extra attenuation applied to the direct path (dB); 0 for a clear
    /// line of sight, 20–40 dB for an occluded link.
    pub direct_path_extra_loss_db: f64,
}

impl Default for MultipathConfig {
    fn default() -> Self {
        Self {
            water_depth_m: 9.0,
            sound_speed: 1481.0,
            max_bounces: 4,
            spreading: Spreading::Practical,
            boundary_loss: BoundaryLoss::default(),
            center_freq_hz: 3000.0,
            direct_path_extra_loss_db: 0.0,
        }
    }
}

impl MultipathConfig {
    /// Validates the physical parameters.
    pub fn validate(&self) -> Result<()> {
        if self.water_depth_m <= 0.0 {
            return Err(ChannelError::InvalidParameter {
                reason: "water depth must be positive".into(),
            });
        }
        if self.sound_speed < 1300.0 || self.sound_speed > 1700.0 {
            return Err(ChannelError::InvalidParameter {
                reason: format!(
                    "sound speed {} m/s is not an underwater value",
                    self.sound_speed
                ),
            });
        }
        if self.center_freq_hz <= 0.0 {
            return Err(ChannelError::InvalidParameter {
                reason: "centre frequency must be positive".into(),
            });
        }
        if self.direct_path_extra_loss_db < 0.0 {
            return Err(ChannelError::InvalidParameter {
                reason: "occlusion loss must be non-negative".into(),
            });
        }
        Ok(())
    }

    fn check_in_column(&self, p: &Point3, label: &str) -> Result<()> {
        if p.z < 0.0 || p.z > self.water_depth_m {
            return Err(ChannelError::InvalidParameter {
                reason: format!(
                    "{label} depth {} m is outside the water column (0..{} m)",
                    p.z, self.water_depth_m
                ),
            });
        }
        Ok(())
    }
}

/// Enumerates propagation paths between `tx` and `rx` using the image
/// method, sorted by increasing delay. The direct path is always first.
pub fn image_method_paths(
    config: &MultipathConfig,
    tx: &Point3,
    rx: &Point3,
) -> Result<Vec<PathComponent>> {
    config.validate()?;
    config.check_in_column(tx, "transmitter")?;
    config.check_in_column(rx, "receiver")?;

    let r = tx.horizontal_distance(rx);
    let d = config.water_depth_m;
    let zs = tx.z;
    let zr = rx.z;

    // Image families: (image depth, surface bounces, bottom bounces).
    // k = 0, 1, 2, … ; see module docs for the derivation of each family.
    let mut images: Vec<(f64, usize, usize)> = Vec::new();
    let max_k = config.max_bounces; // generous upper bound; filtered below
    for k in 0..=max_k {
        // Family A: 2kD + zs — k surface, k bottom (direct path at k = 0).
        images.push((2.0 * d * k as f64 + zs, k, k));
        // Family B: −2kD − zs — (k+1) surface, k bottom.
        images.push((-2.0 * d * k as f64 - zs, k + 1, k));
        // Family C: 2(k+1)D − zs — k surface, (k+1) bottom.
        images.push((2.0 * d * (k + 1) as f64 - zs, k, k + 1));
        // Family D: −2kD + zs for k ≥ 1 — k surface, k bottom.
        if k >= 1 {
            images.push((-2.0 * d * k as f64 + zs, k, k));
        }
    }

    let mut paths = Vec::new();
    for (z_img, n_surf, n_bot) in images {
        let bounces = n_surf + n_bot;
        if bounces > config.max_bounces {
            continue;
        }
        let dz = zr - z_img;
        let length = (r * r + dz * dz).sqrt().max(1e-3);
        let mut loss_db = transmission_loss_db(length, config.center_freq_hz, config.spreading);
        loss_db += n_surf as f64 * config.boundary_loss.surface_db;
        loss_db += n_bot as f64 * config.boundary_loss.bottom_db;
        if bounces == 0 {
            loss_db += config.direct_path_extra_loss_db;
        }
        // Pressure-release surface flips the sign once per surface bounce.
        let sign = if n_surf % 2 == 0 { 1.0 } else { -1.0 };
        paths.push(PathComponent {
            delay_s: length / config.sound_speed,
            amplitude: sign * db_loss_to_amplitude(loss_db),
            n_surface: n_surf,
            n_bottom: n_bot,
        });
    }

    paths.sort_by(|a, b| {
        a.delay_s
            .partial_cmp(&b.delay_s)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(paths)
}

/// A sampled channel impulse response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpulseResponse {
    /// Sampling rate in Hz.
    pub sample_rate: f64,
    /// Tap gains; index `i` corresponds to a delay of `i / sample_rate`
    /// seconds **after** `base_delay_s`.
    pub taps: Vec<f64>,
    /// Delay of tap 0 in seconds (the direct-path delay).
    pub base_delay_s: f64,
}

impl ImpulseResponse {
    /// Builds a sampled impulse response from path components. `span_s`
    /// limits the response duration after the earliest arrival.
    pub fn from_paths(paths: &[PathComponent], sample_rate: f64, span_s: f64) -> Result<Self> {
        if paths.is_empty() {
            return Err(ChannelError::InvalidLength {
                reason: "no propagation paths".into(),
            });
        }
        if sample_rate <= 0.0 || span_s <= 0.0 {
            return Err(ChannelError::InvalidParameter {
                reason: "sample rate and span must be positive".into(),
            });
        }
        let base = paths
            .iter()
            .map(|p| p.delay_s)
            .fold(f64::INFINITY, f64::min);
        let n_taps = (span_s * sample_rate).ceil() as usize + 1;
        let mut taps = vec![0.0; n_taps];
        for p in paths {
            let offset = (p.delay_s - base) * sample_rate;
            let idx = offset.floor() as usize;
            let frac = offset - idx as f64;
            if idx < n_taps {
                taps[idx] += p.amplitude * (1.0 - frac);
            }
            if frac > 0.0 && idx + 1 < n_taps {
                taps[idx + 1] += p.amplitude * frac;
            }
        }
        Ok(Self {
            sample_rate,
            taps,
            base_delay_s: base,
        })
    }

    /// RMS delay spread of the response in seconds (second moment of the
    /// power-weighted delay distribution).
    pub fn rms_delay_spread(&self) -> f64 {
        let total_power: f64 = self.taps.iter().map(|t| t * t).sum();
        if total_power == 0.0 {
            return 0.0;
        }
        let mean: f64 = self
            .taps
            .iter()
            .enumerate()
            .map(|(i, t)| i as f64 / self.sample_rate * t * t)
            .sum::<f64>()
            / total_power;
        let second: f64 = self
            .taps
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let d = i as f64 / self.sample_rate;
                d * d * t * t
            })
            .sum::<f64>()
            / total_power;
        (second - mean * mean).max(0.0).sqrt()
    }

    /// Index of the strongest tap.
    pub fn strongest_tap(&self) -> usize {
        self.taps
            .iter()
            .enumerate()
            .max_by(|a, b| {
                a.1.abs()
                    .partial_cmp(&b.1.abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn default_positions() -> (Point3, Point3) {
        (Point3::new(0.0, 0.0, 2.5), Point3::new(20.0, 0.0, 3.0))
    }

    #[test]
    fn direct_path_is_first_and_correct() {
        let config = MultipathConfig::default();
        let (tx, rx) = default_positions();
        let paths = image_method_paths(&config, &tx, &rx).unwrap();
        let direct = &paths[0];
        assert!(direct.is_direct());
        let expected = tx.distance(&rx) / config.sound_speed;
        assert!((direct.delay_s - expected).abs() < 1e-12);
        assert!(direct.amplitude > 0.0);
    }

    #[test]
    fn reflections_arrive_later_and_weaker_on_average() {
        let config = MultipathConfig::default();
        let (tx, rx) = default_positions();
        let paths = image_method_paths(&config, &tx, &rx).unwrap();
        assert!(
            paths.len() > 4,
            "expected several multipath components, got {}",
            paths.len()
        );
        let direct = &paths[0];
        for p in &paths[1..] {
            assert!(p.delay_s >= direct.delay_s);
            assert!(p.amplitude.abs() <= direct.amplitude.abs() + 1e-12);
        }
    }

    #[test]
    fn surface_bounce_flips_sign() {
        let config = MultipathConfig::default();
        let (tx, rx) = default_positions();
        let paths = image_method_paths(&config, &tx, &rx).unwrap();
        let single_surface = paths
            .iter()
            .find(|p| p.n_surface == 1 && p.n_bottom == 0)
            .unwrap();
        assert!(single_surface.amplitude < 0.0);
        let single_bottom = paths
            .iter()
            .find(|p| p.n_surface == 0 && p.n_bottom == 1)
            .unwrap();
        assert!(single_bottom.amplitude > 0.0);
    }

    #[test]
    fn bounce_cap_is_respected() {
        let config = MultipathConfig {
            max_bounces: 2,
            ..MultipathConfig::default()
        };
        let (tx, rx) = default_positions();
        let paths = image_method_paths(&config, &tx, &rx).unwrap();
        assert!(paths.iter().all(|p| p.bounces() <= 2));
        let bigger = MultipathConfig {
            max_bounces: 6,
            ..MultipathConfig::default()
        };
        let more = image_method_paths(&bigger, &tx, &rx).unwrap();
        assert!(more.len() > paths.len());
    }

    #[test]
    fn occlusion_attenuates_only_the_direct_path() {
        let clear = MultipathConfig::default();
        let blocked = MultipathConfig {
            direct_path_extra_loss_db: 30.0,
            ..clear
        };
        let (tx, rx) = default_positions();
        let p_clear = image_method_paths(&clear, &tx, &rx).unwrap();
        let p_blocked = image_method_paths(&blocked, &tx, &rx).unwrap();
        let d_clear = p_clear.iter().find(|p| p.is_direct()).unwrap();
        let d_blocked = p_blocked.iter().find(|p| p.is_direct()).unwrap();
        assert!(d_blocked.amplitude < d_clear.amplitude * 0.1);
        // A reflected path keeps its amplitude.
        let r_clear = p_clear
            .iter()
            .find(|p| p.n_bottom == 1 && p.n_surface == 0)
            .unwrap();
        let r_blocked = p_blocked
            .iter()
            .find(|p| p.n_bottom == 1 && p.n_surface == 0)
            .unwrap();
        assert!((r_clear.amplitude - r_blocked.amplitude).abs() < 1e-12);
        // With heavy occlusion, the strongest arrival is no longer the direct
        // path — this is exactly what produces outlier distance estimates.
        let strongest = p_blocked
            .iter()
            .max_by(|a, b| a.amplitude.abs().partial_cmp(&b.amplitude.abs()).unwrap())
            .unwrap();
        assert!(!strongest.is_direct());
    }

    #[test]
    fn shallow_devices_have_denser_early_multipath() {
        // Near-surface devices: the surface image nearly coincides with the
        // source, so the first reflection arrives very soon after the direct
        // path (this is why Fig. 13a sees larger errors near the surface).
        let config = MultipathConfig::default();
        let shallow_tx = Point3::new(0.0, 0.0, 0.5);
        let shallow_rx = Point3::new(18.0, 0.0, 0.5);
        let mid_tx = Point3::new(0.0, 0.0, 5.0);
        let mid_rx = Point3::new(18.0, 0.0, 5.0);
        let gap = |paths: &[PathComponent]| paths[1].delay_s - paths[0].delay_s;
        let shallow = image_method_paths(&config, &shallow_tx, &shallow_rx).unwrap();
        let mid = image_method_paths(&config, &mid_tx, &mid_rx).unwrap();
        assert!(gap(&shallow) < gap(&mid));
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let config = MultipathConfig::default();
        let inside = Point3::new(0.0, 0.0, 2.0);
        let above = Point3::new(0.0, 0.0, -1.0);
        let below = Point3::new(0.0, 0.0, 20.0);
        assert!(image_method_paths(&config, &above, &inside).is_err());
        assert!(image_method_paths(&config, &inside, &below).is_err());
        let bad = MultipathConfig {
            water_depth_m: -1.0,
            ..config
        };
        assert!(bad.validate().is_err());
        let bad = MultipathConfig {
            sound_speed: 300.0,
            ..config
        };
        assert!(bad.validate().is_err());
        let bad = MultipathConfig {
            direct_path_extra_loss_db: -3.0,
            ..config
        };
        assert!(bad.validate().is_err());
        let bad = MultipathConfig {
            center_freq_hz: 0.0,
            ..config
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn impulse_response_sampling() {
        let config = MultipathConfig::default();
        let (tx, rx) = default_positions();
        let paths = image_method_paths(&config, &tx, &rx).unwrap();
        let ir = ImpulseResponse::from_paths(&paths, 44_100.0, 0.05).unwrap();
        assert_eq!(ir.taps.len(), (0.05f64 * 44_100.0).ceil() as usize + 1);
        assert!((ir.base_delay_s - paths[0].delay_s).abs() < 1e-12);
        // Direct path tap should be at or near index 0 and positive.
        assert!(ir.taps[0] > 0.0 || ir.taps[1] > 0.0);
        assert!(ir.rms_delay_spread() > 0.0);
        assert!(ImpulseResponse::from_paths(&[], 44_100.0, 0.05).is_err());
        assert!(ImpulseResponse::from_paths(&paths, 0.0, 0.05).is_err());
        assert!(ImpulseResponse::from_paths(&paths, 44_100.0, 0.0).is_err());
    }

    #[test]
    fn strongest_tap_is_direct_when_unoccluded() {
        let config = MultipathConfig::default();
        let (tx, rx) = default_positions();
        let paths = image_method_paths(&config, &tx, &rx).unwrap();
        let ir = ImpulseResponse::from_paths(&paths, 44_100.0, 0.05).unwrap();
        // The direct path is the strongest arrival in a clear channel, and it
        // is the earliest, so the strongest tap should be within a couple of
        // taps of index 0.
        assert!(ir.strongest_tap() <= 2);
    }
}
