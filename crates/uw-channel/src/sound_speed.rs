//! Underwater sound-speed model.
//!
//! The paper (§2) uses Wilson's equation to approximate the speed of sound
//! as a function of temperature `T` (°C), salinity `S` (parts per thousand)
//! and depth `D` (m):
//!
//! ```text
//! c = 1449 + 4.6·T − 0.055·T² + 0.0003·T³ + 1.39·(S − 35) + 0.017·D
//! ```
//!
//! At recreational-diving depths (≤ 40 m) the total variation is ≲ 30 m/s —
//! about 2% of 1500 m/s — so treating `c` as constant per environment is
//! accurate enough for sub-metre ranging, exactly as the paper argues.

use serde::{Deserialize, Serialize};

/// Water properties relevant to sound-speed computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaterProperties {
    /// Temperature in degrees Celsius.
    pub temperature_c: f64,
    /// Salinity in parts per thousand (ocean ≈ 35, fresh water ≈ 0).
    pub salinity_ppt: f64,
    /// Depth in metres at which the sound speed is evaluated.
    pub depth_m: f64,
}

impl Default for WaterProperties {
    /// Temperate freshwater lake at modest depth — matches the paper's
    /// Seattle-area deployments.
    fn default() -> Self {
        Self {
            temperature_c: 15.0,
            salinity_ppt: 0.5,
            depth_m: 3.0,
        }
    }
}

impl WaterProperties {
    /// Ocean water at recreational diving depth.
    pub fn ocean() -> Self {
        Self {
            temperature_c: 12.0,
            salinity_ppt: 35.0,
            depth_m: 10.0,
        }
    }

    /// Heated swimming pool.
    pub fn pool() -> Self {
        Self {
            temperature_c: 27.0,
            salinity_ppt: 0.0,
            depth_m: 1.5,
        }
    }

    /// Brackish water in a tidal channel where a river meets the sea.
    pub fn brackish() -> Self {
        Self {
            temperature_c: 13.0,
            salinity_ppt: 18.0,
            depth_m: 2.0,
        }
    }
}

/// Wilson's equation for the underwater speed of sound in m/s.
pub fn wilson_sound_speed(props: &WaterProperties) -> f64 {
    let t = props.temperature_c;
    let s = props.salinity_ppt;
    let d = props.depth_m;
    1449.0 + 4.6 * t - 0.055 * t * t + 0.0003 * t * t * t + 1.39 * (s - 35.0) + 0.017 * d
}

/// Nominal sound speed used when the water properties are unknown (m/s).
pub const NOMINAL_SOUND_SPEED: f64 = 1500.0;

/// Relative ranging error incurred by assuming `assumed` m/s when the true
/// speed is `actual` m/s.
pub fn speed_mismatch_error(assumed: f64, actual: f64) -> f64 {
    ((assumed - actual) / actual).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_reference_values() {
        // Standard ocean water (T=10 °C, S=35 ppt, D=0) — Wilson's formula
        // evaluates to 1449 + 46 − 5.5 + 0.3 = 1489.8 m/s.
        let c = wilson_sound_speed(&WaterProperties {
            temperature_c: 10.0,
            salinity_ppt: 35.0,
            depth_m: 0.0,
        });
        assert!((c - 1489.8).abs() < 0.1, "c = {c}");
    }

    #[test]
    fn warm_water_is_faster() {
        let cold = wilson_sound_speed(&WaterProperties {
            temperature_c: 5.0,
            salinity_ppt: 35.0,
            depth_m: 0.0,
        });
        let warm = wilson_sound_speed(&WaterProperties {
            temperature_c: 25.0,
            salinity_ppt: 35.0,
            depth_m: 0.0,
        });
        assert!(warm > cold);
    }

    #[test]
    fn salinity_and_depth_increase_speed() {
        let fresh = wilson_sound_speed(&WaterProperties {
            temperature_c: 15.0,
            salinity_ppt: 0.0,
            depth_m: 0.0,
        });
        let salty = wilson_sound_speed(&WaterProperties {
            temperature_c: 15.0,
            salinity_ppt: 35.0,
            depth_m: 0.0,
        });
        assert!(salty > fresh);
        let shallow = wilson_sound_speed(&WaterProperties {
            temperature_c: 15.0,
            salinity_ppt: 35.0,
            depth_m: 0.0,
        });
        let deep = wilson_sound_speed(&WaterProperties {
            temperature_c: 15.0,
            salinity_ppt: 35.0,
            depth_m: 40.0,
        });
        assert!(deep > shallow);
        // The depth term is small: 40 m adds 0.68 m/s.
        assert!((deep - shallow - 0.68).abs() < 1e-9);
    }

    #[test]
    fn recreational_depth_variation_is_small() {
        // The paper: at ≤40 m the max change is ~30 m/s, i.e. ~2% of 1500.
        let props = WaterProperties::ocean();
        let c = wilson_sound_speed(&props);
        assert!(c > 1400.0 && c < 1560.0);
        assert!(speed_mismatch_error(NOMINAL_SOUND_SPEED, c) < 0.03);
    }

    #[test]
    fn presets_are_physical() {
        for props in [
            WaterProperties::default(),
            WaterProperties::ocean(),
            WaterProperties::pool(),
            WaterProperties::brackish(),
        ] {
            let c = wilson_sound_speed(&props);
            assert!(c > 1400.0 && c < 1600.0, "c = {c} for {props:?}");
        }
    }
}
