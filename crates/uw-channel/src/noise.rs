//! Underwater noise generation.
//!
//! The paper's deployments contend with two very different noise sources:
//!
//! * **Ambient noise** — broadband noise from wind, waves, rain and distant
//!   shipping. We model it as Gaussian noise passed through a one-pole
//!   low-pass filter so the spectrum is low-frequency heavy, as underwater
//!   ambient noise is (Knudsen curves fall with frequency).
//! * **Impulsive ("spiky") noise** — bubbles, snapping shrimp, kayak paddles
//!   and boat traffic produce short high-amplitude transients. The paper
//!   calls these out as the main source of false positives for plain
//!   cross-correlation detection (§2.2.1). We model them as a Poisson
//!   process of short exponentially-decaying bursts.
//!
//! Each microphone on a device can also have a different noise *level*
//! (hardware gain spread), which the dual-microphone algorithm explicitly
//! tolerates; [`NoiseProfile::with_level_scale`] provides that knob.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters for the noise generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// RMS level of the ambient Gaussian noise (linear amplitude).
    pub ambient_rms: f64,
    /// One-pole low-pass coefficient in `[0, 1)` shaping the ambient noise
    /// spectrum; larger values concentrate energy at low frequencies.
    pub spectral_tilt: f64,
    /// Expected number of impulsive events per second.
    pub spike_rate_hz: f64,
    /// Peak amplitude of impulsive events (linear).
    pub spike_amplitude: f64,
    /// Duration of each impulsive event in seconds.
    pub spike_duration_s: f64,
}

impl Default for NoiseProfile {
    fn default() -> Self {
        Self {
            ambient_rms: 0.02,
            spectral_tilt: 0.9,
            spike_rate_hz: 1.0,
            spike_amplitude: 0.4,
            spike_duration_s: 0.004,
        }
    }
}

impl NoiseProfile {
    /// A quiet environment (pool at night).
    pub fn quiet() -> Self {
        Self {
            ambient_rms: 0.005,
            spike_rate_hz: 0.1,
            spike_amplitude: 0.1,
            ..Self::default()
        }
    }

    /// A busy environment (boathouse with fishing and kayaking).
    pub fn busy() -> Self {
        Self {
            ambient_rms: 0.04,
            spike_rate_hz: 4.0,
            spike_amplitude: 0.8,
            ..Self::default()
        }
    }

    /// Deep open water away from shore: wind-and-wave ambient noise with
    /// very few impulsive events (no boat traffic, no snapping shrimp
    /// colonies near the devices).
    pub fn open_water() -> Self {
        Self {
            ambient_rms: 0.015,
            spike_rate_hz: 0.3,
            spike_amplitude: 0.2,
            ..Self::default()
        }
    }

    /// A strong-current site (tidal channel): turbulent flow noise raises
    /// the ambient floor and entrained bubbles produce frequent small
    /// spikes — louder than open water, less impulsive than a busy dock.
    pub fn flowing() -> Self {
        Self {
            ambient_rms: 0.03,
            spike_rate_hz: 2.5,
            spike_amplitude: 0.35,
            ..Self::default()
        }
    }

    /// Returns a copy with the ambient and spike levels scaled by `scale`
    /// (models per-microphone hardware gain differences).
    pub fn with_level_scale(&self, scale: f64) -> Self {
        Self {
            ambient_rms: self.ambient_rms * scale,
            spike_amplitude: self.spike_amplitude * scale,
            ..*self
        }
    }
}

/// Generates `n` samples of ambient (low-pass-shaped Gaussian) noise.
pub fn ambient_noise<R: Rng>(
    profile: &NoiseProfile,
    n: usize,
    sample_rate: f64,
    rng: &mut R,
) -> Vec<f64> {
    let _ = sample_rate; // the tilt is expressed directly as a filter pole
    let alpha = profile.spectral_tilt.clamp(0.0, 0.999);
    // Scale the white-noise drive so the filtered output has the requested RMS.
    // For a one-pole filter y[n] = a·y[n-1] + x[n], output variance is
    // σx² / (1 − a²).
    let drive = profile.ambient_rms * (1.0 - alpha * alpha).sqrt();
    let mut out = Vec::with_capacity(n);
    let mut state = 0.0f64;
    for _ in 0..n {
        // Box–Muller Gaussian from two uniforms.
        let u1: f64 = rng.gen_range(1e-12..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        state = alpha * state + drive * g;
        out.push(state);
    }
    out
}

/// Generates `n` samples of impulsive spike noise.
pub fn spike_noise<R: Rng>(
    profile: &NoiseProfile,
    n: usize,
    sample_rate: f64,
    rng: &mut R,
) -> Vec<f64> {
    let mut out = vec![0.0; n];
    if profile.spike_rate_hz <= 0.0 || profile.spike_amplitude == 0.0 {
        return out;
    }
    let p_per_sample = (profile.spike_rate_hz / sample_rate).min(1.0);
    let spike_len = ((profile.spike_duration_s * sample_rate).round() as usize).max(1);
    let mut i = 0usize;
    while i < n {
        if rng.gen_bool(p_per_sample) {
            let amp = profile.spike_amplitude * rng.gen_range(0.5..1.0);
            let freq = rng.gen_range(500.0..6000.0);
            for k in 0..spike_len.min(n - i) {
                let t = k as f64 / sample_rate;
                let envelope = (-t / (profile.spike_duration_s / 3.0)).exp();
                out[i + k] += amp * envelope * (2.0 * std::f64::consts::PI * freq * t).sin();
            }
            i += spike_len;
        } else {
            i += 1;
        }
    }
    out
}

/// Generates the combined noise waveform (ambient + spikes).
pub fn combined_noise<R: Rng>(
    profile: &NoiseProfile,
    n: usize,
    sample_rate: f64,
    rng: &mut R,
) -> Vec<f64> {
    let mut out = ambient_noise(profile, n, sample_rate, rng);
    let spikes = spike_noise(profile, n, sample_rate, rng);
    for (o, s) in out.iter_mut().zip(spikes.iter()) {
        *o += s;
    }
    out
}

/// RMS of a sample buffer.
pub fn rms(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    (samples.iter().map(|s| s * s).sum::<f64>() / samples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ambient_noise_has_requested_rms() {
        let profile = NoiseProfile::default();
        let mut rng = StdRng::seed_from_u64(1);
        let noise = ambient_noise(&profile, 200_000, 44_100.0, &mut rng);
        let measured = rms(&noise);
        assert!(
            (measured - profile.ambient_rms).abs() < 0.3 * profile.ambient_rms,
            "rms {measured} vs requested {}",
            profile.ambient_rms
        );
    }

    #[test]
    fn ambient_noise_is_low_frequency_heavy() {
        let profile = NoiseProfile::default();
        let mut rng = StdRng::seed_from_u64(2);
        let noise = ambient_noise(&profile, 16_384, 44_100.0, &mut rng);
        let spec = uw_dsp_rfft(&noise);
        let half = spec.len() / 2;
        let low: f64 = spec[1..half / 8].iter().sum();
        let high: f64 = spec[half / 2..half].iter().sum();
        assert!(low > high, "low {low} vs high {high}");
    }

    // Small local helper: magnitude spectrum via a DFT on a power-of-two
    // prefix, avoiding a dev-dependency on uw-dsp from this crate.
    fn uw_dsp_rfft(x: &[f64]) -> Vec<f64> {
        let n = 4096.min(x.len());
        let mut mags = Vec::with_capacity(n / 2);
        for k in 0..n / 2 {
            let mut re = 0.0;
            let mut im = 0.0;
            for (i, &s) in x.iter().take(n).enumerate() {
                let ang = -2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64;
                re += s * ang.cos();
                im += s * ang.sin();
            }
            mags.push((re * re + im * im).sqrt());
        }
        mags
    }

    #[test]
    fn spike_noise_rate_scales_with_profile() {
        let mut rng = StdRng::seed_from_u64(3);
        let quiet = spike_noise(&NoiseProfile::quiet(), 441_000, 44_100.0, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let busy = spike_noise(&NoiseProfile::busy(), 441_000, 44_100.0, &mut rng);
        let count_spikes = |v: &[f64]| v.iter().filter(|s| s.abs() > 0.05).count();
        assert!(count_spikes(&busy) > 3 * count_spikes(&quiet).max(1));
    }

    #[test]
    fn spike_noise_peaks_exceed_ambient() {
        let profile = NoiseProfile::busy();
        let mut rng = StdRng::seed_from_u64(4);
        let noise = combined_noise(&profile, 441_000, 44_100.0, &mut rng);
        let peak = noise.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
        assert!(peak > 5.0 * profile.ambient_rms, "peak {peak}");
    }

    #[test]
    fn zero_rate_produces_silence() {
        let profile = NoiseProfile {
            spike_rate_hz: 0.0,
            ..NoiseProfile::default()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let spikes = spike_noise(&profile, 10_000, 44_100.0, &mut rng);
        assert!(spikes.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn level_scale_scales_fields() {
        let p = NoiseProfile::default().with_level_scale(2.0);
        assert!((p.ambient_rms - 2.0 * NoiseProfile::default().ambient_rms).abs() < 1e-12);
        assert!((p.spike_amplitude - 2.0 * NoiseProfile::default().spike_amplitude).abs() < 1e-12);
        assert_eq!(p.spike_rate_hz, NoiseProfile::default().spike_rate_hz);
    }

    #[test]
    fn rms_edge_cases() {
        assert_eq!(rms(&[]), 0.0);
        assert!((rms(&[3.0, 4.0]) - (12.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn noise_is_reproducible_with_same_seed() {
        let profile = NoiseProfile::default();
        let mut r1 = StdRng::seed_from_u64(77);
        let mut r2 = StdRng::seed_from_u64(77);
        let a = combined_noise(&profile, 1000, 44_100.0, &mut r1);
        let b = combined_noise(&profile, 1000, 44_100.0, &mut r2);
        assert_eq!(a, b);
    }
}
