//! # uw-channel — underwater acoustic channel simulator
//!
//! The paper's evaluation ran in four real bodies of water (a swimming pool,
//! a boat dock, a waterfront park and a fishing dock). This crate replaces
//! that physical substrate with a waveform-level simulator that produces the
//! same impairments the ranging pipeline must survive:
//!
//! * **Sound speed** from Wilson's equation as a function of temperature,
//!   salinity and depth ([`sound_speed`]).
//! * **Propagation loss** — geometric spreading plus Thorp frequency-
//!   dependent absorption ([`absorption`]).
//! * **Multipath** — an image-method ray model that enumerates surface and
//!   bottom reflections between two 3D positions, giving the dense delay
//!   spread and the possibly-attenuated direct path the paper describes
//!   ([`multipath`]).
//! * **Noise** — Gaussian ambient noise with a low-frequency-heavy spectrum
//!   plus impulsive "spiky" noise from bubbles and boat traffic
//!   ([`noise`]).
//! * **Propagation** of an arbitrary transmit waveform to one or more
//!   microphones, combining all of the above ([`propagate`]).
//! * **Cross-network interference** — a rival group's transmission
//!   propagated through the same water column and superimposed onto a
//!   victim capture ([`interference`]).
//! * **Environment presets** matching the four deployment sites
//!   ([`environment`]).
//!
//! Everything is deterministic given an RNG seed so experiments are exactly
//! reproducible. The waveforms this crate produces feed the detection and
//! ranging pipeline in `uw-ranging` (via [`uw_dsp::MatchedFilter`]-based
//! correlation), and the [`environment`] presets parameterise every cell of
//! the `uw-eval` scenario matrix.
//!
//! ## Example
//!
//! ```
//! use uw_channel::propagate::PropagateOptions;
//! use uw_channel::{ChannelSimulator, Environment, EnvironmentKind, Point3};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! // Propagate a short pulse 10 m across the dock site.
//! let env = Environment::preset(EnvironmentKind::Dock);
//! let sim = ChannelSimulator::new(env, 44_100.0).unwrap();
//! let pulse = vec![1.0; 32];
//! let mut rng = StdRng::seed_from_u64(7);
//! let rx = sim
//!     .propagate(
//!         &pulse,
//!         &Point3::new(0.0, 0.0, 2.0),
//!         &Point3::new(10.0, 0.0, 2.0),
//!         &PropagateOptions::default(),
//!         &mut rng,
//!     )
//!     .unwrap();
//! // The received stream is longer than the pulse: propagation delay,
//! // multipath tail and noise padding.
//! assert!(rx.samples.len() > pulse.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absorption;
pub mod environment;
pub mod geometry;
pub mod interference;
pub mod multipath;
pub mod noise;
pub mod propagate;
pub mod sound_speed;

pub use environment::{Environment, EnvironmentKind};
pub use geometry::Point3;
pub use propagate::{ChannelSimulator, ReceivedSignal};

/// Errors produced by the channel simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// A physical parameter was out of range (negative depth, zero sound
    /// speed, positions outside the water column, …).
    InvalidParameter {
        /// Description of the offending parameter.
        reason: String,
    },
    /// A waveform buffer had an unusable length.
    InvalidLength {
        /// Description of the length problem.
        reason: String,
    },
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            ChannelError::InvalidLength { reason } => write!(f, "invalid length: {reason}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Convenience result alias for the channel layer.
pub type Result<T> = std::result::Result<T, ChannelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ChannelError::InvalidParameter {
            reason: "depth below seabed".into(),
        };
        assert!(e.to_string().contains("depth below seabed"));
        let e = ChannelError::InvalidLength {
            reason: "empty waveform".into(),
        };
        assert!(e.to_string().contains("empty waveform"));
    }
}
