//! Cross-network acoustic interference.
//!
//! Two dive groups sharing a site also share the acoustic channel: a rival
//! group's preamble arrives at our microphones through the same multipath
//! water column as our own signals, merely from a different position and
//! at an uncontrolled time offset. [`mix_rival_into`] models exactly that:
//! it propagates the rival's transmit waveform through the image-method
//! channel to the victim microphone — with no additive noise and no
//! waterproof-case reflections, both of which the victim capture already
//! contains — and superimposes the result at the given time offset.
//!
//! The helper is deliberately waveform-agnostic: the caller chooses what
//! the rival transmits (`uw-core` passes the ranging preamble, since a
//! rival dive group runs the same system).

use crate::geometry::Point3;
use crate::propagate::{add_delayed, ChannelSimulator, PropagateOptions};
use crate::Result;
use rand::Rng;

/// Propagates `waveform` from the rival transmitter at `tx_pos` to a
/// victim microphone at `rx_pos` and mixes the arrival into `target`
/// starting `offset_s` seconds into the capture (fractional-sample
/// placement). Arrivals that extend past the end of `target` are clipped —
/// a capture only ever holds what the ADC recorded.
///
/// The propagation itself is noiseless and deterministic: the victim's
/// capture already carries ambient + impulsive noise, so only the rival's
/// multipath response is added. `rng` drives nothing today but keeps the
/// signature ready for stochastic rival channels; pass the interference
/// stream's own seeded RNG, never the victim capture's.
#[allow(clippy::too_many_arguments)]
pub fn mix_rival_into<R: Rng>(
    simulator: &ChannelSimulator,
    waveform: &[f64],
    tx_pos: &Point3,
    rx_pos: &Point3,
    offset_s: f64,
    gain: f64,
    target: &mut [f64],
    rng: &mut R,
) -> Result<()> {
    let options = PropagateOptions {
        occlusion_db: 0.0,
        noise_level_scale: 0.0,
        case_reflections: false,
        lead_in_samples: 0,
        tail_samples: 0,
    };
    let rival = simulator.propagate(waveform, tx_pos, rx_pos, &options, rng)?;
    let delay_samples = (offset_s.max(0.0)) * simulator.sample_rate();
    add_delayed(target, &rival.samples, delay_samples, gain);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::{Environment, EnvironmentKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulator() -> ChannelSimulator {
        ChannelSimulator::new(Environment::preset(EnvironmentKind::Dock), 44_100.0).unwrap()
    }

    #[test]
    fn rival_energy_lands_after_the_offset() {
        let sim = simulator();
        let wave = vec![1.0; 64];
        let mut target = vec![0.0; 120_000];
        let mut rng = StdRng::seed_from_u64(3);
        mix_rival_into(
            &sim,
            &wave,
            &Point3::new(25.0, 0.0, 2.0),
            &Point3::new(0.0, 0.0, 1.5),
            0.5,
            0.8,
            &mut target,
            &mut rng,
        )
        .unwrap();
        let offset = (0.5 * sim.sample_rate()) as usize;
        // Nothing before the offset (no noise is added), energy after it.
        assert!(target[..offset].iter().all(|&s| s == 0.0));
        assert!(target[offset..].iter().any(|&s| s != 0.0));
    }

    #[test]
    fn mixing_is_deterministic_and_additive() {
        let sim = simulator();
        let wave = vec![1.0; 32];
        let tx = Point3::new(18.0, 4.0, 2.0);
        let rx = Point3::new(0.0, 0.0, 1.5);
        let run = |gain: f64| {
            let mut target = vec![0.0; 90_000];
            let mut rng = StdRng::seed_from_u64(9);
            mix_rival_into(&sim, &wave, &tx, &rx, 0.1, gain, &mut target, &mut rng).unwrap();
            target
        };
        let a = run(0.5);
        let b = run(0.5);
        assert_eq!(a, b);
        // Gain scales the mixed energy linearly.
        let double = run(1.0);
        let peak = |v: &[f64]| v.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
        assert!((peak(&double) - 2.0 * peak(&a)).abs() < 1e-9);
    }

    #[test]
    fn clipping_and_errors() {
        let sim = simulator();
        // A tiny target just clips the arrival; no panic.
        let mut target = vec![0.0; 8];
        let mut rng = StdRng::seed_from_u64(1);
        mix_rival_into(
            &sim,
            &[1.0; 16],
            &Point3::new(10.0, 0.0, 2.0),
            &Point3::new(0.0, 0.0, 1.5),
            0.0,
            1.0,
            &mut target,
            &mut rng,
        )
        .unwrap();
        // Empty rival waveforms are rejected like any propagation.
        assert!(mix_rival_into(
            &sim,
            &[],
            &Point3::new(10.0, 0.0, 2.0),
            &Point3::new(0.0, 0.0, 1.5),
            0.0,
            1.0,
            &mut target,
            &mut rng,
        )
        .is_err());
    }
}
