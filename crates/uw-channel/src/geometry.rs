//! 3D geometry primitives used across the workspace.
//!
//! The coordinate convention follows the paper: `x`/`y` span the horizontal
//! plane and `z` is depth in metres, increasing downwards (the water surface
//! is `z = 0`).

use serde::{Deserialize, Serialize};

/// A point (or vector) in 3D space. Units are metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point3 {
    /// Horizontal x coordinate (m).
    pub x: f64,
    /// Horizontal y coordinate (m).
    pub y: f64,
    /// Depth below the surface (m, positive down).
    pub z: f64,
}

impl Point3 {
    /// The origin.
    pub const ORIGIN: Point3 = Point3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a point from coordinates.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Euclidean distance to another point.
    pub fn distance(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Horizontal (x–y plane) distance to another point.
    pub fn horizontal_distance(&self, other: &Point3) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Vector difference `self - other`.
    pub fn sub(&self, other: &Point3) -> Point3 {
        Point3::new(self.x - other.x, self.y - other.y, self.z - other.z)
    }

    /// Vector sum.
    pub fn add(&self, other: &Point3) -> Point3 {
        Point3::new(self.x + other.x, self.y + other.y, self.z + other.z)
    }

    /// Scales all components.
    pub fn scale(&self, k: f64) -> Point3 {
        Point3::new(self.x * k, self.y * k, self.z * k)
    }

    /// Euclidean norm of the point treated as a vector.
    pub fn norm(&self) -> f64 {
        (self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Dot product with another vector.
    pub fn dot(&self, other: &Point3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Returns the point with its depth mirrored about the surface plane
    /// `z = 0` (used by the image method for surface reflections).
    pub fn mirror_surface(&self) -> Point3 {
        Point3::new(self.x, self.y, -self.z)
    }

    /// Returns the point mirrored about the bottom plane `z = bottom_depth`.
    pub fn mirror_bottom(&self, bottom_depth: f64) -> Point3 {
        Point3::new(self.x, self.y, 2.0 * bottom_depth - self.z)
    }

    /// Azimuth (radians) of the horizontal direction from `self` towards
    /// `other`, measured from the +x axis counter-clockwise.
    pub fn azimuth_to(&self, other: &Point3) -> f64 {
        (other.y - self.y).atan2(other.x - self.x)
    }
}

/// Returns the angle in radians between two 2D headings, wrapped to
/// `[-π, π]`.
pub fn wrap_angle(theta: f64) -> f64 {
    let mut t = theta % (2.0 * std::f64::consts::PI);
    if t > std::f64::consts::PI {
        t -= 2.0 * std::f64::consts::PI;
    } else if t < -std::f64::consts::PI {
        t += 2.0 * std::f64::consts::PI;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_pythagoras() {
        let a = Point3::new(0.0, 0.0, 0.0);
        let b = Point3::new(3.0, 4.0, 0.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        let c = Point3::new(3.0, 4.0, 12.0);
        assert!((a.distance(&c) - 13.0).abs() < 1e-12);
        assert!((a.horizontal_distance(&c) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn vector_ops() {
        let a = Point3::new(1.0, 2.0, 3.0);
        let b = Point3::new(4.0, 5.0, 6.0);
        assert_eq!(a.add(&b), Point3::new(5.0, 7.0, 9.0));
        assert_eq!(b.sub(&a), Point3::new(3.0, 3.0, 3.0));
        assert_eq!(a.scale(2.0), Point3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(&b), 32.0);
        assert!((Point3::new(1.0, 2.0, 2.0).norm() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mirrors() {
        let p = Point3::new(1.0, 2.0, 3.0);
        assert_eq!(p.mirror_surface(), Point3::new(1.0, 2.0, -3.0));
        assert_eq!(p.mirror_bottom(9.0), Point3::new(1.0, 2.0, 15.0));
        // Mirroring twice about the same plane is the identity.
        assert_eq!(p.mirror_surface().mirror_surface(), p);
        assert_eq!(p.mirror_bottom(5.0).mirror_bottom(5.0), p);
    }

    #[test]
    fn azimuth_quadrants() {
        let o = Point3::ORIGIN;
        assert!((o.azimuth_to(&Point3::new(1.0, 0.0, 0.0)) - 0.0).abs() < 1e-12);
        assert!(
            (o.azimuth_to(&Point3::new(0.0, 1.0, 0.0)) - std::f64::consts::FRAC_PI_2).abs() < 1e-12
        );
        assert!(
            (o.azimuth_to(&Point3::new(-1.0, 0.0, 0.0)).abs() - std::f64::consts::PI).abs() < 1e-12
        );
    }

    #[test]
    fn wrap_angle_range() {
        for k in -10..=10 {
            let theta = k as f64 * 1.3;
            let w = wrap_angle(theta);
            assert!((-std::f64::consts::PI - 1e-12..=std::f64::consts::PI + 1e-12).contains(&w));
            // Same direction.
            assert!(((theta - w) / (2.0 * std::f64::consts::PI)).fract().abs() < 1e-9);
        }
    }
}
