//! Waveform propagation: transmit waveform → microphone stream.
//!
//! [`ChannelSimulator`] ties the whole channel together. Given a transmit
//! waveform, a transmitter position and a receiver (microphone) position it
//! produces the sampled signal that microphone records:
//!
//! 1. enumerate multipath components with the image method,
//! 2. superimpose a delayed, scaled copy of the waveform per path
//!    (fractional-sample delays via linear interpolation),
//! 3. optionally add a couple of very-short-delay "case reflections"
//!    modelling the waterproof pouch, which differ per microphone,
//! 4. add ambient + impulsive noise.
//!
//! The true propagation delay of the direct path is reported alongside the
//! samples so experiments can compute ground-truth errors.

use crate::environment::Environment;
use crate::geometry::Point3;
use crate::multipath::{image_method_paths, MultipathConfig, PathComponent};
use crate::noise::{combined_noise, NoiseProfile};
use crate::{ChannelError, Result};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Options for one propagation call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagateOptions {
    /// Extra attenuation of the direct path in dB (occluded link).
    pub occlusion_db: f64,
    /// Scale factor applied to this microphone's noise level (models
    /// per-microphone hardware gain differences).
    pub noise_level_scale: f64,
    /// Whether to add short-delay reflections from the waterproof case.
    pub case_reflections: bool,
    /// Number of silent samples inserted before the transmission starts
    /// (lets detectors estimate the noise floor).
    pub lead_in_samples: usize,
    /// Number of samples of tail (multipath decay + noise) after the
    /// waveform ends.
    pub tail_samples: usize,
}

impl Default for PropagateOptions {
    fn default() -> Self {
        Self {
            occlusion_db: 0.0,
            noise_level_scale: 1.0,
            case_reflections: true,
            lead_in_samples: 2048,
            tail_samples: 4096,
        }
    }
}

/// Result of propagating a waveform to one microphone.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReceivedSignal {
    /// Received samples (lead-in noise, signal + multipath, tail).
    pub samples: Vec<f64>,
    /// Ground-truth direct-path propagation delay in seconds.
    pub true_delay_s: f64,
    /// Sample index (within `samples`, fractional) at which the direct path
    /// of the waveform's first sample arrives.
    pub true_arrival_sample: f64,
    /// Amplitude of the direct path after propagation loss.
    pub direct_amplitude: f64,
    /// Number of multipath components simulated.
    pub n_paths: usize,
}

/// Waveform-level channel simulator for one environment.
#[derive(Debug, Clone)]
pub struct ChannelSimulator {
    environment: Environment,
    sample_rate: f64,
}

impl ChannelSimulator {
    /// Creates a simulator for an environment at the given audio sampling
    /// rate (Hz).
    pub fn new(environment: Environment, sample_rate: f64) -> Result<Self> {
        if sample_rate <= 0.0 {
            return Err(ChannelError::InvalidParameter {
                reason: "sample rate must be positive".into(),
            });
        }
        Ok(Self {
            environment,
            sample_rate,
        })
    }

    /// The environment this simulator models.
    pub fn environment(&self) -> &Environment {
        &self.environment
    }

    /// Audio sampling rate in Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// Speed of sound used by the simulator (m/s).
    pub fn sound_speed(&self) -> f64 {
        self.environment.sound_speed()
    }

    /// Enumerates the multipath components between two positions.
    pub fn paths(&self, tx: &Point3, rx: &Point3, occlusion_db: f64) -> Result<Vec<PathComponent>> {
        let config: MultipathConfig = self.environment.multipath_config(occlusion_db);
        image_method_paths(&config, tx, rx)
    }

    /// Propagates `waveform` from `tx_pos` to a microphone at `rx_pos`.
    pub fn propagate<R: Rng>(
        &self,
        waveform: &[f64],
        tx_pos: &Point3,
        rx_pos: &Point3,
        options: &PropagateOptions,
        rng: &mut R,
    ) -> Result<ReceivedSignal> {
        if waveform.is_empty() {
            return Err(ChannelError::InvalidLength {
                reason: "cannot propagate an empty waveform".into(),
            });
        }
        if options.noise_level_scale < 0.0 {
            return Err(ChannelError::InvalidParameter {
                reason: "noise level scale must be non-negative".into(),
            });
        }
        let paths = self.paths(tx_pos, rx_pos, options.occlusion_db)?;
        let direct = paths
            .iter()
            .find(|p| p.is_direct())
            .copied()
            .ok_or_else(|| ChannelError::InvalidParameter {
                reason: "no direct path enumerated".into(),
            })?;

        let max_delay = paths.iter().map(|p| p.delay_s).fold(0.0f64, f64::max);
        let total_len = options.lead_in_samples
            + (max_delay * self.sample_rate).ceil() as usize
            + waveform.len()
            + options.tail_samples;
        let mut samples = vec![0.0; total_len];

        // Superimpose each multipath component.
        for p in &paths {
            let delay_samples = options.lead_in_samples as f64 + p.delay_s * self.sample_rate;
            add_delayed(&mut samples, waveform, delay_samples, p.amplitude);
        }

        // Waterproof-case reflections: 1–3 weak copies within a millisecond
        // of the direct path, different for every call (and hence for every
        // microphone), as described in §2.2.
        if options.case_reflections {
            let n_case = rng.gen_range(1..=3);
            for _ in 0..n_case {
                let extra_delay_s = rng.gen_range(0.0001..0.001);
                let gain = direct.amplitude * rng.gen_range(0.1..0.45);
                let delay_samples = options.lead_in_samples as f64
                    + (direct.delay_s + extra_delay_s) * self.sample_rate;
                add_delayed(&mut samples, waveform, delay_samples, gain);
            }
        }

        // Additive noise across the whole buffer.
        let noise_profile: NoiseProfile = self
            .environment
            .noise
            .with_level_scale(options.noise_level_scale);
        let noise = combined_noise(&noise_profile, total_len, self.sample_rate, rng);
        for (s, n) in samples.iter_mut().zip(noise.iter()) {
            *s += n;
        }

        Ok(ReceivedSignal {
            samples,
            true_delay_s: direct.delay_s,
            true_arrival_sample: options.lead_in_samples as f64 + direct.delay_s * self.sample_rate,
            direct_amplitude: direct.amplitude,
            n_paths: paths.len(),
        })
    }

    /// Propagates the same transmission to the two microphones of a
    /// receiving device. The microphones share the channel geometry apart
    /// from their small position offset and may have different noise levels
    /// and case reflections.
    pub fn propagate_dual_mic<R: Rng>(
        &self,
        waveform: &[f64],
        tx_pos: &Point3,
        mic_positions: &[Point3; 2],
        options: &PropagateOptions,
        mic_noise_scales: &[f64; 2],
        rng: &mut R,
    ) -> Result<[ReceivedSignal; 2]> {
        let opts0 = PropagateOptions {
            noise_level_scale: options.noise_level_scale * mic_noise_scales[0],
            ..*options
        };
        let opts1 = PropagateOptions {
            noise_level_scale: options.noise_level_scale * mic_noise_scales[1],
            ..*options
        };
        let rx0 = self.propagate(waveform, tx_pos, &mic_positions[0], &opts0, rng)?;
        let rx1 = self.propagate(waveform, tx_pos, &mic_positions[1], &opts1, rng)?;
        Ok([rx0, rx1])
    }
}

/// Adds a delayed, scaled copy of `source` into `target` (fractional delay
/// split across two adjacent samples).
pub(crate) fn add_delayed(target: &mut [f64], source: &[f64], delay_samples: f64, gain: f64) {
    let int_delay = delay_samples.floor() as usize;
    let frac = delay_samples - int_delay as f64;
    for (i, &s) in source.iter().enumerate() {
        let idx0 = int_delay + i;
        if idx0 < target.len() {
            target[idx0] += gain * s * (1.0 - frac);
        }
        let idx1 = idx0 + 1;
        if frac > 0.0 && idx1 < target.len() {
            target[idx1] += gain * s * frac;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::EnvironmentKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tone(n: usize, freq: f64, fs: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn simulator(kind: EnvironmentKind) -> ChannelSimulator {
        ChannelSimulator::new(Environment::preset(kind), 44_100.0).unwrap()
    }

    #[test]
    fn propagation_delay_matches_distance() {
        let sim = simulator(EnvironmentKind::Dock);
        let tx = Point3::new(0.0, 0.0, 2.5);
        let rx = Point3::new(30.0, 0.0, 2.5);
        let wave = tone(2000, 3000.0, 44_100.0);
        let mut rng = StdRng::seed_from_u64(1);
        let received = sim
            .propagate(&wave, &tx, &rx, &PropagateOptions::default(), &mut rng)
            .unwrap();
        let expected_delay = 30.0 / sim.sound_speed();
        assert!((received.true_delay_s - expected_delay).abs() < 1e-9);
        assert!(received.n_paths > 3);
        assert!(received.samples.len() > wave.len());
    }

    #[test]
    fn received_energy_decreases_with_distance() {
        let sim = simulator(EnvironmentKind::Dock);
        let wave = tone(4000, 3000.0, 44_100.0);
        let tx = Point3::new(0.0, 0.0, 3.0);
        let near = Point3::new(10.0, 0.0, 3.0);
        let far = Point3::new(40.0, 0.0, 3.0);
        // Disable noise influence by comparing direct amplitudes.
        let mut rng = StdRng::seed_from_u64(2);
        let rx_near = sim
            .propagate(&wave, &tx, &near, &PropagateOptions::default(), &mut rng)
            .unwrap();
        let rx_far = sim
            .propagate(&wave, &tx, &far, &PropagateOptions::default(), &mut rng)
            .unwrap();
        assert!(rx_near.direct_amplitude > rx_far.direct_amplitude);
    }

    #[test]
    fn occlusion_suppresses_direct_amplitude() {
        let sim = simulator(EnvironmentKind::Dock);
        let wave = tone(2000, 3000.0, 44_100.0);
        let tx = Point3::new(0.0, 0.0, 1.5);
        let rx = Point3::new(15.0, 0.0, 1.5);
        let mut rng = StdRng::seed_from_u64(3);
        let clear = sim
            .propagate(&wave, &tx, &rx, &PropagateOptions::default(), &mut rng)
            .unwrap();
        let occluded_opts = PropagateOptions {
            occlusion_db: 30.0,
            ..PropagateOptions::default()
        };
        let blocked = sim
            .propagate(&wave, &tx, &rx, &occluded_opts, &mut rng)
            .unwrap();
        assert!(blocked.direct_amplitude < clear.direct_amplitude * 0.1);
        // The true delay is unchanged — only the amplitude drops.
        assert!((blocked.true_delay_s - clear.true_delay_s).abs() < 1e-12);
    }

    #[test]
    fn dual_mic_delays_differ_by_mic_offset() {
        let sim = simulator(EnvironmentKind::Dock);
        let wave = tone(2000, 3000.0, 44_100.0);
        let tx = Point3::new(0.0, 0.0, 2.0);
        // Microphones 16 cm apart along the propagation axis.
        let mics = [Point3::new(20.0, 0.0, 2.0), Point3::new(20.16, 0.0, 2.0)];
        let mut rng = StdRng::seed_from_u64(4);
        let [rx0, rx1] = sim
            .propagate_dual_mic(
                &wave,
                &tx,
                &mics,
                &PropagateOptions::default(),
                &[1.0, 1.3],
                &mut rng,
            )
            .unwrap();
        let dt = rx1.true_delay_s - rx0.true_delay_s;
        let expected = 0.16 / sim.sound_speed();
        assert!((dt - expected).abs() < 1e-9, "dt {dt} vs {expected}");
    }

    #[test]
    fn lead_in_contains_mostly_noise() {
        let sim = simulator(EnvironmentKind::Pool);
        let wave = tone(2000, 3000.0, 44_100.0);
        let tx = Point3::new(0.0, 0.0, 1.0);
        let rx = Point3::new(10.0, 0.0, 1.5);
        let mut rng = StdRng::seed_from_u64(5);
        let received = sim
            .propagate(&wave, &tx, &rx, &PropagateOptions::default(), &mut rng)
            .unwrap();
        let lead_in_rms = crate::noise::rms(&received.samples[..1500]);
        let signal_start = received.true_arrival_sample as usize;
        let signal_rms = crate::noise::rms(&received.samples[signal_start..signal_start + 2000]);
        assert!(
            signal_rms > 3.0 * lead_in_rms,
            "signal {signal_rms} vs lead-in {lead_in_rms}"
        );
    }

    #[test]
    fn error_cases() {
        let sim = simulator(EnvironmentKind::Dock);
        let tx = Point3::new(0.0, 0.0, 2.0);
        let rx = Point3::new(10.0, 0.0, 2.0);
        let mut rng = StdRng::seed_from_u64(6);
        assert!(sim
            .propagate(&[], &tx, &rx, &PropagateOptions::default(), &mut rng)
            .is_err());
        let bad_opts = PropagateOptions {
            noise_level_scale: -1.0,
            ..PropagateOptions::default()
        };
        assert!(sim
            .propagate(&[1.0], &tx, &rx, &bad_opts, &mut rng)
            .is_err());
        assert!(ChannelSimulator::new(Environment::preset(EnvironmentKind::Dock), 0.0).is_err());
        // Position outside the water column.
        let out = Point3::new(10.0, 0.0, 30.0);
        assert!(sim
            .propagate(
                &[1.0; 10],
                &tx,
                &out,
                &PropagateOptions::default(),
                &mut rng
            )
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let sim = simulator(EnvironmentKind::Boathouse);
        let wave = tone(1000, 2500.0, 44_100.0);
        let tx = Point3::new(0.0, 0.0, 2.0);
        let rx = Point3::new(12.0, 3.0, 2.5);
        let a = sim
            .propagate(
                &wave,
                &tx,
                &rx,
                &PropagateOptions::default(),
                &mut StdRng::seed_from_u64(42),
            )
            .unwrap();
        let b = sim
            .propagate(
                &wave,
                &tx,
                &rx,
                &PropagateOptions::default(),
                &mut StdRng::seed_from_u64(42),
            )
            .unwrap();
        assert_eq!(a.samples, b.samples);
    }
}
