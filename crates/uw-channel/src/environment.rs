//! Environment presets for the deployment sites the evaluation sweeps.
//!
//! The first four are the paper's real testbeds (Fig. 10); the last two
//! extend the matrix along the environment axis motivated by the companion
//! ranging work (greater ranges, saltwater, currents):
//!
//! | Site         | Depth     | Extent | Character                                  |
//! |--------------|-----------|--------|--------------------------------------------|
//! | Pool         | 1–2.5 m   | 23 m   | hard walls, strong reverberation, quiet    |
//! | Dock         | 9 m       | 50 m   | boats/seaplanes, aquatic plants & animals  |
//! | Viewpoint    | 1–1.5 m   | 40 m   | very shallow waterfront                    |
//! | Boathouse    | 5 m       | 30 m   | busy fishing dock, people kayaking         |
//! | OpenWater    | 30 m      | 60 m   | deep saltwater site, weak reverberation    |
//! | TidalChannel | 4 m       | 35 m   | strong current, flow noise, brackish water |
//!
//! Each preset bundles the water properties, multipath severity, boundary
//! losses and noise profile used by the channel simulator.

use crate::absorption::{BoundaryLoss, Spreading};
use crate::multipath::MultipathConfig;
use crate::noise::NoiseProfile;
use crate::sound_speed::{wilson_sound_speed, WaterProperties};
use serde::{Deserialize, Serialize};

/// The deployment sites the evaluation matrix sweeps: the paper's four
/// testbeds plus two extended sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvironmentKind {
    /// Indoor swimming pool (23 m long, 1–2.5 m deep).
    Pool,
    /// Outdoor boat dock (50 m long, 9 m deep).
    Dock,
    /// Waterfront park viewpoint (40 m long, 1–1.5 m deep).
    Viewpoint,
    /// Fishing dock by a lake (30 m long, 5 m deep), busy with people.
    Boathouse,
    /// Deep open-water site away from shore (60 m extent, 30 m deep):
    /// saltwater, spherical spreading, weak reverberation, quiet.
    OpenWater,
    /// Tidal channel with a strong current (35 m long, 4 m deep): brackish
    /// water, turbulent flow noise, devices drift with the current.
    TidalChannel,
}

impl EnvironmentKind {
    /// All presets, paper sites first.
    pub const ALL: [EnvironmentKind; 6] = [
        EnvironmentKind::Pool,
        EnvironmentKind::Dock,
        EnvironmentKind::Viewpoint,
        EnvironmentKind::Boathouse,
        EnvironmentKind::OpenWater,
        EnvironmentKind::TidalChannel,
    ];

    /// The four real testbeds from the paper's evaluation (Fig. 10).
    pub const PAPER_SITES: [EnvironmentKind; 4] = [
        EnvironmentKind::Pool,
        EnvironmentKind::Dock,
        EnvironmentKind::Viewpoint,
        EnvironmentKind::Boathouse,
    ];

    /// Whether this site appears in the paper's measurement campaign (as
    /// opposed to the extended matrix axes).
    pub fn is_paper_site(&self) -> bool {
        Self::PAPER_SITES.contains(self)
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            EnvironmentKind::Pool => "Swimming pool",
            EnvironmentKind::Dock => "Dock",
            EnvironmentKind::Viewpoint => "Viewpoint",
            EnvironmentKind::Boathouse => "Boathouse",
            EnvironmentKind::OpenWater => "Open water",
            EnvironmentKind::TidalChannel => "Tidal channel",
        }
    }

    /// Short lowercase slug used in matrix cell identifiers and artifact
    /// file names.
    pub fn slug(&self) -> &'static str {
        match self {
            EnvironmentKind::Pool => "pool",
            EnvironmentKind::Dock => "dock",
            EnvironmentKind::Viewpoint => "viewpoint",
            EnvironmentKind::Boathouse => "boathouse",
            EnvironmentKind::OpenWater => "openwater",
            EnvironmentKind::TidalChannel => "tidal",
        }
    }
}

/// A fully-parameterised acoustic environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Which site this models.
    pub kind: EnvironmentKind,
    /// Water depth in metres.
    pub water_depth_m: f64,
    /// Maximum horizontal extent of the site in metres.
    pub max_range_m: f64,
    /// Water properties (temperature, salinity) for sound-speed computation.
    pub water: WaterProperties,
    /// Geometric spreading model.
    pub spreading: Spreading,
    /// Per-bounce boundary losses.
    pub boundary_loss: BoundaryLoss,
    /// Maximum number of boundary bounces simulated.
    pub max_bounces: usize,
    /// Background noise profile.
    pub noise: NoiseProfile,
}

impl Environment {
    /// Builds the preset for a given site.
    pub fn preset(kind: EnvironmentKind) -> Self {
        match kind {
            EnvironmentKind::Pool => Self {
                kind,
                water_depth_m: 2.5,
                max_range_m: 23.0,
                water: WaterProperties::pool(),
                spreading: Spreading::Cylindrical,
                // Tiled walls reflect strongly: low boundary loss, deep
                // reverberation tail.
                boundary_loss: BoundaryLoss {
                    surface_db: 0.5,
                    bottom_db: 2.0,
                },
                max_bounces: 6,
                noise: NoiseProfile::quiet(),
            },
            EnvironmentKind::Dock => Self {
                kind,
                water_depth_m: 9.0,
                max_range_m: 50.0,
                water: WaterProperties::default(),
                spreading: Spreading::Practical,
                boundary_loss: BoundaryLoss::default(),
                max_bounces: 4,
                noise: NoiseProfile::default(),
            },
            EnvironmentKind::Viewpoint => Self {
                kind,
                water_depth_m: 1.5,
                max_range_m: 40.0,
                water: WaterProperties::default(),
                spreading: Spreading::Cylindrical,
                boundary_loss: BoundaryLoss {
                    surface_db: 1.0,
                    bottom_db: 4.0,
                },
                max_bounces: 6,
                noise: NoiseProfile::default(),
            },
            EnvironmentKind::Boathouse => Self {
                kind,
                water_depth_m: 5.0,
                max_range_m: 30.0,
                water: WaterProperties::default(),
                spreading: Spreading::Practical,
                boundary_loss: BoundaryLoss {
                    surface_db: 1.0,
                    bottom_db: 5.0,
                },
                max_bounces: 4,
                noise: NoiseProfile::busy(),
            },
            EnvironmentKind::OpenWater => Self {
                kind,
                water_depth_m: 30.0,
                max_range_m: 60.0,
                water: WaterProperties::ocean(),
                // Deep water, boundaries far away: near-spherical spreading
                // and a soft sediment bottom that absorbs most of what does
                // reach it — the reverberation tail is weak and sparse.
                spreading: Spreading::Spherical,
                boundary_loss: BoundaryLoss {
                    surface_db: 2.0,
                    bottom_db: 10.0,
                },
                max_bounces: 2,
                noise: NoiseProfile::open_water(),
            },
            EnvironmentKind::TidalChannel => Self {
                kind,
                water_depth_m: 4.0,
                max_range_m: 35.0,
                water: WaterProperties::brackish(),
                spreading: Spreading::Practical,
                // Rippled sand and a rough, choppy surface scatter energy
                // out of the specular paths: moderate per-bounce losses.
                boundary_loss: BoundaryLoss {
                    surface_db: 2.0,
                    bottom_db: 6.0,
                },
                max_bounces: 4,
                noise: NoiseProfile::flowing(),
            },
        }
    }

    /// Speed of sound for this environment (m/s), from Wilson's equation at
    /// mid-depth.
    pub fn sound_speed(&self) -> f64 {
        let props = WaterProperties {
            depth_m: self.water_depth_m / 2.0,
            ..self.water
        };
        wilson_sound_speed(&props)
    }

    /// Builds a [`MultipathConfig`] for a link in this environment, with an
    /// optional extra direct-path loss in dB to model an occluded link.
    pub fn multipath_config(&self, occlusion_db: f64) -> MultipathConfig {
        MultipathConfig {
            water_depth_m: self.water_depth_m,
            sound_speed: self.sound_speed(),
            max_bounces: self.max_bounces,
            spreading: self.spreading,
            boundary_loss: self.boundary_loss,
            center_freq_hz: 3000.0,
            direct_path_extra_loss_db: occlusion_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_physical() {
        for kind in EnvironmentKind::ALL {
            let env = Environment::preset(kind);
            assert!(env.water_depth_m > 0.0);
            assert!(env.max_range_m > env.water_depth_m);
            let c = env.sound_speed();
            assert!(c > 1400.0 && c < 1600.0, "{:?}: c = {c}", kind);
            env.multipath_config(0.0).validate().unwrap();
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn pool_is_warmest_and_shallow() {
        let pool = Environment::preset(EnvironmentKind::Pool);
        let dock = Environment::preset(EnvironmentKind::Dock);
        assert!(pool.water.temperature_c > dock.water.temperature_c);
        assert!(pool.water_depth_m < dock.water_depth_m);
        // Warmer water → faster sound.
        assert!(pool.sound_speed() > dock.sound_speed());
    }

    #[test]
    fn boathouse_is_noisiest() {
        let boathouse = Environment::preset(EnvironmentKind::Boathouse);
        let pool = Environment::preset(EnvironmentKind::Pool);
        assert!(boathouse.noise.spike_rate_hz > pool.noise.spike_rate_hz);
        assert!(boathouse.noise.ambient_rms > pool.noise.ambient_rms);
    }

    #[test]
    fn occlusion_is_passed_through() {
        let env = Environment::preset(EnvironmentKind::Dock);
        assert_eq!(env.multipath_config(25.0).direct_path_extra_loss_db, 25.0);
        assert_eq!(env.multipath_config(0.0).direct_path_extra_loss_db, 0.0);
    }

    #[test]
    fn paper_sites_are_a_strict_subset() {
        for kind in EnvironmentKind::PAPER_SITES {
            assert!(kind.is_paper_site());
            assert!(EnvironmentKind::ALL.contains(&kind));
        }
        assert!(!EnvironmentKind::OpenWater.is_paper_site());
        assert!(!EnvironmentKind::TidalChannel.is_paper_site());
        assert_eq!(EnvironmentKind::ALL.len(), 6);
        // Slugs are unique (they key matrix cells and artifact names).
        let mut slugs: Vec<&str> = EnvironmentKind::ALL.iter().map(|k| k.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), EnvironmentKind::ALL.len());
    }

    #[test]
    fn open_water_has_weak_reverberation() {
        let open = Environment::preset(EnvironmentKind::OpenWater);
        let pool = Environment::preset(EnvironmentKind::Pool);
        // Fewer simulated bounces, each losing more energy.
        assert!(open.max_bounces < pool.max_bounces);
        assert!(open.boundary_loss.bottom_db > pool.boundary_loss.bottom_db);
        assert_eq!(open.spreading, Spreading::Spherical);
        // Saltwater is saline; the paper's lakes are not.
        assert!(open.water.salinity_ppt > 30.0);
        assert!(open.water_depth_m > Environment::preset(EnvironmentKind::Dock).water_depth_m);
    }

    #[test]
    fn tidal_channel_is_noisy_but_less_impulsive_than_boathouse() {
        let tidal = Environment::preset(EnvironmentKind::TidalChannel);
        let boathouse = Environment::preset(EnvironmentKind::Boathouse);
        let open = Environment::preset(EnvironmentKind::OpenWater);
        assert!(tidal.noise.ambient_rms > open.noise.ambient_rms);
        assert!(tidal.noise.spike_rate_hz < boathouse.noise.spike_rate_hz);
        assert!(tidal.noise.spike_rate_hz > open.noise.spike_rate_hz);
        // Brackish: saltier than the lakes, fresher than the open sea.
        assert!(tidal.water.salinity_ppt > 1.0);
        assert!(tidal.water.salinity_ppt < open.water.salinity_ppt);
    }

    #[test]
    fn presets_are_cloneable_and_comparable() {
        let env = Environment::preset(EnvironmentKind::Dock);
        let copy = env.clone();
        assert_eq!(env, copy);
        assert_ne!(Environment::preset(EnvironmentKind::Pool), env);
    }
}
