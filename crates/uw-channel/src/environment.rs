//! Environment presets for the four deployment sites in the paper (Fig. 10).
//!
//! | Site       | Depth     | Extent | Character                                  |
//! |------------|-----------|--------|--------------------------------------------|
//! | Pool       | 1–2.5 m   | 23 m   | hard walls, strong reverberation, quiet    |
//! | Dock       | 9 m       | 50 m   | boats/seaplanes, aquatic plants & animals  |
//! | Viewpoint  | 1–1.5 m   | 40 m   | very shallow waterfront                    |
//! | Boathouse  | 5 m       | 30 m   | busy fishing dock, people kayaking         |
//!
//! Each preset bundles the water properties, multipath severity, boundary
//! losses and noise profile used by the channel simulator.

use crate::absorption::{BoundaryLoss, Spreading};
use crate::multipath::MultipathConfig;
use crate::noise::NoiseProfile;
use crate::sound_speed::{wilson_sound_speed, WaterProperties};
use serde::{Deserialize, Serialize};

/// The four deployment sites used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvironmentKind {
    /// Indoor swimming pool (23 m long, 1–2.5 m deep).
    Pool,
    /// Outdoor boat dock (50 m long, 9 m deep).
    Dock,
    /// Waterfront park viewpoint (40 m long, 1–1.5 m deep).
    Viewpoint,
    /// Fishing dock by a lake (30 m long, 5 m deep), busy with people.
    Boathouse,
}

impl EnvironmentKind {
    /// All four presets.
    pub const ALL: [EnvironmentKind; 4] = [
        EnvironmentKind::Pool,
        EnvironmentKind::Dock,
        EnvironmentKind::Viewpoint,
        EnvironmentKind::Boathouse,
    ];

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            EnvironmentKind::Pool => "Swimming pool",
            EnvironmentKind::Dock => "Dock",
            EnvironmentKind::Viewpoint => "Viewpoint",
            EnvironmentKind::Boathouse => "Boathouse",
        }
    }
}

/// A fully-parameterised acoustic environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Environment {
    /// Which site this models.
    pub kind: EnvironmentKind,
    /// Water depth in metres.
    pub water_depth_m: f64,
    /// Maximum horizontal extent of the site in metres.
    pub max_range_m: f64,
    /// Water properties (temperature, salinity) for sound-speed computation.
    pub water: WaterProperties,
    /// Geometric spreading model.
    pub spreading: Spreading,
    /// Per-bounce boundary losses.
    pub boundary_loss: BoundaryLoss,
    /// Maximum number of boundary bounces simulated.
    pub max_bounces: usize,
    /// Background noise profile.
    pub noise: NoiseProfile,
}

impl Environment {
    /// Builds the preset for a given site.
    pub fn preset(kind: EnvironmentKind) -> Self {
        match kind {
            EnvironmentKind::Pool => Self {
                kind,
                water_depth_m: 2.5,
                max_range_m: 23.0,
                water: WaterProperties::pool(),
                spreading: Spreading::Cylindrical,
                // Tiled walls reflect strongly: low boundary loss, deep
                // reverberation tail.
                boundary_loss: BoundaryLoss {
                    surface_db: 0.5,
                    bottom_db: 2.0,
                },
                max_bounces: 6,
                noise: NoiseProfile::quiet(),
            },
            EnvironmentKind::Dock => Self {
                kind,
                water_depth_m: 9.0,
                max_range_m: 50.0,
                water: WaterProperties::default(),
                spreading: Spreading::Practical,
                boundary_loss: BoundaryLoss::default(),
                max_bounces: 4,
                noise: NoiseProfile::default(),
            },
            EnvironmentKind::Viewpoint => Self {
                kind,
                water_depth_m: 1.5,
                max_range_m: 40.0,
                water: WaterProperties::default(),
                spreading: Spreading::Cylindrical,
                boundary_loss: BoundaryLoss {
                    surface_db: 1.0,
                    bottom_db: 4.0,
                },
                max_bounces: 6,
                noise: NoiseProfile::default(),
            },
            EnvironmentKind::Boathouse => Self {
                kind,
                water_depth_m: 5.0,
                max_range_m: 30.0,
                water: WaterProperties::default(),
                spreading: Spreading::Practical,
                boundary_loss: BoundaryLoss {
                    surface_db: 1.0,
                    bottom_db: 5.0,
                },
                max_bounces: 4,
                noise: NoiseProfile::busy(),
            },
        }
    }

    /// Speed of sound for this environment (m/s), from Wilson's equation at
    /// mid-depth.
    pub fn sound_speed(&self) -> f64 {
        let props = WaterProperties {
            depth_m: self.water_depth_m / 2.0,
            ..self.water
        };
        wilson_sound_speed(&props)
    }

    /// Builds a [`MultipathConfig`] for a link in this environment, with an
    /// optional extra direct-path loss in dB to model an occluded link.
    pub fn multipath_config(&self, occlusion_db: f64) -> MultipathConfig {
        MultipathConfig {
            water_depth_m: self.water_depth_m,
            sound_speed: self.sound_speed(),
            max_bounces: self.max_bounces,
            spreading: self.spreading,
            boundary_loss: self.boundary_loss,
            center_freq_hz: 3000.0,
            direct_path_extra_loss_db: occlusion_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_are_physical() {
        for kind in EnvironmentKind::ALL {
            let env = Environment::preset(kind);
            assert!(env.water_depth_m > 0.0);
            assert!(env.max_range_m > env.water_depth_m);
            let c = env.sound_speed();
            assert!(c > 1400.0 && c < 1600.0, "{:?}: c = {c}", kind);
            env.multipath_config(0.0).validate().unwrap();
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn pool_is_warmest_and_shallow() {
        let pool = Environment::preset(EnvironmentKind::Pool);
        let dock = Environment::preset(EnvironmentKind::Dock);
        assert!(pool.water.temperature_c > dock.water.temperature_c);
        assert!(pool.water_depth_m < dock.water_depth_m);
        // Warmer water → faster sound.
        assert!(pool.sound_speed() > dock.sound_speed());
    }

    #[test]
    fn boathouse_is_noisiest() {
        let boathouse = Environment::preset(EnvironmentKind::Boathouse);
        let pool = Environment::preset(EnvironmentKind::Pool);
        assert!(boathouse.noise.spike_rate_hz > pool.noise.spike_rate_hz);
        assert!(boathouse.noise.ambient_rms > pool.noise.ambient_rms);
    }

    #[test]
    fn occlusion_is_passed_through() {
        let env = Environment::preset(EnvironmentKind::Dock);
        assert_eq!(env.multipath_config(25.0).direct_path_extra_loss_db, 25.0);
        assert_eq!(env.multipath_config(0.0).direct_path_extra_loss_db, 0.0);
    }

    #[test]
    fn presets_are_cloneable_and_comparable() {
        let env = Environment::preset(EnvironmentKind::Dock);
        let copy = env.clone();
        assert_eq!(env, copy);
        assert_ne!(Environment::preset(EnvironmentKind::Pool), env);
    }
}
