//! Propagation loss: geometric spreading and frequency-dependent absorption.
//!
//! Underwater acoustic energy is lost to two mechanisms that matter at the
//! paper's ranges (up to ~45 m) and frequencies (1–5 kHz):
//!
//! * **Geometric spreading** — between cylindrical (10·log₁₀ r) and
//!   spherical (20·log₁₀ r) spreading depending on how strongly the shallow
//!   water column ducts the energy.
//! * **Absorption** — Thorp's empirical formula gives the chemical
//!   relaxation / viscous absorption in dB per km as a function of
//!   frequency. At 5 kHz it is ≈ 0.3 dB/km, negligible at 45 m but included
//!   for completeness and used by the SNR-versus-distance experiments.

use serde::{Deserialize, Serialize};

/// Spreading model exponent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Spreading {
    /// Spherical spreading (deep, open water): 20·log₁₀(r).
    Spherical,
    /// Cylindrical spreading (strongly ducted shallow water): 10·log₁₀(r).
    Cylindrical,
    /// Practical intermediate: 15·log₁₀(r).
    Practical,
}

impl Spreading {
    /// The multiplier `k` in `k·log₁₀(r)`.
    pub fn factor(&self) -> f64 {
        match self {
            Spreading::Spherical => 20.0,
            Spreading::Cylindrical => 10.0,
            Spreading::Practical => 15.0,
        }
    }
}

/// Thorp absorption coefficient in dB/km at frequency `freq_hz`.
///
/// Thorp's formula (f in kHz):
/// `α = 0.11 f²/(1+f²) + 44 f²/(4100+f²) + 2.75e-4 f² + 0.003`.
pub fn thorp_absorption_db_per_km(freq_hz: f64) -> f64 {
    let f_khz = (freq_hz / 1000.0).max(0.0);
    let f2 = f_khz * f_khz;
    0.11 * f2 / (1.0 + f2) + 44.0 * f2 / (4100.0 + f2) + 2.75e-4 * f2 + 0.003
}

/// Total one-way transmission loss in dB over `range_m` metres at
/// `freq_hz`, using the given spreading model.
///
/// Ranges below 1 m are clamped to 1 m so the spreading term never goes
/// negative (the reference distance is 1 m).
pub fn transmission_loss_db(range_m: f64, freq_hz: f64, spreading: Spreading) -> f64 {
    let r = range_m.max(1.0);
    let spread = spreading.factor() * r.log10();
    let absorb = thorp_absorption_db_per_km(freq_hz) * (r / 1000.0);
    spread + absorb
}

/// Converts a loss in dB to a linear amplitude gain (≤ 1).
pub fn db_loss_to_amplitude(loss_db: f64) -> f64 {
    10f64.powf(-loss_db / 20.0)
}

/// Linear amplitude gain after propagating `range_m` at `freq_hz`.
pub fn propagation_amplitude(range_m: f64, freq_hz: f64, spreading: Spreading) -> f64 {
    db_loss_to_amplitude(transmission_loss_db(range_m, freq_hz, spreading))
}

/// Additional attenuation (in dB) applied to each boundary reflection.
/// Surface reflections lose little energy; bottom reflections lose more,
/// depending on the sediment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundaryLoss {
    /// Loss per surface bounce (dB).
    pub surface_db: f64,
    /// Loss per bottom bounce (dB).
    pub bottom_db: f64,
}

impl Default for BoundaryLoss {
    fn default() -> Self {
        // Calm surface ≈ 1 dB per bounce; muddy lake bottom ≈ 6 dB.
        Self {
            surface_db: 1.0,
            bottom_db: 6.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thorp_is_increasing_in_frequency() {
        let a1 = thorp_absorption_db_per_km(1000.0);
        let a5 = thorp_absorption_db_per_km(5000.0);
        let a50 = thorp_absorption_db_per_km(50_000.0);
        assert!(a1 < a5 && a5 < a50);
        // At 5 kHz absorption is well under 1 dB/km.
        assert!(a5 < 1.0, "a5 = {a5}");
        // At 50 kHz it is tens of dB/km.
        assert!(a50 > 10.0, "a50 = {a50}");
    }

    #[test]
    fn spreading_factors() {
        assert_eq!(Spreading::Spherical.factor(), 20.0);
        assert_eq!(Spreading::Cylindrical.factor(), 10.0);
        assert_eq!(Spreading::Practical.factor(), 15.0);
    }

    #[test]
    fn loss_monotone_in_range() {
        let l10 = transmission_loss_db(10.0, 3000.0, Spreading::Practical);
        let l20 = transmission_loss_db(20.0, 3000.0, Spreading::Practical);
        let l45 = transmission_loss_db(45.0, 3000.0, Spreading::Practical);
        assert!(l10 < l20 && l20 < l45);
        // Doubling the range under 15·log spreading adds ~4.5 dB.
        assert!((l20 - l10 - 4.5).abs() < 0.1);
    }

    #[test]
    fn sub_metre_range_is_clamped() {
        let l = transmission_loss_db(0.1, 3000.0, Spreading::Spherical);
        assert!(l >= 0.0);
        assert_eq!(l, transmission_loss_db(1.0, 3000.0, Spreading::Spherical));
    }

    #[test]
    fn amplitude_conversion() {
        assert!((db_loss_to_amplitude(0.0) - 1.0).abs() < 1e-12);
        assert!((db_loss_to_amplitude(20.0) - 0.1).abs() < 1e-12);
        assert!((db_loss_to_amplitude(40.0) - 0.01).abs() < 1e-12);
        // 35 m at practical spreading: amplitude noticeably below 1 but
        // still detectable.
        let a = propagation_amplitude(35.0, 3000.0, Spreading::Practical);
        assert!(a > 0.001 && a < 0.2, "a = {a}");
    }

    #[test]
    fn default_boundary_loss_orders() {
        let b = BoundaryLoss::default();
        assert!(b.surface_db < b.bottom_db);
        assert!(b.surface_db >= 0.0);
    }
}
