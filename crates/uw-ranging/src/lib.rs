//! # uw-ranging — pairwise acoustic distance estimation
//!
//! Implements §2.2 of the paper: estimating the exact arrival time of a
//! ZC-OFDM preamble at a device with two microphones, despite severe
//! underwater multipath, and converting arrival times to distances.
//!
//! The pipeline has three stages:
//!
//! 1. **Detection** ([`detect`]) — cross-correlate the microphone stream
//!    with the known preamble, then validate candidates with the 4-segment
//!    PN auto-correlation (threshold 0.35). This rejects the spiky noise
//!    that fools plain correlation detectors.
//! 2. **Channel estimation** ([`channel_est`]) — least-squares estimation of
//!    the channel impulse response from the four received OFDM symbols.
//! 3. **Direct-path identification** ([`los`]) — the dual-microphone joint
//!    search: the direct path is the earliest pair of peaks (one per
//!    microphone channel) whose sample offset respects the physical 16 cm
//!    microphone separation.
//!
//! [`ranging`] glues the stages into arrival-time and distance estimators,
//! and [`baselines`] implements the BeepBeep (chirp auto-correlation) and
//! CAT (FMCW) comparison schemes from Fig. 12.
//!
//! Correlation runs on the plan-based DSP layer: the preamble owns a
//! pooled [`uw_dsp::MatchedFilter`] and per-symbol [`uw_dsp::FftPlan`]s,
//! so parallel exchanges (as `uw-core` sessions issue) reuse precomputed
//! state. Received streams come from the channel simulator in
//! `uw-channel` (`uw_channel::propagate::ChannelSimulator`).
//!
//! The whole receive pipeline also runs on the on-device Q15 fixed-point
//! path: build the preamble with
//! [`RangingPreamble::new_with_path`](preamble::RangingPreamble::new_with_path)
//! and [`uw_dsp::NumericPath::Q15`], and detection correlation plus LS
//! channel estimation execute on `uw_dsp::fixed`'s block-floating-point
//! plans and Q15 matched filter (the PN auto-correlation *validation*
//! stage stays in `f64` — it is O(preamble) per candidate, not a hot
//! loop). The differential harness in `uw-dsp` bounds the Q15 path
//! against the `f64` oracle.
//!
//! ## Example
//!
//! ```
//! use uw_ranging::detect::{detect_preamble, DetectorConfig};
//! use uw_ranging::RangingPreamble;
//!
//! // Embed the paper's preamble 5000 samples into a quiet stream and
//! // detect it.
//! let preamble = RangingPreamble::default_paper().unwrap();
//! let mut stream = vec![0.0; 5_000];
//! stream.extend_from_slice(&preamble.waveform);
//! stream.extend(std::iter::repeat(0.0).take(2_000));
//! let detection = detect_preamble(&stream, &preamble, &DetectorConfig::default()).unwrap();
//! assert!((detection.start_sample as i64 - 5_000).unsigned_abs() < 4);
//! assert!(detection.validation > 0.9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod channel_est;
pub mod detect;
pub mod los;
pub mod preamble;
pub mod ranging;

pub use preamble::RangingPreamble;
pub use ranging::{ArrivalEstimate, RangingConfig};
pub use uw_dsp::NumericPath;

/// Errors produced by the ranging layer.
#[derive(Debug, Clone, PartialEq)]
pub enum RangingError {
    /// The preamble was not detected in the stream.
    NotDetected {
        /// Best validation score observed (for diagnostics).
        best_score: f64,
    },
    /// No direct path satisfying the dual-microphone constraint was found.
    NoDirectPath,
    /// Input buffers were too short or inconsistent.
    InvalidInput {
        /// Description of the problem.
        reason: String,
    },
    /// An underlying DSP error.
    Dsp(uw_dsp::DspError),
}

impl std::fmt::Display for RangingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RangingError::NotDetected { best_score } => {
                write!(
                    f,
                    "preamble not detected (best validation score {best_score:.3})"
                )
            }
            RangingError::NoDirectPath => {
                write!(f, "no direct path satisfying the dual-mic constraint")
            }
            RangingError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
            RangingError::Dsp(e) => write!(f, "dsp error: {e}"),
        }
    }
}

impl std::error::Error for RangingError {}

impl From<uw_dsp::DspError> for RangingError {
    fn from(e: uw_dsp::DspError) -> Self {
        RangingError::Dsp(e)
    }
}

/// Convenience result alias for the ranging layer.
pub type Result<T> = std::result::Result<T, RangingError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = RangingError::NotDetected { best_score: 0.12 };
        assert!(e.to_string().contains("0.12"));
        assert!(RangingError::NoDirectPath
            .to_string()
            .contains("direct path"));
        let e = RangingError::InvalidInput {
            reason: "empty stream".into(),
        };
        assert!(e.to_string().contains("empty stream"));
        let e: RangingError = uw_dsp::DspError::InvalidLength { reason: "x" }.into();
        assert!(e.to_string().contains("dsp error"));
    }
}
