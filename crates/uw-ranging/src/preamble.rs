//! The ranging preamble and its transmit-side representation.
//!
//! Wraps the OFDM preamble construction from `uw-dsp` together with the
//! quantities the receiver needs repeatedly (the base symbol spectrum for
//! LS channel estimation, PN signs, block boundaries), so they are computed
//! once per configuration instead of per packet.
//!
//! The preamble also owns the receive-side *execution state*: a
//! [`MatchedFilter`] whose template spectrum is computed once and reused by
//! every detection, and a [`PlanPool`] of symbol-length FFT plans shared by
//! the LS channel estimator. Both are internally pooled, so one
//! `RangingPreamble` can serve many concurrent ranging exchanges without
//! serialising their transforms.
//!
//! A preamble built with [`RangingPreamble::new_with_path`] and
//! [`NumericPath::Q15`] additionally owns the fixed-point execution state
//! (a [`Q15MatchedFilter`] and a pool of symbol-length
//! [`uw_dsp::FixedFftPlan`]s) and routes detection correlation and channel
//! estimation through the on-device Q15 path instead of the `f64` oracle.
//! With [`NumericPath::F32`] it owns the single-precision state
//! ([`F32MatchedFilter`], [`uw_dsp::F32FftPlan`] pool) instead — exactly
//! one path's execution state exists per preamble.

use crate::{RangingError, Result};
use uw_dsp::complex::Complex64;
use uw_dsp::fixed::{FixedFftPlan, FixedPlanPool, NumericPath, Q15MatchedFilter};
use uw_dsp::float32::{F32FftPlan, F32MatchedFilter, F32PlanPool};
use uw_dsp::ofdm::{base_symbol_spectrum, build_preamble, OfdmConfig};
use uw_dsp::plan::{FftPlan, PlanPool};
use uw_dsp::MatchedFilter;

/// A fully-built ranging preamble.
#[derive(Debug, Clone)]
pub struct RangingPreamble {
    /// The OFDM design parameters.
    pub config: OfdmConfig,
    /// Time-domain transmit waveform (PN-signed symbols with cyclic
    /// prefixes, edge-ramped).
    pub waveform: Vec<f64>,
    /// Frequency-domain values on the occupied bins of the base symbol
    /// (before PN signing) — the `X(k)` of the LS estimator.
    pub base_bins: Vec<Complex64>,
    /// First occupied FFT bin index.
    pub first_bin: usize,
    /// PN signs of the preamble symbols.
    pub pn_signs: Vec<f64>,
    /// Overlap-save correlator with the waveform's spectrum precomputed
    /// (present on the f64 path only — exactly one of `filter` /
    /// `q15_filter` exists per preamble).
    filter: Option<MatchedFilter>,
    /// Pooled FFT plans for the symbol length (Bluestein for 1920;
    /// present on the f64 path only).
    symbol_plans: Option<PlanPool>,
    /// Which numeric implementation receive-side processing runs on.
    numeric_path: NumericPath,
    /// Q15 overlap-save correlator (present on the Q15 path only).
    q15_filter: Option<Q15MatchedFilter>,
    /// Pooled fixed-point symbol-length plans (present on the Q15 path
    /// only).
    fixed_symbol_plans: Option<FixedPlanPool>,
    /// f32 overlap-save correlator (present on the F32 path only).
    f32_filter: Option<F32MatchedFilter>,
    /// Pooled single-precision symbol-length plans (present on the F32
    /// path only).
    f32_symbol_plans: Option<F32PlanPool>,
}

impl RangingPreamble {
    /// Builds the preamble for a configuration on the `f64` reference path.
    pub fn new(config: OfdmConfig) -> Result<Self> {
        Self::new_with_path(config, NumericPath::F64)
    }

    /// Builds the preamble for a configuration on the chosen numeric path.
    /// With [`NumericPath::Q15`], detection correlation and channel
    /// estimation run on the fixed-point DSP in [`uw_dsp::fixed`].
    pub fn new_with_path(config: OfdmConfig, numeric_path: NumericPath) -> Result<Self> {
        let spectrum = base_symbol_spectrum(&config)?;
        let mut waveform = build_preamble(&config)?;
        // A 2 ms raised-cosine up-ramp at the start avoids a speaker click.
        // It only touches the first symbol's cyclic prefix, so the channel
        // estimate — which operates on the symbol bodies — is unaffected.
        // The tail is left unramped: ramping the last symbol's samples would
        // distort the LS channel estimate and create spurious early taps.
        let ramp = ((0.002 * config.sample_rate) as usize).min(config.cyclic_prefix / 2);
        for (i, s) in waveform.iter_mut().take(ramp).enumerate() {
            *s *= 0.5 * (1.0 - (std::f64::consts::PI * i as f64 / ramp as f64).cos());
        }
        let pn_signs = config.pn_signs();
        // Exactly one path's execution state is built: a Q15 preamble
        // carries no (unused) f64 filter or plans and vice versa.
        let (filter, symbol_plans, q15_filter, fixed_symbol_plans, f32_filter, f32_symbol_plans) =
            match numeric_path {
                NumericPath::F64 => (
                    Some(MatchedFilter::new(&waveform)?),
                    Some(PlanPool::new(config.fft_len())?),
                    None,
                    None,
                    None,
                    None,
                ),
                NumericPath::Q15 => (
                    None,
                    None,
                    Some(Q15MatchedFilter::new(&waveform)?),
                    Some(FixedPlanPool::new(config.fft_len())?),
                    None,
                    None,
                ),
                NumericPath::F32 => (
                    None,
                    None,
                    None,
                    None,
                    Some(F32MatchedFilter::new(&waveform)?),
                    Some(F32PlanPool::new(config.fft_len())?),
                ),
            };
        Ok(Self {
            config,
            waveform,
            base_bins: spectrum.bins,
            first_bin: spectrum.first_bin,
            pn_signs,
            filter,
            symbol_plans,
            numeric_path,
            q15_filter,
            fixed_symbol_plans,
            f32_filter,
            f32_symbol_plans,
        })
    }

    /// Builds the preamble with the paper's default parameters
    /// (4 × 1920-sample ZC-OFDM symbols, 540-sample cyclic prefixes,
    /// 1–5 kHz).
    pub fn default_paper() -> Result<Self> {
        Self::new(OfdmConfig::default())
    }

    /// Paper-default preamble on the on-device Q15 fixed-point path.
    pub fn default_paper_q15() -> Result<Self> {
        Self::new_with_path(OfdmConfig::default(), NumericPath::Q15)
    }

    /// Paper-default preamble on the single-precision f32 path.
    pub fn default_paper_f32() -> Result<Self> {
        Self::new_with_path(OfdmConfig::default(), NumericPath::F32)
    }

    /// The numeric path receive-side processing runs on.
    pub fn numeric_path(&self) -> NumericPath {
        self.numeric_path
    }

    /// Length of one symbol block (cyclic prefix + symbol) in samples.
    pub fn block_len(&self) -> usize {
        self.config.symbol_len + self.config.cyclic_prefix
    }

    /// Total preamble length in samples.
    pub fn len(&self) -> usize {
        self.waveform.len()
    }

    /// Returns true when the preamble contains no samples (never the case
    /// for a successfully-built preamble).
    pub fn is_empty(&self) -> bool {
        self.waveform.is_empty()
    }

    /// Duration of the preamble in seconds.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / self.config.sample_rate
    }

    /// Start offset of the `i`-th OFDM symbol (excluding its cyclic prefix)
    /// within the preamble.
    pub fn symbol_start(&self, i: usize) -> usize {
        i * self.block_len() + self.config.cyclic_prefix
    }

    /// The precomputed f64 overlap-save correlator, when this preamble was
    /// built for the f64 path (`None` on a Q15 preamble, which owns a
    /// `Q15MatchedFilter` instead).
    pub fn matched_filter(&self) -> Option<&MatchedFilter> {
        self.filter.as_ref()
    }

    /// Normalised cross-correlation of `stream` against the preamble
    /// waveform through the precomputed matched filter (identical output to
    /// `uw_dsp::correlation::xcorr_normalized`, computed in streaming
    /// blocks against the cached template spectrum). On a
    /// [`NumericPath::Q15`] preamble this runs the fixed-point correlator;
    /// its peak positions agree with the `f64` path to within ±1 sample
    /// (bounded by `uw-dsp`'s differential test suite).
    pub fn correlate_normalized(&self, stream: &[f64]) -> Result<Vec<f64>> {
        match (&self.q15_filter, &self.f32_filter, &self.filter) {
            (Some(q15), _, _) => Ok(q15.correlate_normalized(stream)?),
            (None, Some(f32f), _) => Ok(f32f.correlate_normalized(stream)?),
            (None, None, Some(f)) => Ok(f.correlate_normalized(stream)?),
            (None, None, None) => unreachable!("one numeric path's filter always exists"),
        }
    }

    /// As [`Self::correlate_normalized`] but reusing a caller-provided
    /// output buffer (allocation-free in steady state).
    pub fn correlate_normalized_into(&self, stream: &[f64], out: &mut Vec<f64>) -> Result<()> {
        match (&self.q15_filter, &self.f32_filter, &self.filter) {
            (Some(q15), _, _) => Ok(q15.correlate_normalized_into(stream, out)?),
            (None, Some(f32f), _) => Ok(f32f.correlate_normalized_into(stream, out)?),
            (None, None, Some(f)) => Ok(f.correlate_normalized_into(stream, out)?),
            (None, None, None) => unreachable!("one numeric path's filter always exists"),
        }
    }

    /// Batched normalised correlation of N links' streams through one
    /// filter checkout on whichever numeric path this preamble was built
    /// for (see `uw_dsp::MatchedFilter::correlate_normalized_batch`). Each
    /// output is identical to the per-link [`Self::correlate_normalized`]
    /// call. This is the entry point serving-shard workers batch through.
    pub fn correlate_normalized_batch(&self, streams: &[&[f64]]) -> Result<Vec<Vec<f64>>> {
        match (&self.q15_filter, &self.f32_filter, &self.filter) {
            (Some(q15), _, _) => Ok(q15.correlate_normalized_batch(streams)?),
            (None, Some(f32f), _) => Ok(f32f.correlate_normalized_batch(streams)?),
            (None, None, Some(f)) => Ok(f.correlate_normalized_batch(streams)?),
            (None, None, None) => unreachable!("one numeric path's filter always exists"),
        }
    }

    /// Runs `f` with a checked-out symbol-length FFT plan (1920-point
    /// Bluestein for the paper's parameters). Concurrent callers receive
    /// distinct plans from the pool instead of serialising. Fails on a
    /// preamble built for the Q15 path, which carries no f64 plans — use
    /// [`Self::with_fixed_symbol_plan`] there.
    pub fn with_symbol_plan<R>(&self, f: impl FnOnce(&mut FftPlan) -> R) -> Result<R> {
        match &self.symbol_plans {
            Some(pool) => Ok(pool.with(f)),
            None => Err(RangingError::InvalidInput {
                reason: "preamble was built for the Q15 path; no f64 plans exist".into(),
            }),
        }
    }

    /// Runs `f` with a checked-out **fixed-point** symbol-length FFT plan.
    /// Fails on a preamble built for the `f64` path, which carries no
    /// fixed-point state.
    pub fn with_fixed_symbol_plan<R>(&self, f: impl FnOnce(&mut FixedFftPlan) -> R) -> Result<R> {
        match &self.fixed_symbol_plans {
            Some(pool) => Ok(pool.with(f)),
            None => Err(RangingError::InvalidInput {
                reason: "preamble was built for the f64 path; no fixed-point plans exist".into(),
            }),
        }
    }

    /// Runs `f` with a checked-out **single-precision** symbol-length FFT
    /// plan. Fails on a preamble built for another path, which carries no
    /// f32 state.
    pub fn with_f32_symbol_plan<R>(&self, f: impl FnOnce(&mut F32FftPlan) -> R) -> Result<R> {
        match &self.f32_symbol_plans {
            Some(pool) => Ok(pool.with(f)),
            None => Err(RangingError::InvalidInput {
                reason: "preamble was not built for the f32 path; no f32 plans exist".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preamble_matches_paper_dimensions() {
        let p = RangingPreamble::default_paper().unwrap();
        assert_eq!(p.len(), 4 * (1920 + 540));
        assert_eq!(p.block_len(), 2460);
        assert!(!p.is_empty());
        assert_eq!(p.pn_signs, vec![1.0, 1.0, -1.0, 1.0]);
        assert!(p.duration_s() > 0.2 && p.duration_s() < 0.25);
        assert!(!p.base_bins.is_empty());
        assert!(p.first_bin > 0);
    }

    #[test]
    fn symbol_start_offsets() {
        let p = RangingPreamble::default_paper().unwrap();
        assert_eq!(p.symbol_start(0), 540);
        assert_eq!(p.symbol_start(1), 2460 + 540);
        assert_eq!(p.symbol_start(3), 3 * 2460 + 540);
        assert!(p.symbol_start(3) + p.config.symbol_len <= p.len());
    }

    #[test]
    fn waveform_start_is_ramped() {
        let p = RangingPreamble::default_paper().unwrap();
        // The up-ramp starts from silence and only spans part of the first
        // cyclic prefix.
        assert!(p.waveform[0].abs() < 1e-9);
        let ramp = (0.002 * p.config.sample_rate) as usize;
        assert!(ramp < p.config.cyclic_prefix);
        // Peak is still ~1 in the interior.
        let peak = p.waveform.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
        assert!(peak > 0.9);
        // Beyond the ramp the waveform matches the unramped construction.
        let raw = uw_dsp::ofdm::build_preamble(&p.config).unwrap();
        for (w, r) in p.waveform.iter().zip(raw.iter()).skip(ramp) {
            assert!((w - r).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = OfdmConfig {
            n_symbols: 1,
            ..OfdmConfig::default()
        };
        assert!(RangingPreamble::new(config).is_err());
    }
}
