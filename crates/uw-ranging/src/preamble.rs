//! The ranging preamble and its transmit-side representation.
//!
//! Wraps the OFDM preamble construction from `uw-dsp` together with the
//! quantities the receiver needs repeatedly (the base symbol spectrum for
//! LS channel estimation, PN signs, block boundaries), so they are computed
//! once per configuration instead of per packet.

use crate::Result;
use uw_dsp::complex::Complex64;
use uw_dsp::ofdm::{base_symbol_spectrum, build_preamble, OfdmConfig};

/// A fully-built ranging preamble.
#[derive(Debug, Clone)]
pub struct RangingPreamble {
    /// The OFDM design parameters.
    pub config: OfdmConfig,
    /// Time-domain transmit waveform (PN-signed symbols with cyclic
    /// prefixes, edge-ramped).
    pub waveform: Vec<f64>,
    /// Frequency-domain values on the occupied bins of the base symbol
    /// (before PN signing) — the `X(k)` of the LS estimator.
    pub base_bins: Vec<Complex64>,
    /// First occupied FFT bin index.
    pub first_bin: usize,
    /// PN signs of the preamble symbols.
    pub pn_signs: Vec<f64>,
}

impl RangingPreamble {
    /// Builds the preamble for a configuration.
    pub fn new(config: OfdmConfig) -> Result<Self> {
        let spectrum = base_symbol_spectrum(&config)?;
        let mut waveform = build_preamble(&config)?;
        // A 2 ms raised-cosine up-ramp at the start avoids a speaker click.
        // It only touches the first symbol's cyclic prefix, so the channel
        // estimate — which operates on the symbol bodies — is unaffected.
        // The tail is left unramped: ramping the last symbol's samples would
        // distort the LS channel estimate and create spurious early taps.
        let ramp = ((0.002 * config.sample_rate) as usize).min(config.cyclic_prefix / 2);
        for (i, s) in waveform.iter_mut().take(ramp).enumerate() {
            *s *= 0.5 * (1.0 - (std::f64::consts::PI * i as f64 / ramp as f64).cos());
        }
        let pn_signs = config.pn_signs();
        Ok(Self { config, waveform, base_bins: spectrum.bins, first_bin: spectrum.first_bin, pn_signs })
    }

    /// Builds the preamble with the paper's default parameters
    /// (4 × 1920-sample ZC-OFDM symbols, 540-sample cyclic prefixes,
    /// 1–5 kHz).
    pub fn default_paper() -> Result<Self> {
        Self::new(OfdmConfig::default())
    }

    /// Length of one symbol block (cyclic prefix + symbol) in samples.
    pub fn block_len(&self) -> usize {
        self.config.symbol_len + self.config.cyclic_prefix
    }

    /// Total preamble length in samples.
    pub fn len(&self) -> usize {
        self.waveform.len()
    }

    /// Returns true when the preamble contains no samples (never the case
    /// for a successfully-built preamble).
    pub fn is_empty(&self) -> bool {
        self.waveform.is_empty()
    }

    /// Duration of the preamble in seconds.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / self.config.sample_rate
    }

    /// Start offset of the `i`-th OFDM symbol (excluding its cyclic prefix)
    /// within the preamble.
    pub fn symbol_start(&self, i: usize) -> usize {
        i * self.block_len() + self.config.cyclic_prefix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preamble_matches_paper_dimensions() {
        let p = RangingPreamble::default_paper().unwrap();
        assert_eq!(p.len(), 4 * (1920 + 540));
        assert_eq!(p.block_len(), 2460);
        assert!(!p.is_empty());
        assert_eq!(p.pn_signs, vec![1.0, 1.0, -1.0, 1.0]);
        assert!(p.duration_s() > 0.2 && p.duration_s() < 0.25);
        assert!(!p.base_bins.is_empty());
        assert!(p.first_bin > 0);
    }

    #[test]
    fn symbol_start_offsets() {
        let p = RangingPreamble::default_paper().unwrap();
        assert_eq!(p.symbol_start(0), 540);
        assert_eq!(p.symbol_start(1), 2460 + 540);
        assert_eq!(p.symbol_start(3), 3 * 2460 + 540);
        assert!(p.symbol_start(3) + p.config.symbol_len <= p.len());
    }

    #[test]
    fn waveform_start_is_ramped() {
        let p = RangingPreamble::default_paper().unwrap();
        // The up-ramp starts from silence and only spans part of the first
        // cyclic prefix.
        assert!(p.waveform[0].abs() < 1e-9);
        let ramp = (0.002 * p.config.sample_rate) as usize;
        assert!(ramp < p.config.cyclic_prefix);
        // Peak is still ~1 in the interior.
        let peak = p.waveform.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
        assert!(peak > 0.9);
        // Beyond the ramp the waveform matches the unramped construction.
        let raw = uw_dsp::ofdm::build_preamble(&p.config).unwrap();
        for i in ramp..p.len() {
            assert!((p.waveform[i] - raw[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = OfdmConfig { n_symbols: 1, ..OfdmConfig::default() };
        assert!(RangingPreamble::new(config).is_err());
    }
}
