//! The ranging preamble and its transmit-side representation.
//!
//! Wraps the OFDM preamble construction from `uw-dsp` together with the
//! quantities the receiver needs repeatedly (the base symbol spectrum for
//! LS channel estimation, PN signs, block boundaries), so they are computed
//! once per configuration instead of per packet.
//!
//! The preamble also owns the receive-side *execution state*: a
//! [`MatchedFilter`] whose template spectrum is computed once and reused by
//! every detection, and a [`PlanPool`] of symbol-length FFT plans shared by
//! the LS channel estimator. Both are internally pooled, so one
//! `RangingPreamble` can serve many concurrent ranging exchanges without
//! serialising their transforms.

use crate::Result;
use uw_dsp::complex::Complex64;
use uw_dsp::ofdm::{base_symbol_spectrum, build_preamble, OfdmConfig};
use uw_dsp::plan::{FftPlan, PlanPool};
use uw_dsp::MatchedFilter;

/// A fully-built ranging preamble.
#[derive(Debug, Clone)]
pub struct RangingPreamble {
    /// The OFDM design parameters.
    pub config: OfdmConfig,
    /// Time-domain transmit waveform (PN-signed symbols with cyclic
    /// prefixes, edge-ramped).
    pub waveform: Vec<f64>,
    /// Frequency-domain values on the occupied bins of the base symbol
    /// (before PN signing) — the `X(k)` of the LS estimator.
    pub base_bins: Vec<Complex64>,
    /// First occupied FFT bin index.
    pub first_bin: usize,
    /// PN signs of the preamble symbols.
    pub pn_signs: Vec<f64>,
    /// Overlap-save correlator with the waveform's spectrum precomputed.
    filter: MatchedFilter,
    /// Pooled FFT plans for the symbol length (Bluestein for 1920).
    symbol_plans: PlanPool,
}

impl RangingPreamble {
    /// Builds the preamble for a configuration.
    pub fn new(config: OfdmConfig) -> Result<Self> {
        let spectrum = base_symbol_spectrum(&config)?;
        let mut waveform = build_preamble(&config)?;
        // A 2 ms raised-cosine up-ramp at the start avoids a speaker click.
        // It only touches the first symbol's cyclic prefix, so the channel
        // estimate — which operates on the symbol bodies — is unaffected.
        // The tail is left unramped: ramping the last symbol's samples would
        // distort the LS channel estimate and create spurious early taps.
        let ramp = ((0.002 * config.sample_rate) as usize).min(config.cyclic_prefix / 2);
        for (i, s) in waveform.iter_mut().take(ramp).enumerate() {
            *s *= 0.5 * (1.0 - (std::f64::consts::PI * i as f64 / ramp as f64).cos());
        }
        let pn_signs = config.pn_signs();
        let filter = MatchedFilter::new(&waveform)?;
        let symbol_plans = PlanPool::new(config.fft_len())?;
        Ok(Self {
            config,
            waveform,
            base_bins: spectrum.bins,
            first_bin: spectrum.first_bin,
            pn_signs,
            filter,
            symbol_plans,
        })
    }

    /// Builds the preamble with the paper's default parameters
    /// (4 × 1920-sample ZC-OFDM symbols, 540-sample cyclic prefixes,
    /// 1–5 kHz).
    pub fn default_paper() -> Result<Self> {
        Self::new(OfdmConfig::default())
    }

    /// Length of one symbol block (cyclic prefix + symbol) in samples.
    pub fn block_len(&self) -> usize {
        self.config.symbol_len + self.config.cyclic_prefix
    }

    /// Total preamble length in samples.
    pub fn len(&self) -> usize {
        self.waveform.len()
    }

    /// Returns true when the preamble contains no samples (never the case
    /// for a successfully-built preamble).
    pub fn is_empty(&self) -> bool {
        self.waveform.is_empty()
    }

    /// Duration of the preamble in seconds.
    pub fn duration_s(&self) -> f64 {
        self.len() as f64 / self.config.sample_rate
    }

    /// Start offset of the `i`-th OFDM symbol (excluding its cyclic prefix)
    /// within the preamble.
    pub fn symbol_start(&self, i: usize) -> usize {
        i * self.block_len() + self.config.cyclic_prefix
    }

    /// The precomputed overlap-save correlator for this preamble.
    pub fn matched_filter(&self) -> &MatchedFilter {
        &self.filter
    }

    /// Normalised cross-correlation of `stream` against the preamble
    /// waveform through the precomputed matched filter (identical output to
    /// `uw_dsp::correlation::xcorr_normalized`, computed in streaming
    /// blocks against the cached template spectrum).
    pub fn correlate_normalized(&self, stream: &[f64]) -> Result<Vec<f64>> {
        Ok(self.filter.correlate_normalized(stream)?)
    }

    /// As [`Self::correlate_normalized`] but reusing a caller-provided
    /// output buffer (allocation-free in steady state).
    pub fn correlate_normalized_into(&self, stream: &[f64], out: &mut Vec<f64>) -> Result<()> {
        Ok(self.filter.correlate_normalized_into(stream, out)?)
    }

    /// Runs `f` with a checked-out symbol-length FFT plan (1920-point
    /// Bluestein for the paper's parameters). Concurrent callers receive
    /// distinct plans from the pool instead of serialising.
    pub fn with_symbol_plan<R>(&self, f: impl FnOnce(&mut FftPlan) -> R) -> R {
        self.symbol_plans.with(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_preamble_matches_paper_dimensions() {
        let p = RangingPreamble::default_paper().unwrap();
        assert_eq!(p.len(), 4 * (1920 + 540));
        assert_eq!(p.block_len(), 2460);
        assert!(!p.is_empty());
        assert_eq!(p.pn_signs, vec![1.0, 1.0, -1.0, 1.0]);
        assert!(p.duration_s() > 0.2 && p.duration_s() < 0.25);
        assert!(!p.base_bins.is_empty());
        assert!(p.first_bin > 0);
    }

    #[test]
    fn symbol_start_offsets() {
        let p = RangingPreamble::default_paper().unwrap();
        assert_eq!(p.symbol_start(0), 540);
        assert_eq!(p.symbol_start(1), 2460 + 540);
        assert_eq!(p.symbol_start(3), 3 * 2460 + 540);
        assert!(p.symbol_start(3) + p.config.symbol_len <= p.len());
    }

    #[test]
    fn waveform_start_is_ramped() {
        let p = RangingPreamble::default_paper().unwrap();
        // The up-ramp starts from silence and only spans part of the first
        // cyclic prefix.
        assert!(p.waveform[0].abs() < 1e-9);
        let ramp = (0.002 * p.config.sample_rate) as usize;
        assert!(ramp < p.config.cyclic_prefix);
        // Peak is still ~1 in the interior.
        let peak = p.waveform.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
        assert!(peak > 0.9);
        // Beyond the ramp the waveform matches the unramped construction.
        let raw = uw_dsp::ofdm::build_preamble(&p.config).unwrap();
        for (w, r) in p.waveform.iter().zip(raw.iter()).skip(ramp) {
            assert!((w - r).abs() < 1e-12);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let config = OfdmConfig {
            n_symbols: 1,
            ..OfdmConfig::default()
        };
        assert!(RangingPreamble::new(config).is_err());
    }
}
