//! Least-squares channel estimation (§2.2.1).
//!
//! After coarse synchronisation the receiver segments the four received OFDM
//! symbols out of the microphone stream, FFTs them, and estimates the
//! channel on each occupied bin as
//!
//! ```text
//! Ĥ(k) = 1/4 · Σᵢ Yᵢ(k) / (PNᵢ · X(k))
//! ```
//!
//! where `X(k)` are the transmitted ZC bin values and `PNᵢ` the ±1 symbol
//! signs. The time-domain impulse response (the "channel profile") is the
//! inverse FFT of `Ĥ`, and its magnitude is what the direct-path search in
//! [`crate::los`] operates on. MUSIC-style super-resolution estimators are
//! deliberately avoided — the paper notes they are both fragile in the
//! extremely dense underwater channel and too expensive for a phone.

use crate::preamble::RangingPreamble;
use crate::{RangingError, Result};
use uw_dsp::complex::Complex64;
use uw_dsp::fixed::{ComplexQ15, NumericPath, Q15};
use uw_dsp::float32::Complex32;

/// A channel estimate derived from one received preamble.
#[derive(Debug, Clone)]
pub struct ChannelEstimate {
    /// Complex channel gain on each occupied OFDM bin.
    pub freq_response: Vec<Complex64>,
    /// Magnitude of the time-domain impulse response, length
    /// `preamble.config.symbol_len` taps (one tap per sample period).
    pub impulse_magnitude: Vec<f64>,
}

/// Number of trailing taps used to estimate the channel noise floor (the
/// paper averages the last 100 taps).
pub const NOISE_TAIL_TAPS: usize = 100;

/// Estimates the channel from `stream`, given that the preamble is assumed
/// to start at sample `start` (coarse synchronisation, possibly shifted
/// earlier by a backoff so the true direct path lands at a positive tap).
pub fn ls_channel_estimate(
    stream: &[f64],
    preamble: &RangingPreamble,
    start: usize,
) -> Result<ChannelEstimate> {
    let block = preamble.block_len();
    let n_symbols = preamble.pn_signs.len();
    let needed = start
        + (n_symbols - 1) * block
        + preamble.config.cyclic_prefix
        + preamble.config.symbol_len;
    if needed > stream.len() {
        return Err(RangingError::InvalidInput {
            reason: format!(
                "stream of {} samples too short for channel estimation starting at {start} (need {needed})",
                stream.len()
            ),
        });
    }

    match preamble.numeric_path() {
        NumericPath::Q15 => return ls_channel_estimate_q15(stream, preamble, start),
        NumericPath::F32 => return ls_channel_estimate_f32(stream, preamble, start),
        NumericPath::F64 => {}
    }

    let n_fft = preamble.config.fft_len();
    let bins = preamble.config.occupied_bins();
    let n_bins = preamble.base_bins.len();

    // All five transforms (4 symbol FFTs + 1 inverse) run through the
    // preamble's pooled symbol-length plan: the Bluestein chirp state for
    // the 1920-point transform is built once per preamble, and one scratch
    // buffer is reused across the symbols.
    preamble.with_symbol_plan(|plan| {
        let mut buf = vec![Complex64::ZERO; n_fft];

        // Accumulate Y_i(k) / (PN_i · X(k)) over the symbols.
        let mut acc = vec![Complex64::ZERO; n_bins];
        for (i, &sign) in preamble.pn_signs.iter().enumerate() {
            let sym_start = start + i * block + preamble.config.cyclic_prefix;
            for (b, &s) in buf
                .iter_mut()
                .zip(stream[sym_start..sym_start + preamble.config.symbol_len].iter())
            {
                *b = Complex64::from_re(s);
            }
            for b in buf[preamble.config.symbol_len.min(n_fft)..].iter_mut() {
                *b = Complex64::ZERO;
            }
            plan.process_forward(&mut buf)?;
            for (j, k) in bins.clone().enumerate() {
                let x = preamble.base_bins[j] * sign;
                // X(k) is a unit-magnitude ZC value, so dividing is stable.
                let inv = x.inv().unwrap_or(Complex64::ZERO);
                acc[j] += buf[k] * inv;
            }
        }
        let freq_response: Vec<Complex64> = acc.into_iter().map(|c| c / n_symbols as f64).collect();

        // Time-domain impulse response: place Ĥ on the occupied bins of a
        // full conjugate-symmetric spectrum and inverse-FFT.
        for b in buf.iter_mut() {
            *b = Complex64::ZERO;
        }
        for (j, k) in bins.clone().enumerate() {
            buf[k] = freq_response[j];
            buf[n_fft - k] = freq_response[j].conj();
        }
        plan.process_inverse(&mut buf)?;
        let impulse_magnitude: Vec<f64> = buf
            .iter()
            .take(preamble.config.symbol_len)
            .map(|c| c.abs())
            .collect();

        Ok(ChannelEstimate {
            freq_response,
            impulse_magnitude,
        })
    })?
}

/// The fixed-point variant of [`ls_channel_estimate`]: every symbol FFT and
/// the impulse-response inverse FFT run on the Q15 block-floating-point
/// plan. Symbols are quantised by their own peak (capture-side AGC), bin
/// equalisation multiplies by the conjugate ZC value (the exact inverse,
/// since `|X(k)| = 1`), and the per-symbol block scales are reconciled in
/// floating point only at the accumulation boundary — the same place a
/// phone implementation would align block exponents.
fn ls_channel_estimate_q15(
    stream: &[f64],
    preamble: &RangingPreamble,
    start: usize,
) -> Result<ChannelEstimate> {
    let n_fft = preamble.config.fft_len();
    let bins = preamble.config.occupied_bins();
    let n_bins = preamble.base_bins.len();
    let block = preamble.block_len();
    let n_symbols = preamble.pn_signs.len();

    preamble.with_fixed_symbol_plan(|plan| -> Result<ChannelEstimate> {
        let mut buf = vec![ComplexQ15::ZERO; n_fft];
        let mut acc = vec![Complex64::ZERO; n_bins];
        for (i, &sign) in preamble.pn_signs.iter().enumerate() {
            let sym_start = start + i * block + preamble.config.cyclic_prefix;
            let window = &stream[sym_start..sym_start + preamble.config.symbol_len];
            let peak = window.iter().fold(0.0f64, |m, &s| m.max(s.abs()));
            if peak == 0.0 {
                continue; // an all-zero symbol contributes nothing
            }
            for (b, &s) in buf.iter_mut().zip(window.iter()) {
                *b = ComplexQ15::new(Q15::from_f64(s / peak), Q15::ZERO);
            }
            for b in buf[preamble.config.symbol_len.min(n_fft)..].iter_mut() {
                *b = ComplexQ15::ZERO;
            }
            let scale = plan.process_forward(&mut buf)? * peak;
            for (j, k) in bins.clone().enumerate() {
                // X(k) is a unit-magnitude ZC value: its exact inverse is
                // the conjugate, quantised once per bin.
                let x_inv = ComplexQ15::from_complex64((preamble.base_bins[j] * sign).conj());
                let y = buf[k].saturating_mul(x_inv);
                acc[j] += y.to_complex64() * scale;
            }
        }
        let freq_response: Vec<Complex64> = acc.into_iter().map(|c| c / n_symbols as f64).collect();

        // Time-domain impulse response through the fixed inverse transform:
        // quantise the conjugate-symmetric spectrum by its peak and let the
        // BFP scale carry the magnitude back out.
        let mut spec = vec![Complex64::ZERO; n_fft];
        for (j, k) in bins.clone().enumerate() {
            spec[k] = freq_response[j];
            spec[n_fft - k] = freq_response[j].conj();
        }
        let peak = spec
            .iter()
            .map(|c| c.re.abs().max(c.im.abs()))
            .fold(0.0f64, f64::max);
        let quant = if peak > 0.0 { peak } else { 1.0 };
        for (b, s) in buf.iter_mut().zip(spec.iter()) {
            *b = ComplexQ15::from_complex64(*s / quant);
        }
        let scale = plan.process_inverse(&mut buf)? * quant;
        let impulse_magnitude: Vec<f64> = buf
            .iter()
            .take(preamble.config.symbol_len)
            .map(|c| c.to_complex64().abs() * scale)
            .collect();

        Ok(ChannelEstimate {
            freq_response,
            impulse_magnitude,
        })
    })?
}

/// The single-precision variant of [`ls_channel_estimate`]: every symbol
/// FFT and the impulse-response inverse FFT run on the f32 plan through the
/// `[f32; 8]` lane kernels. Symbols are cast to f32 once at the load
/// boundary; bin equalisation multiplies by the conjugate ZC value (the
/// exact inverse, since `|X(k)| = 1`); the accumulation across symbols is
/// widened to f64 so four symbols' worth of rounding does not stack.
fn ls_channel_estimate_f32(
    stream: &[f64],
    preamble: &RangingPreamble,
    start: usize,
) -> Result<ChannelEstimate> {
    let n_fft = preamble.config.fft_len();
    let bins = preamble.config.occupied_bins();
    let n_bins = preamble.base_bins.len();
    let block = preamble.block_len();
    let n_symbols = preamble.pn_signs.len();

    preamble.with_f32_symbol_plan(|plan| -> Result<ChannelEstimate> {
        let mut buf = vec![Complex32::ZERO; n_fft];
        let mut acc = vec![Complex64::ZERO; n_bins];
        for (i, &sign) in preamble.pn_signs.iter().enumerate() {
            let sym_start = start + i * block + preamble.config.cyclic_prefix;
            for (b, &s) in buf
                .iter_mut()
                .zip(stream[sym_start..sym_start + preamble.config.symbol_len].iter())
            {
                *b = Complex32::from_re(s as f32);
            }
            for b in buf[preamble.config.symbol_len.min(n_fft)..].iter_mut() {
                *b = Complex32::ZERO;
            }
            plan.process_forward(&mut buf)?;
            for (j, k) in bins.clone().enumerate() {
                // X(k) is a unit-magnitude ZC value: its exact inverse is
                // the conjugate, rounded to f32 once per bin.
                let x_inv = Complex32::from_complex64((preamble.base_bins[j] * sign).conj());
                acc[j] += (buf[k] * x_inv).to_complex64();
            }
        }
        let freq_response: Vec<Complex64> = acc.into_iter().map(|c| c / n_symbols as f64).collect();

        // Time-domain impulse response: conjugate-symmetric spectrum,
        // inverse FFT on the f32 plan.
        for b in buf.iter_mut() {
            *b = Complex32::ZERO;
        }
        for (j, k) in bins.clone().enumerate() {
            buf[k] = Complex32::from_complex64(freq_response[j]);
            buf[n_fft - k] = Complex32::from_complex64(freq_response[j].conj());
        }
        plan.process_inverse(&mut buf)?;
        let impulse_magnitude: Vec<f64> = buf
            .iter()
            .take(preamble.config.symbol_len)
            .map(|c| c.abs() as f64)
            .collect();

        Ok(ChannelEstimate {
            freq_response,
            impulse_magnitude,
        })
    })?
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use uw_dsp::peaks::normalize_profile;

    /// Builds a stream containing the preamble convolved with a sparse
    /// channel (given as (delay_samples, gain) taps) plus noise.
    fn synth_stream(
        preamble: &RangingPreamble,
        start: usize,
        taps: &[(usize, f64)],
        noise_amp: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let total = start + preamble.len() + 4000;
        let mut stream: Vec<f64> = (0..total)
            .map(|_| noise_amp * rng.gen_range(-1.0..1.0))
            .collect();
        for &(delay, gain) in taps {
            for (i, &p) in preamble.waveform.iter().enumerate() {
                let idx = start + delay + i;
                if idx < total {
                    stream[idx] += gain * p;
                }
            }
        }
        stream
    }

    #[test]
    fn single_path_channel_peaks_at_the_delay() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = synth_stream(&p, 1000, &[(30, 1.0)], 0.005, 1);
        let est = ls_channel_estimate(&stream, &p, 1000).unwrap();
        assert_eq!(est.impulse_magnitude.len(), p.config.symbol_len);
        let norm = normalize_profile(&est.impulse_magnitude);
        let (peak_idx, _) = norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((peak_idx as i64 - 30).abs() <= 1, "peak at {peak_idx}");
    }

    #[test]
    fn two_path_channel_shows_both_taps() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = synth_stream(&p, 500, &[(20, 0.8), (90, 1.0)], 0.005, 2);
        let est = ls_channel_estimate(&stream, &p, 500).unwrap();
        let norm = normalize_profile(&est.impulse_magnitude);
        assert!(norm[20] > 0.5, "direct tap {}", norm[20]);
        assert!(norm[90] > 0.8, "reflection tap {}", norm[90]);
        // Elsewhere the profile is low.
        assert!(norm[400] < 0.2);
    }

    #[test]
    fn noise_floor_is_low_in_clean_channel() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = synth_stream(&p, 200, &[(10, 1.0)], 0.01, 3);
        let est = ls_channel_estimate(&stream, &p, 200).unwrap();
        let norm = normalize_profile(&est.impulse_magnitude);
        let tail_mean: f64 =
            norm[norm.len() - NOISE_TAIL_TAPS..].iter().sum::<f64>() / NOISE_TAIL_TAPS as f64;
        assert!(tail_mean < 0.1, "tail mean {tail_mean}");
    }

    #[test]
    fn frequency_response_is_flat_for_pure_delay() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = synth_stream(&p, 300, &[(0, 1.0)], 0.001, 4);
        let est = ls_channel_estimate(&stream, &p, 300).unwrap();
        let mags: Vec<f64> = est.freq_response.iter().map(|c| c.abs()).collect();
        let mean = mags.iter().sum::<f64>() / mags.len() as f64;
        // Truncating the IFFT output to the 1920-sample symbol (the FFT
        // length is 2048) plus the transmit edge ramp introduces some ripple;
        // the response should still stay within a factor of ~2 of the mean.
        for (i, m) in mags.iter().enumerate() {
            assert!(
                *m > 0.4 * mean && *m < 2.0 * mean,
                "bin {i}: {m} vs mean {mean}"
            );
        }
    }

    #[test]
    fn q15_channel_estimate_matches_the_f64_profile_shape() {
        let p = RangingPreamble::default_paper().unwrap();
        let q = RangingPreamble::default_paper_q15().unwrap();
        let stream = synth_stream(&p, 800, &[(25, 1.0), (110, 0.6)], 0.01, 5);
        let est_f64 = ls_channel_estimate(&stream, &p, 800).unwrap();
        let est_q15 = ls_channel_estimate(&stream, &q, 800).unwrap();
        assert_eq!(est_q15.impulse_magnitude.len(), p.config.symbol_len);
        let nf = normalize_profile(&est_f64.impulse_magnitude);
        let nq = normalize_profile(&est_q15.impulse_magnitude);
        // The dominant taps land in the same places with comparable height.
        for tap in [25usize, 110] {
            assert!(
                (nf[tap] - nq[tap]).abs() < 0.1,
                "tap {tap}: f64 {} vs q15 {}",
                nf[tap],
                nq[tap]
            );
        }
        // The fixed-point noise floor stays small relative to the peak.
        let tail: f64 =
            nq[nq.len() - NOISE_TAIL_TAPS..].iter().sum::<f64>() / NOISE_TAIL_TAPS as f64;
        assert!(tail < 0.1, "q15 tail mean {tail}");
        // The f64 preamble has no fixed-point plans.
        assert!(p.with_fixed_symbol_plan(|_| ()).is_err());
    }

    #[test]
    fn f32_channel_estimate_matches_the_f64_profile_shape() {
        let p = RangingPreamble::default_paper().unwrap();
        let f = RangingPreamble::default_paper_f32().unwrap();
        let stream = synth_stream(&p, 800, &[(25, 1.0), (110, 0.6)], 0.01, 5);
        let est_f64 = ls_channel_estimate(&stream, &p, 800).unwrap();
        let est_f32 = ls_channel_estimate(&stream, &f, 800).unwrap();
        assert_eq!(est_f32.impulse_magnitude.len(), p.config.symbol_len);
        let nf = normalize_profile(&est_f64.impulse_magnitude);
        let ns = normalize_profile(&est_f32.impulse_magnitude);
        // Single precision tracks the oracle far tighter than Q15 does.
        for (i, (a, b)) in nf.iter().zip(ns.iter()).enumerate() {
            assert!((a - b).abs() < 1e-3, "tap {i}: f64 {a} vs f32 {b}");
        }
        // The f64 preamble has no f32 plans and vice versa.
        assert!(p.with_f32_symbol_plan(|_| ()).is_err());
        assert!(f.with_symbol_plan(|_| ()).is_err());
        assert!(f.with_fixed_symbol_plan(|_| ()).is_err());
    }

    #[test]
    fn too_short_stream_is_rejected() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = vec![0.0; p.len() - 1];
        assert!(ls_channel_estimate(&stream, &p, 0).is_err());
        let stream = vec![0.0; p.len() + 10];
        assert!(ls_channel_estimate(&stream, &p, 100).is_err());
    }
}
