//! End-to-end arrival-time and distance estimation.
//!
//! [`estimate_arrival_dual`] runs the full §2.2 pipeline on the two
//! microphone streams of a receiving device:
//!
//! 1. detect the preamble in the first microphone stream (coarse sync),
//! 2. back the coarse start off by a safety margin so that, if the
//!    correlation locked onto a later multipath arrival, the true direct
//!    path still lands at a positive channel tap,
//! 3. LS-estimate both microphone channels from that common start,
//! 4. run the dual-microphone direct-path search,
//! 5. report the arrival as `fine_start + τ_LOS` samples (fractional).
//!
//! Distances follow as `c · Δt` for one-way measurements with known
//! emission times (used by the benchmark experiments); the two-way
//! timestamp combination that removes clock offsets lives in
//! `uw-protocol::timestamps`.

use crate::channel_est::ls_channel_estimate;
use crate::detect::{detect_preamble, DetectorConfig};
use crate::los::{arrival_sign, dual_mic_los, single_mic_los, LosConfig, LosEstimate};
use crate::preamble::RangingPreamble;
use crate::{RangingError, Result};
use serde::{Deserialize, Serialize};

/// Which microphones to use for the direct-path search.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicMode {
    /// Joint dual-microphone search (the paper's method).
    Both,
    /// First (bottom) microphone only.
    FirstOnly,
    /// Second (top) microphone only.
    SecondOnly,
}

/// Configuration of the ranging pipeline.
#[derive(Debug, Clone)]
pub struct RangingConfig {
    /// Detector parameters.
    pub detector: DetectorConfig,
    /// Direct-path search parameters.
    pub los: LosConfig,
    /// Samples to back off from the coarse detection before channel
    /// estimation, so an early (attenuated) direct path is not pushed to a
    /// negative tap. Must stay below the cyclic-prefix length.
    pub backoff_samples: usize,
    /// Which microphones to use.
    pub mic_mode: MicMode,
}

impl Default for RangingConfig {
    fn default() -> Self {
        Self {
            detector: DetectorConfig::default(),
            los: LosConfig::default(),
            backoff_samples: 256,
            mic_mode: MicMode::Both,
        }
    }
}

/// The estimated arrival of a preamble at a device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalEstimate {
    /// Coarse detection start (sample index in the stream).
    pub coarse_start: usize,
    /// Sample index used as tap 0 for channel estimation.
    pub fine_start: usize,
    /// Direct-path delay in taps relative to `fine_start`.
    pub tau_taps: f64,
    /// Final arrival estimate in (fractional) samples within the stream.
    pub arrival_sample: f64,
    /// Direct-path tap indices in the two microphone channels.
    pub los: LosEstimate,
    /// Auto-correlation validation score of the detection.
    pub validation: f64,
}

impl ArrivalEstimate {
    /// Arrival time in seconds for a stream sampled at `sample_rate`.
    pub fn arrival_time_s(&self, sample_rate: f64) -> f64 {
        self.arrival_sample / sample_rate
    }

    /// Sign of the inter-microphone arrival difference (+1 when microphone 1
    /// heard the signal first), used for flipping disambiguation.
    pub fn mic_sign(&self) -> i8 {
        arrival_sign(&self.los)
    }
}

/// Runs the full dual-microphone arrival estimation on the two microphone
/// streams (which must be sample-aligned, as they are on real hardware —
/// both are filled by the same audio callback).
pub fn estimate_arrival_dual(
    stream_mic1: &[f64],
    stream_mic2: &[f64],
    preamble: &RangingPreamble,
    config: &RangingConfig,
) -> Result<ArrivalEstimate> {
    if stream_mic1.len() != stream_mic2.len() {
        return Err(RangingError::InvalidInput {
            reason: format!(
                "microphone streams must be the same length ({} vs {})",
                stream_mic1.len(),
                stream_mic2.len()
            ),
        });
    }
    let detection = detect_preamble(stream_mic1, preamble, &config.detector)?;
    let fine_start = detection
        .start_sample
        .saturating_sub(config.backoff_samples);

    let (los_est, tau) = match config.mic_mode {
        MicMode::Both => {
            let h1 = ls_channel_estimate(stream_mic1, preamble, fine_start)?;
            let h2 = ls_channel_estimate(stream_mic2, preamble, fine_start)?;
            let est = dual_mic_los(&h1.impulse_magnitude, &h2.impulse_magnitude, &config.los)?;
            (est, est.tau_taps)
        }
        MicMode::FirstOnly => {
            let h1 = ls_channel_estimate(stream_mic1, preamble, fine_start)?;
            let est = single_mic_los(&h1.impulse_magnitude, &config.los)?;
            (est, est.tau_taps)
        }
        MicMode::SecondOnly => {
            let h2 = ls_channel_estimate(stream_mic2, preamble, fine_start)?;
            let est = single_mic_los(&h2.impulse_magnitude, &config.los)?;
            (est, est.tau_taps)
        }
    };

    Ok(ArrivalEstimate {
        coarse_start: detection.start_sample,
        fine_start,
        tau_taps: tau,
        arrival_sample: fine_start as f64 + tau,
        los: los_est,
        validation: detection.validation,
    })
}

/// Convenience wrapper for a single-microphone device (or ablation): both
/// "streams" are the same buffer.
pub fn estimate_arrival_single(
    stream: &[f64],
    preamble: &RangingPreamble,
    config: &RangingConfig,
) -> Result<ArrivalEstimate> {
    let cfg = RangingConfig {
        mic_mode: MicMode::FirstOnly,
        ..config.clone()
    };
    estimate_arrival_dual(stream, stream, preamble, &cfg)
}

/// One-way distance from a known emission time and an estimated arrival
/// time (both in seconds on a common clock): `d = c · (t_arrival − t_emit)`.
pub fn one_way_distance(t_emit_s: f64, t_arrival_s: f64, sound_speed: f64) -> Result<f64> {
    if sound_speed <= 0.0 {
        return Err(RangingError::InvalidInput {
            reason: "sound speed must be positive".into(),
        });
    }
    let dt = t_arrival_s - t_emit_s;
    if dt < 0.0 {
        return Err(RangingError::InvalidInput {
            reason: format!("arrival ({t_arrival_s} s) precedes emission ({t_emit_s} s)"),
        });
    }
    Ok(sound_speed * dt)
}

/// Two-way ranging between devices A and B without any clock
/// synchronisation (the BeepBeep/paper formulation): device A emits at its
/// local time `a_tx` and hears B's reply at `a_rx`; device B hears A at its
/// local time `b_rx` and replies at `b_tx`. The one-way propagation time is
/// `((a_rx − a_tx) − (b_tx − b_rx)) / 2` and the distance follows by
/// multiplying with the sound speed.
pub fn two_way_distance(
    a_tx: f64,
    a_rx: f64,
    b_rx: f64,
    b_tx: f64,
    sound_speed: f64,
) -> Result<f64> {
    if sound_speed <= 0.0 {
        return Err(RangingError::InvalidInput {
            reason: "sound speed must be positive".into(),
        });
    }
    let round_trip = (a_rx - a_tx) - (b_tx - b_rx);
    if round_trip < 0.0 {
        return Err(RangingError::InvalidInput {
            reason: "negative round-trip time; timestamps are inconsistent".into(),
        });
    }
    Ok(sound_speed * round_trip / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Builds a pair of microphone streams containing the preamble arriving
    /// at `arrival` samples (mic 1) and `arrival + mic_offset` (mic 2), each
    /// with an extra multipath echo and noise.
    fn dual_streams(
        preamble: &RangingPreamble,
        arrival: usize,
        mic_offset: i64,
        direct_gain: f64,
        echo_gain: f64,
        noise_amp: f64,
        seed: u64,
    ) -> (Vec<f64>, Vec<f64>) {
        let total = arrival + preamble.len() + 8000;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mk = |arr: usize| {
            let mut s: Vec<f64> = (0..total)
                .map(|_| noise_amp * rng.gen_range(-1.0..1.0))
                .collect();
            for (i, &p) in preamble.waveform.iter().enumerate() {
                if arr + i < total {
                    s[arr + i] += direct_gain * p;
                }
                let echo = arr + 150 + i;
                if echo < total {
                    s[echo] += echo_gain * p;
                }
            }
            s
        };
        let s1 = mk(arrival);
        let s2 = mk((arrival as i64 + mic_offset) as usize);
        (s1, s2)
    }

    #[test]
    fn clean_arrival_is_estimated_to_within_a_few_samples() {
        let p = RangingPreamble::default_paper().unwrap();
        let truth = 4000;
        let (s1, s2) = dual_streams(&p, truth, 2, 1.0, 0.3, 0.01, 1);
        let est = estimate_arrival_dual(&s1, &s2, &p, &RangingConfig::default()).unwrap();
        let err_samples = (est.arrival_sample - truth as f64).abs();
        // 18 samples at 44.1 kHz and 1500 m/s is ~0.6 m — the same scale as
        // the paper's 0.48–0.86 m median 1D errors. The band-limited
        // (1–5 kHz) channel estimate spreads each tap over several samples
        // and its first sidelobe sits right at the noise+λ threshold, so
        // errors of a few tens of centimetres are inherent to the method.
        assert!(err_samples < 18.0, "error {err_samples} samples");
        assert!(est.validation > 0.5);
    }

    #[test]
    fn attenuated_direct_path_with_strong_echo_still_resolves() {
        let p = RangingPreamble::default_paper().unwrap();
        let truth = 6000;
        // Direct path clearly weaker than the echo 150 samples later (the
        // echo is what plain correlation locks onto), but still above the
        // noise-floor + λ threshold of the direct-path search.
        let (s1, s2) = dual_streams(&p, truth, 1, 0.45, 1.0, 0.01, 2);
        let est = estimate_arrival_dual(&s1, &s2, &p, &RangingConfig::default()).unwrap();
        let err_samples = (est.arrival_sample - truth as f64).abs();
        assert!(err_samples < 10.0, "error {err_samples} samples");
    }

    #[test]
    fn dual_mic_beats_single_mic_with_asymmetric_spur() {
        // Add an early spurious burst to mic 1 only; the single-mic estimate
        // is pulled early while the dual-mic estimate stays near the truth.
        let p = RangingPreamble::default_paper().unwrap();
        let truth = 5000;
        let (mut s1, s2) = dual_streams(&p, truth, 2, 0.8, 0.4, 0.01, 3);
        for k in 0..300 {
            s1[truth - 180 + k] += 0.5 * ((k as f64) * 0.9).sin();
        }
        let dual = estimate_arrival_dual(&s1, &s2, &p, &RangingConfig::default()).unwrap();
        let single_cfg = RangingConfig {
            mic_mode: MicMode::FirstOnly,
            ..RangingConfig::default()
        };
        let single = estimate_arrival_dual(&s1, &s2, &p, &single_cfg).unwrap();
        let dual_err = (dual.arrival_sample - truth as f64).abs();
        let single_err = (single.arrival_sample - truth as f64).abs();
        assert!(
            dual_err <= single_err,
            "dual {dual_err} vs single {single_err}"
        );
        assert!(dual_err < 20.0);
    }

    #[test]
    fn mic_sign_reflects_arrival_order() {
        let p = RangingPreamble::default_paper().unwrap();
        let (s1, s2) = dual_streams(&p, 4000, 3, 1.0, 0.2, 0.005, 4);
        let est = estimate_arrival_dual(&s1, &s2, &p, &RangingConfig::default()).unwrap();
        // Mic 1 hears it first (mic 2 is delayed by +3 samples).
        assert_eq!(est.mic_sign(), 1);
        let (s1, s2) = dual_streams(&p, 4000, -3, 1.0, 0.2, 0.005, 5);
        let est = estimate_arrival_dual(&s1, &s2, &p, &RangingConfig::default()).unwrap();
        assert_eq!(est.mic_sign(), -1);
    }

    #[test]
    fn mismatched_stream_lengths_are_rejected() {
        let p = RangingPreamble::default_paper().unwrap();
        let s1 = vec![0.0; p.len() + 100];
        let s2 = vec![0.0; p.len() + 200];
        assert!(estimate_arrival_dual(&s1, &s2, &p, &RangingConfig::default()).is_err());
    }

    #[test]
    fn arrival_time_conversion() {
        let est = ArrivalEstimate {
            coarse_start: 4410,
            fine_start: 4154,
            tau_taps: 256.0,
            arrival_sample: 4410.0,
            los: LosEstimate {
                tau_taps: 256.0,
                tap_mic1: 256,
                tap_mic2: 256,
            },
            validation: 0.9,
        };
        assert!((est.arrival_time_s(44_100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn distance_helpers() {
        // 20 ms one-way at 1500 m/s is 30 m.
        assert!((one_way_distance(1.0, 1.02, 1500.0).unwrap() - 30.0).abs() < 1e-9);
        assert!(one_way_distance(1.0, 0.9, 1500.0).is_err());
        assert!(one_way_distance(1.0, 2.0, 0.0).is_err());

        // Two-way: true distance 15 m => one-way 10 ms. Clock offsets cancel.
        let c = 1500.0;
        let tof = 15.0 / c;
        let a_tx = 100.0; // device A clock
        let b_rx = 7.3 + tof; // device B clock, arbitrary offset
        let b_tx = b_rx + 0.6; // replies 600 ms later
        let a_rx = a_tx + tof + 0.6 + tof;
        let d = two_way_distance(a_tx, a_rx, b_rx - 7.3 + 200.0, b_tx - 7.3 + 200.0, c).unwrap();
        assert!((d - 15.0).abs() < 1e-9, "d = {d}");
        assert!(two_way_distance(0.0, 0.1, 0.0, 0.3, c).is_err());
        assert!(two_way_distance(0.0, 1.0, 0.0, 0.5, -1.0).is_err());
    }

    #[test]
    fn single_stream_wrapper_works() {
        let p = RangingPreamble::default_paper().unwrap();
        let (s1, _) = dual_streams(&p, 3000, 0, 1.0, 0.2, 0.01, 6);
        let est = estimate_arrival_single(&s1, &p, &RangingConfig::default()).unwrap();
        assert!((est.arrival_sample - 3000.0).abs() < 20.0);
    }
}
