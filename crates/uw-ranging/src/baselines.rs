//! Baseline ranging schemes used for comparison (Fig. 12).
//!
//! * **BeepBeep** [Peng et al., SenSys'07] — transmits a linear chirp,
//!   detects it with a window-based power threshold `TH_SD` dB above the
//!   background, and takes the strongest correlation peak as the arrival.
//! * **CAT** [Mao et al., MobiCom'16] — FMCW: the receiver mixes the
//!   received sweep with the reference sweep and converts the dominant beat
//!   frequency into a delay.
//!
//! Both use the same duration and bandwidth as the ZC-OFDM preamble so the
//! comparison is fair (§3.1). Neither exploits the PN repetition structure
//! or the second microphone, which is why they mis-detect on impulsive
//! noise and lock onto strong multipath arrivals.

use crate::{RangingError, Result};
use serde::{Deserialize, Serialize};
use uw_dsp::chirp::{beat_to_delay, fmcw_beat_frequency, fmcw_mix, linear_chirp, ChirpConfig};
use uw_dsp::correlation::{argmax, xcorr_normalized};

/// Default window-based detection threshold from BeepBeep (dB). The paper
/// notes 3 dB was tuned for air and sweeps the threshold underwater.
pub const DEFAULT_TH_SD_DB: f64 = 3.0;

/// A chirp-based baseline ranger (covers both BeepBeep and CAT; they share
/// the transmitted waveform but differ in the arrival estimator).
#[derive(Debug, Clone)]
pub struct ChirpBaseline {
    /// Chirp parameters (bandwidth/duration matched to the preamble).
    pub config: ChirpConfig,
    /// Transmit waveform.
    pub waveform: Vec<f64>,
}

impl ChirpBaseline {
    /// Builds the baseline waveform.
    pub fn new(config: ChirpConfig) -> Result<Self> {
        let waveform = linear_chirp(&config)?;
        Ok(Self { config, waveform })
    }

    /// Baseline matched to the paper's default preamble band and duration.
    pub fn matched_to_preamble() -> Result<Self> {
        Self::new(ChirpConfig::matched_to_preamble())
    }

    /// Window-based power-threshold detection (BeepBeep's `TH_SD`): returns
    /// the first sample index at which the short-window power exceeds the
    /// long-run background power by `th_db` decibels, or `None`.
    pub fn detect_power_threshold(&self, stream: &[f64], th_db: f64) -> Option<usize> {
        let window = (self.config.sample_rate * 0.005) as usize; // 5 ms analysis window
        if stream.len() < window * 4 {
            return None;
        }
        // Background estimate from the first windows (assumed signal-free,
        // as in BeepBeep's streaming implementation).
        let background: f64 =
            stream[..window * 2].iter().map(|s| s * s).sum::<f64>() / (window * 2) as f64;
        let background = background.max(1e-12);
        let threshold = background * 10f64.powf(th_db / 10.0);
        let mut acc: f64 = stream[..window].iter().map(|s| s * s).sum();
        for i in window..stream.len() {
            acc += stream[i] * stream[i] - stream[i - window] * stream[i - window];
            if acc / window as f64 > threshold {
                return Some(i - window + 1);
            }
        }
        None
    }

    /// BeepBeep arrival estimate: strongest normalised-correlation peak.
    pub fn estimate_arrival_correlation(&self, stream: &[f64]) -> Result<f64> {
        if stream.len() < self.waveform.len() {
            return Err(RangingError::InvalidInput {
                reason: "stream shorter than the chirp waveform".into(),
            });
        }
        let corr = xcorr_normalized(stream, &self.waveform)?;
        let (idx, peak) = argmax(&corr).ok_or(RangingError::NotDetected { best_score: 0.0 })?;
        if peak < 0.05 {
            return Err(RangingError::NotDetected { best_score: peak });
        }
        Ok(idx as f64)
    }

    /// CAT/FMCW arrival estimate: detect the sweep with the power threshold,
    /// mix the following chunk with the reference, and convert the beat
    /// frequency to a delay relative to the detected start.
    pub fn estimate_arrival_fmcw(&self, stream: &[f64], th_db: f64) -> Result<f64> {
        let coarse = self
            .detect_power_threshold(stream, th_db)
            .ok_or(RangingError::NotDetected { best_score: 0.0 })?;
        // Mix from a little before the coarse detection so the true start is
        // inside the mixing window.
        let back = (self.config.sample_rate * 0.01) as usize; // 10 ms
        let start = coarse.saturating_sub(back);
        let end = (start + self.waveform.len()).min(stream.len());
        if end - start < self.waveform.len() / 2 {
            return Err(RangingError::InvalidInput {
                reason: "stream too short after detection".into(),
            });
        }
        let segment = &stream[start..end];
        let reference = &self.waveform[..segment.len()];
        let mixed = fmcw_mix(segment, reference)?;
        let max_beat = self.config.slope_hz_per_s().abs() * 0.05; // delays up to 50 ms
        let beat = fmcw_beat_frequency(&mixed, self.config.sample_rate, max_beat.max(100.0))?;
        let delay_s = beat_to_delay(beat, &self.config);
        Ok(start as f64 + delay_s * self.config.sample_rate)
    }
}

/// Identifies which baseline estimator produced a measurement (used by the
/// comparison harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BaselineKind {
    /// Dual-microphone ZC-OFDM (the paper's scheme).
    DualMicOfdm,
    /// BeepBeep-style chirp correlation.
    BeepBeepCorrelation,
    /// CAT-style FMCW mixing.
    CatFmcw,
}

impl BaselineKind {
    /// Human-readable label used in benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            BaselineKind::DualMicOfdm => "Ours (Dual-mic)",
            BaselineKind::BeepBeepCorrelation => "BeepBeep (Correlation)",
            BaselineKind::CatFmcw => "CAT (FMCW)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn embed_chirp(
        baseline: &ChirpBaseline,
        offset: usize,
        gain: f64,
        noise: f64,
        total: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream: Vec<f64> = (0..total)
            .map(|_| noise * rng.gen_range(-1.0..1.0))
            .collect();
        for (i, &c) in baseline.waveform.iter().enumerate() {
            if offset + i < total {
                stream[offset + i] += gain * c;
            }
        }
        stream
    }

    #[test]
    fn correlation_arrival_on_clean_chirp() {
        let b = ChirpBaseline::matched_to_preamble().unwrap();
        let stream = embed_chirp(&b, 3000, 1.0, 0.01, b.waveform.len() + 8000, 1);
        let est = b.estimate_arrival_correlation(&stream).unwrap();
        assert!((est - 3000.0).abs() < 3.0, "est {est}");
    }

    #[test]
    fn power_threshold_detects_once_signal_starts() {
        let b = ChirpBaseline::matched_to_preamble().unwrap();
        let stream = embed_chirp(&b, 5000, 0.8, 0.02, b.waveform.len() + 10_000, 2);
        let det = b.detect_power_threshold(&stream, DEFAULT_TH_SD_DB).unwrap();
        // The detector fires once the sliding window starts covering the
        // chirp, so the reported index can precede the true start by up to
        // one window length (≈ 220 samples).
        assert!((4700..=5600).contains(&det), "det {det}");
        // Pure noise produces no detection at a high threshold.
        let mut rng = StdRng::seed_from_u64(3);
        let noise: Vec<f64> = (0..50_000)
            .map(|_| 0.02 * rng.gen_range(-1.0..1.0))
            .collect();
        assert!(b.detect_power_threshold(&noise, 10.0).is_none());
        // Very short stream returns None rather than panicking.
        assert!(b.detect_power_threshold(&[0.0; 10], 3.0).is_none());
    }

    #[test]
    fn power_threshold_false_positive_on_impulsive_noise() {
        // This is the weakness Fig. 12a demonstrates: a loud short spike
        // trips the window-power detector even though no chirp is present.
        let b = ChirpBaseline::matched_to_preamble().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut stream: Vec<f64> = (0..60_000)
            .map(|_| 0.02 * rng.gen_range(-1.0..1.0))
            .collect();
        for k in 0..400 {
            stream[20_000 + k] += 1.5 * ((k as f64) * 0.8).sin();
        }
        assert!(b.detect_power_threshold(&stream, 3.0).is_some());
    }

    #[test]
    fn fmcw_arrival_close_on_clean_channel() {
        let b = ChirpBaseline::matched_to_preamble().unwrap();
        let truth = 7000;
        let stream = embed_chirp(&b, truth, 1.0, 0.005, b.waveform.len() + 12_000, 5);
        let est = b.estimate_arrival_fmcw(&stream, DEFAULT_TH_SD_DB).unwrap();
        // FMCW beat-frequency resolution over a ~220 ms sweep of 4 kHz is
        // coarse; within ~200 samples (≈ 6–7 m underwater) is expected.
        assert!(
            (est - truth as f64).abs() < 250.0,
            "est {est} truth {truth}"
        );
    }

    #[test]
    fn correlation_is_biased_by_strong_multipath() {
        // Direct path weak, echo strong: plain correlation picks the echo.
        let b = ChirpBaseline::matched_to_preamble().unwrap();
        let truth = 4000usize;
        let echo_offset = 200usize;
        let total = b.waveform.len() + 10_000;
        let mut stream = embed_chirp(&b, truth, 0.25, 0.01, total, 6);
        for (i, &c) in b.waveform.iter().enumerate() {
            if truth + echo_offset + i < total {
                stream[truth + echo_offset + i] += 1.0 * c;
            }
        }
        let est = b.estimate_arrival_correlation(&stream).unwrap();
        assert!(
            (est - (truth + echo_offset) as f64).abs() < 10.0,
            "correlation locked at {est}"
        );
    }

    #[test]
    fn error_cases() {
        let b = ChirpBaseline::matched_to_preamble().unwrap();
        assert!(b.estimate_arrival_correlation(&[0.0; 10]).is_err());
        let mut rng = StdRng::seed_from_u64(7);
        let noise: Vec<f64> = (0..b.waveform.len() + 1000)
            .map(|_| 1e-6 * rng.gen_range(-1.0..1.0))
            .collect();
        assert!(b.estimate_arrival_fmcw(&noise, 20.0).is_err());
        let bad_cfg = ChirpConfig {
            duration_s: 0.0,
            ..ChirpConfig::matched_to_preamble()
        };
        assert!(ChirpBaseline::new(bad_cfg).is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(BaselineKind::DualMicOfdm.label(), "Ours (Dual-mic)");
        assert!(BaselineKind::BeepBeepCorrelation
            .label()
            .contains("BeepBeep"));
        assert!(BaselineKind::CatFmcw.label().contains("FMCW"));
    }
}
