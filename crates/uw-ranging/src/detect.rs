//! Preamble detection (§2.2.1, Fig. 12a).
//!
//! Detection runs in two stages:
//!
//! 1. **Cross-correlation** of the microphone stream with the transmitted
//!    preamble. Peaks mark candidate arrivals, but the peak height varies
//!    strongly with SNR and impulsive noise produces false peaks.
//! 2. **Auto-correlation validation**: the 4 received OFDM symbols are
//!    re-signed with the PN sequence and correlated against each other.
//!    Because all 4 symbols pass through (nearly) the same channel, genuine
//!    preambles score close to 1; impulsive noise does not carry the coded
//!    repetition structure and scores near 0. A candidate is accepted when
//!    the validation score exceeds 0.35.
//!
//! The FMCW baseline detector used for the comparison in Fig. 12a — a
//! window-based power threshold `TH_SD` dB above the background, as in
//! BeepBeep — is in [`crate::baselines`].
//!
//! The correlation stage runs on whichever numeric path the preamble was
//! built for: the `f64` matched filter, or — for a preamble built with
//! [`uw_dsp::NumericPath::Q15`] — the fixed-point
//! [`uw_dsp::Q15MatchedFilter`], whose peak positions agree with the
//! `f64` path to within ±1 sample. The validation stage stays in `f64` on
//! both paths.

use crate::preamble::RangingPreamble;
use crate::{RangingError, Result};
use serde::{Deserialize, Serialize};
use uw_dsp::correlation::autocorr_validation;
use uw_dsp::peaks::find_peaks_above;

/// Default auto-correlation validation threshold from the paper.
pub const DEFAULT_VALIDATION_THRESHOLD: f64 = 0.35;

/// Parameters of the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Minimum normalised cross-correlation for a sample to be considered a
    /// candidate (screens the stream cheaply before validation).
    pub correlation_threshold: f64,
    /// Auto-correlation validation threshold (0.35 in the paper).
    pub validation_threshold: f64,
    /// Maximum number of candidate peaks to validate, strongest first.
    pub max_candidates: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self {
            correlation_threshold: 0.15,
            validation_threshold: DEFAULT_VALIDATION_THRESHOLD,
            max_candidates: 16,
        }
    }
}

/// A detected preamble.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Detection {
    /// Sample index in the stream at which the preamble starts (coarse,
    /// from the correlation peak).
    pub start_sample: usize,
    /// Normalised cross-correlation value at the peak.
    pub correlation: f64,
    /// Auto-correlation validation score.
    pub validation: f64,
}

/// Detects the strongest validated preamble in `stream`.
///
/// Returns `Err(RangingError::NotDetected)` when no candidate passes
/// validation; the error carries the best score seen so callers can build
/// false-negative statistics.
pub fn detect_preamble(
    stream: &[f64],
    preamble: &RangingPreamble,
    config: &DetectorConfig,
) -> Result<Detection> {
    let detections = detect_all(stream, preamble, config)?;
    detections
        .into_iter()
        .max_by(|a, b| {
            a.validation
                .partial_cmp(&b.validation)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .ok_or(RangingError::NotDetected { best_score: 0.0 })
}

/// Detects every validated preamble occurrence in `stream` (used when a
/// stream contains responses from several devices).
pub fn detect_all(
    stream: &[f64],
    preamble: &RangingPreamble,
    config: &DetectorConfig,
) -> Result<Vec<Detection>> {
    if stream.len() < preamble.len() {
        return Err(RangingError::InvalidInput {
            reason: format!(
                "stream of {} samples is shorter than the {}-sample preamble",
                stream.len(),
                preamble.len()
            ),
        });
    }
    // Streaming matched filter: the preamble's template spectrum and FFT
    // plan are computed once per preamble, not once per stream.
    let corr = preamble.correlate_normalized(stream)?;
    let mut candidates: Vec<usize> = find_peaks_above(&corr, config.correlation_threshold);
    // Strongest candidates first, cap the work.
    candidates.sort_by(|&a, &b| {
        corr[b]
            .partial_cmp(&corr[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    candidates.truncate(config.max_candidates);

    let mut best_failed_score = 0.0f64;
    let mut detections = Vec::new();
    for &cand in &candidates {
        let score = validation_score(stream, preamble, cand)?;
        if score >= config.validation_threshold {
            detections.push(Detection {
                start_sample: cand,
                correlation: corr[cand],
                validation: score,
            });
        } else {
            best_failed_score = best_failed_score.max(score);
        }
    }
    if detections.is_empty() && candidates.is_empty() {
        return Err(RangingError::NotDetected { best_score: 0.0 });
    }
    if detections.is_empty() {
        return Err(RangingError::NotDetected {
            best_score: best_failed_score,
        });
    }
    // De-duplicate detections closer than one preamble length, keeping the
    // best-validated one in each cluster.
    detections.sort_by_key(|d| d.start_sample);
    let mut deduped: Vec<Detection> = Vec::new();
    for d in detections {
        match deduped.last_mut() {
            Some(last) if d.start_sample < last.start_sample + preamble.len() => {
                if d.validation > last.validation {
                    *last = d;
                }
            }
            _ => deduped.push(d),
        }
    }
    Ok(deduped)
}

/// Auto-correlation validation score for a candidate start index.
pub fn validation_score(stream: &[f64], preamble: &RangingPreamble, start: usize) -> Result<f64> {
    let block = preamble.block_len();
    let n_symbols = preamble.pn_signs.len();
    let needed = n_symbols * block;
    if start + needed > stream.len() {
        // Cannot validate a candidate whose symbols run past the stream end.
        return Ok(0.0);
    }
    // Strip each block's cyclic prefix, keeping only the symbol bodies, so
    // the segments being compared are the repeated OFDM symbols themselves.
    let mut segments = Vec::with_capacity(n_symbols * preamble.config.symbol_len);
    for i in 0..n_symbols {
        let s = start + i * block + preamble.config.cyclic_prefix;
        segments.extend_from_slice(&stream[s..s + preamble.config.symbol_len]);
    }
    Ok(autocorr_validation(
        &segments,
        preamble.config.symbol_len,
        &preamble.pn_signs,
    )?)
}

/// Outcome counts for a detection experiment (Fig. 12a).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectionStats {
    /// Preamble present and detected near the true position.
    pub true_positives: usize,
    /// Preamble present but not detected (or detected far from the truth).
    pub false_negatives: usize,
    /// Detection reported in a noise-only stream.
    pub false_positives: usize,
    /// Noise-only stream correctly yielding no detection.
    pub true_negatives: usize,
}

impl DetectionStats {
    /// Fraction of signal-present trials that were missed.
    pub fn false_negative_rate(&self) -> f64 {
        let denom = self.true_positives + self.false_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_negatives as f64 / denom as f64
        }
    }

    /// Fraction of noise-only trials that produced a detection.
    pub fn false_positive_rate(&self) -> f64 {
        let denom = self.false_positives + self.true_negatives;
        if denom == 0 {
            0.0
        } else {
            self.false_positives as f64 / denom as f64
        }
    }

    /// Records the outcome of one signal-present trial.
    pub fn record_signal_trial(&mut self, detected_near_truth: bool) {
        if detected_near_truth {
            self.true_positives += 1;
        } else {
            self.false_negatives += 1;
        }
    }

    /// Records the outcome of one noise-only trial.
    pub fn record_noise_trial(&mut self, detected: bool) {
        if detected {
            self.false_positives += 1;
        } else {
            self.true_negatives += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn embed(
        preamble: &RangingPreamble,
        offset: usize,
        total: usize,
        gain: f64,
        noise_amp: f64,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut stream: Vec<f64> = (0..total)
            .map(|_| noise_amp * rng.gen_range(-1.0..1.0))
            .collect();
        for (i, &p) in preamble.waveform.iter().enumerate() {
            stream[offset + i] += gain * p;
        }
        stream
    }

    #[test]
    fn detects_clean_preamble_at_correct_offset() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = embed(&p, 3000, p.len() + 8000, 1.0, 0.01, 1);
        let det = detect_preamble(&stream, &p, &DetectorConfig::default()).unwrap();
        assert!(
            (det.start_sample as i64 - 3000).unsigned_abs() < 5,
            "start {}",
            det.start_sample
        );
        assert!(det.validation > 0.9);
        assert!(det.correlation > 0.5);
    }

    #[test]
    fn detects_weak_preamble_in_noise() {
        let p = RangingPreamble::default_paper().unwrap();
        // Signal amplitude comparable to the noise floor.
        let stream = embed(&p, 5000, p.len() + 12_000, 0.08, 0.05, 2);
        let det = detect_preamble(&stream, &p, &DetectorConfig::default()).unwrap();
        assert!(
            (det.start_sample as i64 - 5000).unsigned_abs() < 20,
            "start {}",
            det.start_sample
        );
        assert!(det.validation > DEFAULT_VALIDATION_THRESHOLD);
    }

    #[test]
    fn rejects_noise_only_stream() {
        let p = RangingPreamble::default_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let stream: Vec<f64> = (0..p.len() + 10_000)
            .map(|_| 0.3 * rng.gen_range(-1.0..1.0))
            .collect();
        let result = detect_preamble(&stream, &p, &DetectorConfig::default());
        assert!(matches!(result, Err(RangingError::NotDetected { .. })));
    }

    #[test]
    fn rejects_impulsive_spikes() {
        // A large spike fools plain correlation thresholds but not the
        // PN-structure validation.
        let p = RangingPreamble::default_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut stream: Vec<f64> = (0..p.len() + 10_000)
            .map(|_| 0.02 * rng.gen_range(-1.0..1.0))
            .collect();
        for k in 0..200 {
            stream[4000 + k] += 3.0 * ((k as f64) * 0.5).sin() * (-(k as f64) / 40.0).exp();
        }
        let result = detect_preamble(&stream, &p, &DetectorConfig::default());
        assert!(
            result.is_err(),
            "impulsive noise must not validate as a preamble"
        );
    }

    #[test]
    fn detects_two_preambles_in_one_stream() {
        let p = RangingPreamble::default_paper().unwrap();
        let total = 2 * p.len() + 30_000;
        let mut stream = embed(&p, 2000, total, 1.0, 0.01, 5);
        for (i, &s) in p.waveform.iter().enumerate() {
            stream[2000 + p.len() + 12_000 + i] += 0.7 * s;
        }
        let detections = detect_all(&stream, &p, &DetectorConfig::default()).unwrap();
        assert_eq!(detections.len(), 2, "{detections:?}");
        assert!((detections[0].start_sample as i64 - 2000).unsigned_abs() < 5);
        assert!(
            (detections[1].start_sample as i64 - (2000 + p.len() as i64 + 12_000)).unsigned_abs()
                < 5
        );
    }

    #[test]
    fn short_stream_is_rejected() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = vec![0.0; 100];
        assert!(matches!(
            detect_preamble(&stream, &p, &DetectorConfig::default()),
            Err(RangingError::InvalidInput { .. })
        ));
    }

    #[test]
    fn detection_stats_rates() {
        let mut stats = DetectionStats::default();
        for i in 0..10 {
            stats.record_signal_trial(i < 9); // 1 miss
            stats.record_noise_trial(i < 1); // 1 false alarm
        }
        assert!((stats.false_negative_rate() - 0.1).abs() < 1e-12);
        assert!((stats.false_positive_rate() - 0.1).abs() < 1e-12);
        assert_eq!(stats.true_positives, 9);
        assert_eq!(stats.true_negatives, 9);
        let empty = DetectionStats::default();
        assert_eq!(empty.false_negative_rate(), 0.0);
        assert_eq!(empty.false_positive_rate(), 0.0);
    }

    #[test]
    fn q15_preamble_detects_where_the_f64_one_does() {
        let p = RangingPreamble::default_paper().unwrap();
        let q = RangingPreamble::default_paper_q15().unwrap();
        let stream = embed(&p, 5000, p.len() + 12_000, 0.3, 0.03, 7);
        let det_f64 = detect_preamble(&stream, &p, &DetectorConfig::default()).unwrap();
        let det_q15 = detect_preamble(&stream, &q, &DetectorConfig::default()).unwrap();
        // Fixed-point correlation moves the peak by at most ±1 sample.
        assert!(
            (det_q15.start_sample as i64 - det_f64.start_sample as i64).unsigned_abs() <= 1,
            "f64 at {} vs q15 at {}",
            det_f64.start_sample,
            det_q15.start_sample
        );
        assert!(det_q15.validation > DEFAULT_VALIDATION_THRESHOLD);
        // Noise-only streams are still rejected on the Q15 path.
        let mut rng = StdRng::seed_from_u64(8);
        let noise: Vec<f64> = (0..q.len() + 10_000)
            .map(|_| 0.3 * rng.gen_range(-1.0..1.0))
            .collect();
        assert!(detect_preamble(&noise, &q, &DetectorConfig::default()).is_err());
    }

    #[test]
    fn validation_score_handles_candidate_near_stream_end() {
        let p = RangingPreamble::default_paper().unwrap();
        let stream = vec![0.0; p.len() + 100];
        // Candidate too close to the end: score 0, not an error.
        let score = validation_score(&stream, &p, p.len()).unwrap();
        assert_eq!(score, 0.0);
    }
}
