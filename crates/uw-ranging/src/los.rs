//! Direct-path (line-of-sight) identification from channel profiles.
//!
//! Underwater, the direct path can be *weaker* than later multipath
//! arrivals, so neither "highest peak" nor "first non-negligible peak" is
//! reliable on a single microphone. The paper's §2.2 formulation uses both
//! microphones jointly:
//!
//! ```text
//! minimise   τ_LOS = (n + m) / 2
//! subject to h1(n) > w1 + λ,      h2(m) > w2 + λ,
//!            IsPeak(n, h1) ∧ IsPeak(m, h2),
//!            |n − m| ≤ d / c · fs
//! ```
//!
//! where `w1`, `w2` are per-channel noise floors (mean of the last 100
//! taps), `λ = 0.2` is a conservative margin, and `d` is the physical
//! microphone separation (16 cm) — the time difference of arrival between
//! the microphones can never exceed the acoustic travel time across the
//! device. Case reflections and per-microphone noise differ between the two
//! channels, so a spurious early peak in one channel rarely has a partner
//! within the allowed offset in the other.

use crate::channel_est::NOISE_TAIL_TAPS;
use crate::{RangingError, Result};
use serde::{Deserialize, Serialize};
use uw_dsp::peaks::{find_peaks_above, is_peak, noise_floor, normalize_profile};

/// Parameters of the direct-path search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LosConfig {
    /// Conservative margin λ added to the noise floor (0.2 in the paper).
    pub lambda: f64,
    /// Physical separation between the two microphones in metres (0.16 m).
    pub mic_separation_m: f64,
    /// Speed of sound in m/s.
    pub sound_speed: f64,
    /// Audio sampling rate in Hz.
    pub sample_rate: f64,
}

impl Default for LosConfig {
    fn default() -> Self {
        Self {
            lambda: 0.2,
            mic_separation_m: 0.16,
            sound_speed: 1500.0,
            sample_rate: 44_100.0,
        }
    }
}

impl LosConfig {
    /// Maximum allowed tap offset between the two channels, in samples.
    pub fn max_offset_taps(&self) -> usize {
        ((self.mic_separation_m / self.sound_speed) * self.sample_rate).ceil() as usize
    }
}

/// Result of the dual-microphone direct-path search.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LosEstimate {
    /// Direct-path delay in channel taps: `(n + m) / 2`.
    pub tau_taps: f64,
    /// Direct-path tap index in the first microphone's channel.
    pub tap_mic1: usize,
    /// Direct-path tap index in the second microphone's channel.
    pub tap_mic2: usize,
}

/// Joint dual-microphone direct-path search over two channel magnitude
/// profiles (which need not be normalised; normalisation happens inside).
pub fn dual_mic_los(h1: &[f64], h2: &[f64], config: &LosConfig) -> Result<LosEstimate> {
    if h1.is_empty() || h2.is_empty() {
        return Err(RangingError::InvalidInput {
            reason: "empty channel profile".into(),
        });
    }
    if h1.len() != h2.len() {
        return Err(RangingError::InvalidInput {
            reason: format!(
                "channel profiles differ in length ({} vs {})",
                h1.len(),
                h2.len()
            ),
        });
    }
    let n1 = normalize_profile(h1);
    let n2 = normalize_profile(h2);
    let w1 = noise_floor(&n1, NOISE_TAIL_TAPS).map_err(RangingError::from)?;
    let w2 = noise_floor(&n2, NOISE_TAIL_TAPS).map_err(RangingError::from)?;
    let t1 = w1 + config.lambda;
    let t2 = w2 + config.lambda;
    let max_off = config.max_offset_taps() as i64;

    let peaks1 = find_peaks_above(&n1, t1);
    let peaks2 = find_peaks_above(&n2, t2);
    if peaks1.is_empty() || peaks2.is_empty() {
        return Err(RangingError::NoDirectPath);
    }

    let mut best: Option<LosEstimate> = None;
    for &n in &peaks1 {
        for &m in &peaks2 {
            if (n as i64 - m as i64).abs() > max_off {
                continue;
            }
            let tau = (n + m) as f64 / 2.0;
            if best.is_none_or(|b| tau < b.tau_taps) {
                best = Some(LosEstimate {
                    tau_taps: tau,
                    tap_mic1: n,
                    tap_mic2: m,
                });
            }
        }
    }
    best.ok_or(RangingError::NoDirectPath)
}

/// Single-microphone fallback: the earliest peak exceeding the noise floor
/// plus λ. Used for the ablation in Fig. 11b ("bottom only" / "top only").
pub fn single_mic_los(h: &[f64], config: &LosConfig) -> Result<LosEstimate> {
    if h.is_empty() {
        return Err(RangingError::InvalidInput {
            reason: "empty channel profile".into(),
        });
    }
    let n = normalize_profile(h);
    let w = noise_floor(&n, NOISE_TAIL_TAPS).map_err(RangingError::from)?;
    let threshold = w + config.lambda;
    let idx = (0..n.len())
        .find(|&i| n[i] > threshold && is_peak(&n, i))
        .ok_or(RangingError::NoDirectPath)?;
    Ok(LosEstimate {
        tau_taps: idx as f64,
        tap_mic1: idx,
        tap_mic2: idx,
    })
}

/// The dual-microphone *sign* used for flipping disambiguation (§2.1.4):
/// `sgn(m − n)` tells which microphone heard the signal first and therefore
/// which side of the leader's pointing line the transmitter is on. Returns
/// +1 when the signal reached microphone 1 first, −1 when microphone 2 was
/// first, and 0 when they tie.
pub fn arrival_sign(estimate: &LosEstimate) -> i8 {
    match estimate.tap_mic2.cmp(&estimate.tap_mic1) {
        std::cmp::Ordering::Greater => 1,
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic channel profile with taps at the given (index,
    /// amplitude) pairs over `len` taps plus a small noise floor.
    fn profile(len: usize, taps: &[(usize, f64)], noise: f64) -> Vec<f64> {
        let mut h = vec![noise; len];
        // Slight deterministic ripple so the tail is not perfectly flat.
        for (i, v) in h.iter_mut().enumerate() {
            *v += noise * 0.2 * ((i as f64) * 0.7).sin().abs();
        }
        for &(idx, amp) in taps {
            h[idx] = amp;
        }
        h
    }

    #[test]
    fn finds_direct_path_when_it_is_strongest() {
        let config = LosConfig::default();
        let h1 = profile(1920, &[(40, 1.0), (80, 0.6)], 0.02);
        let h2 = profile(1920, &[(42, 1.0), (83, 0.6)], 0.03);
        let est = dual_mic_los(&h1, &h2, &config).unwrap();
        assert_eq!(est.tap_mic1, 40);
        assert_eq!(est.tap_mic2, 42);
        assert!((est.tau_taps - 41.0).abs() < 1e-12);
        assert_eq!(arrival_sign(&est), 1);
    }

    #[test]
    fn finds_attenuated_direct_path_before_stronger_multipath() {
        // The direct path (0.35) is weaker than the reflection (1.0) but
        // still above noise+λ; the joint search must pick the earlier pair.
        let config = LosConfig::default();
        let h1 = profile(1920, &[(50, 0.35), (120, 1.0)], 0.02);
        let h2 = profile(1920, &[(52, 0.4), (118, 1.0)], 0.02);
        let est = dual_mic_los(&h1, &h2, &config).unwrap();
        assert_eq!((est.tap_mic1, est.tap_mic2), (50, 52));
    }

    #[test]
    fn rejects_early_spurious_peak_present_in_only_one_channel() {
        // Channel 1 has a spurious early peak (hardware noise / case
        // reflection) at tap 20; channel 2 has nothing within the allowed
        // ±5-tap offset, so the search must skip it.
        let config = LosConfig::default();
        let h1 = profile(1920, &[(20, 0.5), (60, 0.9)], 0.02);
        let h2 = profile(1920, &[(62, 0.9)], 0.02);
        let est = dual_mic_los(&h1, &h2, &config).unwrap();
        assert_eq!((est.tap_mic1, est.tap_mic2), (60, 62));
        // A single-microphone estimator on channel 1 falls for the spur —
        // this is exactly the failure mode Fig. 11b measures.
        let single = single_mic_los(&h1, &config).unwrap();
        assert_eq!(single.tap_mic1, 20);
    }

    #[test]
    fn offset_constraint_uses_mic_separation() {
        let config = LosConfig::default();
        assert_eq!(config.max_offset_taps(), 5); // 0.16 m / 1500 m/s · 44.1 kHz ≈ 4.7
        let wide = LosConfig {
            mic_separation_m: 1.0,
            ..config
        };
        assert_eq!(wide.max_offset_taps(), 30);
    }

    #[test]
    fn below_threshold_profiles_yield_no_path() {
        let config = LosConfig::default();
        // Everything below noise floor + λ after normalisation has no peaks
        // above threshold other than... make a truly flat profile.
        let h = vec![0.5; 1920];
        assert!(matches!(
            dual_mic_los(&h, &h, &config),
            Err(RangingError::NoDirectPath)
        ));
        assert!(matches!(
            single_mic_los(&h, &config),
            Err(RangingError::NoDirectPath)
        ));
    }

    #[test]
    fn input_validation() {
        let config = LosConfig::default();
        assert!(dual_mic_los(&[], &[], &config).is_err());
        assert!(dual_mic_los(&[1.0; 10], &[1.0; 20], &config).is_err());
        assert!(single_mic_los(&[], &config).is_err());
    }

    #[test]
    fn arrival_sign_values() {
        let e = LosEstimate {
            tau_taps: 10.0,
            tap_mic1: 10,
            tap_mic2: 12,
        };
        assert_eq!(arrival_sign(&e), 1);
        let e = LosEstimate {
            tau_taps: 10.0,
            tap_mic1: 12,
            tap_mic2: 10,
        };
        assert_eq!(arrival_sign(&e), -1);
        let e = LosEstimate {
            tau_taps: 10.0,
            tap_mic1: 10,
            tap_mic2: 10,
        };
        assert_eq!(arrival_sign(&e), 0);
    }

    #[test]
    fn single_mic_equals_dual_when_channels_identical() {
        let config = LosConfig::default();
        let h = profile(1920, &[(33, 0.9), (70, 0.7)], 0.01);
        let dual = dual_mic_los(&h, &h, &config).unwrap();
        let single = single_mic_los(&h, &config).unwrap();
        assert_eq!(dual.tap_mic1, single.tap_mic1);
        assert_eq!(dual.tau_taps, single.tau_taps);
    }
}
