//! Streaming preamble-burst detection over long captures.
//!
//! A raw field recording is an hour of continuous hydrophone audio in
//! which the protocol's preamble appears a few thousand times. This
//! module finds every occurrence without ever materialising the file:
//! a [`BurstScanner`] consumes arbitrarily sized sample chunks, slides a
//! fixed analysis window over them, and runs each window through the
//! overlap-save [`MatchedFilter`] from `uw-dsp` — the same precomputed
//! template spectrum the ranging hot path uses.
//!
//! ## Determinism across chunkings
//!
//! The scanner partitions the *absolute* sample stream into fixed
//! windows (one matched-filter FFT block per window, consecutive windows
//! overlapping by `template_len − 1` samples so no lag is lost at a
//! boundary). Window boundaries depend only on absolute sample indices —
//! never on how the caller chunked its reads — so the concatenated
//! detections are **bitwise identical** for every chunking of the same
//! stream, from single-sample pushes to one whole-file push. The
//! property suite in `tests/burst_properties.rs` pins this.
//!
//! ## Memory bound
//!
//! Between pushes the scanner holds at most one analysis window
//! (`MatchedFilter::block_len()` samples) plus the detector's candidate
//! peak — a few hundred kilobytes regardless of recording length.

use crate::AudioError;
use uw_dsp::matched::MatchedFilter;

/// One detected preamble occurrence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Absolute sample index at which the template alignment peaked:
    /// the first sample of the detected preamble.
    pub position: u64,
    /// Normalised correlation score at the peak, in `[-1, 1]`.
    pub score: f64,
}

/// Streaming peak detector state: the best above-threshold candidate not
/// yet separated from later samples by the refractory gap.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    position: u64,
    score: f64,
}

/// A bounded-memory streaming burst detector for one fixed template.
///
/// Feed samples with [`BurstScanner::push`] (any chunk size); every call
/// returns the bursts finalised so far, and [`BurstScanner::finish`]
/// flushes the tail. See the module docs for the determinism and memory
/// guarantees.
#[derive(Debug)]
pub struct BurstScanner {
    filter: MatchedFilter,
    threshold: f64,
    min_gap: u64,
    /// Unprocessed samples; `buffer[0]` is absolute index `base`.
    buffer: Vec<f64>,
    base: u64,
    pending: Option<Candidate>,
    corr: Vec<f64>,
}

impl BurstScanner {
    /// Builds a scanner for `template`.
    ///
    /// `threshold` is the normalised-correlation level a peak must reach
    /// to count as a burst (typically 0.3–0.6: template-free noise
    /// correlates at `O(1/√template_len)`, a real preamble near 1).
    /// `min_gap` is the refractory distance in samples: candidate peaks
    /// closer than this merge into the strongest one, and a candidate is
    /// only finalised once the scan has advanced `min_gap` samples past
    /// it. Use at least the template's autocorrelation sidelobe span
    /// (the template length is a safe default).
    pub fn new(template: &[f64], threshold: f64, min_gap: usize) -> Result<Self, AudioError> {
        if !(threshold.is_finite() && threshold > 0.0 && threshold <= 1.0) {
            return Err(AudioError::InvalidParameter {
                reason: format!("burst threshold must be in (0, 1], got {threshold}"),
            });
        }
        if min_gap == 0 {
            return Err(AudioError::InvalidParameter {
                reason: "burst refractory gap must be at least 1 sample".into(),
            });
        }
        let filter = MatchedFilter::new(template).map_err(dsp_err)?;
        Ok(Self {
            filter,
            threshold,
            min_gap: min_gap as u64,
            buffer: Vec::new(),
            base: 0,
            pending: None,
            corr: Vec::new(),
        })
    }

    /// Length of the template this scanner searches for.
    pub fn template_len(&self) -> usize {
        self.filter.template_len()
    }

    /// Samples of new input consumed per analysis window (one matched
    /// filter FFT block yields this many correlation lags).
    fn window_step(&self) -> usize {
        self.filter.block_len() - self.filter.template_len() + 1
    }

    /// Feeds a chunk of samples and returns every burst finalised by it.
    /// Chunks may be any size, including empty; detections are identical
    /// for every chunking of the same stream.
    pub fn push(&mut self, samples: &[f64]) -> Result<Vec<Burst>, AudioError> {
        self.buffer.extend_from_slice(samples);
        let mut found = Vec::new();
        let window = self.filter.block_len();
        let step = self.window_step();
        while self.buffer.len() >= window {
            let mut corr = std::mem::take(&mut self.corr);
            self.filter
                .correlate_normalized_into(&self.buffer[..window], &mut corr)
                .map_err(dsp_err)?;
            self.detect(&corr, self.base, &mut found);
            self.corr = corr;
            // Keep the template_len − 1 tail samples: they participate in
            // the next window's first lags.
            self.buffer.drain(..step);
            self.base += step as u64;
        }
        Ok(found)
    }

    /// Processes the remaining tail (shorter than one full window) and
    /// flushes the last candidate peak, consuming the scanner.
    pub fn finish(mut self) -> Result<Vec<Burst>, AudioError> {
        let mut found = Vec::new();
        if self.buffer.len() >= self.filter.template_len() {
            let mut corr = std::mem::take(&mut self.corr);
            self.filter
                .correlate_normalized_into(&self.buffer, &mut corr)
                .map_err(dsp_err)?;
            self.detect(&corr, self.base, &mut found);
            self.corr = corr;
        }
        if let Some(c) = self.pending.take() {
            found.push(Burst {
                position: c.position,
                score: c.score,
            });
        }
        Ok(found)
    }

    /// Runs the streaming peak state machine over one window of
    /// correlation lags starting at absolute index `base`.
    fn detect(&mut self, corr: &[f64], base: u64, found: &mut Vec<Burst>) {
        for (k, &v) in corr.iter().enumerate() {
            let idx = base + k as u64;
            if let Some(c) = self.pending {
                if idx - c.position > self.min_gap {
                    found.push(Burst {
                        position: c.position,
                        score: c.score,
                    });
                    self.pending = None;
                }
            }
            match &mut self.pending {
                Some(c) => {
                    // Within the refractory span a higher lag takes over:
                    // the candidate tracks the true peak, not the first
                    // threshold crossing.
                    if v > c.score {
                        c.position = idx;
                        c.score = v;
                    }
                }
                None => {
                    if v >= self.threshold {
                        self.pending = Some(Candidate {
                            position: idx,
                            score: v,
                        });
                    }
                }
            }
        }
    }
}

/// Scans a fully materialised signal in one pass — the whole-file
/// reference the streaming scanner is pinned against.
pub fn scan_all(
    template: &[f64],
    signal: &[f64],
    threshold: f64,
    min_gap: usize,
) -> Result<Vec<Burst>, AudioError> {
    let mut scanner = BurstScanner::new(template, threshold, min_gap)?;
    let mut found = scanner.push(signal)?;
    found.extend(scanner.finish()?);
    Ok(found)
}

fn dsp_err(e: uw_dsp::DspError) -> AudioError {
    AudioError::InvalidParameter {
        reason: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short linear up-chirp: broadband enough for a sharp
    /// autocorrelation peak.
    fn chirp(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let t = i as f64 / n as f64;
                (2.0 * std::f64::consts::PI * (200.0 * t + 1800.0 * t * t)).sin()
            })
            .collect()
    }

    fn plant(signal: &mut [f64], template: &[f64], at: usize, gain: f64) {
        for (i, &t) in template.iter().enumerate() {
            signal[at + i] += t * gain;
        }
    }

    #[test]
    fn finds_planted_bursts_at_exact_positions() {
        let template = chirp(512);
        let mut signal = vec![0.0; 20_000];
        for &at in &[1_000usize, 7_333, 15_000] {
            plant(&mut signal, &template, at, 0.7);
        }
        let bursts = scan_all(&template, &signal, 0.5, 512).unwrap();
        let positions: Vec<u64> = bursts.iter().map(|b| b.position).collect();
        assert_eq!(positions, vec![1_000, 7_333, 15_000]);
        for b in &bursts {
            assert!(b.score > 0.99, "clean burst scored {}", b.score);
        }
    }

    #[test]
    fn silence_and_tones_yield_no_bursts() {
        let template = chirp(512);
        let silence = vec![0.0; 8_192];
        assert!(scan_all(&template, &silence, 0.3, 512).unwrap().is_empty());
        let tone: Vec<f64> = (0..8_192).map(|i| (i as f64 * 0.05).sin()).collect();
        assert!(scan_all(&template, &tone, 0.5, 512).unwrap().is_empty());
    }

    #[test]
    fn bursts_closer_than_the_gap_merge_to_the_strongest() {
        let template = chirp(256);
        let mut signal = vec![0.0; 4_096];
        plant(&mut signal, &template, 1_000, 0.4);
        plant(&mut signal, &template, 1_100, 0.9); // within min_gap of the first
        let bursts = scan_all(&template, &signal, 0.2, 256).unwrap();
        assert_eq!(bursts.len(), 1);
        assert_eq!(bursts[0].position, 1_100);
    }

    #[test]
    fn chunked_scan_matches_whole_scan_bitwise() {
        let template = chirp(300);
        let mut signal = vec![0.0; 30_000];
        for (k, &at) in [500usize, 6_000, 12_345, 25_000].iter().enumerate() {
            plant(&mut signal, &template, at, 0.5 + 0.1 * k as f64);
        }
        // Add a deterministic pseudo-noise floor.
        let mut x = 0x2545_f491_4f6c_dd1du64;
        for s in signal.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *s += ((x >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.05;
        }
        let whole = scan_all(&template, &signal, 0.4, 300).unwrap();
        assert_eq!(whole.len(), 4);
        for chunk in [1usize, 7, 300, 4_096, 16_384] {
            let mut scanner = BurstScanner::new(&template, 0.4, 300).unwrap();
            let mut got = Vec::new();
            for c in signal.chunks(chunk) {
                got.extend(scanner.push(c).unwrap());
            }
            got.extend(scanner.finish().unwrap());
            assert_eq!(got.len(), whole.len(), "chunk size {chunk}");
            for (a, b) in got.iter().zip(&whole) {
                assert_eq!(a.position, b.position, "chunk size {chunk}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "chunk size {chunk}");
            }
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        let template = chirp(64);
        assert!(BurstScanner::new(&template, 0.0, 64).is_err());
        assert!(BurstScanner::new(&template, 1.5, 64).is_err());
        assert!(BurstScanner::new(&template, f64::NAN, 64).is_err());
        assert!(BurstScanner::new(&template, 0.5, 0).is_err());
        assert!(BurstScanner::new(&[], 0.5, 64).is_err());
        assert!(BurstScanner::new(&[0.0; 64], 0.5, 64).is_err());
    }
}
