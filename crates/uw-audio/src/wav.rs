//! Hand-rolled RIFF/WAVE encoding and decoding.
//!
//! Covers what dive recorders and phone audio stacks actually emit: PCM16,
//! PCM24, PCM32 and IEEE float32 samples, mono or interleaved multichannel,
//! in a plain `RIFF`/`WAVE` container. The reader scans the chunk list once
//! at open (tolerating unknown chunks and odd-size padding), then streams
//! the data chunk in caller-sized blocks so arbitrarily long recordings are
//! decoded incrementally; the writer streams samples out and patches the
//! declared sizes on finalize. Both sides support small custom metadata
//! chunks, which the replay layer uses for its segment directory.
//!
//! Every malformed input — bad magic, impossible field combinations,
//! declared sizes beyond the end of the file — is a structured
//! [`AudioError`], never a panic.

use crate::{AudioError, Result};
use std::io::{Read, Seek, SeekFrom, Write};

/// Sample encodings supported by the reader and writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFormat {
    /// 16-bit signed integer PCM.
    Pcm16,
    /// 24-bit signed integer PCM (3 bytes per sample).
    Pcm24,
    /// 32-bit signed integer PCM.
    Pcm32,
    /// 32-bit IEEE float (WAVE format code 3).
    Float32,
}

impl SampleFormat {
    /// Bytes occupied by one sample.
    pub fn bytes_per_sample(&self) -> usize {
        match self {
            SampleFormat::Pcm16 => 2,
            SampleFormat::Pcm24 => 3,
            SampleFormat::Pcm32 | SampleFormat::Float32 => 4,
        }
    }

    /// Bits per sample as declared in the `fmt ` chunk.
    pub fn bits_per_sample(&self) -> u16 {
        (self.bytes_per_sample() * 8) as u16
    }

    /// WAVE format code: 1 for integer PCM, 3 for IEEE float.
    pub fn format_code(&self) -> u16 {
        match self {
            SampleFormat::Float32 => 3,
            _ => 1,
        }
    }

    /// The four formats, for table-driven tests and benches.
    pub const ALL: [SampleFormat; 4] = [
        SampleFormat::Pcm16,
        SampleFormat::Pcm24,
        SampleFormat::Pcm32,
        SampleFormat::Float32,
    ];

    /// Short lowercase name (`pcm16`, …).
    pub fn name(&self) -> &'static str {
        match self {
            SampleFormat::Pcm16 => "pcm16",
            SampleFormat::Pcm24 => "pcm24",
            SampleFormat::Pcm32 => "pcm32",
            SampleFormat::Float32 => "float32",
        }
    }

    fn from_fmt(format_code: u16, bits: u16) -> Result<Self> {
        match (format_code, bits) {
            (1, 16) => Ok(SampleFormat::Pcm16),
            (1, 24) => Ok(SampleFormat::Pcm24),
            (1, 32) => Ok(SampleFormat::Pcm32),
            (3, 32) => Ok(SampleFormat::Float32),
            _ => Err(AudioError::UnsupportedFormat {
                reason: format!("format code {format_code} with {bits} bits per sample"),
            }),
        }
    }

    /// Encodes one normalized sample into `out` (little-endian). Values
    /// outside [-1, 1] are clamped, as a real ADC would.
    fn encode(&self, value: f64, out: &mut Vec<u8>) {
        let v = value.clamp(-1.0, 1.0);
        match self {
            SampleFormat::Pcm16 => {
                let q = (v * 32767.0).round() as i16;
                out.extend_from_slice(&q.to_le_bytes());
            }
            SampleFormat::Pcm24 => {
                let q = (v * 8_388_607.0).round() as i32;
                out.extend_from_slice(&q.to_le_bytes()[..3]);
            }
            SampleFormat::Pcm32 => {
                let q = (v * 2_147_483_647.0).round() as i64 as i32;
                out.extend_from_slice(&q.to_le_bytes());
            }
            SampleFormat::Float32 => {
                out.extend_from_slice(&(v as f32).to_le_bytes());
            }
        }
    }

    /// Decodes one little-endian sample from `bytes` into a normalized
    /// `f64`. The scaling mirrors [`SampleFormat::encode`], so decoding a
    /// value our writer produced and re-encoding it is byte-exact.
    fn decode(&self, bytes: &[u8]) -> f64 {
        match self {
            SampleFormat::Pcm16 => {
                let q = i16::from_le_bytes([bytes[0], bytes[1]]);
                q as f64 / 32767.0
            }
            SampleFormat::Pcm24 => {
                // Sign-extend the 24-bit value through the top byte.
                let q = i32::from_le_bytes([0, bytes[0], bytes[1], bytes[2]]) >> 8;
                q as f64 / 8_388_607.0
            }
            SampleFormat::Pcm32 => {
                let q = i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
                q as f64 / 2_147_483_647.0
            }
            SampleFormat::Float32 => {
                f32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]) as f64
            }
        }
    }
}

/// Shape of a WAV stream: rate, channel count and sample encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WavSpec {
    /// Sampling rate in Hz.
    pub sample_rate: u32,
    /// Interleaved channel count (1 = mono).
    pub channels: u16,
    /// Sample encoding.
    pub format: SampleFormat,
}

impl WavSpec {
    /// Bytes per interleaved frame (one sample per channel).
    pub fn bytes_per_frame(&self) -> usize {
        self.format.bytes_per_sample() * self.channels as usize
    }

    fn validate(&self) -> Result<()> {
        if self.channels == 0 {
            return Err(AudioError::InvalidParameter {
                reason: "channel count must be at least 1".into(),
            });
        }
        if self.sample_rate == 0 {
            return Err(AudioError::InvalidParameter {
                reason: "sample rate must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Largest custom metadata chunk the writer accepts and the reader
/// retains (directories and annotations, not bulk data).
pub const MAX_METADATA_CHUNK_BYTES: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Streaming WAV encoder over any `Write + Seek` sink.
///
/// Usage: [`WavWriter::new`] → optional [`WavWriter::add_chunk`] calls →
/// [`WavWriter::write_interleaved`] as samples become available →
/// [`WavWriter::finalize`], which patches the RIFF and `data` sizes and
/// returns the sink. Dropping without finalizing leaves the declared sizes
/// zero — readers will reject the file, which beats silently truncated
/// audio.
#[derive(Debug)]
pub struct WavWriter<W: Write + Seek> {
    sink: W,
    spec: WavSpec,
    /// Custom chunks staged until the header is emitted.
    pending_chunks: Vec<([u8; 4], Vec<u8>)>,
    header_written: bool,
    /// Offset of the `data` chunk's size field, patched on finalize.
    data_size_offset: u64,
    data_bytes: u64,
    /// Staging buffer reused across writes.
    encode_buf: Vec<u8>,
}

impl<W: Write + Seek> WavWriter<W> {
    /// Creates a writer over `sink`. Nothing is written until the first
    /// samples (or custom chunks) force the header out.
    pub fn new(sink: W, spec: WavSpec) -> Result<Self> {
        spec.validate()?;
        Ok(Self {
            sink,
            spec,
            pending_chunks: Vec::new(),
            header_written: false,
            data_size_offset: 0,
            data_bytes: 0,
            encode_buf: Vec::new(),
        })
    }

    /// The spec this writer encodes to.
    pub fn spec(&self) -> &WavSpec {
        &self.spec
    }

    /// Stages a custom metadata chunk, written between `fmt ` and `data`.
    /// Must be called before the first [`WavWriter::write_interleaved`];
    /// the id must not collide with the structural chunks.
    pub fn add_chunk(&mut self, id: [u8; 4], data: &[u8]) -> Result<()> {
        if self.header_written {
            return Err(AudioError::InvalidParameter {
                reason: "custom chunks must be added before any samples are written".into(),
            });
        }
        if matches!(&id, b"RIFF" | b"WAVE" | b"fmt " | b"data") {
            return Err(AudioError::InvalidParameter {
                reason: format!(
                    "chunk id {:?} collides with a structural chunk",
                    String::from_utf8_lossy(&id)
                ),
            });
        }
        if data.len() > MAX_METADATA_CHUNK_BYTES {
            return Err(AudioError::InvalidParameter {
                reason: format!(
                    "metadata chunk of {} bytes exceeds the {} byte cap",
                    data.len(),
                    MAX_METADATA_CHUNK_BYTES
                ),
            });
        }
        self.pending_chunks.push((id, data.to_vec()));
        Ok(())
    }

    fn write_header(&mut self) -> Result<()> {
        // RIFF size is patched on finalize; 0 for now.
        self.sink.write_all(b"RIFF")?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.sink.write_all(b"WAVE")?;

        // fmt chunk (16-byte PCM layout; float uses the same fields).
        let spec = self.spec;
        self.sink.write_all(b"fmt ")?;
        self.sink.write_all(&16u32.to_le_bytes())?;
        self.sink
            .write_all(&spec.format.format_code().to_le_bytes())?;
        self.sink.write_all(&spec.channels.to_le_bytes())?;
        self.sink.write_all(&spec.sample_rate.to_le_bytes())?;
        let byte_rate = spec.sample_rate as u64 * spec.bytes_per_frame() as u64;
        self.sink.write_all(&(byte_rate as u32).to_le_bytes())?;
        self.sink
            .write_all(&(spec.bytes_per_frame() as u16).to_le_bytes())?;
        self.sink
            .write_all(&spec.format.bits_per_sample().to_le_bytes())?;

        // Custom metadata chunks, each padded to even length.
        for (id, data) in std::mem::take(&mut self.pending_chunks) {
            self.sink.write_all(&id)?;
            self.sink.write_all(&(data.len() as u32).to_le_bytes())?;
            self.sink.write_all(&data)?;
            if data.len() % 2 == 1 {
                self.sink.write_all(&[0])?;
            }
        }

        // data chunk header; size patched on finalize.
        self.sink.write_all(b"data")?;
        self.data_size_offset = self.sink.stream_position()?;
        self.sink.write_all(&0u32.to_le_bytes())?;
        self.header_written = true;
        Ok(())
    }

    /// Encodes and appends interleaved samples (`len` must be a multiple
    /// of the channel count). Values outside [-1, 1] are clamped.
    pub fn write_interleaved(&mut self, samples: &[f64]) -> Result<()> {
        if !samples.len().is_multiple_of(self.spec.channels as usize) {
            return Err(AudioError::InvalidParameter {
                reason: format!(
                    "{} samples do not form whole frames of {} channels",
                    samples.len(),
                    self.spec.channels
                ),
            });
        }
        if !self.header_written {
            self.write_header()?;
        }
        self.encode_buf.clear();
        self.encode_buf
            .reserve(samples.len() * self.spec.format.bytes_per_sample());
        for &s in samples {
            self.spec.format.encode(s, &mut self.encode_buf);
        }
        self.sink.write_all(&self.encode_buf)?;
        self.data_bytes += self.encode_buf.len() as u64;
        Ok(())
    }

    /// Frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.data_bytes / self.spec.bytes_per_frame() as u64
    }

    /// Pads the data chunk if needed, patches the declared sizes and
    /// returns the sink.
    pub fn finalize(mut self) -> Result<W> {
        if !self.header_written {
            self.write_header()?;
        }
        if self.data_bytes % 2 == 1 {
            // RIFF pads odd chunks with one byte that is not part of the
            // declared size (hit by e.g. odd-frame-count PCM24 mono).
            self.sink.write_all(&[0])?;
        }
        let end = self.sink.stream_position()?;
        if self.data_bytes > u32::MAX as u64 || end - 8 > u32::MAX as u64 {
            return Err(AudioError::InvalidParameter {
                reason: "audio exceeds the 4 GiB RIFF size limit".into(),
            });
        }
        self.sink.seek(SeekFrom::Start(4))?;
        self.sink.write_all(&((end - 8) as u32).to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(self.data_size_offset))?;
        self.sink
            .write_all(&(self.data_bytes as u32).to_le_bytes())?;
        self.sink.seek(SeekFrom::Start(end))?;
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Encodes interleaved samples straight to an in-memory WAV image.
pub fn write_wav_bytes(spec: WavSpec, interleaved: &[f64]) -> Result<Vec<u8>> {
    let mut writer = WavWriter::new(std::io::Cursor::new(Vec::new()), spec)?;
    writer.write_interleaved(interleaved)?;
    Ok(writer.finalize()?.into_inner())
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Streaming WAV decoder over any `Read + Seek` source.
///
/// The constructor scans the chunk list (validating sizes against the
/// actual stream length and retaining small metadata chunks), then
/// positions the stream at the start of the audio; [`WavReader::read_frames`]
/// decodes from there in caller-sized blocks.
#[derive(Debug)]
pub struct WavReader<R: Read + Seek> {
    source: R,
    spec: WavSpec,
    /// Non-structural chunks found before/after the data chunk.
    chunks: Vec<([u8; 4], Vec<u8>)>,
    data_offset: u64,
    total_frames: u64,
    next_frame: u64,
    read_buf: Vec<u8>,
}

fn read_exact_or<R: Read>(source: &mut R, buf: &mut [u8], what: &str) -> Result<()> {
    source.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            AudioError::Truncated {
                reason: format!("file ends inside {what}"),
            }
        } else {
            AudioError::from(e)
        }
    })
}

impl<R: Read + Seek> WavReader<R> {
    /// Opens a WAV stream: parses and validates the container, records the
    /// audio extent, and leaves the source positioned at the first frame.
    pub fn new(mut source: R) -> Result<Self> {
        let stream_len = source.seek(SeekFrom::End(0))?;
        source.seek(SeekFrom::Start(0))?;

        let mut magic = [0u8; 12];
        read_exact_or(&mut source, &mut magic, "the RIFF header")?;
        if &magic[0..4] != b"RIFF" {
            return Err(AudioError::MalformedFile {
                reason: "missing RIFF magic".into(),
            });
        }
        if &magic[8..12] != b"WAVE" {
            return Err(AudioError::MalformedFile {
                reason: "RIFF form type is not WAVE".into(),
            });
        }
        let riff_size = u32::from_le_bytes([magic[4], magic[5], magic[6], magic[7]]) as u64;
        if riff_size + 8 > stream_len {
            return Err(AudioError::Truncated {
                reason: format!(
                    "RIFF declares {} bytes but the file holds {}",
                    riff_size + 8,
                    stream_len
                ),
            });
        }

        let mut spec: Option<WavSpec> = None;
        let mut data: Option<(u64, u64)> = None;
        let mut chunks = Vec::new();
        let mut pos = 12u64;
        // Scan only the declared RIFF extent: bytes after it (ID3 tags and
        // similar trailers that phone recorders append) are not chunks and
        // must not fail the parse.
        let riff_end = riff_size + 8;
        while pos + 8 <= riff_end {
            source.seek(SeekFrom::Start(pos))?;
            let mut header = [0u8; 8];
            read_exact_or(&mut source, &mut header, "a chunk header")?;
            let id = [header[0], header[1], header[2], header[3]];
            let size = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as u64;
            let body = pos + 8;
            if body + size > riff_end {
                return Err(AudioError::Truncated {
                    reason: format!(
                        "chunk {:?} declares {} bytes but only {} remain in the RIFF",
                        String::from_utf8_lossy(&id),
                        size,
                        riff_end - body
                    ),
                });
            }
            match &id {
                b"fmt " => {
                    if size < 16 {
                        return Err(AudioError::MalformedFile {
                            reason: format!("fmt chunk is {size} bytes, need at least 16"),
                        });
                    }
                    let mut fmt = [0u8; 16];
                    read_exact_or(&mut source, &mut fmt, "the fmt chunk")?;
                    let format_code = u16::from_le_bytes([fmt[0], fmt[1]]);
                    let channels = u16::from_le_bytes([fmt[2], fmt[3]]);
                    let sample_rate = u32::from_le_bytes([fmt[4], fmt[5], fmt[6], fmt[7]]);
                    let block_align = u16::from_le_bytes([fmt[12], fmt[13]]);
                    let bits = u16::from_le_bytes([fmt[14], fmt[15]]);
                    let format = SampleFormat::from_fmt(format_code, bits)?;
                    let parsed = WavSpec {
                        sample_rate,
                        channels,
                        format,
                    };
                    parsed.validate().map_err(|e| AudioError::MalformedFile {
                        reason: e.to_string(),
                    })?;
                    if block_align as usize != parsed.bytes_per_frame() {
                        return Err(AudioError::MalformedFile {
                            reason: format!(
                                "block align {} does not match {} channels × {} bytes",
                                block_align,
                                channels,
                                format.bytes_per_sample()
                            ),
                        });
                    }
                    spec = Some(parsed);
                }
                b"data" => {
                    if data.is_some() {
                        return Err(AudioError::MalformedFile {
                            reason: "multiple data chunks".into(),
                        });
                    }
                    data = Some((body, size));
                }
                _ => {
                    if size as usize <= MAX_METADATA_CHUNK_BYTES {
                        let mut content = vec![0u8; size as usize];
                        read_exact_or(
                            &mut source,
                            &mut content,
                            &format!("chunk {:?}", String::from_utf8_lossy(&id)),
                        )?;
                        chunks.push((id, content));
                    }
                }
            }
            // Chunks are word-aligned: odd sizes carry one pad byte.
            pos = body + size + (size % 2);
        }

        let spec = spec.ok_or_else(|| AudioError::MalformedFile {
            reason: "no fmt chunk".into(),
        })?;
        let (data_offset, data_bytes) = data.ok_or_else(|| AudioError::MalformedFile {
            reason: "no data chunk".into(),
        })?;
        let frame_bytes = spec.bytes_per_frame() as u64;
        if data_bytes % frame_bytes != 0 {
            return Err(AudioError::MalformedFile {
                reason: format!(
                    "data chunk of {data_bytes} bytes is not a whole number of {frame_bytes}-byte frames"
                ),
            });
        }
        source.seek(SeekFrom::Start(data_offset))?;
        Ok(Self {
            source,
            spec,
            chunks,
            data_offset,
            total_frames: data_bytes / frame_bytes,
            next_frame: 0,
            read_buf: Vec::new(),
        })
    }

    /// The stream's spec.
    pub fn spec(&self) -> &WavSpec {
        &self.spec
    }

    /// Total frames in the data chunk.
    pub fn total_frames(&self) -> u64 {
        self.total_frames
    }

    /// Frames not yet consumed by [`WavReader::read_frames`].
    pub fn frames_remaining(&self) -> u64 {
        self.total_frames - self.next_frame
    }

    /// Looks up a retained metadata chunk by id.
    pub fn chunk(&self, id: [u8; 4]) -> Option<&[u8]> {
        self.chunks
            .iter()
            .find(|(cid, _)| *cid == id)
            .map(|(_, data)| data.as_slice())
    }

    /// All retained metadata chunks in file order.
    pub fn chunks(&self) -> &[([u8; 4], Vec<u8>)] {
        &self.chunks
    }

    /// Repositions the stream cursor to an absolute frame index (for
    /// segment directories that index into one long recording).
    pub fn seek_to_frame(&mut self, frame: u64) -> Result<()> {
        if frame > self.total_frames {
            return Err(AudioError::InvalidParameter {
                reason: format!(
                    "frame {frame} is beyond the stream's {} frames",
                    self.total_frames
                ),
            });
        }
        self.source.seek(SeekFrom::Start(
            self.data_offset + frame * self.spec.bytes_per_frame() as u64,
        ))?;
        self.next_frame = frame;
        Ok(())
    }

    /// Decodes up to `max_frames` interleaved frames from the current
    /// position. Returns fewer (or an empty vector) at the end of the
    /// stream; a stream that ends before its declared size is a
    /// [`AudioError::Truncated`] error.
    pub fn read_frames(&mut self, max_frames: usize) -> Result<Vec<f64>> {
        let take = (self.frames_remaining().min(max_frames as u64)) as usize;
        if take == 0 {
            return Ok(Vec::new());
        }
        let frame_bytes = self.spec.bytes_per_frame();
        self.read_buf.resize(take * frame_bytes, 0);
        let mut filled = 0;
        while filled < self.read_buf.len() {
            let n = self.source.read(&mut self.read_buf[filled..])?;
            if n == 0 {
                return Err(AudioError::Truncated {
                    reason: format!(
                        "audio data ends {} bytes short of the declared size",
                        self.read_buf.len() - filled
                    ),
                });
            }
            filled += n;
        }
        let bytes_per_sample = self.spec.format.bytes_per_sample();
        let mut out = Vec::with_capacity(take * self.spec.channels as usize);
        for sample in self.read_buf.chunks_exact(bytes_per_sample) {
            out.push(self.spec.format.decode(sample));
        }
        self.next_frame += take as u64;
        Ok(out)
    }

    /// Decodes the remainder of the stream into per-channel buffers
    /// (convenience for short files; long recordings should use
    /// [`WavReader::read_frames`] block by block).
    pub fn read_all_channels(&mut self) -> Result<Vec<Vec<f64>>> {
        let channels = self.spec.channels as usize;
        let mut out = vec![Vec::new(); channels];
        loop {
            let block = self.read_frames(16_384)?;
            if block.is_empty() {
                break;
            }
            for frame in block.chunks_exact(channels) {
                for (c, &s) in frame.iter().enumerate() {
                    out[c].push(s);
                }
            }
        }
        Ok(out)
    }
}

/// Opens an in-memory WAV image.
pub fn read_wav_bytes(bytes: Vec<u8>) -> Result<WavReader<std::io::Cursor<Vec<u8>>>> {
    WavReader::new(std::io::Cursor::new(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn spec(format: SampleFormat, channels: u16) -> WavSpec {
        WavSpec {
            sample_rate: 44_100,
            channels,
            format,
        }
    }

    fn tone(n: usize) -> Vec<f64> {
        (0..n).map(|i| (i as f64 * 0.037).sin() * 0.8).collect()
    }

    #[test]
    fn mono_roundtrip_all_formats() {
        for format in SampleFormat::ALL {
            let samples = tone(500);
            let bytes = write_wav_bytes(spec(format, 1), &samples).unwrap();
            let mut reader = read_wav_bytes(bytes).unwrap();
            assert_eq!(reader.spec().format, format);
            assert_eq!(reader.total_frames(), 500);
            let decoded = reader.read_frames(1000).unwrap();
            assert_eq!(decoded.len(), 500);
            let tol = match format {
                SampleFormat::Pcm16 => 2e-4,
                SampleFormat::Pcm24 => 1e-6,
                SampleFormat::Pcm32 => 1e-9,
                SampleFormat::Float32 => 1e-7,
            };
            for (a, b) in samples.iter().zip(decoded.iter()) {
                assert!((a - b).abs() < tol, "{format:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn chunked_reads_decode_identically_to_one_shot() {
        let samples = tone(1000);
        let bytes = write_wav_bytes(spec(SampleFormat::Pcm24, 2), &samples).unwrap();
        let mut whole = read_wav_bytes(bytes.clone()).unwrap();
        let one_shot = whole.read_frames(usize::MAX >> 1).unwrap();
        let mut chunked_reader = read_wav_bytes(bytes).unwrap();
        let mut chunked = Vec::new();
        loop {
            let block = chunked_reader.read_frames(37).unwrap();
            if block.is_empty() {
                break;
            }
            chunked.extend(block);
        }
        assert_eq!(one_shot, chunked);
        assert_eq!(chunked_reader.frames_remaining(), 0);
    }

    #[test]
    fn custom_chunks_survive_and_pad_to_even() {
        let mut writer =
            WavWriter::new(Cursor::new(Vec::new()), spec(SampleFormat::Pcm16, 1)).unwrap();
        writer.add_chunk(*b"uwRD", &[1, 2, 3]).unwrap(); // odd length → padded
        writer.write_interleaved(&tone(10)).unwrap();
        // Chunks cannot be added after samples.
        assert!(writer.add_chunk(*b"late", &[0]).is_err());
        let bytes = writer.finalize().unwrap().into_inner();
        let reader = read_wav_bytes(bytes).unwrap();
        assert_eq!(reader.chunk(*b"uwRD"), Some(&[1u8, 2, 3][..]));
        assert_eq!(reader.chunk(*b"none"), None);
        assert_eq!(reader.total_frames(), 10);
    }

    #[test]
    fn structural_chunk_ids_are_rejected() {
        let mut writer =
            WavWriter::new(Cursor::new(Vec::new()), spec(SampleFormat::Pcm16, 1)).unwrap();
        assert!(writer.add_chunk(*b"data", &[0]).is_err());
        assert!(writer.add_chunk(*b"fmt ", &[0]).is_err());
    }

    #[test]
    fn partial_frames_are_rejected_by_the_writer() {
        let mut writer =
            WavWriter::new(Cursor::new(Vec::new()), spec(SampleFormat::Pcm16, 2)).unwrap();
        assert!(writer.write_interleaved(&[0.0; 3]).is_err());
    }

    #[test]
    fn seeking_rewinds_the_stream() {
        let samples = tone(100);
        let bytes = write_wav_bytes(spec(SampleFormat::Float32, 1), &samples).unwrap();
        let mut reader = read_wav_bytes(bytes).unwrap();
        let first = reader.read_frames(100).unwrap();
        reader.seek_to_frame(40).unwrap();
        let again = reader.read_frames(10).unwrap();
        assert_eq!(&first[40..50], &again[..]);
        assert!(reader.seek_to_frame(101).is_err());
    }

    #[test]
    fn trailing_bytes_after_the_riff_are_tolerated() {
        // Phone recorders and tag editors append trailers (e.g. ID3) after
        // the RIFF extent; they are not chunks and must not fail the parse.
        let samples = tone(64);
        let mut bytes = write_wav_bytes(spec(SampleFormat::Pcm16, 1), &samples).unwrap();
        bytes.extend_from_slice(b"ID3\x04junk trailer that is not a chunk");
        let mut reader = read_wav_bytes(bytes).unwrap();
        assert_eq!(reader.total_frames(), 64);
        assert_eq!(reader.read_frames(100).unwrap().len(), 64);
    }

    #[test]
    fn clipping_is_clamped_not_wrapped() {
        let bytes = write_wav_bytes(spec(SampleFormat::Pcm16, 1), &[2.0, -2.0]).unwrap();
        let mut reader = read_wav_bytes(bytes).unwrap();
        let decoded = reader.read_frames(2).unwrap();
        assert!((decoded[0] - 1.0).abs() < 1e-9);
        assert!((decoded[1] + 1.0).abs() < 1e-9);
    }
}
