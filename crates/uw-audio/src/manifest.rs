//! Campaign manifest: the durable record of a blind import.
//!
//! Scanning an hour of raw audio is expensive; re-running the matched
//! filter every time a matrix wants the campaign would dominate every
//! evaluation. A [`CampaignManifest`] captures everything the scan
//! learned — which recording, where every (round, device) burst segment
//! lives as frame ranges, the per-device clock-skew estimates, and the
//! scenario axes the campaign was captured under — in a compact binary
//! format (`uwCM` v1) that sits next to the WAV. Loading a campaign is
//! then a cheap seek-and-slice pass.
//!
//! The codec is strict in both directions: every field is length-guarded
//! against hostile counts, parsing never panics on truncated or corrupt
//! bytes (`tests/manifest_fuzz.rs` drives every byte-level mutation), and
//! trailing bytes after the last segment are rejected so a manifest has
//! exactly one valid encoding.
//!
//! Scenario axes travel as short UTF-8 slugs (`"dock"`, `"clear"`,
//! `"static"`, `"f64"`) rather than enum tags: `uw-audio` stays ignorant
//! of the evaluation layer's types, and `uw-eval` owns slug ↔ enum
//! mapping when it builds matrix cells from a manifest.

use crate::skew::SKEW_MAX_PPM;
use crate::{AudioError, Result};

/// File magic for the campaign manifest format.
pub const MANIFEST_MAGIC: &[u8; 4] = b"uwCM";
/// Current manifest format version.
pub const MANIFEST_VERSION: u8 = 1;

/// Encoded size of one [`SegmentRange`]: round u32 + device u32 +
/// start u64 + len u64.
const SEGMENT_BYTES: usize = 24;

/// One burst segment inside the continuous recording: the frame range
/// holding device `device`'s preamble capture for round `round`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRange {
    /// Protocol round index, `0..rounds`.
    pub round: u32,
    /// Responding device id, `1..n_devices` (device 0 is the leader,
    /// whose self-chirp anchors the grid and needs no segment).
    pub device: u32,
    /// First frame of the segment in the recording.
    pub start: u64,
    /// Segment length in frames; always non-zero in a valid manifest.
    pub len: u64,
}

/// A parsed (or freshly scanned) campaign manifest. See the module docs
/// for the wire layout and strictness guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignManifest {
    /// Recording file name the frame ranges refer to (relative path).
    pub recording: String,
    /// Environment axis slug (e.g. `"dock"`).
    pub environment: String,
    /// Channel-condition axis slug (e.g. `"clear"`).
    pub condition: String,
    /// Mobility axis slug (e.g. `"static"`).
    pub mobility: String,
    /// Numeric-path axis slug the campaign was captured against.
    pub numeric_path: String,
    /// Scenario seed the campaign corresponds to.
    pub seed: u64,
    /// Number of protocol rounds in the campaign.
    pub rounds: u32,
    /// Recording sample rate in Hz.
    pub sample_rate: u32,
    /// Device count including the leader (device 0).
    pub n_devices: u16,
    /// Estimated clock skew in ppm, one entry per device (leader first;
    /// the leader is the reference clock, so entry 0 is 0 by
    /// construction).
    pub skew_ppm: Vec<f64>,
    /// Frame ranges of every detected burst segment.
    pub segments: Vec<SegmentRange>,
}

impl CampaignManifest {
    /// Serialises the manifest to its `uwCM` v1 byte form.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        if self.skew_ppm.len() != self.n_devices as usize {
            return Err(invalid(format!(
                "skew table has {} entries for {} devices",
                self.skew_ppm.len(),
                self.n_devices
            )));
        }
        let mut out = Vec::with_capacity(64 + self.segments.len() * SEGMENT_BYTES);
        out.extend_from_slice(MANIFEST_MAGIC);
        out.push(MANIFEST_VERSION);
        put_str16(&mut out, "recording name", &self.recording)?;
        put_str8(&mut out, "environment slug", &self.environment)?;
        put_str8(&mut out, "condition slug", &self.condition)?;
        put_str8(&mut out, "mobility slug", &self.mobility)?;
        put_str8(&mut out, "numeric path slug", &self.numeric_path)?;
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.rounds.to_le_bytes());
        out.extend_from_slice(&self.sample_rate.to_le_bytes());
        out.extend_from_slice(&self.n_devices.to_le_bytes());
        for &ppm in &self.skew_ppm {
            out.extend_from_slice(&ppm.to_le_bytes());
        }
        let n_segments = u32::try_from(self.segments.len())
            .map_err(|_| invalid("segment count exceeds u32".to_string()))?;
        out.extend_from_slice(&n_segments.to_le_bytes());
        for s in &self.segments {
            out.extend_from_slice(&s.round.to_le_bytes());
            out.extend_from_slice(&s.device.to_le_bytes());
            out.extend_from_slice(&s.start.to_le_bytes());
            out.extend_from_slice(&s.len.to_le_bytes());
        }
        Ok(out)
    }

    /// Parses a manifest from bytes. Structured errors on any malformed,
    /// truncated, or trailing input — never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut cur = Cursor { bytes, pos: 0 };
        let magic = cur.take(4, "magic")?;
        if magic != MANIFEST_MAGIC {
            return Err(malformed(format!("bad magic {magic:02x?}")));
        }
        let version = cur.u8("version")?;
        if version != MANIFEST_VERSION {
            return Err(malformed(format!(
                "unsupported manifest version {version} (expected {MANIFEST_VERSION})"
            )));
        }
        let recording = cur.str16("recording name")?;
        let environment = cur.str8("environment slug")?;
        let condition = cur.str8("condition slug")?;
        let mobility = cur.str8("mobility slug")?;
        let numeric_path = cur.str8("numeric path slug")?;
        let seed = cur.u64("seed")?;
        let rounds = cur.u32("rounds")?;
        let sample_rate = cur.u32("sample rate")?;
        let n_devices = cur.u16("device count")?;
        if n_devices as usize > cur.remaining() / 8 {
            return Err(malformed(format!(
                "skew table claims {n_devices} devices but only {} bytes remain",
                cur.remaining()
            )));
        }
        let mut skew_ppm = Vec::with_capacity(n_devices as usize);
        for i in 0..n_devices {
            skew_ppm.push(f64::from_le_bytes(
                cur.take(8, "skew entry")?.try_into().unwrap_or([0; 8]),
            ));
            if !skew_ppm[i as usize].is_finite() {
                return Err(malformed(format!("non-finite skew for device {i}")));
            }
        }
        let n_segments = cur.u32("segment count")?;
        if n_segments as usize > cur.remaining() / SEGMENT_BYTES {
            return Err(malformed(format!(
                "segment table claims {n_segments} entries but only {} bytes remain",
                cur.remaining()
            )));
        }
        let mut segments = Vec::with_capacity(n_segments as usize);
        for _ in 0..n_segments {
            segments.push(SegmentRange {
                round: cur.u32("segment round")?,
                device: cur.u32("segment device")?,
                start: cur.u64("segment start")?,
                len: cur.u64("segment length")?,
            });
        }
        if cur.remaining() != 0 {
            return Err(malformed(format!(
                "{} trailing bytes after segment table",
                cur.remaining()
            )));
        }
        Ok(Self {
            recording,
            environment,
            condition,
            mobility,
            numeric_path,
            seed,
            rounds,
            sample_rate,
            n_devices,
            skew_ppm,
            segments,
        })
    }

    /// Structural validation against the recording the manifest claims to
    /// describe (`total_frames` long). Rejects hostile frame ranges:
    /// zero-length, out-of-bounds (with overflow-safe arithmetic),
    /// overlapping, duplicated (round, device) slots, devices outside the
    /// roster, and skews beyond crystal tolerance.
    pub fn validate(&self, total_frames: u64) -> Result<()> {
        if self.rounds == 0 {
            return Err(invalid("campaign has zero rounds".to_string()));
        }
        if self.n_devices < 2 {
            return Err(invalid(format!(
                "campaign needs a leader and at least one follower, got {} devices",
                self.n_devices
            )));
        }
        if self.sample_rate == 0 {
            return Err(invalid("zero sample rate".to_string()));
        }
        if self.skew_ppm.len() != self.n_devices as usize {
            return Err(invalid(format!(
                "skew table has {} entries for {} devices",
                self.skew_ppm.len(),
                self.n_devices
            )));
        }
        for (d, &ppm) in self.skew_ppm.iter().enumerate() {
            if !ppm.is_finite() || ppm.abs() > SKEW_MAX_PPM {
                return Err(invalid(format!(
                    "device {d} skew {ppm} ppm outside ±{SKEW_MAX_PPM} ppm"
                )));
            }
        }
        let mut by_start: Vec<&SegmentRange> = self.segments.iter().collect();
        by_start.sort_by_key(|s| s.start);
        for pair in by_start.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            if a.start + a.len > b.start {
                return Err(invalid(format!(
                    "segments overlap: [{}, {}) and [{}, {})",
                    a.start,
                    a.start + a.len,
                    b.start,
                    b.start + b.len
                )));
            }
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.segments {
            if s.len == 0 {
                return Err(invalid(format!(
                    "zero-length segment for round {} device {}",
                    s.round, s.device
                )));
            }
            if s.device == 0 || s.device >= self.n_devices as u32 {
                return Err(invalid(format!(
                    "segment device {} outside follower range 1..{}",
                    s.device, self.n_devices
                )));
            }
            if s.round >= self.rounds {
                return Err(invalid(format!(
                    "segment round {} beyond campaign rounds {}",
                    s.round, self.rounds
                )));
            }
            let end = s.start.checked_add(s.len).ok_or_else(|| {
                invalid(format!("segment range {} + {} overflows", s.start, s.len))
            })?;
            if end > total_frames {
                return Err(invalid(format!(
                    "segment ends at frame {end} but recording has {total_frames}"
                )));
            }
            if !seen.insert((s.round, s.device)) {
                return Err(invalid(format!(
                    "duplicate segment for round {} device {}",
                    s.round, s.device
                )));
            }
        }
        Ok(())
    }
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(AudioError::Truncated {
                reason: format!(
                    "manifest ends inside {what} (need {n} bytes at offset {}, have {})",
                    self.pos,
                    self.remaining()
                ),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2, what)?.try_into().unwrap_or([0; 2]),
        ))
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().unwrap_or([0; 4]),
        ))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().unwrap_or([0; 8]),
        ))
    }

    fn str8(&mut self, what: &str) -> Result<String> {
        let len = self.u8(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
    }

    fn str16(&mut self, what: &str) -> Result<String> {
        let len = self.u16(what)? as usize;
        let raw = self.take(len, what)?;
        String::from_utf8(raw.to_vec()).map_err(|_| malformed(format!("{what} is not UTF-8")))
    }
}

fn put_str8(out: &mut Vec<u8>, what: &str, s: &str) -> Result<()> {
    let len =
        u8::try_from(s.len()).map_err(|_| invalid(format!("{what} longer than 255 bytes")))?;
    out.push(len);
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_str16(out: &mut Vec<u8>, what: &str, s: &str) -> Result<()> {
    let len =
        u16::try_from(s.len()).map_err(|_| invalid(format!("{what} longer than 65535 bytes")))?;
    out.extend_from_slice(&len.to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn malformed(reason: String) -> AudioError {
    AudioError::MalformedFile { reason }
}

fn invalid(reason: String) -> AudioError {
    AudioError::InvalidParameter { reason }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample() -> CampaignManifest {
        CampaignManifest {
            recording: "campaign.wav".into(),
            environment: "dock".into(),
            condition: "clear".into(),
            mobility: "static".into(),
            numeric_path: "f64".into(),
            seed: 1,
            rounds: 3,
            sample_rate: 44_100,
            n_devices: 5,
            skew_ppm: vec![0.0, 200.0, -200.0, 120.0, -160.0],
            segments: (0..3)
                .flat_map(|r| {
                    (1u32..5).map(move |d| SegmentRange {
                        round: r,
                        device: d,
                        start: (r as u64 * 4 + d as u64) * 20_000,
                        len: 14_112,
                    })
                })
                .collect(),
        }
    }

    #[test]
    fn roundtrips_exactly() {
        let m = sample();
        let bytes = m.to_bytes().unwrap();
        let back = CampaignManifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        back.validate(400_000).unwrap();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample().to_bytes().unwrap();
        bytes.push(0);
        assert!(matches!(
            CampaignManifest::from_bytes(&bytes),
            Err(AudioError::MalformedFile { .. })
        ));
    }

    #[test]
    fn hostile_ranges_fail_validation() {
        let total = 400_000;
        let mut m = sample();
        m.segments[0].len = 0;
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[0].start = u64::MAX - 5;
        m.segments[0].len = 10; // overflows checked_add
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[0].start = total;
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[1].start = m.segments[0].start + 1; // overlap
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[1].round = m.segments[0].round;
        m.segments[1].device = m.segments[0].device; // duplicate slot
        m.segments[1].start = 390_000;
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[0].device = 0; // leader has no segments
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[0].device = 9; // beyond roster
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.segments[0].round = 99;
        assert!(m.validate(total).is_err());

        let mut m = sample();
        m.skew_ppm[2] = 1.0e4; // beyond crystal tolerance
        assert!(m.validate(total).is_err());
    }

    #[test]
    fn hostile_counts_fail_fast_without_allocation() {
        // A header that claims 4 billion segments but carries none: the
        // remaining-bytes guard must reject it before reserving memory.
        let mut m = sample();
        m.segments.clear();
        let mut bytes = m.to_bytes().unwrap();
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            CampaignManifest::from_bytes(&bytes),
            Err(AudioError::MalformedFile { .. })
        ));
    }
}
