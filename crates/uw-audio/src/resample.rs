//! Rate conversion for recorded audio.
//!
//! Recordings arrive at whatever rate the capture hardware used (48 kHz
//! action cameras, 16 kHz voice recorders); the ranging pipeline runs at
//! 44.1 kHz. Two converters are provided:
//!
//! * [`SincResampler`] — a polyphase windowed-sinc design for rational
//!   rate ratios (`L/M` after reduction). This is the quality path: the
//!   anti-aliasing cutoff tracks the lower of the two Nyquist rates, so
//!   down-sampling does not fold noise into the 1–5 kHz ranging band.
//! * [`resample_linear`] / [`StreamingLinearResampler`] — linear
//!   interpolation, adequate for the near-unity ratios of clock-skewed
//!   recorders and cheap enough for block-streaming ingestion; the
//!   streaming variant keeps its fractional phase across blocks so a
//!   chunked decode resamples identically to a one-shot pass.

use crate::{AudioError, Result};

/// Greatest common divisor (for reducing rate ratios).
fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = b;
        b = a % b;
        a = t;
    }
    a.max(1)
}

/// Resamples a whole signal by `ratio = output_rate / input_rate` with
/// linear interpolation.
pub fn resample_linear(signal: &[f64], ratio: f64) -> Result<Vec<f64>> {
    if !(ratio.is_finite() && ratio > 0.0) {
        return Err(AudioError::InvalidParameter {
            reason: "resampling ratio must be positive and finite".into(),
        });
    }
    if signal.is_empty() {
        return Ok(Vec::new());
    }
    let out_len = ((signal.len() as f64) * ratio).floor() as usize;
    let mut out = Vec::with_capacity(out_len);
    for i in 0..out_len {
        let src = i as f64 / ratio;
        let lo = src.floor() as usize;
        let frac = src - lo as f64;
        let a = signal.get(lo).copied().unwrap_or(0.0);
        let b = signal
            .get(lo + 1)
            .copied()
            .unwrap_or_else(|| *signal.last().unwrap());
        out.push(a * (1.0 - frac) + b * frac);
    }
    Ok(out)
}

/// A linear resampler whose fractional read position survives across
/// blocks, so feeding a long stream chunk by chunk produces the same
/// output as resampling it in one call (modulo the final partial sample).
#[derive(Debug, Clone)]
pub struct StreamingLinearResampler {
    ratio: f64,
    /// Source-domain position of the next output sample, relative to the
    /// first sample of `carry ++ next_block`.
    position: f64,
    /// Last sample of the previous block (interpolation support).
    carry: Option<f64>,
}

impl StreamingLinearResampler {
    /// Creates a streaming resampler with `ratio = output_rate / input_rate`.
    pub fn new(ratio: f64) -> Result<Self> {
        if !(ratio.is_finite() && ratio > 0.0) {
            return Err(AudioError::InvalidParameter {
                reason: "resampling ratio must be positive and finite".into(),
            });
        }
        Ok(Self {
            ratio,
            position: 0.0,
            carry: None,
        })
    }

    /// The configured output/input rate ratio.
    pub fn ratio(&self) -> f64 {
        self.ratio
    }

    /// Resamples one block, consuming it fully; the last input sample is
    /// retained for interpolation into the next block.
    pub fn process_block(&mut self, block: &[f64]) -> Vec<f64> {
        if block.is_empty() {
            return Vec::new();
        }
        // Work in the coordinate system of carry ++ block.
        let lead = usize::from(self.carry.is_some());
        let n = lead + block.len();
        let sample = |idx: usize| -> f64 {
            if idx < lead {
                self.carry.unwrap()
            } else {
                block[idx - lead]
            }
        };
        let mut out = Vec::new();
        // Emit every output whose interpolation support (idx, idx+1) is
        // complete within this block.
        while self.position + 1.0 < n as f64 {
            let lo = self.position.floor() as usize;
            let frac = self.position - lo as f64;
            out.push(sample(lo) * (1.0 - frac) + sample(lo + 1) * frac);
            self.position += 1.0 / self.ratio;
        }
        // Shift the coordinate system so the retained carry sample is 0.
        self.position -= (n - 1) as f64;
        self.carry = Some(block[block.len() - 1]);
        out
    }

    /// Flushes the final sample once the stream ends (the last input
    /// sample is emitted by zero-order hold, matching
    /// [`resample_linear`]'s edge behaviour).
    pub fn finish(&mut self) -> Vec<f64> {
        let mut out = Vec::new();
        if let Some(last) = self.carry.take() {
            while self.position < 1.0 {
                out.push(last);
                self.position += 1.0 / self.ratio;
            }
        }
        out
    }
}

/// Polyphase windowed-sinc resampler for rational rate conversions.
///
/// The filter is a Hann-windowed sinc low-pass at 90% of the narrower
/// Nyquist rate, split into `L` phases so each output sample costs one
/// dot product of `taps_per_phase` multiplies — the standard efficient
/// structure (no upsampled intermediate signal is ever materialized).
#[derive(Debug, Clone)]
pub struct SincResampler {
    /// Upsampling factor (reduced).
    l: u64,
    /// Downsampling factor (reduced).
    m: u64,
    /// Phase-major filter bank: `phases[p][k]` multiplies input sample
    /// `base - k` for output phase `p`.
    phases: Vec<Vec<f64>>,
    taps_per_phase: usize,
}

impl SincResampler {
    /// Builds a resampler from `input_rate` to `output_rate` Hz with
    /// `taps_per_phase` filter taps per output sample (quality knob;
    /// 16–32 is plenty for ranging audio).
    pub fn new(input_rate: u32, output_rate: u32, taps_per_phase: usize) -> Result<Self> {
        if input_rate == 0 || output_rate == 0 {
            return Err(AudioError::InvalidParameter {
                reason: "sample rates must be positive".into(),
            });
        }
        if !(2..=256).contains(&taps_per_phase) {
            return Err(AudioError::InvalidParameter {
                reason: format!("taps_per_phase {taps_per_phase} outside 2..=256"),
            });
        }
        let g = gcd(input_rate as u64, output_rate as u64);
        let l = output_rate as u64 / g;
        let m = input_rate as u64 / g;
        if l > 4096 {
            return Err(AudioError::UnsupportedFormat {
                reason: format!(
                    "rate ratio {output_rate}/{input_rate} reduces to {l}/{m}; \
                     phase count {l} exceeds the supported 4096"
                ),
            });
        }
        // Prototype low-pass, evaluated lazily per phase tap: cutoff at
        // 0.45 of the narrower rate (in units of the input rate), gain L.
        let cutoff = 0.45 * (output_rate.min(input_rate) as f64) / input_rate as f64;
        let half_span = taps_per_phase as f64 / 2.0;
        let l_f = l as f64;
        let mut phases = Vec::with_capacity(l as usize);
        for p in 0..l {
            let mut taps = Vec::with_capacity(taps_per_phase);
            // Output phase p sits at input offset p·M/L mod 1 ahead of its
            // base sample; the k-th tap weights input sample base - k.
            let frac = ((p * m) % l) as f64 / l_f;
            for k in 0..taps_per_phase {
                // Tap k weights input sample base + (half-1) - k, i.e. the
                // prototype filter evaluated at (base + frac) - j.
                let t = k as f64 - (half_span - 1.0) + frac;
                // Hann-windowed sinc sample at continuous time t.
                let x = 2.0 * cutoff * t;
                let sinc = if x.abs() < 1e-12 {
                    1.0
                } else {
                    (std::f64::consts::PI * x).sin() / (std::f64::consts::PI * x)
                };
                let w = if (t / half_span).abs() <= 1.0 {
                    0.5 * (1.0 + (std::f64::consts::PI * (t / half_span)).cos())
                } else {
                    0.0
                };
                taps.push(2.0 * cutoff * sinc * w);
            }
            // Normalize each phase to unity DC gain so a constant input
            // stays constant regardless of where the phase taps land.
            let sum: f64 = taps.iter().sum();
            if sum.abs() > 1e-12 {
                for tap in &mut taps {
                    *tap /= sum;
                }
            }
            phases.push(taps);
        }
        Ok(Self {
            l,
            m,
            phases,
            taps_per_phase,
        })
    }

    /// The reduced upsample/downsample factors `(L, M)`.
    pub fn factors(&self) -> (u64, u64) {
        (self.l, self.m)
    }

    /// Resamples a whole signal. Output length is
    /// `floor(input_len · L / M)`.
    pub fn process(&self, signal: &[f64]) -> Vec<f64> {
        if signal.is_empty() {
            return Vec::new();
        }
        let out_len = (signal.len() as u64 * self.l / self.m) as usize;
        let half = self.taps_per_phase / 2;
        let mut out = Vec::with_capacity(out_len);
        for i in 0..out_len as u64 {
            // Output i reads input around base = floor(i·M/L) with phase
            // (i·M) mod L.
            let num = i * self.m;
            let base = (num / self.l) as i64;
            let taps = &self.phases[(num % self.l) as usize];
            let mut acc = 0.0;
            for (k, &tap) in taps.iter().enumerate() {
                // Tap k weights input sample base + (half-1) - k … i.e. a
                // window centred on the read position (edges clamp to 0).
                let idx = base + (half as i64 - 1) - k as i64;
                if idx >= 0 {
                    if let Some(&s) = signal.get(idx as usize) {
                        acc += tap * s;
                    }
                }
            }
            out.push(acc);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tone(n: usize, freq: f64, fs: f64) -> Vec<f64> {
        (0..n)
            .map(|i| (2.0 * std::f64::consts::PI * freq * i as f64 / fs).sin())
            .collect()
    }

    fn dominant_freq(signal: &[f64], fs: f64) -> f64 {
        // Zero-crossing estimate is plenty for single tones.
        let crossings = signal
            .windows(2)
            .filter(|w| w[0] <= 0.0 && w[1] > 0.0)
            .count();
        crossings as f64 * fs / signal.len() as f64
    }

    #[test]
    fn linear_identity_and_length() {
        let s = tone(1000, 100.0, 8000.0);
        let out = resample_linear(&s, 1.0).unwrap();
        assert_eq!(out.len(), 1000);
        for (a, b) in s.iter().zip(out.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(resample_linear(&s, 0.5).unwrap().len(), 500);
        assert!(resample_linear(&s, 0.0).is_err());
        assert!(resample_linear(&s, f64::NAN).is_err());
        assert!(resample_linear(&[], 2.0).unwrap().is_empty());
    }

    #[test]
    fn streaming_linear_matches_one_shot() {
        let s = tone(4000, 440.0, 48_000.0);
        let ratio = 44_100.0 / 48_000.0;
        let one_shot = resample_linear(&s, ratio).unwrap();
        let mut streaming = StreamingLinearResampler::new(ratio).unwrap();
        let mut streamed = Vec::new();
        for block in s.chunks(257) {
            streamed.extend(streaming.process_block(block));
        }
        streamed.extend(streaming.finish());
        // Same samples; the streamed tail may differ by one edge sample.
        assert!((streamed.len() as i64 - one_shot.len() as i64).abs() <= 1);
        for (a, b) in one_shot.iter().zip(streamed.iter()) {
            assert!((a - b).abs() < 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn sinc_preserves_tone_frequency_up_and_down() {
        // 48 kHz → 44.1 kHz (non-trivial L/M = 147/160) and back.
        let f = 2500.0;
        let s = tone(9600, f, 48_000.0);
        let down = SincResampler::new(48_000, 44_100, 24).unwrap();
        let out = down.process(&s);
        assert_eq!(out.len(), 9600 * 147 / 160);
        let measured = dominant_freq(&out[500..out.len() - 500], 44_100.0);
        assert!((measured - f).abs() < 60.0, "measured {measured} Hz");

        let up = SincResampler::new(22_050, 44_100, 24).unwrap();
        assert_eq!(up.factors(), (2, 1));
        let s = tone(4000, 1000.0, 22_050.0);
        let out = up.process(&s);
        assert_eq!(out.len(), 8000);
        let measured = dominant_freq(&out[500..7500], 44_100.0);
        assert!((measured - 1000.0).abs() < 40.0, "measured {measured} Hz");
    }

    #[test]
    fn sinc_is_transparent_to_dc_and_amplitude() {
        let dc = vec![0.5; 2000];
        let r = SincResampler::new(48_000, 44_100, 32).unwrap();
        let out = r.process(&dc);
        for &s in &out[100..out.len() - 100] {
            assert!((s - 0.5).abs() < 1e-3, "{s}");
        }
        // A mid-band tone keeps its amplitude within a few percent.
        let s = tone(9600, 3000.0, 48_000.0);
        let out = r.process(&s);
        let peak = out[500..out.len() - 500]
            .iter()
            .fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!((peak - 1.0).abs() < 0.05, "peak {peak}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(SincResampler::new(0, 44_100, 16).is_err());
        assert!(SincResampler::new(44_100, 0, 16).is_err());
        assert!(SincResampler::new(44_100, 48_000, 1).is_err());
        assert!(SincResampler::new(44_100, 48_000, 512).is_err());
        // Coprime absurd ratio → too many phases.
        assert!(SincResampler::new(44_101, 48_000, 16).is_err());
        assert!(StreamingLinearResampler::new(-1.0).is_err());
    }
}
