//! # uw-audio — real-audio ingestion for the ranging pipeline
//!
//! The paper's evaluation is driven by real hydrophone recordings; this
//! crate is the bridge between recorded (or synthetically recorded) PCM
//! audio and the waveform-level DSP in `uw-ranging`:
//!
//! * [`wav`] — a hand-rolled, dependency-free RIFF/WAVE reader and writer
//!   covering the formats dive recorders actually produce (PCM16, PCM24,
//!   PCM32 and IEEE float32; mono and interleaved multichannel). Reads are
//!   chunked ([`wav::WavReader::read_frames`]), so a long dive recording
//!   never fully materializes in memory, and writers can attach small
//!   custom metadata chunks (the replay layer in `uw-eval` stores its
//!   segment directory that way). Malformed or truncated files produce
//!   [`AudioError`]s, never panics.
//! * [`resample`] — linear and polyphase windowed-sinc resamplers for
//!   bringing a recording at an arbitrary rate onto the pipeline's
//!   44.1 kHz grid, including a streaming linear resampler whose phase
//!   persists across blocks.
//! * [`replay`] — [`replay::ReplaySource`]: a chunked decode-and-resample
//!   stream over a `WavReader` that yields fixed-size per-channel `f64`
//!   blocks at a target rate, ready to feed `uw-ranging`'s detection and
//!   channel estimation in place of simulator output.
//! * [`burst`] — a bounded-memory streaming preamble detector
//!   ([`burst::BurstScanner`]) that finds every occurrence of a known
//!   template in an arbitrarily long capture via the overlap-save
//!   matched filter, with detections bitwise-identical across chunkings.
//! * [`skew`] — least-squares per-device clock-skew estimation
//!   ([`skew::estimate_skew_ppm`]) from the timing drift of detected
//!   bursts across a campaign.
//! * [`manifest`] — the `uwCM` campaign-manifest codec
//!   ([`manifest::CampaignManifest`]): a strict, fuzz-hardened binary
//!   record of a blind import (recording name, per-segment frame ranges,
//!   skew table, scenario axes) that lets evaluation load a scanned
//!   campaign without re-running the detector.
//!
//! ## Example: write, stream back, resample
//!
//! ```
//! use uw_audio::wav::{SampleFormat, WavReader, WavSpec, WavWriter};
//! use uw_audio::replay::ReplaySource;
//! use std::io::Cursor;
//!
//! // A 2-channel PCM16 file at 22.05 kHz.
//! let spec = WavSpec { sample_rate: 22_050, channels: 2, format: SampleFormat::Pcm16 };
//! let mut writer = WavWriter::new(Cursor::new(Vec::new()), spec).unwrap();
//! let frames: Vec<f64> = (0..2000).map(|i| (i as f64 * 0.01).sin() * 0.5).collect();
//! writer.write_interleaved(&frames).unwrap();
//! let bytes = writer.finalize().unwrap().into_inner();
//!
//! // Stream it back in blocks, resampled to the 44.1 kHz pipeline rate.
//! let reader = WavReader::new(Cursor::new(bytes)).unwrap();
//! let mut source = ReplaySource::new(reader, 44_100.0, 256).unwrap();
//! let mut decoded_frames = 0;
//! while let Some(block) = source.next_block().unwrap() {
//!     assert_eq!(block.channels.len(), 2);
//!     decoded_frames += block.channels[0].len();
//! }
//! // 1000 input frames become ~2000 after 22.05 → 44.1 kHz resampling.
//! assert!((decoded_frames as i64 - 2000).abs() <= 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod burst;
pub mod manifest;
pub mod replay;
pub mod resample;
pub mod skew;
pub mod wav;

pub use burst::{scan_all, Burst, BurstScanner};
pub use manifest::{CampaignManifest, SegmentRange, MANIFEST_MAGIC, MANIFEST_VERSION};
pub use replay::{ReplayBlock, ReplaySource};
pub use resample::{resample_linear, SincResampler, StreamingLinearResampler};
pub use skew::{estimate_skew_ppm, SKEW_DEADBAND_PPM, SKEW_MAX_PPM};
pub use wav::{SampleFormat, WavReader, WavSpec, WavWriter};

/// Errors produced by the audio ingestion layer.
#[derive(Debug, Clone, PartialEq)]
pub enum AudioError {
    /// The file is not a RIFF/WAVE container, or a required chunk is
    /// missing or malformed.
    MalformedFile {
        /// What was wrong.
        reason: String,
    },
    /// The container is valid WAV but uses a format this reader does not
    /// support (compressed codecs, unusual bit depths).
    UnsupportedFormat {
        /// What was unsupported.
        reason: String,
    },
    /// The file ended before its declared sizes were satisfied.
    Truncated {
        /// Where the data ran out.
        reason: String,
    },
    /// An invalid parameter was passed to an encoder or resampler.
    InvalidParameter {
        /// What was invalid.
        reason: String,
    },
    /// An underlying I/O operation failed.
    Io {
        /// The I/O error, stringified (keeps the error type `Clone`).
        reason: String,
    },
}

impl std::fmt::Display for AudioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AudioError::MalformedFile { reason } => write!(f, "malformed WAV file: {reason}"),
            AudioError::UnsupportedFormat { reason } => {
                write!(f, "unsupported WAV format: {reason}")
            }
            AudioError::Truncated { reason } => write!(f, "truncated WAV file: {reason}"),
            AudioError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            AudioError::Io { reason } => write!(f, "audio I/O error: {reason}"),
        }
    }
}

impl std::error::Error for AudioError {}

impl From<std::io::Error> for AudioError {
    fn from(e: std::io::Error) -> Self {
        // Unexpected EOF mid-read means the file is shorter than its
        // headers claim — surface that as truncation, not generic I/O.
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            AudioError::Truncated {
                reason: e.to_string(),
            }
        } else {
            AudioError::Io {
                reason: e.to_string(),
            }
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, AudioError>;
