//! Streaming replay: chunked decode + resample of a recording.
//!
//! [`ReplaySource`] turns a [`WavReader`] into a stream of per-channel
//! `f64` blocks at a target rate — the shape the ranging pipeline consumes.
//! Decoding is chunked (a fixed number of frames per pull) and the
//! resampler phase persists across blocks, so a multi-hour dive recording
//! is replayed with bounded memory and identical samples to a one-shot
//! decode.

use crate::resample::StreamingLinearResampler;
use crate::wav::WavReader;
use crate::Result;
use std::io::{Read, Seek};

/// One decoded block: deinterleaved channels at the source's target rate.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayBlock {
    /// Per-channel samples (`channels[c][i]`), all the same length.
    pub channels: Vec<Vec<f64>>,
    /// Index of this block's first frame in the *output* (resampled)
    /// stream.
    pub start_frame: u64,
}

/// A chunked decode-and-resample stream over a WAV recording.
///
/// ```
/// use uw_audio::wav::{write_wav_bytes, read_wav_bytes, SampleFormat, WavSpec};
/// use uw_audio::replay::ReplaySource;
///
/// let spec = WavSpec { sample_rate: 44_100, channels: 1, format: SampleFormat::Float32 };
/// let bytes = write_wav_bytes(spec, &vec![0.25; 1000]).unwrap();
/// let mut source = ReplaySource::new(read_wav_bytes(bytes).unwrap(), 44_100.0, 300).unwrap();
/// let mut total = 0;
/// while let Some(block) = source.next_block().unwrap() {
///     total += block.channels[0].len();
/// }
/// assert_eq!(total, 1000); // unity ratio: frame-exact passthrough
/// ```
pub struct ReplaySource<R: Read + Seek> {
    reader: WavReader<R>,
    /// One streaming resampler per channel (kept in phase lock-step).
    resamplers: Option<Vec<StreamingLinearResampler>>,
    block_frames: usize,
    frames_emitted: u64,
    finished: bool,
}

impl<R: Read + Seek> ReplaySource<R> {
    /// Wraps `reader`, resampling to `target_rate` Hz (a no-op when the
    /// file already matches) and emitting roughly `block_frames` frames
    /// per block.
    pub fn new(reader: WavReader<R>, target_rate: f64, block_frames: usize) -> Result<Self> {
        let file_rate = reader.spec().sample_rate as f64;
        if !(target_rate.is_finite() && target_rate > 0.0) {
            return Err(crate::AudioError::InvalidParameter {
                reason: "target rate must be positive and finite".into(),
            });
        }
        let resamplers = if (file_rate - target_rate).abs() > 1e-9 {
            let ratio = target_rate / file_rate;
            let per_channel = (0..reader.spec().channels)
                .map(|_| StreamingLinearResampler::new(ratio))
                .collect::<Result<Vec<_>>>()?;
            Some(per_channel)
        } else {
            None
        };
        Ok(Self {
            reader,
            resamplers,
            block_frames: block_frames.max(1),
            frames_emitted: 0,
            finished: false,
        })
    }

    /// The underlying reader (spec, metadata chunks, remaining frames).
    pub fn reader(&self) -> &WavReader<R> {
        &self.reader
    }

    /// Whether this source resamples (file rate ≠ target rate).
    pub fn resamples(&self) -> bool {
        self.resamplers.is_some()
    }

    /// Pulls the next block; `None` once the recording is exhausted (the
    /// final block may be shorter than the configured size).
    pub fn next_block(&mut self) -> Result<Option<ReplayBlock>> {
        // A resampled pull can legitimately produce zero output frames
        // (small block, strong downsampling); loop — not recurse, depth
        // would scale with 1/(ratio·block_frames) — until frames emerge
        // or the stream ends.
        loop {
            if self.finished {
                return Ok(None);
            }
            let channels = self.reader.spec().channels as usize;
            let interleaved = self.reader.read_frames(self.block_frames)?;
            let mut per_channel: Vec<Vec<f64>> = vec![Vec::new(); channels];
            for frame in interleaved.chunks_exact(channels) {
                for (c, &s) in frame.iter().enumerate() {
                    per_channel[c].push(s);
                }
            }
            let at_end = self.reader.frames_remaining() == 0;
            let out: Vec<Vec<f64>> = match &mut self.resamplers {
                Some(resamplers) => {
                    let mut out: Vec<Vec<f64>> = resamplers
                        .iter_mut()
                        .zip(per_channel.iter())
                        .map(|(r, ch)| r.process_block(ch))
                        .collect();
                    if at_end {
                        for (r, ch) in resamplers.iter_mut().zip(out.iter_mut()) {
                            ch.extend(r.finish());
                        }
                    }
                    out
                }
                None => per_channel,
            };
            if at_end {
                self.finished = true;
            }
            if out[0].is_empty() {
                continue;
            }
            let block = ReplayBlock {
                start_frame: self.frames_emitted,
                channels: out,
            };
            self.frames_emitted += block.channels[0].len() as u64;
            return Ok(Some(block));
        }
    }

    /// Drains the stream into whole per-channel buffers (convenience for
    /// short recordings and tests).
    pub fn collect_channels(mut self) -> Result<Vec<Vec<f64>>> {
        let channels = self.reader.spec().channels as usize;
        let mut out = vec![Vec::new(); channels];
        while let Some(block) = self.next_block()? {
            for (c, ch) in block.channels.into_iter().enumerate() {
                out[c].extend(ch);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wav::{read_wav_bytes, write_wav_bytes, SampleFormat, WavSpec};

    fn two_channel_bytes(rate: u32, frames: usize) -> Vec<u8> {
        let spec = WavSpec {
            sample_rate: rate,
            channels: 2,
            format: SampleFormat::Float32,
        };
        let interleaved: Vec<f64> = (0..frames)
            .flat_map(|i| {
                let t = i as f64 * 0.01;
                [t.sin() * 0.5, t.cos() * 0.25]
            })
            .collect();
        write_wav_bytes(spec, &interleaved).unwrap()
    }

    #[test]
    fn passthrough_blocks_cover_the_stream_in_order() {
        let bytes = two_channel_bytes(44_100, 1000);
        let mut source = ReplaySource::new(read_wav_bytes(bytes).unwrap(), 44_100.0, 300).unwrap();
        assert!(!source.resamples());
        let mut starts = Vec::new();
        let mut total = 0;
        while let Some(block) = source.next_block().unwrap() {
            assert_eq!(block.channels.len(), 2);
            assert_eq!(block.channels[0].len(), block.channels[1].len());
            starts.push(block.start_frame);
            total += block.channels[0].len();
        }
        assert_eq!(total, 1000);
        assert_eq!(starts, vec![0, 300, 600, 900]);
    }

    #[test]
    fn chunked_replay_equals_one_shot_decode_when_resampling() {
        let bytes = two_channel_bytes(22_050, 800);
        let chunked = ReplaySource::new(read_wav_bytes(bytes.clone()).unwrap(), 44_100.0, 111)
            .unwrap()
            .collect_channels()
            .unwrap();
        let one_shot = ReplaySource::new(read_wav_bytes(bytes).unwrap(), 44_100.0, 100_000)
            .unwrap()
            .collect_channels()
            .unwrap();
        assert_eq!(chunked.len(), 2);
        for (a, b) in chunked.iter().zip(one_shot.iter()) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-12);
            }
        }
        // ~2× the input length after 22.05 → 44.1 kHz.
        assert!((chunked[0].len() as i64 - 1600).abs() <= 2);
    }

    #[test]
    fn invalid_target_rate_is_rejected() {
        let bytes = two_channel_bytes(44_100, 10);
        assert!(ReplaySource::new(read_wav_bytes(bytes).unwrap(), 0.0, 100).is_err());
    }
}
