//! Per-device clock-skew estimation from inter-burst timing drift.
//!
//! A device whose sample clock runs `p` ppm fast emits its TDMA slot a
//! little later every round relative to the recording clock: after `t`
//! seconds of elapsed campaign time its bursts land `t · fs · p · 1e-6`
//! samples away from the nominal grid. Given the observed
//! (elapsed-seconds, offset-samples) pairs for one device across a
//! campaign, the skew is the slope of the best-fit line through them —
//! an ordinary least-squares regression, robust to the ±1-sample jitter
//! of the burst detector because it averages over many rounds.

use crate::AudioError;

/// Skews smaller than this are indistinguishable from detector jitter
/// over a short campaign (±1 sample across a few seconds is ~4 ppm) and
/// are snapped to zero so clean recordings round-trip exactly.
pub const SKEW_DEADBAND_PPM: f64 = 5.0;

/// Largest |skew| the estimator will report. Consumer crystal oscillators
/// are specified within ±200 ppm; anything beyond this is a mis-fit, not
/// a clock.
pub const SKEW_MAX_PPM: f64 = 500.0;

/// Least-squares fit of clock skew from `(elapsed_s, offset_samples)`
/// observations at sample rate `sample_rate`.
///
/// Returns `Ok(None)` when the observations cannot constrain a slope
/// (fewer than two points, or no spread in elapsed time); estimates
/// inside [`SKEW_DEADBAND_PPM`] snap to exactly `0.0`. Non-finite inputs
/// or a fit beyond [`SKEW_MAX_PPM`] are errors — they mean the points do
/// not describe a clock.
pub fn estimate_skew_ppm(
    observations: &[(f64, f64)],
    sample_rate: f64,
) -> Result<Option<f64>, AudioError> {
    if !(sample_rate.is_finite() && sample_rate > 0.0) {
        return Err(AudioError::InvalidParameter {
            reason: format!("sample rate must be positive and finite, got {sample_rate}"),
        });
    }
    for &(t, off) in observations {
        if !(t.is_finite() && off.is_finite()) {
            return Err(AudioError::InvalidParameter {
                reason: format!("non-finite skew observation ({t}, {off})"),
            });
        }
    }
    if observations.len() < 2 {
        return Ok(None);
    }
    let n = observations.len() as f64;
    let mean_t = observations.iter().map(|&(t, _)| t).sum::<f64>() / n;
    let mean_o = observations.iter().map(|&(_, o)| o).sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(t, o) in observations {
        sxx += (t - mean_t) * (t - mean_t);
        sxy += (t - mean_t) * (o - mean_o);
    }
    if sxx <= f64::EPSILON {
        return Ok(None);
    }
    // Slope is samples of drift per second; one second holds fs samples.
    let ppm = sxy / sxx / sample_rate * 1e6;
    if !ppm.is_finite() || ppm.abs() > SKEW_MAX_PPM {
        return Err(AudioError::InvalidParameter {
            reason: format!("skew fit {ppm:.1} ppm exceeds ±{SKEW_MAX_PPM} ppm clock bound"),
        });
    }
    if ppm.abs() < SKEW_DEADBAND_PPM {
        return Ok(Some(0.0));
    }
    Ok(Some(ppm))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FS: f64 = 44_100.0;

    /// Synthesizes exact drift observations for a known ppm.
    fn drift_points(ppm: f64, times: &[f64]) -> Vec<(f64, f64)> {
        times.iter().map(|&t| (t, t * FS * ppm * 1e-6)).collect()
    }

    #[test]
    fn recovers_planted_skew_exactly() {
        for &ppm in &[200.0, -200.0, 57.5, -120.0] {
            let pts = drift_points(ppm, &[0.0, 1.88, 3.76, 5.64]);
            let got = estimate_skew_ppm(&pts, FS).unwrap().unwrap();
            assert!((got - ppm).abs() < 1e-9, "planted {ppm}, got {got}");
        }
    }

    #[test]
    fn jitter_of_one_sample_snaps_to_zero() {
        // A perfect clock observed through ±1-sample detection jitter.
        let pts = vec![(0.0, 1.0), (1.88, -1.0), (3.76, 1.0), (5.64, 0.0)];
        assert_eq!(estimate_skew_ppm(&pts, FS).unwrap(), Some(0.0));
    }

    #[test]
    fn survives_jitter_on_top_of_real_skew() {
        let mut pts = drift_points(200.0, &[0.0, 1.88, 3.76, 5.64, 7.52]);
        for (i, p) in pts.iter_mut().enumerate() {
            p.1 += if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        let got = estimate_skew_ppm(&pts, FS).unwrap().unwrap();
        assert!((got - 200.0).abs() < 15.0, "got {got}");
    }

    #[test]
    fn underdetermined_inputs_yield_none() {
        assert_eq!(estimate_skew_ppm(&[], FS).unwrap(), None);
        assert_eq!(estimate_skew_ppm(&[(1.0, 5.0)], FS).unwrap(), None);
        // Two observations at the same instant: no slope.
        assert_eq!(
            estimate_skew_ppm(&[(2.0, 1.0), (2.0, 3.0)], FS).unwrap(),
            None
        );
    }

    #[test]
    fn hostile_inputs_are_structured_errors() {
        assert!(estimate_skew_ppm(&[(0.0, 0.0)], 0.0).is_err());
        assert!(estimate_skew_ppm(&[(0.0, 0.0)], f64::NAN).is_err());
        assert!(estimate_skew_ppm(&[(f64::NAN, 0.0), (1.0, 1.0)], FS).is_err());
        // A megasample of drift per second is not a crystal tolerance.
        let wild = vec![(0.0, 0.0), (1.0, 1.0e6)];
        assert!(estimate_skew_ppm(&wild, FS).is_err());
    }
}
