//! Adversarial manifest-parsing tests: a `uwCM` manifest arrives from
//! disk next to a field recording, so the parser must survive anything —
//! truncation at every byte, single-byte corruption, hostile count and
//! length prefixes, pure noise — with structured errors and bounded
//! allocation, never a panic. Mirrors the wire-frame suite in
//! `uw-serve` (`tests/wire_fuzz.rs`).

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use uw_audio::{AudioError, CampaignManifest, SegmentRange, MANIFEST_MAGIC, MANIFEST_VERSION};

/// A representative, valid campaign manifest (the dock fixture's shape:
/// 5 devices, 3 rounds, a full follower segment table).
fn sample() -> CampaignManifest {
    CampaignManifest {
        recording: "campaign.wav".into(),
        environment: "dock".into(),
        condition: "clear".into(),
        mobility: "static".into(),
        numeric_path: "f64".into(),
        seed: 1,
        rounds: 3,
        sample_rate: 44_100,
        n_devices: 5,
        skew_ppm: vec![0.0, 200.0, -200.0, 120.0, -160.0],
        segments: (0..3)
            .flat_map(|r| {
                (1u32..5).map(move |d| SegmentRange {
                    round: r,
                    device: d,
                    start: (r as u64 * 4 + d as u64) * 20_000,
                    len: 14_112,
                })
            })
            .collect(),
    }
}

/// Manifests of every size class: minimal, no-segment, and full.
fn sample_manifests() -> Vec<Vec<u8>> {
    let full = sample();
    let mut no_segments = sample();
    no_segments.segments.clear();
    let minimal = CampaignManifest {
        recording: String::new(),
        environment: "dock".into(),
        condition: "clear".into(),
        mobility: "static".into(),
        numeric_path: "q15".into(),
        seed: 0,
        rounds: 1,
        sample_rate: 44_100,
        n_devices: 2,
        skew_ppm: vec![0.0, 42.5],
        segments: vec![SegmentRange {
            round: 0,
            device: 1,
            start: 0,
            len: 1,
        }],
    };
    [full, no_segments, minimal]
        .iter()
        .map(|m| m.to_bytes().unwrap())
        .collect()
}

#[test]
fn truncation_at_every_byte_is_a_clean_error() {
    for bytes in sample_manifests() {
        for cut in 0..bytes.len() {
            match CampaignManifest::from_bytes(&bytes[..cut]) {
                Err(AudioError::Truncated { .. }) | Err(AudioError::MalformedFile { .. }) => {}
                other => panic!(
                    "cut at {cut}/{}: expected a structured error, got {other:?}",
                    bytes.len()
                ),
            }
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_never_validates_silently() {
    // Unlike the CRC-protected wire frames, a manifest has no checksum:
    // some flips (a seed byte, a skew mantissa bit) still parse. What the
    // format guarantees is that parsing never panics, and whatever parses
    // re-encodes to bytes that still carry the flip (compared at byte
    // level, so a 0.0 → -0.0 sign flip counts) — corruption can never
    // masquerade as the pristine manifest.
    let original = sample();
    let bytes = original.to_bytes().unwrap();
    original.validate(1_000_000).unwrap();
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0x80, 0xFF] {
            let mut bad = bytes.clone();
            bad[pos] ^= flip;
            match CampaignManifest::from_bytes(&bad) {
                Ok(parsed) => assert_ne!(
                    parsed.to_bytes().unwrap(),
                    bytes,
                    "flip {flip:#x} at byte {pos} reproduced the original"
                ),
                Err(AudioError::Truncated { .. }) | Err(AudioError::MalformedFile { .. }) => {}
                Err(other) => panic!("flip {flip:#x} at byte {pos}: unexpected {other:?}"),
            }
        }
    }
}

#[test]
fn corruption_errors_are_attributable() {
    let bytes = sample().to_bytes().unwrap();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'X';
    match CampaignManifest::from_bytes(&bad_magic) {
        Err(AudioError::MalformedFile { reason }) => {
            assert!(reason.contains("magic"), "unattributed: {reason}")
        }
        other => panic!("expected MalformedFile, got {other:?}"),
    }

    let mut bad_version = bytes.clone();
    bad_version[MANIFEST_MAGIC.len()] = MANIFEST_VERSION + 1;
    match CampaignManifest::from_bytes(&bad_version) {
        Err(AudioError::MalformedFile { reason }) => {
            assert!(reason.contains("version"), "unattributed: {reason}")
        }
        other => panic!("expected MalformedFile, got {other:?}"),
    }

    let mut trailing = bytes.clone();
    trailing.extend_from_slice(b"junk");
    match CampaignManifest::from_bytes(&trailing) {
        Err(AudioError::MalformedFile { reason }) => {
            assert!(reason.contains("trailing"), "unattributed: {reason}")
        }
        other => panic!("expected MalformedFile, got {other:?}"),
    }
}

#[test]
fn hostile_count_prefixes_are_rejected_before_allocation() {
    // The device count and segment count live at fixed offsets once the
    // leading strings are known; rather than hand-compute them, corrupt
    // a no-segment manifest whose last 4 bytes ARE the segment count,
    // and a 2-device manifest whose skew table is the tail.
    let mut no_segments = sample();
    no_segments.segments.clear();
    let mut bytes = no_segments.to_bytes().unwrap();
    let n = bytes.len();
    // Claim 4 billion segments with zero bytes behind the claim.
    bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
    match CampaignManifest::from_bytes(&bytes) {
        Err(AudioError::MalformedFile { reason }) => {
            assert!(reason.contains("segment table"), "unattributed: {reason}")
        }
        other => panic!("expected MalformedFile, got {other:?}"),
    }

    // Claim 65535 devices: the skew-table guard must fire on the byte
    // budget, not try to reserve half a megabyte of f64s.
    let good = sample().to_bytes().unwrap();
    // Find the device-count field by re-encoding with a marker count is
    // brittle; instead parse-and-corrupt: the u16 sits right before the
    // first skew entry, i.e. at a fixed offset from the end for this
    // fixed shape: 4 (n_segments) + 12·24 (segments) + 5·8 (skews) + 2.
    let dev_off = good.len() - (4 + 12 * 24 + 5 * 8 + 2);
    let mut bad = good.clone();
    bad[dev_off..dev_off + 2].copy_from_slice(&u16::MAX.to_le_bytes());
    match CampaignManifest::from_bytes(&bad) {
        Err(AudioError::MalformedFile { reason }) => {
            assert!(reason.contains("skew table"), "unattributed: {reason}")
        }
        other => panic!("expected MalformedFile, got {other:?}"),
    }
}

#[test]
fn hostile_frame_ranges_fail_validation_with_structured_errors() {
    let total_frames = 1_000_000;

    // Each mutation is applied to freshly parsed bytes, proving hostile
    // values survive the codec and are caught by `validate`.
    let reparse = |m: &CampaignManifest| -> CampaignManifest {
        CampaignManifest::from_bytes(&m.to_bytes().unwrap()).unwrap()
    };

    let mut m = sample();
    m.segments[3].start = u64::MAX - 7;
    m.segments[3].len = 16; // end overflows u64
    assert!(matches!(
        reparse(&m).validate(total_frames),
        Err(AudioError::InvalidParameter { .. })
    ));

    let mut m = sample();
    m.segments[0].len = 0;
    assert!(reparse(&m).validate(total_frames).is_err());

    let mut m = sample();
    m.segments[5].start = total_frames; // ends past the recording
    assert!(reparse(&m).validate(total_frames).is_err());

    let mut m = sample();
    m.segments[1].start = m.segments[0].start + 1; // overlaps
    assert!(reparse(&m).validate(total_frames).is_err());

    let mut m = sample();
    m.segments[7].device = 0; // the leader never has a segment
    assert!(reparse(&m).validate(total_frames).is_err());

    let mut m = sample();
    m.segments[7].device = 1000; // beyond the roster
    assert!(reparse(&m).validate(total_frames).is_err());

    let mut m = sample();
    m.segments[2].round = 3_000_000; // beyond the campaign
    assert!(reparse(&m).validate(total_frames).is_err());
}

#[test]
fn random_byte_streams_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for _ in 0..4000 {
        let len = rng.gen_range(0usize..512);
        let noise: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let _ = CampaignManifest::from_bytes(&noise); // must return, not panic
    }
}

#[test]
fn noise_behind_a_valid_prefix_never_panics() {
    // Harder fuzz: correct magic + version, random rest — penetrates
    // past the header checks into the string/table decoders. Anything
    // that parses must re-encode to bytes that parse back equal.
    let mut rng = StdRng::seed_from_u64(0xD00D);
    for _ in 0..4000 {
        let len = rng.gen_range(0usize..384);
        let mut bytes = Vec::with_capacity(5 + len);
        bytes.extend_from_slice(MANIFEST_MAGIC);
        bytes.push(MANIFEST_VERSION);
        for _ in 0..len {
            bytes.push(rng.next_u64() as u8);
        }
        if let Ok(parsed) = CampaignManifest::from_bytes(&bytes) {
            let reencoded = parsed.to_bytes().unwrap();
            assert_eq!(CampaignManifest::from_bytes(&reencoded).unwrap(), parsed);
        }
    }
}
