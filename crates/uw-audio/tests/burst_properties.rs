//! Property battery for the streaming burst detector
//! (`uw_audio::burst`), over synthetic captures spanning SNR, burst-gap
//! and burst-overlap grids:
//!
//! * every planted burst is reported within ±1 sample of where it was
//!   planted, with no extra detections;
//! * pure noise — at any level — yields zero false positives at the
//!   importer's default threshold;
//! * the streaming scan is **bitwise identical** to the whole-file
//!   reference for arbitrary chunkings, including pathological
//!   single-sample and jagged random chunk sequences;
//! * bursts planted closer than the refractory gap merge to the
//!   strongest, never duplicate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uw_audio::{scan_all, BurstScanner};

/// A broadband linear up-chirp sweeping 0.05 → 0.45 cycles/sample —
/// the same shape class as the ranging preamble, sized for test speed.
/// The sweep stays below Nyquist so the autocorrelation has the clean
/// thumbtack shape the detector's refractory logic assumes.
fn chirp(n: usize) -> Vec<f64> {
    let (f0, f1) = (0.05, 0.45);
    (0..n)
        .map(|i| {
            let i = i as f64;
            let phase =
                2.0 * std::f64::consts::PI * (f0 * i + (f1 - f0) * i * i / (2.0 * n as f64));
            phase.sin()
        })
        .collect()
}

fn plant(signal: &mut [f64], template: &[f64], at: usize, gain: f64) {
    for (i, &t) in template.iter().enumerate() {
        signal[at + i] += t * gain;
    }
}

/// Deterministic white noise, roughly uniform in `[-level, level]` — the
/// test's stand-in for ambient hydrophone noise (uw-audio deliberately
/// has no channel-model dependency).
fn noise(signal: &mut [f64], level: f64, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for s in signal.iter_mut() {
        *s += rng.gen_range(-level..=level);
    }
}

const TEMPLATE_LEN: usize = 600;
const THRESHOLD: f64 = 0.35;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// SNR grid: planted bursts separated by more than the refractory
    /// gap are all found, each within ±1 sample, and nothing else is.
    /// Gains down to 0.3 against noise up to a 0.1 floor span ~10–30 dB
    /// per-sample SNR — the range a usable field recording occupies.
    #[test]
    fn planted_bursts_are_found_within_one_sample(
        seed in 0u64..1_000,
        gain in 0.3f64..1.0,
        noise_level in 0.0f64..0.1,
        raw_gaps in prop::collection::vec(0usize..3_000, 1..5),
    ) {
        let template = chirp(TEMPLATE_LEN);
        // Separations strictly above min_gap (= TEMPLATE_LEN).
        let mut positions = Vec::new();
        let mut at = 500usize;
        for g in &raw_gaps {
            positions.push(at);
            at += TEMPLATE_LEN + 1 + g;
        }
        let mut signal = vec![0.0; at + TEMPLATE_LEN + 500];
        for &p in &positions {
            plant(&mut signal, &template, p, gain);
        }
        noise(&mut signal, noise_level, seed);

        let bursts = scan_all(&template, &signal, THRESHOLD, TEMPLATE_LEN).unwrap();
        prop_assert!(
            bursts.len() == positions.len(),
            "found {} bursts for {} plantings at {:?}",
            bursts.len(), positions.len(), positions
        );
        for (b, &p) in bursts.iter().zip(&positions) {
            let err = (b.position as i64 - p as i64).abs();
            prop_assert!(
                err <= 1,
                "burst at {} is {} samples from planted {}",
                b.position, err, p
            );
            prop_assert!(b.score >= THRESHOLD);
        }
    }

    /// Zero false positives on pure noise: no template energy anywhere,
    /// so nothing may cross the default threshold — at any noise level,
    /// including silence.
    #[test]
    fn pure_noise_yields_no_bursts(
        seed in 0u64..10_000,
        noise_level in 0.0f64..1.0,
        len in 2_000usize..20_000,
    ) {
        let template = chirp(TEMPLATE_LEN);
        let mut signal = vec![0.0; len];
        noise(&mut signal, noise_level, seed);
        let bursts = scan_all(&template, &signal, THRESHOLD, TEMPLATE_LEN).unwrap();
        prop_assert!(bursts.is_empty(), "false positives: {:?}", bursts);
    }

    /// Chunking invariance, bitwise: any sequence of chunk sizes —
    /// jagged, tiny, huge — finalises exactly the detections of the
    /// whole-file reference scan, scores compared bit for bit.
    #[test]
    fn streaming_scan_is_bitwise_identical_to_whole_file_scan(
        seed in 0u64..1_000,
        noise_level in 0.0f64..0.2,
        chunk_sizes in prop::collection::vec(1usize..5_000, 1..24),
    ) {
        let template = chirp(TEMPLATE_LEN);
        let mut signal = vec![0.0; 24_000];
        for &p in &[700usize, 6_100, 13_337, 20_000] {
            plant(&mut signal, &template, p, 0.8);
        }
        noise(&mut signal, noise_level, seed);

        let whole = scan_all(&template, &signal, THRESHOLD, TEMPLATE_LEN).unwrap();
        prop_assert_eq!(whole.len(), 4);

        let mut scanner = BurstScanner::new(&template, THRESHOLD, TEMPLATE_LEN).unwrap();
        let mut streamed = Vec::new();
        let mut offset = 0usize;
        for &c in chunk_sizes.iter().cycle() {
            if offset >= signal.len() {
                break;
            }
            let end = (offset + c).min(signal.len());
            streamed.extend(scanner.push(&signal[offset..end]).unwrap());
            offset = end;
        }
        streamed.extend(scanner.finish().unwrap());

        prop_assert_eq!(streamed.len(), whole.len());
        for (s, w) in streamed.iter().zip(&whole) {
            prop_assert_eq!(s.position, w.position);
            prop_assert_eq!(s.score.to_bits(), w.score.to_bits());
        }
    }

    /// Overlap grid: a second burst planted inside the refractory gap of
    /// the first merges into a single detection at the stronger planting
    /// — overlapping arrivals never double-count.
    #[test]
    fn overlapping_bursts_merge_to_the_strongest(
        seed in 0u64..1_000,
        overlap in 10usize..550,
        strong_first in any::<bool>(),
    ) {
        let template = chirp(TEMPLATE_LEN);
        let mut signal = vec![0.0; 8_000];
        let first = 2_000usize;
        let second = first + overlap;
        let (g1, g2) = if strong_first { (0.9, 0.45) } else { (0.45, 0.9) };
        plant(&mut signal, &template, first, g1);
        plant(&mut signal, &template, second, g2);
        noise(&mut signal, 0.01, seed);

        let bursts = scan_all(&template, &signal, 0.3, TEMPLATE_LEN).unwrap();
        prop_assert!(bursts.len() == 1, "got {:?}", bursts);
        let expected = if strong_first { first } else { second };
        let err = (bursts[0].position as i64 - expected as i64).abs();
        // Overlapping chirps interfere, so grant the peak a little slack
        // beyond the clean ±1.
        prop_assert!(
            err <= 3,
            "merged peak at {} vs strongest planting {}",
            bursts[0].position, expected
        );
    }
}
