//! Property tests for the WAV codec: the writer→reader pair is
//! self-inverse, and hostile inputs produce errors, never panics.
//!
//! The round-trip property is stated at byte level: encoding arbitrary
//! samples, decoding them, and re-encoding the decoded values must
//! reproduce the first byte stream exactly, for every sample format ×
//! channel count × length combination (including the odd-data-size
//! PCM24 mono case, which exercises the RIFF pad byte). That is the
//! property the replay subsystem leans on when it regenerates golden
//! fixtures offline.

use proptest::prelude::*;
use uw_audio::wav::{read_wav_bytes, write_wav_bytes, SampleFormat, WavSpec, WavWriter};
use uw_audio::AudioError;

fn format_for(index: usize) -> SampleFormat {
    SampleFormat::ALL[index % SampleFormat::ALL.len()]
}

fn read_all(bytes: Vec<u8>) -> (WavSpec, Vec<f64>) {
    let mut reader = read_wav_bytes(bytes).expect("valid file parses");
    let spec = *reader.spec();
    let mut samples = Vec::new();
    loop {
        // Deliberately small blocks: chunked reads must cover the stream.
        let block = reader.read_frames(17).expect("valid data decodes");
        if block.is_empty() {
            break;
        }
        samples.extend(block);
    }
    (spec, samples)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// write → read → write is byte-exact for every format × channels ×
    /// length (quantisation happens once, on the first write).
    #[test]
    fn roundtrip_is_byte_exact(
        format_index in 0usize..4,
        channels in 1u16..5,
        frames in 0usize..120,
        fill in prop::collection::vec(-1.2f64..1.2, 0..600),
    ) {
        let format = format_for(format_index);
        let spec = WavSpec { sample_rate: 44_100, channels, format };
        let n = frames * channels as usize;
        let samples: Vec<f64> = (0..n).map(|i| fill.get(i).copied().unwrap_or(0.37)).collect();
        let first = write_wav_bytes(spec, &samples).unwrap();
        let (decoded_spec, decoded) = read_all(first.clone());
        prop_assert_eq!(decoded_spec, spec);
        prop_assert_eq!(decoded.len(), n);
        let second = write_wav_bytes(spec, &decoded).unwrap();
        prop_assert_eq!(first, second);
    }

    /// Odd-length PCM24 data (odd frame count, mono or 3 channels) pads
    /// its data chunk to even length, and the pad never leaks into the
    /// decoded samples or a trailing custom chunk.
    #[test]
    fn pcm24_odd_lengths_pad_correctly(
        frames in 1usize..80,
        channels_sel in 0usize..2,
        tail_marker in prop::collection::vec(any::<u8>(), 1..9),
    ) {
        let channels = [1u16, 3][channels_sel];
        let spec = WavSpec { sample_rate: 8_000, channels, format: SampleFormat::Pcm24 };
        let n = frames * channels as usize;
        let samples: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.7).sin()).collect();
        let mut writer = WavWriter::new(std::io::Cursor::new(Vec::new()), spec).unwrap();
        writer.add_chunk(*b"tail", &tail_marker).unwrap();
        writer.write_interleaved(&samples).unwrap();
        let bytes = writer.finalize().unwrap().into_inner();
        // Data bytes are 3·n; when odd, the container grows by a pad byte.
        prop_assert_eq!(bytes.len() % 2, 0);
        let mut reader = read_wav_bytes(bytes).unwrap();
        prop_assert_eq!(reader.total_frames(), frames as u64);
        prop_assert_eq!(reader.chunk(*b"tail").unwrap(), &tail_marker[..]);
        let decoded = reader.read_frames(usize::MAX >> 8).unwrap();
        prop_assert_eq!(decoded.len(), n);
        for (a, b) in samples.iter().zip(decoded.iter()) {
            prop_assert!((a.clamp(-1.0, 1.0) - b).abs() < 1e-6);
        }
    }

    /// Any truncation of a valid file is a structured error, not a panic
    /// (and never decodes as a shorter-but-valid stream).
    #[test]
    fn truncated_files_error_cleanly(
        format_index in 0usize..4,
        frames in 1usize..60,
        cut_fraction in 0.0f64..1.0,
    ) {
        let format = format_for(format_index);
        let spec = WavSpec { sample_rate: 16_000, channels: 2, format };
        let samples: Vec<f64> = (0..frames * 2).map(|i| ((i as f64) * 0.3).cos()).collect();
        let full = write_wav_bytes(spec, &samples).unwrap();
        let cut = ((full.len() as f64) * cut_fraction) as usize;
        prop_assume!(cut < full.len());
        let err = read_wav_bytes(full[..cut].to_vec()).expect_err("truncated file must not parse");
        prop_assert!(
            matches!(err, AudioError::Truncated { .. } | AudioError::MalformedFile { .. }),
            "unexpected error class: {:?}", err
        );
    }

    /// Corrupting any single header byte parses as an error or as some
    /// other valid interpretation — but never panics and never decodes
    /// more frames than the container holds.
    #[test]
    fn corrupted_headers_never_panic(
        byte_index in 0usize..44,
        new_value in any::<u8>(),
        frames in 1usize..40,
    ) {
        let spec = WavSpec { sample_rate: 44_100, channels: 1, format: SampleFormat::Pcm16 };
        let samples: Vec<f64> = (0..frames).map(|i| (i as f64 * 0.5).sin()).collect();
        let mut bytes = write_wav_bytes(spec, &samples).unwrap();
        prop_assume!(byte_index < bytes.len());
        bytes[byte_index] = new_value;
        if let Ok(mut reader) = read_wav_bytes(bytes.clone()) {
            let declared = reader.total_frames();
            if let Ok(decoded) = reader.read_frames(usize::MAX >> 8) {
                prop_assert!(
                    decoded.len() as u64 <= declared * u64::from(reader.spec().channels)
                );
            }
        }
    }

    /// Custom metadata chunks of arbitrary (odd and even) sizes round-trip
    /// and never disturb frame accounting.
    #[test]
    fn metadata_chunks_roundtrip(
        payload in prop::collection::vec(any::<u8>(), 0..200),
        frames in 0usize..50,
    ) {
        let spec = WavSpec { sample_rate: 44_100, channels: 1, format: SampleFormat::Float32 };
        let samples: Vec<f64> = (0..frames).map(|i| i as f64 * 1e-3).collect();
        let mut writer = WavWriter::new(std::io::Cursor::new(Vec::new()), spec).unwrap();
        writer.add_chunk(*b"uwRD", &payload).unwrap();
        writer.write_interleaved(&samples).unwrap();
        let bytes = writer.finalize().unwrap().into_inner();
        let reader = read_wav_bytes(bytes).unwrap();
        prop_assert_eq!(reader.chunk(*b"uwRD").unwrap(), &payload[..]);
        prop_assert_eq!(reader.total_frames(), frames as u64);
    }
}

#[test]
fn garbage_prefixes_are_rejected() {
    for bytes in [
        Vec::new(),
        b"RIFF".to_vec(),
        b"RIFFxxxxWAVE".to_vec(),
        b"OggS\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0\0".to_vec(),
        vec![0u8; 64],
    ] {
        assert!(read_wav_bytes(bytes).is_err());
    }
}
