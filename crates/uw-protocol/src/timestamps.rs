//! Timestamp tables and pairwise distance computation (§2.3).
//!
//! During a round every device records, on its own local clock, when it
//! transmitted (`Tᶦᵢ`) and when it received each other device's message
//! (`Tᶦⱼ`). Because both terms of each difference are measured on the same
//! clock, the unknown clock offsets cancel in
//!
//! ```text
//! D_ij = c/2 · [(Tᶦⱼ − Tᶦᵢ) − (Tʲⱼ − Tʲᵢ)]        (i < j)
//! ```
//!
//! When one direction of a pair is lost, the distance can still be
//! recovered through a common neighbour `k` heard by both `i` and `j`: the
//! completed two-way distances `D_ik` and `D_jk` let each device relate its
//! clock to `k`'s transmission, which provides the missing offset for a
//! one-way measurement.

use crate::message::DeviceId;
use crate::{ProtocolError, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use uw_localization::matrix::DistanceMatrix;

/// The timestamps one device collected during a round, on its local clock.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TimestampTable {
    /// The device that owns this table.
    pub device: DeviceId,
    /// Local time at which this device transmitted its own response (the
    /// leader records its query transmission time here). `None` if the
    /// device never transmitted.
    pub own_tx: Option<f64>,
    /// Local reception time of each other device's message.
    pub receptions: BTreeMap<DeviceId, f64>,
}

impl TimestampTable {
    /// Creates an empty table for a device.
    pub fn new(device: DeviceId) -> Self {
        Self {
            device,
            own_tx: None,
            receptions: BTreeMap::new(),
        }
    }

    /// Records this device's own transmission time (local clock).
    pub fn record_own_tx(&mut self, local_time_s: f64) {
        self.own_tx = Some(local_time_s);
    }

    /// Records the reception of `from`'s message at `local_time_s`.
    /// Duplicate receptions keep the earliest timestamp (the direct path).
    pub fn record_reception(&mut self, from: DeviceId, local_time_s: f64) {
        self.receptions
            .entry(from)
            .and_modify(|t| {
                if local_time_s < *t {
                    *t = local_time_s;
                }
            })
            .or_insert(local_time_s);
    }

    /// Local reception time of `from`'s message, if heard.
    pub fn reception(&self, from: DeviceId) -> Option<f64> {
        self.receptions.get(&from).copied()
    }

    /// Number of devices heard.
    pub fn heard_count(&self) -> usize {
        self.receptions.len()
    }
}

/// Computes the two-way pairwise distance between devices `i` and `j` from
/// their timestamp tables. Requires both directions to have been heard and
/// both devices to have transmitted.
pub fn pairwise_distance(
    table_i: &TimestampTable,
    table_j: &TimestampTable,
    sound_speed: f64,
) -> Result<f64> {
    if sound_speed <= 0.0 {
        return Err(ProtocolError::InvalidParameter {
            reason: "sound speed must be positive".into(),
        });
    }
    let (i, j) = (table_i.device, table_j.device);
    let t_i_j = table_i
        .reception(j)
        .ok_or_else(|| ProtocolError::RoundFailure {
            reason: format!("device {i} never heard device {j}"),
        })?;
    let t_j_i = table_j
        .reception(i)
        .ok_or_else(|| ProtocolError::RoundFailure {
            reason: format!("device {j} never heard device {i}"),
        })?;
    let t_i_i = table_i.own_tx.ok_or_else(|| ProtocolError::RoundFailure {
        reason: format!("device {i} never transmitted"),
    })?;
    let t_j_j = table_j.own_tx.ok_or_else(|| ProtocolError::RoundFailure {
        reason: format!("device {j} never transmitted"),
    })?;
    // The formula assumes i transmitted before j heard it and vice versa;
    // written symmetrically it is ((T_i_j − T_i_i) − (T_j_j − T_j_i)) / 2,
    // which is the one-way propagation time.
    let tau = ((t_i_j - t_i_i) - (t_j_j - t_j_i)) / 2.0;
    if tau < 0.0 {
        return Err(ProtocolError::RoundFailure {
            reason: format!("negative propagation time between devices {i} and {j}"),
        });
    }
    Ok(sound_speed * tau)
}

/// Recovers the distance between `i` and `j` when only the direction
/// `j → i` was heard (device `i` has `Tᶦⱼ` but `j` never heard `i`), using
/// a common neighbour `k` whose two-way distances to both are known.
///
/// Derivation: device `i` knows when `k`'s message arrived (`Tᶦₖ`) and the
/// distance `D_ik`, so `k`'s transmission happened at local time
/// `Tᶦₖ − D_ik/c`. Likewise device `j` places `k`'s transmission at
/// `Tʲₖ − D_jk/c`. Those are the *same instant*, which ties the two clocks
/// together; applying the offset to the one-way reception `Tᶦⱼ` yields the
/// propagation time from `j` to `i`.
pub fn recover_one_way_distance(
    table_i: &TimestampTable,
    table_j: &TimestampTable,
    table_k_id: DeviceId,
    d_ik: f64,
    d_jk: f64,
    sound_speed: f64,
) -> Result<f64> {
    if sound_speed <= 0.0 {
        return Err(ProtocolError::InvalidParameter {
            reason: "sound speed must be positive".into(),
        });
    }
    let (i, j) = (table_i.device, table_j.device);
    let t_i_j = table_i
        .reception(j)
        .ok_or_else(|| ProtocolError::RoundFailure {
            reason: format!("device {i} never heard device {j}; nothing to recover"),
        })?;
    let t_i_k = table_i
        .reception(table_k_id)
        .ok_or_else(|| ProtocolError::RoundFailure {
            reason: format!("device {i} never heard the common neighbour {table_k_id}"),
        })?;
    let t_j_k = table_j
        .reception(table_k_id)
        .ok_or_else(|| ProtocolError::RoundFailure {
            reason: format!("device {j} never heard the common neighbour {table_k_id}"),
        })?;
    let t_j_j = table_j.own_tx.ok_or_else(|| ProtocolError::RoundFailure {
        reason: format!("device {j} never transmitted"),
    })?;
    // k's transmission instant on each local clock.
    let k_tx_on_i = t_i_k - d_ik / sound_speed;
    let k_tx_on_j = t_j_k - d_jk / sound_speed;
    // Clock offset (i − j), so a time on j's clock maps to i's clock by
    // adding this offset.
    let offset_i_minus_j = k_tx_on_i - k_tx_on_j;
    let j_tx_on_i = t_j_j + offset_i_minus_j;
    let tau = t_i_j - j_tx_on_i;
    if tau < 0.0 {
        return Err(ProtocolError::RoundFailure {
            reason: format!("recovered negative propagation time between devices {i} and {j}"),
        });
    }
    Ok(sound_speed * tau)
}

/// Builds the full pairwise distance matrix from all devices' timestamp
/// tables: two-way distances first, then one-way recoveries through common
/// neighbours where a direction is missing. Pairs that cannot be computed
/// are left missing in the matrix.
pub fn build_distance_matrix(
    tables: &[TimestampTable],
    sound_speed: f64,
) -> Result<DistanceMatrix> {
    let n = tables.len();
    if n < 2 {
        return Err(ProtocolError::InvalidParameter {
            reason: format!("need at least two timestamp tables, got {n}"),
        });
    }
    for (idx, t) in tables.iter().enumerate() {
        if t.device != idx {
            return Err(ProtocolError::InvalidParameter {
                reason: format!("table at index {idx} belongs to device {}", t.device),
            });
        }
    }
    let mut matrix = DistanceMatrix::new(n);

    // Pass 1: two-way distances.
    for i in 0..n {
        for j in (i + 1)..n {
            if let Ok(d) = pairwise_distance(&tables[i], &tables[j], sound_speed) {
                matrix
                    .set(i, j, d)
                    .map_err(|e| ProtocolError::RoundFailure {
                        reason: e.to_string(),
                    })?;
            }
        }
    }

    // Pass 2: one-way recovery through a common neighbour with known
    // two-way distances to both endpoints.
    for i in 0..n {
        for j in (i + 1)..n {
            if matrix.has_link(i, j) {
                continue;
            }
            let heard_by_i = tables[i].reception(j).is_some();
            let heard_by_j = tables[j].reception(i).is_some();
            // Identify which direction survived.
            let (rx, tx) = if heard_by_i {
                (i, j)
            } else if heard_by_j {
                (j, i)
            } else {
                continue;
            };
            let recovered = (0..n).find_map(|k| {
                if k == i || k == j {
                    return None;
                }
                let d_rx_k = matrix
                    .get(rx.min(k), rx.max(k))
                    .filter(|_| matrix.has_link(rx, k))?;
                let d_tx_k = matrix
                    .get(tx.min(k), tx.max(k))
                    .filter(|_| matrix.has_link(tx, k))?;
                recover_one_way_distance(&tables[rx], &tables[tx], k, d_rx_k, d_tx_k, sound_speed)
                    .ok()
            });
            if let Some(d) = recovered {
                matrix
                    .set(i, j, d)
                    .map_err(|e| ProtocolError::RoundFailure {
                        reason: e.to_string(),
                    })?;
            }
        }
    }

    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uw_device::clock::LocalClock;

    /// Builds consistent timestamp tables for devices at the given 1D
    /// positions (metres along a line), with arbitrary clock offsets and a
    /// simple response schedule. `drop` lists (rx, tx) directions to erase.
    fn synthetic_tables(
        positions: &[f64],
        clocks: &[LocalClock],
        sound_speed: f64,
        drop: &[(usize, usize)],
    ) -> Vec<TimestampTable> {
        let n = positions.len();
        // True transmit times: device i transmits at t = i seconds (true time).
        let tx_true: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut tables: Vec<TimestampTable> = (0..n).map(TimestampTable::new).collect();
        for i in 0..n {
            tables[i].record_own_tx(clocks[i].local_from_true(tx_true[i]));
            for j in 0..n {
                if i == j || drop.contains(&(i, j)) {
                    continue;
                }
                let tau = (positions[i] - positions[j]).abs() / sound_speed;
                let arrival_true = tx_true[j] + tau;
                tables[i].record_reception(j, clocks[i].local_from_true(arrival_true));
            }
        }
        tables
    }

    #[test]
    fn table_records_earliest_reception() {
        let mut t = TimestampTable::new(2);
        t.record_reception(1, 5.0);
        t.record_reception(1, 4.5);
        t.record_reception(1, 6.0);
        assert_eq!(t.reception(1), Some(4.5));
        assert_eq!(t.reception(3), None);
        assert_eq!(t.heard_count(), 1);
        t.record_own_tx(1.0);
        assert_eq!(t.own_tx, Some(1.0));
    }

    #[test]
    fn two_way_distance_cancels_clock_offsets() {
        let c = 1500.0;
        let positions = vec![0.0, 15.0, 32.0];
        let clocks = vec![
            LocalClock::new(0.0, 123.4),
            LocalClock::new(0.0, -55.0),
            LocalClock::new(0.0, 9_999.0),
        ];
        let tables = synthetic_tables(&positions, &clocks, c, &[]);
        let d01 = pairwise_distance(&tables[0], &tables[1], c).unwrap();
        let d02 = pairwise_distance(&tables[0], &tables[2], c).unwrap();
        let d12 = pairwise_distance(&tables[1], &tables[2], c).unwrap();
        assert!((d01 - 15.0).abs() < 1e-9, "d01 {d01}");
        assert!((d02 - 32.0).abs() < 1e-9, "d02 {d02}");
        assert!((d12 - 17.0).abs() < 1e-9, "d12 {d12}");
    }

    #[test]
    fn clock_skew_causes_only_small_error() {
        // ±80 ppm skew over the few seconds of a round: centimetre-level.
        let c = 1500.0;
        let positions = vec![0.0, 20.0];
        let clocks = vec![LocalClock::new(80.0, 3.0), LocalClock::new(-80.0, 77.0)];
        let tables = synthetic_tables(&positions, &clocks, c, &[]);
        let d = pairwise_distance(&tables[0], &tables[1], c).unwrap();
        assert!((d - 20.0).abs() < 0.3, "d {d}");
    }

    #[test]
    fn missing_direction_is_an_error_for_two_way() {
        let c = 1500.0;
        let positions = vec![0.0, 10.0];
        let clocks = vec![LocalClock::ideal(); 2];
        let tables = synthetic_tables(&positions, &clocks, c, &[(0, 1)]);
        assert!(pairwise_distance(&tables[0], &tables[1], c).is_err());
        assert!(pairwise_distance(&tables[1], &tables[0], c).is_err());
    }

    #[test]
    fn one_way_recovery_through_common_neighbour() {
        let c = 1500.0;
        let positions = vec![0.0, 12.0, 25.0];
        let clocks = vec![
            LocalClock::new(0.0, 11.0),
            LocalClock::new(0.0, -3.0),
            LocalClock::new(0.0, 400.0),
        ];
        // Device 1 never hears device 0 (direction 1←0 dropped), but device
        // 0 hears device 1, and both hear device 2.
        let tables = synthetic_tables(&positions, &clocks, c, &[(1, 0)]);
        let d02 = pairwise_distance(&tables[0], &tables[2], c).unwrap();
        let d12 = pairwise_distance(&tables[1], &tables[2], c).unwrap();
        let recovered = recover_one_way_distance(&tables[0], &tables[1], 2, d02, d12, c).unwrap();
        assert!((recovered - 12.0).abs() < 1e-6, "recovered {recovered}");
    }

    #[test]
    fn build_matrix_full_and_with_losses() {
        let c = 1500.0;
        let positions = vec![0.0, 10.0, 22.0, 31.0];
        let clocks = vec![
            LocalClock::new(0.0, 1.0),
            LocalClock::new(0.0, 2.0),
            LocalClock::new(0.0, 3.0),
            LocalClock::new(0.0, 4.0),
        ];
        // Full tables.
        let tables = synthetic_tables(&positions, &clocks, c, &[]);
        let matrix = build_distance_matrix(&tables, c).unwrap();
        assert_eq!(matrix.link_count(), 6);
        assert!((matrix.get(0, 3).unwrap() - 31.0).abs() < 1e-9);

        // Drop one direction (2 never hears 3): recovered through a common
        // neighbour, so the link is still present.
        let tables = synthetic_tables(&positions, &clocks, c, &[(2, 3)]);
        let matrix = build_distance_matrix(&tables, c).unwrap();
        assert_eq!(matrix.link_count(), 6);
        assert!((matrix.get(2, 3).unwrap() - 9.0).abs() < 1e-6);

        // Drop both directions: the link is genuinely missing.
        let tables = synthetic_tables(&positions, &clocks, c, &[(2, 3), (3, 2)]);
        let matrix = build_distance_matrix(&tables, c).unwrap();
        assert_eq!(matrix.link_count(), 5);
        assert!(!matrix.has_link(2, 3));
    }

    #[test]
    fn build_matrix_validates_inputs() {
        let c = 1500.0;
        assert!(build_distance_matrix(&[TimestampTable::new(0)], c).is_err());
        let bad = vec![TimestampTable::new(0), TimestampTable::new(3)];
        assert!(build_distance_matrix(&bad, c).is_err());
    }

    #[test]
    fn negative_propagation_time_is_rejected() {
        let mut a = TimestampTable::new(0);
        let mut b = TimestampTable::new(1);
        a.record_own_tx(0.0);
        b.record_own_tx(0.5);
        // Inconsistent timestamps that would imply a negative propagation
        // time: device 0 hears device 1 only 0.1 s after its own query even
        // though device 1 waited 0.4 s after hearing device 0.
        a.record_reception(1, 0.1);
        b.record_reception(0, 0.1);
        assert!(pairwise_distance(&a, &b, 1500.0).is_err());
        assert!(pairwise_distance(&a, &b, -5.0).is_err());
    }
}
