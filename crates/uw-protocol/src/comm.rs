//! Report back-channel (§2.4).
//!
//! After the TDM round every device sends the leader a compressed report:
//!
//! * its depth, quantised at 0.2 m into 8 bits (0–40 m), and
//! * for every other device, the difference between the reception timestamp
//!   and that device's nominal slot start, bounded by `2·τ_max` (42 ms ≈
//!   1852 samples at 44.1 kHz) and quantised at 2 samples into 10 bits.
//!
//! A CRC-16 is appended, the whole payload is protected with the rate-2/3
//! convolutional code, and the coded bits are sent as binary FSK inside the
//! device's own sub-band of 1–5 kHz so all devices can transmit to the
//! leader simultaneously (~100 bit/s each).

use crate::message::DeviceId;
use crate::schedule::TdmSchedule;
use crate::timestamps::TimestampTable;
use crate::{ProtocolError, Result};
use serde::{Deserialize, Serialize};
use uw_device::sensors::{decode_depth, encode_depth};
use uw_dsp::coding::{conv_decode_two_thirds, conv_encode_two_thirds, crc16, push_uint, read_uint};
use uw_dsp::fsk::{fsk_demodulate, fsk_modulate, FskConfig};

/// Timestamp quantisation resolution in samples (§2.4).
pub const TIMESTAMP_RESOLUTION_SAMPLES: u64 = 2;

/// Number of bits per relative timestamp field.
pub const TIMESTAMP_BITS: usize = 10;

/// Number of bits for the depth field.
pub const DEPTH_BITS: usize = 8;

/// Audio sampling rate assumed for timestamp quantisation (Hz).
pub const REPORT_SAMPLE_RATE: f64 = 44_100.0;

/// One device's decoded report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// Reporting device.
    pub device: DeviceId,
    /// Quantised depth in metres.
    pub depth_m: f64,
    /// Per-device slot-relative reception offsets in seconds
    /// (`None` where the device was not heard). Index = device ID; the
    /// reporting device's own entry is `None`.
    pub reception_offsets_s: Vec<Option<f64>>,
}

/// Packs a report into its payload bits (before coding).
///
/// `table` supplies the reception timestamps (local clock, seconds) and
/// `sync_local_time` is the local time this device treats as the start of
/// the round (the moment it synchronised). Devices that were not heard are
/// encoded with the all-ones escape value.
pub fn pack_report(
    device: DeviceId,
    n_devices: usize,
    depth_m: f64,
    table: &TimestampTable,
    sync_local_time: f64,
    schedule: &TdmSchedule,
) -> Result<Vec<bool>> {
    if n_devices < 2 || device >= n_devices {
        return Err(ProtocolError::InvalidParameter {
            reason: format!("device {device} invalid for a group of {n_devices}"),
        });
    }
    let mut bits = Vec::new();
    push_uint(&mut bits, encode_depth(depth_m) as u64, DEPTH_BITS);
    let escape = (1u64 << TIMESTAMP_BITS) - 1;
    for other in 0..n_devices {
        if other == device {
            continue;
        }
        let field = match table.reception(other) {
            Some(t_rx) => {
                // Offset of the reception relative to the other device's slot
                // start, measured from this device's sync instant.
                let slot_start = if other == 0 {
                    0.0
                } else {
                    schedule.slot_after_leader(other)?
                };
                let offset_s = t_rx - sync_local_time - slot_start;
                let offset_samples = offset_s * REPORT_SAMPLE_RATE;
                if offset_samples < 0.0 {
                    escape
                } else {
                    let q = (offset_samples / TIMESTAMP_RESOLUTION_SAMPLES as f64).round() as u64;
                    q.min(escape - 1)
                }
            }
            None => escape,
        };
        push_uint(&mut bits, field, TIMESTAMP_BITS);
    }
    let crc = crc16(&bits);
    push_uint(&mut bits, crc as u64, 16);
    Ok(bits)
}

/// Unpacks a report payload (after decoding) back into reception offsets.
pub fn unpack_report(device: DeviceId, n_devices: usize, bits: &[bool]) -> Result<Report> {
    let expected = DEPTH_BITS + (n_devices - 1) * TIMESTAMP_BITS + 16;
    if bits.len() < expected {
        return Err(ProtocolError::DecodeFailure {
            reason: format!(
                "report has {} bits, expected at least {expected}",
                bits.len()
            ),
        });
    }
    let payload = &bits[..expected - 16];
    let (crc_field, _) = read_uint(bits, expected - 16, 16).map_err(ProtocolError::from)?;
    if crc16(payload) as u64 != crc_field {
        return Err(ProtocolError::DecodeFailure {
            reason: "CRC mismatch in report".into(),
        });
    }
    let (depth_code, mut offset) =
        read_uint(payload, 0, DEPTH_BITS).map_err(ProtocolError::from)?;
    let escape = (1u64 << TIMESTAMP_BITS) - 1;
    let mut reception_offsets_s = vec![None; n_devices];
    for (other, slot) in reception_offsets_s.iter_mut().enumerate() {
        if other == device {
            continue;
        }
        let (field, next) =
            read_uint(payload, offset, TIMESTAMP_BITS).map_err(ProtocolError::from)?;
        offset = next;
        if field != escape {
            let samples = field * TIMESTAMP_RESOLUTION_SAMPLES;
            *slot = Some(samples as f64 / REPORT_SAMPLE_RATE);
        }
    }
    Ok(Report {
        device,
        depth_m: decode_depth(depth_code as u8),
        reception_offsets_s,
    })
}

/// Encodes a packed report into its transmit waveform: rate-2/3
/// convolutional coding followed by binary FSK in the device's sub-band.
pub fn encode_report_waveform(
    device: DeviceId,
    n_devices: usize,
    payload_bits: &[bool],
) -> Result<Vec<f64>> {
    let coded = conv_encode_two_thirds(payload_bits);
    let fsk = FskConfig::for_device(device, n_devices).map_err(ProtocolError::from)?;
    fsk_modulate(&fsk, &coded).map_err(ProtocolError::from)
}

/// Decodes one device's report waveform (possibly a sum of several devices'
/// simultaneous transmissions) back into payload bits.
pub fn decode_report_waveform(
    device: DeviceId,
    n_devices: usize,
    samples: &[f64],
    payload_bit_count: usize,
) -> Result<Vec<bool>> {
    let fsk = FskConfig::for_device(device, n_devices).map_err(ProtocolError::from)?;
    // Coded length: tail-terminated rate-2/3.
    let coded_bits = 3 * (payload_bit_count + 6) / 2;
    let coded = fsk_demodulate(&fsk, samples, coded_bits).map_err(ProtocolError::from)?;
    let decoded = conv_decode_two_thirds(&coded).map_err(ProtocolError::from)?;
    Ok(decoded[..payload_bit_count.min(decoded.len())].to_vec())
}

/// Number of payload bits in a report for a group of `n_devices`
/// (`10·(N−1) + 8` plus the 16-bit CRC).
pub fn report_payload_bits(n_devices: usize) -> usize {
    DEPTH_BITS + (n_devices - 1) * TIMESTAMP_BITS + 16
}

/// Airtime of one report at the paper's ~100 bit/s per-device rate, in
/// seconds (used by the latency analysis: ~0.9–1.2 s for 6–8 devices).
pub fn report_airtime_s(n_devices: usize, bits_per_second: f64) -> f64 {
    let coded_bits = 3 * (report_payload_bits(n_devices) + 6) / 2;
    coded_bits as f64 / bits_per_second
}

/// Converts a leader-received report plus the schedule back into absolute
/// local reception times on the reporting device's clock, relative to its
/// sync instant (the inverse of the compression in [`pack_report`]).
pub fn report_to_timestamp_table(
    report: &Report,
    schedule: &TdmSchedule,
) -> Result<TimestampTable> {
    let mut table = TimestampTable::new(report.device);
    if report.device != 0 {
        table.record_own_tx(schedule.slot_after_leader(report.device)?);
    } else {
        table.record_own_tx(0.0);
    }
    for (other, offset) in report.reception_offsets_s.iter().enumerate() {
        if let Some(off) = offset {
            let slot_start = if other == 0 {
                0.0
            } else {
                schedule.slot_after_leader(other)?
            };
            table.record_reception(other, slot_start + off);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn example_table(
        device: DeviceId,
        n: usize,
        schedule: &TdmSchedule,
        sync: f64,
    ) -> TimestampTable {
        let mut t = TimestampTable::new(device);
        t.record_own_tx(sync + schedule.slot_after_leader(device).unwrap_or(0.0));
        for other in 0..n {
            if other == device {
                continue;
            }
            let slot = if other == 0 {
                0.0
            } else {
                schedule.slot_after_leader(other).unwrap()
            };
            // Reception a few ms after the slot start (propagation delay).
            t.record_reception(other, sync + slot + 0.012 + other as f64 * 0.001);
        }
        t
    }

    #[test]
    fn payload_size_matches_paper() {
        // N divers: 10(N−1) + 8 bits plus CRC-16.
        assert_eq!(report_payload_bits(6), 8 + 50 + 16);
        assert_eq!(report_payload_bits(8), 8 + 70 + 16);
        // ~1 s airtime at 100 bps for N=6–8, matching §2.4.
        let t6 = report_airtime_s(6, 100.0);
        let t8 = report_airtime_s(8, 100.0);
        assert!(t6 > 0.8 && t6 < 1.4, "t6 {t6}");
        assert!(t8 > t6 && t8 < 1.7, "t8 {t8}");
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let n = 6;
        let schedule = TdmSchedule::paper_defaults(n).unwrap();
        let sync = 3.7;
        let table = example_table(2, n, &schedule, sync);
        let bits = pack_report(2, n, 7.35, &table, sync, &schedule).unwrap();
        assert_eq!(bits.len(), report_payload_bits(n));
        let report = unpack_report(2, n, &bits).unwrap();
        assert!(
            (report.depth_m - 7.4).abs() < 0.11,
            "depth {}",
            report.depth_m
        );
        for other in 0..n {
            if other == 2 {
                assert!(report.reception_offsets_s[other].is_none());
            } else {
                let expected = 0.012 + other as f64 * 0.001;
                let got = report.reception_offsets_s[other].unwrap();
                // 2-sample resolution at 44.1 kHz is ~45 µs.
                assert!(
                    (got - expected).abs() < 1e-4,
                    "device {other}: {got} vs {expected}"
                );
            }
        }
    }

    #[test]
    fn missing_receptions_survive_roundtrip() {
        let n = 5;
        let schedule = TdmSchedule::paper_defaults(n).unwrap();
        let mut table = example_table(3, n, &schedule, 0.0);
        table.receptions.remove(&1);
        let bits = pack_report(3, n, 2.0, &table, 0.0, &schedule).unwrap();
        let report = unpack_report(3, n, &bits).unwrap();
        assert!(report.reception_offsets_s[1].is_none());
        assert!(report.reception_offsets_s[0].is_some());
    }

    #[test]
    fn corrupted_report_fails_crc() {
        let n = 5;
        let schedule = TdmSchedule::paper_defaults(n).unwrap();
        let table = example_table(1, n, &schedule, 0.0);
        let mut bits = pack_report(1, n, 2.0, &table, 0.0, &schedule).unwrap();
        bits[12] = !bits[12];
        assert!(matches!(
            unpack_report(1, n, &bits),
            Err(ProtocolError::DecodeFailure { .. })
        ));
        assert!(unpack_report(1, n, &bits[..10]).is_err());
    }

    #[test]
    fn waveform_roundtrip_single_device() {
        let n = 6;
        let schedule = TdmSchedule::paper_defaults(n).unwrap();
        let table = example_table(4, n, &schedule, 1.0);
        let bits = pack_report(4, n, 12.6, &table, 1.0, &schedule).unwrap();
        let wave = encode_report_waveform(4, n, &bits).unwrap();
        let decoded = decode_report_waveform(4, n, &wave, bits.len()).unwrap();
        assert_eq!(decoded, bits);
    }

    #[test]
    fn simultaneous_reports_decode_in_their_own_bands() {
        let n = 5;
        let schedule = TdmSchedule::paper_defaults(n).unwrap();
        let mut waves = Vec::new();
        let mut payloads = Vec::new();
        for device in 1..n {
            let table = example_table(device, n, &schedule, 0.5);
            let bits = pack_report(device, n, device as f64, &table, 0.5, &schedule).unwrap();
            waves.push(encode_report_waveform(device, n, &bits).unwrap());
            payloads.push(bits);
        }
        let max_len = waves.iter().map(Vec::len).max().unwrap();
        let mut mixed = vec![0.0; max_len];
        let mut rng = StdRng::seed_from_u64(9);
        for w in &waves {
            for (i, &s) in w.iter().enumerate() {
                mixed[i] += s;
            }
        }
        for s in mixed.iter_mut() {
            *s += 0.2 * rng.gen_range(-1.0..1.0);
        }
        for device in 1..n {
            let decoded =
                decode_report_waveform(device, n, &mixed, payloads[device - 1].len()).unwrap();
            assert_eq!(decoded, payloads[device - 1], "device {device}");
            let report = unpack_report(device, n, &decoded).unwrap();
            assert!((report.depth_m - device as f64).abs() < 0.11);
        }
    }

    #[test]
    fn report_to_table_reconstruction() {
        let n = 5;
        let schedule = TdmSchedule::paper_defaults(n).unwrap();
        let sync = 0.0;
        let table = example_table(2, n, &schedule, sync);
        let bits = pack_report(2, n, 5.0, &table, sync, &schedule).unwrap();
        let report = unpack_report(2, n, &bits).unwrap();
        let rebuilt = report_to_timestamp_table(&report, &schedule).unwrap();
        assert_eq!(rebuilt.device, 2);
        // Reconstructed reception times match the original table (both are
        // expressed relative to the device's sync instant).
        for other in 0..n {
            if other == 2 {
                continue;
            }
            let original = table.reception(other).unwrap() - sync;
            let rebuilt_t = rebuilt.reception(other).unwrap();
            assert!((original - rebuilt_t).abs() < 1e-4, "device {other}");
        }
        assert!((rebuilt.own_tx.unwrap() - schedule.slot_after_leader(2).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn pack_validates_inputs() {
        let schedule = TdmSchedule::paper_defaults(4).unwrap();
        let table = TimestampTable::new(1);
        assert!(pack_report(5, 4, 1.0, &table, 0.0, &schedule).is_err());
        assert!(pack_report(0, 1, 1.0, &table, 0.0, &schedule).is_err());
    }
}
