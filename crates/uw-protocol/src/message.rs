//! Messages exchanged during a localization round.
//!
//! Three message types travel over the acoustic channel:
//!
//! * the leader's **query** that opens the round,
//! * each device's **response** — a ranging preamble followed by an MFSK
//!   tone carrying its ID and, when the device synchronised to a peer
//!   rather than the leader, the ID of that reference device,
//! * each device's **report** carrying its timestamp table and depth back
//!   to the leader (encoded by [`crate::comm`]).

use crate::{ProtocolError, Result};
use serde::{Deserialize, Serialize};
use uw_dsp::fsk::MfskIdCodec;

/// Identifier of a device within the dive group (0 = leader).
pub type DeviceId = usize;

/// A message transmitted during the timestamp protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolMessage {
    /// The leader's query that initiates a round.
    Query {
        /// Leader ID (always 0).
        leader: DeviceId,
    },
    /// A device's TDM response.
    Response {
        /// Responding device ID.
        device: DeviceId,
        /// Device whose message this responder used to synchronise its
        /// slot: the leader (0) in the common case, or a peer ID when the
        /// leader was out of range.
        reference: DeviceId,
    },
}

impl ProtocolMessage {
    /// The ID of the transmitting device.
    pub fn sender(&self) -> DeviceId {
        match self {
            ProtocolMessage::Query { leader } => *leader,
            ProtocolMessage::Response { device, .. } => *device,
        }
    }
}

/// Encodes and decodes the ID fields of protocol messages as MFSK tones
/// (§2.3: the 1–5 kHz band is divided into one bin per device and the
/// transmitter puts energy only in its own bin).
#[derive(Debug, Clone)]
pub struct IdCodec {
    codec: MfskIdCodec,
}

impl IdCodec {
    /// Creates a codec for a group of `n_devices`.
    pub fn new(n_devices: usize) -> Result<Self> {
        let codec = MfskIdCodec::new(n_devices).map_err(|e| ProtocolError::InvalidParameter {
            reason: e.to_string(),
        })?;
        Ok(Self { codec })
    }

    /// Number of samples of one encoded ID tone.
    pub fn tone_len(&self) -> usize {
        self.codec.tone_len()
    }

    /// Encodes a message's ID fields as a waveform: the sender ID tone
    /// followed by the reference ID tone (queries encode the leader ID
    /// twice, keeping the message length constant).
    pub fn encode(&self, message: &ProtocolMessage) -> Result<Vec<f64>> {
        let (a, b) = match message {
            ProtocolMessage::Query { leader } => (*leader, *leader),
            ProtocolMessage::Response { device, reference } => (*device, *reference),
        };
        let mut wave = self
            .codec
            .encode(a)
            .map_err(|e| ProtocolError::InvalidParameter {
                reason: e.to_string(),
            })?;
        wave.extend(
            self.codec
                .encode(b)
                .map_err(|e| ProtocolError::InvalidParameter {
                    reason: e.to_string(),
                })?,
        );
        Ok(wave)
    }

    /// Decodes the two ID fields from a received waveform, returning
    /// `(sender, reference)` and the lower of the two decode confidences.
    pub fn decode(&self, samples: &[f64]) -> Result<((DeviceId, DeviceId), f64)> {
        let tone = self.tone_len();
        if samples.len() < 2 * tone {
            return Err(ProtocolError::DecodeFailure {
                reason: format!(
                    "ID waveform of {} samples is shorter than two tones ({})",
                    samples.len(),
                    2 * tone
                ),
            });
        }
        let (a, conf_a) =
            self.codec
                .decode(&samples[..tone])
                .map_err(|e| ProtocolError::DecodeFailure {
                    reason: e.to_string(),
                })?;
        let (b, conf_b) = self.codec.decode(&samples[tone..2 * tone]).map_err(|e| {
            ProtocolError::DecodeFailure {
                reason: e.to_string(),
            }
        })?;
        Ok(((a, b), conf_a.min(conf_b)))
    }

    /// Decodes a full protocol message from the ID waveform. A message whose
    /// sender equals its reference and is 0 is interpreted as the query.
    pub fn decode_message(&self, samples: &[f64]) -> Result<(ProtocolMessage, f64)> {
        let ((sender, reference), confidence) = self.decode(samples)?;
        let message = if sender == 0 {
            ProtocolMessage::Query { leader: 0 }
        } else {
            ProtocolMessage::Response {
                device: sender,
                reference,
            }
        };
        Ok((message, confidence))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn message_sender() {
        assert_eq!(ProtocolMessage::Query { leader: 0 }.sender(), 0);
        assert_eq!(
            ProtocolMessage::Response {
                device: 3,
                reference: 0
            }
            .sender(),
            3
        );
    }

    #[test]
    fn id_roundtrip_for_all_message_types() {
        let codec = IdCodec::new(6).unwrap();
        for message in [
            ProtocolMessage::Query { leader: 0 },
            ProtocolMessage::Response {
                device: 1,
                reference: 0,
            },
            ProtocolMessage::Response {
                device: 4,
                reference: 2,
            },
            ProtocolMessage::Response {
                device: 5,
                reference: 5,
            },
        ] {
            let wave = codec.encode(&message).unwrap();
            assert_eq!(wave.len(), 2 * codec.tone_len());
            let (decoded, confidence) = codec.decode_message(&wave).unwrap();
            assert_eq!(decoded, message);
            assert!(confidence > 5.0, "confidence {confidence}");
        }
    }

    #[test]
    fn id_roundtrip_with_noise() {
        let codec = IdCodec::new(8).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let message = ProtocolMessage::Response {
            device: 6,
            reference: 3,
        };
        let mut wave = codec.encode(&message).unwrap();
        for s in wave.iter_mut() {
            *s += 0.6 * rng.gen_range(-1.0..1.0);
        }
        let (decoded, _) = codec.decode_message(&wave).unwrap();
        assert_eq!(decoded, message);
    }

    #[test]
    fn errors_on_bad_input() {
        let codec = IdCodec::new(4).unwrap();
        assert!(codec
            .encode(&ProtocolMessage::Response {
                device: 9,
                reference: 0
            })
            .is_err());
        assert!(codec.decode(&[0.0; 10]).is_err());
        assert!(IdCodec::new(0).is_err());
    }
}
