//! # uw-protocol — distributed timestamp protocol and communication system
//!
//! Implements §2.3 and §2.4 of the paper:
//!
//! * [`schedule`] — the TDM response schedule: the leader broadcasts a query
//!   and every other device answers in a slot derived from its ID, with
//!   timing constants Δ₀ = 600 ms, Δ₁ = 320 ms (T_packet = 278 ms +
//!   T_guard = 42 ms). Devices that cannot hear the leader synchronise to
//!   the first response they do hear.
//! * [`message`] — the acoustic messages exchanged during a round (query,
//!   response with MFSK-encoded IDs, report).
//! * [`timestamps`] — per-device timestamp tables and the pairwise distance
//!   computation `D_ij = c/2·[(Tᶦⱼ − Tᶦᵢ) − (Tʲⱼ − Tʲᵢ)]` that cancels the
//!   unknown clock offsets, plus recovery of one-way-only links through a
//!   common neighbour.
//! * [`comm`] — the report back-channel: depth quantised to 0.2 m (8 bits),
//!   slot-relative timestamps at a 2-sample resolution (10 bits each),
//!   CRC-16, rate-2/3 convolutional coding, and simultaneous FSK
//!   transmission in per-device sub-bands.
//! * [`engine`] — an event-driven simulation of one protocol round over the
//!   device clocks; the physical layer is abstracted behind a
//!   [`engine::LinkObserver`] so the same engine runs with an ideal
//!   channel, a statistical error model, or full waveform simulation.
//! * [`latency`] — the round-trip-time model reproduced by the protocol
//!   latency table in §3.2.
//!
//! The device clocks come from [`uw_device::clock::LocalClock`]; positions
//! use [`uw_channel::geometry::Point3`]. The distance matrices this layer
//! produces are consumed by the SMACOF solver in `uw-localization`.
//!
//! ## Example
//!
//! ```
//! use uw_channel::geometry::Point3;
//! use uw_device::clock::LocalClock;
//! use uw_protocol::engine::{DeviceRoundState, IdealObserver, ProtocolEngine};
//! use uw_protocol::TdmSchedule;
//!
//! // Three devices with wildly different clocks, ideal channel.
//! let engine = ProtocolEngine::new(TdmSchedule::paper_defaults(3).unwrap(), 1500.0).unwrap();
//! let devices = vec![
//!     DeviceRoundState { id: 0, position: Point3::new(0.0, 0.0, 1.0), clock: LocalClock::ideal() },
//!     DeviceRoundState { id: 1, position: Point3::new(12.0, 0.0, 1.0), clock: LocalClock::new(30.0, 12.5) },
//!     DeviceRoundState { id: 2, position: Point3::new(0.0, 9.0, 2.0), clock: LocalClock::new(-18.0, -3.1) },
//! ];
//! let outcome = engine.run_round(&devices, &mut IdealObserver).unwrap();
//! // The two-way timestamp combination cancels the unknown clock offsets.
//! assert!((outcome.distances.get(0, 1).unwrap() - 12.0).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comm;
pub mod engine;
pub mod latency;
pub mod message;
pub mod schedule;
pub mod timestamps;

pub use engine::{LinkObserver, ProtocolEngine, RoundOutcome};
pub use schedule::TdmSchedule;
pub use timestamps::TimestampTable;

/// Errors produced by the protocol layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// A configuration or message field was out of range.
    InvalidParameter {
        /// Description of the offending parameter.
        reason: String,
    },
    /// Decoding of a report payload failed.
    DecodeFailure {
        /// Description of the decoding problem.
        reason: String,
    },
    /// The protocol round could not produce usable measurements.
    RoundFailure {
        /// Description of the failure.
        reason: String,
    },
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::InvalidParameter { reason } => write!(f, "invalid parameter: {reason}"),
            ProtocolError::DecodeFailure { reason } => write!(f, "decode failure: {reason}"),
            ProtocolError::RoundFailure { reason } => write!(f, "round failure: {reason}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<uw_dsp::DspError> for ProtocolError {
    fn from(e: uw_dsp::DspError) -> Self {
        ProtocolError::DecodeFailure {
            reason: e.to_string(),
        }
    }
}

/// Convenience result alias for the protocol layer.
pub type Result<T> = std::result::Result<T, ProtocolError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ProtocolError::InvalidParameter {
            reason: "zero devices".into(),
        };
        assert!(e.to_string().contains("zero devices"));
        let e = ProtocolError::DecodeFailure {
            reason: "crc mismatch".into(),
        };
        assert!(e.to_string().contains("crc mismatch"));
        let e = ProtocolError::RoundFailure {
            reason: "no responses".into(),
        };
        assert!(e.to_string().contains("no responses"));
        let e: ProtocolError = uw_dsp::DspError::InvalidLength { reason: "x" }.into();
        assert!(matches!(e, ProtocolError::DecodeFailure { .. }));
    }
}
