//! TDM response schedule (§2.3).
//!
//! The leader (ID 0) broadcasts a query. Every other device answers in a
//! time slot derived from its ID and measured from the moment it
//! synchronised:
//!
//! * a device that hears the leader responds `Δ₀ + (i−1)·Δ₁` after the
//!   query arrives;
//! * a device that misses the leader but hears device `j`'s response
//!   synchronises to that and responds `(i−j)·Δ₁` later — unless its own
//!   slot has already passed, in which case it waits a full extra cycle,
//!   `(N − j + i)·Δ₁` after `j`.
//!
//! Δ₀ absorbs the receiver's processing plus audio input/output latency;
//! Δ₁ = T_packet + T_guard where the guard interval exceeds twice the
//! maximum propagation time inside the dive group so slots never collide.

use crate::{ProtocolError, Result};
use serde::{Deserialize, Serialize};

/// TDM timing constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TdmSchedule {
    /// Number of devices in the dive group, including the leader.
    pub n_devices: usize,
    /// Δ₀: processing + audio-latency margin before the first response (s).
    pub delta0_s: f64,
    /// T_packet: duration of one response message (s).
    pub packet_s: f64,
    /// T_guard: guard interval accounting for the maximum propagation delay (s).
    pub guard_s: f64,
}

impl TdmSchedule {
    /// The paper's timing constants: Δ₀ = 600 ms, T_packet = 278 ms,
    /// T_guard = 42 ms (so Δ₁ = 320 ms).
    pub fn paper_defaults(n_devices: usize) -> Result<Self> {
        let s = Self {
            n_devices,
            delta0_s: 0.600,
            packet_s: 0.278,
            guard_s: 0.042,
        };
        s.validate()?;
        Ok(s)
    }

    /// Δ₁ = T_packet + T_guard: the slot pitch (s).
    pub fn delta1_s(&self) -> f64 {
        self.packet_s + self.guard_s
    }

    /// Maximum two-way propagation time the guard interval can absorb (s).
    pub fn max_round_propagation_s(&self) -> f64 {
        self.guard_s
    }

    /// Maximum device separation (m) the guard interval supports at the
    /// given sound speed: `T_guard > 2·τ_max`.
    pub fn max_range_m(&self, sound_speed: f64) -> f64 {
        sound_speed * self.guard_s / 2.0
    }

    /// Validates the schedule.
    pub fn validate(&self) -> Result<()> {
        if self.n_devices < 2 {
            return Err(ProtocolError::InvalidParameter {
                reason: format!(
                    "a dive group needs at least 2 devices, got {}",
                    self.n_devices
                ),
            });
        }
        if self.delta0_s <= 0.0 || self.packet_s <= 0.0 || self.guard_s <= 0.0 {
            return Err(ProtocolError::InvalidParameter {
                reason: "all schedule intervals must be positive".into(),
            });
        }
        Ok(())
    }

    /// Response offset (s) after synchronisation for device `id` when it
    /// heard the leader's query directly.
    pub fn slot_after_leader(&self, id: usize) -> Result<f64> {
        self.check_responder(id)?;
        Ok(self.delta0_s + (id as f64 - 1.0) * self.delta1_s())
    }

    /// Response offset (s) after hearing device `heard_id`'s response, for a
    /// device `id` that did not hear the leader. Returns the offset and
    /// whether the device had to defer to the next cycle.
    pub fn slot_after_peer(&self, id: usize, heard_id: usize) -> Result<(f64, bool)> {
        self.check_responder(id)?;
        self.check_responder(heard_id)?;
        if id == heard_id {
            return Err(ProtocolError::InvalidParameter {
                reason: "a device cannot synchronise to its own response".into(),
            });
        }
        if id > heard_id {
            let gap = (id - heard_id) as f64 * self.delta1_s();
            // The paper's condition (i − j)Δ₁ > Δ₀ guarantees the device
            // still has time to transmit in this cycle.
            if gap > self.delta0_s {
                return Ok((gap, false));
            }
        }
        // Slot already passed (or is too close): wait for the next cycle.
        let gap = (self.n_devices as f64 - heard_id as f64 + id as f64) * self.delta1_s();
        Ok((gap, true))
    }

    fn check_responder(&self, id: usize) -> Result<()> {
        if id == 0 {
            return Err(ProtocolError::InvalidParameter {
                reason: "the leader (ID 0) does not occupy a response slot".into(),
            });
        }
        if id >= self.n_devices {
            return Err(ProtocolError::InvalidParameter {
                reason: format!("device id {id} outside a group of {}", self.n_devices),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_2_3() {
        let s = TdmSchedule::paper_defaults(5).unwrap();
        assert!((s.delta1_s() - 0.320).abs() < 1e-12);
        assert!((s.delta0_s - 0.600).abs() < 1e-12);
        // 42 ms guard at ~1500 m/s supports ~32 m separations.
        let max_range = s.max_range_m(1500.0);
        assert!(
            max_range > 30.0 && max_range < 33.0,
            "max range {max_range}"
        );
    }

    #[test]
    fn leader_slots_are_spaced_by_delta1() {
        let s = TdmSchedule::paper_defaults(6).unwrap();
        assert!((s.slot_after_leader(1).unwrap() - 0.600).abs() < 1e-12);
        assert!((s.slot_after_leader(2).unwrap() - 0.920).abs() < 1e-12);
        assert!((s.slot_after_leader(5).unwrap() - (0.600 + 4.0 * 0.320)).abs() < 1e-12);
        for i in 2..6 {
            let gap = s.slot_after_leader(i).unwrap() - s.slot_after_leader(i - 1).unwrap();
            assert!((gap - s.delta1_s()).abs() < 1e-12);
        }
    }

    #[test]
    fn peer_sync_same_cycle_when_enough_time_remains() {
        let s = TdmSchedule::paper_defaults(6).unwrap();
        // Device 5 heard device 2: gap (5-2)·0.32 = 0.96 > Δ₀ = 0.6 — same cycle.
        let (offset, deferred) = s.slot_after_peer(5, 2).unwrap();
        assert!(!deferred);
        assert!((offset - 0.96).abs() < 1e-12);
    }

    #[test]
    fn peer_sync_defers_when_slot_already_passed() {
        let s = TdmSchedule::paper_defaults(6).unwrap();
        // Device 2 heard device 4: its slot has long passed, so it waits
        // (N − j + i)Δ₁ = (6 − 4 + 2)·0.32.
        let (offset, deferred) = s.slot_after_peer(2, 4).unwrap();
        assert!(deferred);
        assert!((offset - 4.0 * 0.320).abs() < 1e-12);
        // Device 3 heard device 2: gap 0.32 < Δ₀ = 0.6, so it also defers.
        let (offset, deferred) = s.slot_after_peer(3, 2).unwrap();
        assert!(deferred);
        assert!((offset - (6.0 - 2.0 + 3.0) * 0.320).abs() < 1e-12);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        assert!(TdmSchedule::paper_defaults(1).is_err());
        let s = TdmSchedule::paper_defaults(5).unwrap();
        assert!(s.slot_after_leader(0).is_err());
        assert!(s.slot_after_leader(5).is_err());
        assert!(s.slot_after_peer(2, 2).is_err());
        assert!(s.slot_after_peer(0, 1).is_err());
        assert!(s.slot_after_peer(1, 7).is_err());
        let bad = TdmSchedule { guard_s: 0.0, ..s };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn guard_interval_prevents_collisions() {
        // Two consecutive responders at the maximum supported separation:
        // the second device's packet must start after the first packet has
        // fully arrived everywhere.
        let s = TdmSchedule::paper_defaults(5).unwrap();
        let c = 1500.0;
        let tau_max = s.max_range_m(c) / c;
        // Worst case: device i is τ_max late in its own sync and its packet
        // travels τ_max to a listener; the next slot starts Δ₁ later.
        let packet_end_worst = s.slot_after_leader(1).unwrap() + tau_max + s.packet_s + tau_max;
        let next_slot_start_earliest = s.slot_after_leader(2).unwrap();
        assert!(packet_end_worst <= next_slot_start_earliest + 1e-12);
    }
}
