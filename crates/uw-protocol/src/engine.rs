//! Event-driven simulation of one protocol round (§2.3).
//!
//! [`ProtocolEngine::run_round`] plays out a complete TDM round over a set
//! of devices with independent local clocks:
//!
//! 1. the leader transmits its query at true time 0;
//! 2. every device that hears the query synchronises to the arrival and
//!    schedules its response in its ID slot;
//! 3. devices that miss the query synchronise to the first response they do
//!    hear (same-cycle if their slot has not passed, otherwise deferred one
//!    cycle), exactly as Fig. 9 describes;
//! 4. every reception is timestamped on the receiving device's local clock;
//! 5. the collected timestamp tables are turned into a pairwise distance
//!    matrix with the clock-offset-cancelling formula of
//!    [`crate::timestamps`].
//!
//! The physical layer is abstracted by the [`LinkObserver`] trait: given a
//! transmitter, a receiver and the true propagation delay it returns the
//! measured timestamp error (or `None` for a lost packet). Implementations
//! range from an ideal channel to the full waveform simulation in
//! `uw-core`.

use crate::message::DeviceId;
use crate::schedule::TdmSchedule;
use crate::timestamps::{build_distance_matrix, TimestampTable};
use crate::{ProtocolError, Result};
use serde::{Deserialize, Serialize};
use uw_channel::geometry::Point3;
use uw_device::clock::LocalClock;
use uw_localization::matrix::DistanceMatrix;

/// Physical-layer abstraction: decides whether a transmission from `tx` is
/// received by `rx` and, if so, with what timestamping error (seconds added
/// to the true arrival time; may be negative).
pub trait LinkObserver {
    /// Returns `Some(error_s)` when the message is received, `None` when it
    /// is lost.
    fn observe(&mut self, tx: DeviceId, rx: DeviceId, true_delay_s: f64) -> Option<f64>;
}

/// An ideal channel: every message is received with zero timestamp error.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealObserver;

impl LinkObserver for IdealObserver {
    fn observe(&mut self, _tx: DeviceId, _rx: DeviceId, _true_delay_s: f64) -> Option<f64> {
        Some(0.0)
    }
}

/// Adapter turning a closure into a [`LinkObserver`].
pub struct FnObserver<F: FnMut(DeviceId, DeviceId, f64) -> Option<f64>>(pub F);

impl<F: FnMut(DeviceId, DeviceId, f64) -> Option<f64>> LinkObserver for FnObserver<F> {
    fn observe(&mut self, tx: DeviceId, rx: DeviceId, true_delay_s: f64) -> Option<f64> {
        (self.0)(tx, rx, true_delay_s)
    }
}

/// State of one device entering a protocol round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceRoundState {
    /// Device ID (0 = leader).
    pub id: DeviceId,
    /// Ground-truth position at the start of the round.
    pub position: Point3,
    /// Local clock.
    pub clock: LocalClock,
}

/// How a device obtained its slot synchronisation during the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncSource {
    /// Heard the leader's query directly.
    Leader,
    /// Synchronised to a peer's response (carries the peer ID).
    Peer(DeviceId),
    /// Never synchronised and therefore never transmitted.
    None,
}

/// Result of one protocol round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundOutcome {
    /// Per-device timestamp tables (index = device ID).
    pub tables: Vec<TimestampTable>,
    /// Pairwise distance matrix computed from the tables.
    pub distances: DistanceMatrix,
    /// How each device synchronised.
    pub sync_sources: Vec<SyncSource>,
    /// True transmission time of each device (`None` if it never
    /// transmitted). The leader's query is at 0.
    pub tx_times: Vec<Option<f64>>,
    /// Wall-clock duration of the acoustic phase of the round in seconds
    /// (from the query to the end of the last response packet).
    pub acoustic_duration_s: f64,
}

/// Simulates protocol rounds for a fixed schedule and sound speed.
#[derive(Debug, Clone)]
pub struct ProtocolEngine {
    schedule: TdmSchedule,
    sound_speed: f64,
}

impl ProtocolEngine {
    /// Creates an engine. `sound_speed` is in m/s.
    pub fn new(schedule: TdmSchedule, sound_speed: f64) -> Result<Self> {
        schedule.validate()?;
        if !(1300.0..=1700.0).contains(&sound_speed) {
            return Err(ProtocolError::InvalidParameter {
                reason: format!("sound speed {sound_speed} m/s is not an underwater value"),
            });
        }
        Ok(Self {
            schedule,
            sound_speed,
        })
    }

    /// The schedule in use.
    pub fn schedule(&self) -> &TdmSchedule {
        &self.schedule
    }

    /// The sound speed in use (m/s).
    pub fn sound_speed(&self) -> f64 {
        self.sound_speed
    }

    /// Runs one round over the given devices. `devices[i].id` must equal `i`
    /// and device 0 is the leader.
    pub fn run_round(
        &self,
        devices: &[DeviceRoundState],
        observer: &mut dyn LinkObserver,
    ) -> Result<RoundOutcome> {
        let n = devices.len();
        if n != self.schedule.n_devices {
            return Err(ProtocolError::InvalidParameter {
                reason: format!(
                    "{n} devices supplied for a schedule of {}",
                    self.schedule.n_devices
                ),
            });
        }
        for (i, d) in devices.iter().enumerate() {
            if d.id != i {
                return Err(ProtocolError::InvalidParameter {
                    reason: format!("device at index {i} has id {}", d.id),
                });
            }
        }

        let mut tables: Vec<TimestampTable> = (0..n).map(TimestampTable::new).collect();
        let mut sync_sources = vec![SyncSource::None; n];
        let mut tx_times: Vec<Option<f64>> = vec![None; n];
        // Scheduled local transmission time for devices that have synced but
        // not yet transmitted.
        let mut scheduled_local_tx: Vec<Option<f64>> = vec![None; n];

        // --- Leader query at true time 0. ---
        let leader_local_tx = devices[0].clock.local_from_true(0.0);
        tables[0].record_own_tx(leader_local_tx);
        tx_times[0] = Some(0.0);
        let mut last_packet_end = self.schedule.packet_s;

        for i in 1..n {
            let tau = devices[0].position.distance(&devices[i].position) / self.sound_speed;
            if let Some(err) = observer.observe(0, i, tau) {
                let arrival_local = devices[i].clock.local_from_true(tau) + err;
                tables[i].record_reception(0, arrival_local);
                sync_sources[i] = SyncSource::Leader;
                let slot = self.schedule.slot_after_leader(i)?;
                scheduled_local_tx[i] = Some(arrival_local + slot);
            }
        }

        // --- Responses, processed in order of true transmission time. ---
        let mut transmitted = vec![false; n];
        transmitted[0] = true;
        loop {
            // Pick the pending synced device with the earliest true tx time.
            let mut next: Option<(DeviceId, f64)> = None;
            for i in 1..n {
                if transmitted[i] {
                    continue;
                }
                if let Some(local_tx) = scheduled_local_tx[i] {
                    let true_tx = devices[i].clock.true_from_local(local_tx);
                    if next.is_none_or(|(_, t)| true_tx < t) {
                        next = Some((i, true_tx));
                    }
                }
            }
            let Some((sender, true_tx)) = next else { break };
            transmitted[sender] = true;
            tx_times[sender] = Some(true_tx);
            tables[sender].record_own_tx(scheduled_local_tx[sender].expect("scheduled"));
            last_packet_end = last_packet_end.max(true_tx + self.schedule.packet_s);

            for rx in 0..n {
                if rx == sender {
                    continue;
                }
                let tau =
                    devices[sender].position.distance(&devices[rx].position) / self.sound_speed;
                let Some(err) = observer.observe(sender, rx, tau) else {
                    continue;
                };
                let arrival_true = true_tx + tau;
                let arrival_local = devices[rx].clock.local_from_true(arrival_true) + err;
                tables[rx].record_reception(sender, arrival_local);
                // A device that has not synced yet latches onto the first
                // response it hears.
                if rx != 0 && !transmitted[rx] && scheduled_local_tx[rx].is_none() {
                    let (offset, _deferred) = self.schedule.slot_after_peer(rx, sender)?;
                    scheduled_local_tx[rx] = Some(arrival_local + offset);
                    sync_sources[rx] = SyncSource::Peer(sender);
                }
            }
        }

        let distances = build_distance_matrix(&tables, self.sound_speed)?;
        Ok(RoundOutcome {
            tables,
            distances,
            sync_sources,
            tx_times,
            acoustic_duration_s: last_packet_end,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn devices_at(positions: &[Point3]) -> Vec<DeviceRoundState> {
        positions
            .iter()
            .enumerate()
            .map(|(i, &p)| DeviceRoundState {
                id: i,
                position: p,
                clock: LocalClock::new((i as f64) * 13.0 - 26.0, 100.0 * i as f64 + 7.0),
            })
            .collect()
    }

    fn square_deployment() -> Vec<Point3> {
        vec![
            Point3::new(0.0, 0.0, 1.5),
            Point3::new(12.0, 0.0, 2.0),
            Point3::new(12.0, 9.0, 3.0),
            Point3::new(0.0, 9.0, 2.5),
            Point3::new(6.0, 4.0, 1.0),
        ]
    }

    fn engine(n: usize) -> ProtocolEngine {
        ProtocolEngine::new(TdmSchedule::paper_defaults(n).unwrap(), 1500.0).unwrap()
    }

    #[test]
    fn ideal_round_recovers_exact_distances() {
        let positions = square_deployment();
        let devices = devices_at(&positions);
        let outcome = engine(5).run_round(&devices, &mut IdealObserver).unwrap();
        assert_eq!(outcome.distances.link_count(), 10);
        for i in 0..5 {
            for j in (i + 1)..5 {
                let truth = positions[i].distance(&positions[j]);
                let est = outcome.distances.get(i, j).unwrap();
                // The devices carry ±26 ppm clock skews, which contribute a
                // few centimetres over the ~2 s round.
                assert!((est - truth).abs() < 0.15, "({i},{j}): {est} vs {truth}");
            }
        }
        // Everyone synced to the leader and transmitted.
        for i in 1..5 {
            assert_eq!(outcome.sync_sources[i], SyncSource::Leader);
            assert!(outcome.tx_times[i].is_some());
        }
        assert_eq!(outcome.sync_sources[0], SyncSource::None);
    }

    #[test]
    fn responses_follow_the_tdm_order_without_collisions() {
        let devices = devices_at(&square_deployment());
        let outcome = engine(5).run_round(&devices, &mut IdealObserver).unwrap();
        let times: Vec<f64> = (1..5).map(|i| outcome.tx_times[i].unwrap()).collect();
        for w in times.windows(2) {
            // Slots are Δ₁ = 320 ms apart; propagation skews them by < 30 ms.
            assert!(w[1] - w[0] > 0.25, "slot spacing {}", w[1] - w[0]);
        }
        // Acoustic phase ends within the round-trip bound Δ₀ + (N−1)Δ₁ plus
        // propagation and the final packet duration.
        assert!(outcome.acoustic_duration_s < 0.6 + 4.0 * 0.32 + 0.278 + 0.05);
    }

    #[test]
    fn timestamp_errors_translate_to_distance_errors() {
        let devices = devices_at(&square_deployment());
        // A detection bias of +e seconds on every reception inflates every
        // two-way distance by c·e (the bias appears once in each direction
        // and the halving keeps exactly one copy): +1 ms → +1.5 m.
        let mut constant = FnObserver(|_tx, _rx, _tau| Some(0.001));
        let outcome = engine(5).run_round(&devices, &mut constant).unwrap();
        let truth = square_deployment();
        for (i, j) in outcome.distances.links() {
            let t = truth[i].distance(&truth[j]);
            let e = outcome.distances.get(i, j).unwrap();
            assert!((e - t - 1.5).abs() < 0.15, "({i},{j}): {e} vs {t}");
        }
    }

    #[test]
    fn asymmetric_timestamp_error_shifts_distance() {
        let devices = devices_at(&square_deployment());
        // +2 ms error only when device 1 receives: each affected pair gains
        // c·err/2 ≈ 1.5 m.
        let mut biased = FnObserver(|_tx, rx, _tau| if rx == 1 { Some(0.002) } else { Some(0.0) });
        let outcome = engine(5).run_round(&devices, &mut biased).unwrap();
        let truth = square_deployment();
        let err01 = outcome.distances.get(0, 1).unwrap() - truth[0].distance(&truth[1]);
        assert!((err01 - 1.5).abs() < 0.1, "err {err01}");
    }

    #[test]
    fn device_out_of_leader_range_syncs_to_a_peer() {
        let positions = square_deployment();
        let devices = devices_at(&positions);
        // Device 4 cannot hear the leader (and vice versa), but hears others.
        let mut observer = FnObserver(|tx, rx, _tau| {
            if (tx == 0 && rx == 4) || (tx == 4 && rx == 0) {
                None
            } else {
                Some(0.0)
            }
        });
        let outcome = engine(5).run_round(&devices, &mut observer).unwrap();
        assert!(matches!(outcome.sync_sources[4], SyncSource::Peer(_)));
        assert!(outcome.tx_times[4].is_some());
        // The 0–4 link is missing both directions, but the other pairs are
        // present and accurate; 0–4 may still be recovered via a common
        // neighbour only if one direction existed — here both were lost.
        assert!(!outcome.distances.has_link(0, 4));
        let truth = &positions;
        for (i, j) in outcome.distances.links() {
            let t = truth[i].distance(&truth[j]);
            let e = outcome.distances.get(i, j).unwrap();
            assert!((e - t).abs() < 0.05, "({i},{j}): {e} vs {t}");
        }
        // Device 4's pairwise distances to the peers it heard are intact.
        assert!(outcome.distances.has_link(1, 4));
        assert!(outcome.distances.has_link(2, 4));
    }

    #[test]
    fn one_way_loss_is_recovered_through_common_neighbour() {
        let positions = square_deployment();
        let devices = devices_at(&positions);
        // Device 2's response is lost at device 1 (one direction only).
        let mut observer =
            FnObserver(|tx, rx, _tau| if tx == 2 && rx == 1 { None } else { Some(0.0) });
        let outcome = engine(5).run_round(&devices, &mut observer).unwrap();
        assert!(outcome.distances.has_link(1, 2));
        let truth = positions[1].distance(&positions[2]);
        let est = outcome.distances.get(1, 2).unwrap();
        assert!((est - truth).abs() < 0.05, "{est} vs {truth}");
    }

    #[test]
    fn totally_isolated_device_never_transmits() {
        let positions = square_deployment();
        let devices = devices_at(&positions);
        let mut observer = FnObserver(
            |tx, rx, _tau| {
                if tx == 3 || rx == 3 {
                    None
                } else {
                    Some(0.0)
                }
            },
        );
        let outcome = engine(5).run_round(&devices, &mut observer).unwrap();
        assert_eq!(outcome.sync_sources[3], SyncSource::None);
        assert!(outcome.tx_times[3].is_none());
        for j in 0..5 {
            if j != 3 {
                assert!(!outcome.distances.has_link(3, j));
            }
        }
    }

    #[test]
    fn engine_validates_inputs() {
        let schedule = TdmSchedule::paper_defaults(5).unwrap();
        assert!(ProtocolEngine::new(schedule, 300.0).is_err());
        let engine = ProtocolEngine::new(schedule, 1500.0).unwrap();
        // Wrong device count.
        let devices = devices_at(&square_deployment()[..4]);
        assert!(engine.run_round(&devices, &mut IdealObserver).is_err());
        // Wrong IDs.
        let mut devices = devices_at(&square_deployment());
        devices[2].id = 7;
        assert!(engine.run_round(&devices, &mut IdealObserver).is_err());
    }

    #[test]
    fn clock_offsets_do_not_leak_into_distances() {
        // Very different clock offsets and skews across devices.
        let positions = square_deployment();
        let devices: Vec<DeviceRoundState> = positions
            .iter()
            .enumerate()
            .map(|(i, &p)| DeviceRoundState {
                id: i,
                position: p,
                clock: LocalClock::new(80.0 * (i as f64 - 2.0), 1e4 * i as f64),
            })
            .collect();
        let outcome = engine(5).run_round(&devices, &mut IdealObserver).unwrap();
        for (i, j) in outcome.distances.links() {
            let t = positions[i].distance(&positions[j]);
            let e = outcome.distances.get(i, j).unwrap();
            assert!((e - t).abs() < 0.5, "({i},{j}): {e} vs {t}");
        }
    }
}
