//! Protocol latency model (§2.3 latency analysis and §3.2 round-trip
//! measurements).
//!
//! With every diver in the leader's range, the acoustic phase of a round
//! lasts `T_round = Δ₀ + (N−1)·Δ₁`; when some divers can only synchronise
//! to peers the worst case doubles the slot term. The report phase adds the
//! FSK airtime of the longest report (all devices transmit simultaneously
//! in their own sub-bands).

use crate::comm::report_airtime_s;
use crate::schedule::TdmSchedule;
use crate::{ProtocolError, Result};
use serde::{Deserialize, Serialize};

/// Latency breakdown of one localization round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundLatency {
    /// Number of devices.
    pub n_devices: usize,
    /// Acoustic TDM phase duration (s).
    pub acoustic_s: f64,
    /// Report phase duration (s).
    pub report_s: f64,
}

impl RoundLatency {
    /// Total round latency (s).
    pub fn total_s(&self) -> f64 {
        self.acoustic_s + self.report_s
    }
}

/// Acoustic round-trip time when all devices are in the leader's range:
/// `Δ₀ + (N−1)·Δ₁`.
pub fn round_trip_all_in_range(schedule: &TdmSchedule) -> f64 {
    schedule.delta0_s + (schedule.n_devices as f64 - 1.0) * schedule.delta1_s()
}

/// Worst-case acoustic round-trip time when some devices are out of the
/// leader's range and must defer by a full cycle: `Δ₀ + 2(N−1)·Δ₁`.
pub fn round_trip_worst_case(schedule: &TdmSchedule) -> f64 {
    schedule.delta0_s + 2.0 * (schedule.n_devices as f64 - 1.0) * schedule.delta1_s()
}

/// Full latency model for a round, including the report phase at the given
/// per-device bit rate (the paper uses ~100 bit/s).
pub fn round_latency(n_devices: usize, report_bps: f64) -> Result<RoundLatency> {
    if report_bps <= 0.0 {
        return Err(ProtocolError::InvalidParameter {
            reason: "report bit rate must be positive".into(),
        });
    }
    let schedule = TdmSchedule::paper_defaults(n_devices)?;
    Ok(RoundLatency {
        n_devices,
        acoustic_s: round_trip_all_in_range(&schedule),
        report_s: report_airtime_s(n_devices, report_bps),
    })
}

/// The acoustic round-trip times the paper measured for 3–7 devices
/// (seconds), used as the reference series for the latency table.
pub const PAPER_MEASURED_RTT_S: [(usize, f64); 5] =
    [(3, 1.2), (4, 1.6), (5, 1.9), (6, 2.2), (7, 2.5)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_matches_paper_measurements() {
        // The measured round times in §3.2 (1.2, 1.6, 1.9, 2.2, 2.5 s for
        // N = 3..7) should match Δ₀ + (N−1)Δ₁ to within ~0.1 s.
        for (n, measured) in PAPER_MEASURED_RTT_S {
            let schedule = TdmSchedule::paper_defaults(n).unwrap();
            let model = round_trip_all_in_range(&schedule);
            assert!(
                (model - measured).abs() < 0.1,
                "N={n}: model {model} vs measured {measured}"
            );
        }
    }

    #[test]
    fn paper_quoted_examples() {
        // §1: protocol latency of 1.56 s and 1.88 s for 4- and 5-device
        // networks.
        let s4 = TdmSchedule::paper_defaults(4).unwrap();
        let s5 = TdmSchedule::paper_defaults(5).unwrap();
        assert!((round_trip_all_in_range(&s4) - 1.56).abs() < 1e-9);
        assert!((round_trip_all_in_range(&s5) - 1.88).abs() < 1e-9);
    }

    #[test]
    fn worst_case_doubles_the_slot_term() {
        let s = TdmSchedule::paper_defaults(6).unwrap();
        let normal = round_trip_all_in_range(&s);
        let worst = round_trip_worst_case(&s);
        assert!((worst - normal - 5.0 * 0.32).abs() < 1e-9);
    }

    #[test]
    fn latency_grows_linearly_with_devices() {
        let mut prev = 0.0;
        for n in 3..=8 {
            let lat = round_latency(n, 100.0).unwrap();
            assert!(lat.total_s() > prev);
            prev = lat.total_s();
            assert_eq!(lat.n_devices, n);
            // Report time is around a second, acoustic phase 1–3 s.
            assert!(lat.report_s > 0.5 && lat.report_s < 2.0);
            assert!(lat.acoustic_s > 1.0 && lat.acoustic_s < 3.5);
        }
        assert!(round_latency(5, 0.0).is_err());
    }
}
