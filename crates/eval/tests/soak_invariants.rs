//! Tier-1 coverage of the soak harness: a small mixed-fault plan soaks
//! with zero invariant violations and full bitwise reproducibility, and a
//! deliberately sabotaged run is caught with a working repro line.

use uw_eval::soak::{run_cell, run_plan, Sabotage, SoakCell, SoakPlan};

#[test]
fn mixed_fault_plan_soaks_clean_and_reproducibly() {
    let plan = SoakPlan::generate(99, 12);
    assert!(plan.cells.len() >= 12);
    // The plan mixes control cells and faulted cells.
    assert!(plan.cells.iter().any(|c| c.faults.is_none()));
    assert!(plan.cells.iter().any(|c| c.faults.is_some()));

    let report = run_plan(&plan, Sabotage::None, true).unwrap();
    assert!(
        report.violations.is_empty(),
        "unexpected violations: {:?}",
        report.violations
    );
    assert!(report.reproducible);
    assert_eq!(report.cells_run, plan.cells.len());
    assert!(report.rounds_ok > 0);
    assert!(!report.fault_rounds.is_empty());

    let json = report.to_json();
    assert!(json.contains("\"invariant_violations\": 0"));
    assert!(json.contains("\"reproducible\": true"));
}

#[test]
fn sabotaged_soak_is_caught_and_its_repro_line_replays_the_cell() {
    let plan = SoakPlan::generate(99, 3);
    let report = run_plan(&plan, Sabotage::Nan, false).unwrap();
    assert!(
        !report.violations.is_empty(),
        "sabotage must trip the invariant checker"
    );
    let violation = &report.violations[0];
    assert!(violation.detail.contains("NaN"), "{}", violation.detail);
    assert!(
        violation.repro.contains("--bin uw_soak -- --cell '"),
        "{}",
        violation.repro
    );
    // The quoted spec in the repro line parses back to the violating cell
    // and replays cleanly without the sabotage hook.
    let spec = violation.repro.split('\'').nth(1).unwrap();
    let cell = SoakCell::parse(spec).unwrap();
    assert_eq!(cell.spec(), violation.cell_spec);
    let replayed = run_cell(&cell, Sabotage::None).unwrap();
    assert!(replayed.violations.is_empty());
}
