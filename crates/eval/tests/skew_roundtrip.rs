//! Round-trip of per-device clock skew through the record/replay path:
//! captures synthesized under a skewed ADC (`uw_dsp::resample::apply_ppm_skew`)
//! are compensated on replay and land back inside the golden-fixture
//! accuracy band.

use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::*;
use uw_eval::matrix::{LinkProfile, MobilityProfile, ScenarioMatrix, Topology};
use uw_eval::replay::{record_cell, Recording};
use uw_eval::runner::run_cell;
use uw_eval::EvalCell;

fn tiny_hybrid_cell() -> EvalCell {
    let matrix = ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Clear],
        mobilities: vec![MobilityProfile::Static],
        numeric_paths: vec![NumericPath::F64],
        faults: vec![None],
        seeds: vec![1],
        recordings: vec![],
        rounds_per_cell: 2,
        fidelity: Fidelity::Hybrid,
    };
    matrix.expand().unwrap().remove(0)
}

fn capture_len(recording: &Recording, round: usize, device: usize) -> usize {
    recording
        .links
        .iter()
        .find(|l| l.round == round && l.device == device)
        .unwrap()
        .capture
        .mic1
        .len()
}

#[test]
fn skewed_recordings_compensate_back_into_the_golden_band() {
    let schedule = FaultSchedule::parse("seed=1;skew:0..:2:300").unwrap();
    let clean = tiny_hybrid_cell();
    let skewed = tiny_hybrid_cell().with_faults(schedule.clone()).unwrap();
    assert!(skewed.id.contains("flt"), "{}", skewed.id);

    let rec_clean = record_cell(&clean).unwrap();
    let rec_skewed = record_cell(&skewed).unwrap();

    // Non-vacuity: the skewed device's ADC resampling changed its capture
    // length; unskewed devices recorded identical audio.
    assert_ne!(
        capture_len(&rec_skewed, 0, 2),
        capture_len(&rec_clean, 0, 2),
        "300 ppm skew must change the skewed device's sample count"
    );
    assert_eq!(
        capture_len(&rec_skewed, 0, 3),
        capture_len(&rec_clean, 0, 3)
    );

    // Replay both recordings; the skewed one with its schedule installed,
    // so the session compensates each capture before detection.
    let replay_clean = EvalCell::from_recording(&rec_clean).unwrap();
    let mut replay_skewed = EvalCell::from_recording(&rec_skewed).unwrap();
    replay_skewed.faults = Some(schedule);
    let clean_report = run_cell(&replay_clean).unwrap();
    let skew_report = run_cell(&replay_skewed).unwrap();

    // Skew-then-compensate stays within the golden-fixture band and close
    // to the clean replay.
    assert!(
        skew_report.error_2d.median.is_finite()
            && skew_report.error_2d.median > 0.05
            && skew_report.error_2d.median < 2.2,
        "median {} m out of band",
        skew_report.error_2d.median
    );
    assert!(
        (skew_report.error_2d.median - clean_report.error_2d.median).abs() < 0.2,
        "compensated median {} m too far from clean {} m",
        skew_report.error_2d.median,
        clean_report.error_2d.median
    );
    assert_eq!(skew_report.rounds_failed, 0);
}
