//! Property tests for the validated drop pipeline (Algorithm 1 +
//! three-gate evidence pass).
//!
//! Three invariants, swept over seeds rather than pinned to one RNG
//! realisation:
//!
//! 1. **No false positives** — unbiased (small-noise) distance matrices
//!    must never lose a link, across ≥ 20 noise seeds.
//! 2. **Exact identification** — with exactly one link biased +8..+16 m
//!    (the occlusion signature), the pipeline must either drop exactly
//!    that link or absorb the bias into a converged full-link solve (a
//!    single low-side bias can fall below the engagement threshold); it
//!    must never drop a *different* link, and most cases must engage.
//! 3. **Session-level tail control** — the occluded dock cell must keep
//!    every round's max 2D error under 20 m for seeds s1..s10, with at
//!    most one round per seed reaching 15 m (before the validation pass,
//!    single rounds reached ~29 m).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use uw_core::prelude::*;
use uw_eval::{LinkProfile, ScenarioMatrix, Topology};
use uw_localization::matrix::{DistanceMatrix, Vec2};
use uw_localization::outlier::{localize_with_outlier_detection, OutlierConfig};
use uw_localization::smacof::SmacofConfig;

/// The rigid 5-node testbed used across the localization unit suite: no
/// symmetry, all 10 links measured.
fn testbed_points() -> Vec<Vec2> {
    vec![
        Vec2::new(0.0, 0.0),
        Vec2::new(8.0, 0.0),
        Vec2::new(12.0, 9.0),
        Vec2::new(2.0, 14.0),
        Vec2::new(-6.0, 7.0),
    ]
}

fn noisy_distances(points: &[Vec2], noise_m: f64, rng: &mut StdRng) -> DistanceMatrix {
    let mut d = DistanceMatrix::from_points_2d(points);
    for i in 0..points.len() {
        for j in (i + 1)..points.len() {
            let v = d.get(i, j).unwrap() + rng.gen_range(-noise_m..noise_m);
            d.set(i, j, v.max(0.1)).unwrap();
        }
    }
    d
}

#[test]
fn unbiased_distances_never_drop_links() {
    let truth = testbed_points();
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = noisy_distances(&truth, 0.5, &mut rng);
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        assert!(
            result.dropped_links.is_empty(),
            "seed {seed}: clean matrix lost links {:?}",
            result.dropped_links
        );
        assert!(
            result.converged,
            "seed {seed}: clean matrix did not converge"
        );
    }
}

#[test]
fn single_biased_link_is_dropped_exactly() {
    let truth = testbed_points();
    let links: Vec<(usize, usize)> = (0..truth.len())
        .flat_map(|i| ((i + 1)..truth.len()).map(move |j| (i, j)))
        .collect();
    let mut engaged = 0usize;
    for (case, &link) in links.iter().enumerate() {
        let seed = case as u64 + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = noisy_distances(&truth, 0.4, &mut rng);
        // Occlusion signature: the link detects a reflection and reads
        // long by 8..16 m depending on the case.
        let bias = 8.0 + (case as f64 / (links.len() - 1) as f64) * 8.0;
        d.set(link.0, link.1, d.get(link.0, link.1).unwrap() + bias)
            .unwrap();
        let result = localize_with_outlier_detection(
            &d,
            &SmacofConfig::default(),
            &OutlierConfig::default(),
            &mut rng,
        )
        .unwrap();
        if result.dropped_links.is_empty() {
            // The bias fell below the fast-path engagement threshold and
            // was absorbed by the full-link solve; that is acceptable
            // only when the absorbed solve really is under the paper's
            // 1.5 m stress gate — never as a silent high-stress giveup.
            assert!(
                result.converged
                    && result.normalized_stress < OutlierConfig::default().stress_threshold_m,
                "case {case}: +{bias:.1} m on {link:?} absorbed at stress {:.3}",
                result.normalized_stress
            );
        } else {
            assert_eq!(
                result.dropped_links,
                vec![link],
                "case {case}: +{bias:.1} m on {link:?} dropped {:?}",
                result.dropped_links
            );
            engaged += 1;
        }
    }
    // Absorption must be the exception, not the rule: the large majority
    // of +8..+16 m single-link biases must trip the drop path. (Three
    // links of this testbed sit where a single bias bends the embedding
    // to just under the 1.5 m fast-path stress gate.)
    assert!(
        engaged >= 7,
        "only {engaged}/{} biased cases engaged the drop path",
        links.len()
    );
}

#[test]
fn occluded_dock_sweep_has_no_catastrophic_round() {
    let matrix = ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Occluded { bias_m: 12.0 }],
        seeds: (1..=10).collect(),
        ..ScenarioMatrix::paper_default()
    };
    for cell in matrix.expand().unwrap() {
        let mut session = Session::new(cell.scenario.config().clone()).unwrap();
        let mut heavy_rounds = 0usize;
        for round in 0..12 {
            let outcome = session.run(cell.scenario.network()).unwrap();
            let max = outcome
                .errors_2d
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            // Hard ceiling: no round may approach the pre-overhaul ~29 m
            // catastrophes. A small number of rounds carry two or three
            // simultaneous ranging outliers — beyond the single-occlusion
            // model — and can still land in the 15..20 m band.
            assert!(
                max < 20.0,
                "{}: round {round} max 2D error {max:.2} m (drops {:?})",
                cell.id,
                outcome.localization.dropped_links
            );
            if max >= 15.0 {
                heavy_rounds += 1;
            }
        }
        assert!(
            heavy_rounds <= 1,
            "{}: {heavy_rounds} rounds reached 15 m",
            cell.id
        );
    }
}
