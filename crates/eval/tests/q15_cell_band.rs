//! End-to-end differential band: the Q15 fixed-point dock cell against the
//! f64 dock cell.
//!
//! This is the system-level leg of the differential-testing harness (the
//! primitive-level legs live in `uw-dsp/tests/fixed_vs_float.rs`): the
//! same dock scenario runs once with the waveform DSP on the `f64` oracle
//! and once on the on-device Q15 path, both at hybrid fidelity, and the
//! Q15 cell's median 2D error must stay within [`Q15_MEDIAN_BAND_M`] of
//! the f64 cell's.
//!
//! Measured at this revision the two cells are *identical*: the Q15
//! pipeline's ≥ 50 dB SQNR keeps every integer tap decision (detection
//! peak, direct-path taps) on the same sample as the f64 path at testbed
//! SNRs, so the half-sample-quantised arrival estimates agree exactly.
//! The band exists to catch regressions that push fixed-point noise far
//! enough to move taps.

use uw_core::config::NumericPath;
use uw_eval::guide::{check_bands, FIGURE_MAP};
use uw_eval::runner::run_matrix;
use uw_eval::ScenarioMatrix;

/// Maximum allowed gap between the Q15 and f64 dock-cell median 2D errors
/// (metres). Documented in `docs/EVALUATION.md`'s `ext. q15` row.
pub const Q15_MEDIAN_BAND_M: f64 = 0.5;

#[test]
fn q15_dock_cell_median_stays_within_the_f64_band() {
    let q15_matrix = ScenarioMatrix::q15_dock();
    let f64_matrix = ScenarioMatrix {
        numeric_paths: vec![NumericPath::F64],
        ..ScenarioMatrix::q15_dock()
    };
    let q15_report = run_matrix(&q15_matrix).unwrap();
    let f64_report = run_matrix(&f64_matrix).unwrap();
    let q15 = &q15_report.cells[0];
    let f64_cell = &f64_report.cells[0];
    assert_eq!(q15.id, "dock/5dev/clear/static/q15/s1");
    assert_eq!(f64_cell.id, "dock/5dev/clear/static/s1");
    assert_eq!(q15.numeric_path, "q15");
    assert_eq!(f64_cell.numeric_path, "f64");

    // Both cells complete every round: the Q15 pipeline detects and ranges
    // on every leader link the f64 pipeline does.
    assert_eq!(q15.rounds_completed, q15.rounds, "{q15:?}");
    assert_eq!(f64_cell.rounds_completed, f64_cell.rounds);

    // The differential band: fixed-point quantisation may not move the
    // cell median by more than the documented band.
    let gap = (q15.error_2d.median - f64_cell.error_2d.median).abs();
    assert!(
        gap <= Q15_MEDIAN_BAND_M,
        "Q15 median {:.3} m vs f64 median {:.3} m: gap {gap:.3} m exceeds {} m",
        q15.error_2d.median,
        f64_cell.error_2d.median,
        Q15_MEDIAN_BAND_M
    );
    // Ranging accuracy likewise stays at the oracle's level.
    let ranging_gap = (q15.ranging_median_m - f64_cell.ranging_median_m).abs();
    assert!(ranging_gap <= 0.25, "ranging gap {ranging_gap:.3} m");

    // The guide's `ext. q15` acceptance band holds for the cell.
    let claim = FIGURE_MAP
        .iter()
        .find(|c| c.cell_id == "dock/5dev/clear/static/q15/s1")
        .expect("the guide maps the Q15 cell");
    let measured = claim.metric.read(q15);
    assert!(
        measured >= claim.lo && measured <= claim.hi,
        "Q15 cell median {measured:.3} outside guide band [{}, {}]",
        claim.lo,
        claim.hi
    );
    assert!(check_bands(&q15_report, false).is_empty());
}

#[test]
fn q15_cell_is_deterministic() {
    let matrix = ScenarioMatrix::q15_dock();
    let a = run_matrix(&matrix).unwrap();
    let b = run_matrix(&matrix).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}
