//! Seeded characterization of Algorithm-1 drop decisions under severe
//! (12 m) occlusion — the regression anchor for the drop-validation pass
//! that closed the ROADMAP's "outlier-drop misfires under severe
//! occlusion" item.
//!
//! With the leader–device-1 link biased +12 m by a solid-sheet reflection,
//! the validated drop pipeline must find the corrupted link in *every*
//! round and drop *only* that link. Before the validation pass this cell
//! misfired two ways (pinned by an earlier revision of this test): three
//! rounds dropped nothing (leaving a ~9–10 m warp), and seven rounds
//! discarded an extra clean link — once catastrophically (~29 m on the
//! device that lost its link). The three-gate evidence pipeline plus
//! cross-round `DropEvidence` eliminates both failure modes, and this
//! test pins the repaired behaviour exactly.

use uw_core::prelude::*;
use uw_eval::{LinkProfile, ScenarioMatrix, Topology};

/// Per-round dropped links.
type RoundDrops = Vec<Vec<(usize, usize)>>;

/// Runs the pinned cell and returns (per-round dropped links, per-round
/// max 2D error, all errors).
fn run_pinned_cell() -> (RoundDrops, Vec<f64>, Vec<f64>) {
    let matrix = ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Occluded { bias_m: 12.0 }],
        ..ScenarioMatrix::paper_default()
    };
    let cell = matrix.expand().unwrap().remove(0);
    assert_eq!(cell.id, "dock/5dev/occluded/static/s1");
    let mut session = Session::new(cell.scenario.config().clone()).unwrap();
    let mut drops = Vec::new();
    let mut max_errors = Vec::new();
    let mut all_errors = Vec::new();
    for _ in 0..12 {
        let outcome = session.run(cell.scenario.network()).unwrap();
        drops.push(outcome.localization.dropped_links.clone());
        let max = outcome
            .errors_2d
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        max_errors.push(max);
        all_errors.extend(outcome.errors_2d.iter().copied());
    }
    (drops, max_errors, all_errors)
}

#[test]
fn algorithm1_drop_decisions_under_12m_occlusion_are_pinned() {
    let (drops, max_errors, mut all_errors) = run_pinned_cell();

    // Pin: every one of the 12 rounds drops exactly the occluded link —
    // no missed rounds, no good-link drops, no extra links.
    for (r, round_drops) in drops.iter().enumerate() {
        assert_eq!(
            round_drops,
            &vec![(0, 1)],
            "round {r} dropped {round_drops:?}, expected exactly the occluded (0, 1)"
        );
    }

    // Pin the tail: with the misfires gone, the worst round stays well
    // below the old catastrophic band (~29 m observed before the fix).
    let worst = max_errors.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    assert!(
        worst < 12.0,
        "worst per-round max error {worst:.2} m exceeds the repaired bound"
    );

    // The median stays inside the guide's Fig. 19a band: dropping the
    // occluded link restores near-clear-water accuracy.
    all_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = all_errors[all_errors.len() / 2];
    assert!(
        (0.3..3.0).contains(&median),
        "occluded-cell median {median:.2} m outside the documented band"
    );
}

#[test]
fn pinned_cell_is_deterministic() {
    let (drops_a, max_a, _) = run_pinned_cell();
    let (drops_b, max_b, _) = run_pinned_cell();
    assert_eq!(drops_a, drops_b);
    assert_eq!(max_a, max_b);
}
