//! Seeded characterization of the known Algorithm-1 outlier-drop misfire
//! under severe (12 m) occlusion — the ROADMAP's "outlier-drop misfires
//! under severe occlusion" open item.
//!
//! With the leader–device-1 link biased +12 m by a solid-sheet reflection,
//! Algorithm 1 usually detects and drops the corrupted link, but at this
//! revision (seed 1, 12 rounds, statistical fidelity) it also misfires in
//! two distinct ways:
//!
//! * **missed drops** — some rounds drop *nothing*, leaving the biased
//!   link in the solve and warping device 1's position by ~9–10 m, and
//! * **good-link drops** — most dropping rounds discard one *additional*
//!   clean link alongside the occluded one, occasionally producing a
//!   catastrophic round (observed worst: ~29 m on the device that lost
//!   its link).
//!
//! This test PINS that behaviour: the per-round drop decisions and the
//! tail error are asserted as they are today, so a future drop-validation
//! pass (e.g. cross-checking drops against the Huber residuals) has a
//! sharp regression anchor — when that PR lands, these pins are expected
//! to move and should be updated alongside it.

use uw_core::prelude::*;
use uw_eval::{LinkProfile, ScenarioMatrix, Topology};

/// Per-round dropped links.
type RoundDrops = Vec<Vec<(usize, usize)>>;

/// Runs the pinned cell and returns (per-round dropped links, per-round
/// max 2D error, all errors).
fn run_pinned_cell() -> (RoundDrops, Vec<f64>, Vec<f64>) {
    let matrix = ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Occluded { bias_m: 12.0 }],
        ..ScenarioMatrix::paper_default()
    };
    let cell = matrix.expand().unwrap().remove(0);
    assert_eq!(cell.id, "dock/5dev/occluded/static/s1");
    let mut session = Session::new(cell.scenario.config().clone()).unwrap();
    let mut drops = Vec::new();
    let mut max_errors = Vec::new();
    let mut all_errors = Vec::new();
    for _ in 0..12 {
        let outcome = session.run(cell.scenario.network()).unwrap();
        drops.push(outcome.localization.dropped_links.clone());
        let max = outcome
            .errors_2d
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        max_errors.push(max);
        all_errors.extend(outcome.errors_2d.iter().copied());
    }
    (drops, max_errors, all_errors)
}

#[test]
fn algorithm1_drop_decisions_under_12m_occlusion_are_pinned() {
    let (drops, max_errors, mut all_errors) = run_pinned_cell();

    let occluded_drop_rounds: Vec<usize> =
        (0..12).filter(|&r| drops[r].contains(&(0, 1))).collect();
    let missed_rounds: Vec<usize> = (0..12).filter(|&r| drops[r].is_empty()).collect();
    let good_link_drop_rounds: Vec<usize> = (0..12)
        .filter(|&r| drops[r].iter().any(|&l| l != (0, 1)))
        .collect();

    // Pin: the occluded link is found in 9 of 12 rounds; the other 3 drop
    // nothing at all (missed drops).
    assert_eq!(
        occluded_drop_rounds,
        vec![0, 2, 3, 4, 7, 8, 9, 10, 11],
        "occluded-link drop rounds moved: {drops:?}"
    );
    assert_eq!(
        missed_rounds,
        vec![1, 5, 6],
        "missed-drop rounds moved: {drops:?}"
    );
    // Pin: every missed round leaves the +12 m bias in the solve and the
    // topology warps by ~9–10 m at the worst device.
    for &r in &missed_rounds {
        assert!(
            max_errors[r] > 8.0 && max_errors[r] < 12.0,
            "round {r}: missed-drop max error {:.2} m left its pinned band",
            max_errors[r]
        );
    }
    // Pin: 7 rounds drop one *good* link in addition to the occluded one —
    // the misfire a drop-validation pass should eliminate.
    assert_eq!(
        good_link_drop_rounds,
        vec![2, 3, 4, 7, 8, 9, 11],
        "good-link misfire rounds moved: {drops:?}"
    );
    for &r in &good_link_drop_rounds {
        assert_eq!(drops[r].len(), 2, "round {r} drops {:?}", drops[r]);
    }

    // Pin the tail: the worst misfire round costs 20–40 m on the device
    // that lost its good link (observed ≈ 29 m), far beyond anything a
    // clean dock round produces.
    let worst = max_errors.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let worst_round = max_errors.iter().position(|&e| e == worst).unwrap();
    assert!(
        (20.0..40.0).contains(&worst),
        "worst tail error {worst:.2} m (round {worst_round}) left its pinned band"
    );
    assert_eq!(worst_round, 11, "the catastrophic round moved");

    // Despite the tail, the median stays inside the guide's Fig. 19a band:
    // Algorithm 1 still halves the typical error versus not dropping.
    all_errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = all_errors[all_errors.len() / 2];
    assert!(
        (0.3..3.0).contains(&median),
        "occluded-cell median {median:.2} m outside the documented band"
    );
}

#[test]
fn pinned_cell_is_deterministic() {
    let (drops_a, max_a, _) = run_pinned_cell();
    let (drops_b, max_b, _) = run_pinned_cell();
    assert_eq!(drops_a, drops_b);
    assert_eq!(max_a, max_b);
}
