//! Golden end-to-end field-recording import: render the dock fixture
//! cell's three rounds into one continuous 2-channel WAV (the shape a
//! field team's recorder hands us), import it *blind* — no burst
//! positions, no round count, no skew table — and pin the replayed
//! statistics against the simulated cell on both the f64 oracle and the
//! on-device Q15 path. A ±200 ppm clock-skewed variant must survive the
//! importer's skew fit and land within a relaxed band.

use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::EnvironmentKind;
use uw_eval::replay::{fixture_cell, record_cell, FIXTURE_ROUNDS};
use uw_eval::runner::run_cell;
use uw_eval::{import_campaign, ImportParams, RenderOptions, ScenarioMatrix};

/// Maximum allowed gap between a blind-imported and a simulated median
/// 2D error (metres) for a clean-clock recording — the ISSUE's
/// acceptance band.
const IMPORT_MEDIAN_BAND_M: f64 = 0.1;

/// Band for the skewed variant: compensation is a fit, not an oracle, so
/// the ISSUE grants 2× headroom up to ±200 ppm.
const SKEWED_MEDIAN_BAND_M: f64 = 0.2;

/// Per-device skew the harsh variant plants (leader is the reference
/// clock, so its entry is exactly zero).
const PLANTED_SKEW_PPM: [f64; 5] = [0.0, 200.0, -200.0, 120.0, -160.0];

fn blind_params() -> ImportParams {
    // Deployment facts only (a field team always knows these); all
    // timing is recovered from the audio.
    ImportParams::new(EnvironmentKind::Dock, 5, 1)
}

#[test]
fn blind_import_reproduces_the_simulated_cell_on_the_f64_path() {
    let cell = fixture_cell().unwrap();
    let simulated = run_cell(&cell).unwrap();

    let recording = record_cell(&cell).unwrap();
    let wav = uw_eval::render_campaign_wav(&recording, &RenderOptions::default()).unwrap();
    let (campaign, report) = import_campaign(&wav, &blind_params()).unwrap();

    // The blind scan recovered the full campaign: every round, every
    // follower slot, every leader anchor.
    assert_eq!(report.rounds_detected, FIXTURE_ROUNDS);
    assert_eq!(report.segments, 4 * FIXTURE_ROUNDS);
    assert_eq!(report.bursts_matched, report.bursts_found);
    assert_eq!(campaign.rounds, FIXTURE_ROUNDS);

    let imported_cell = campaign.cell_with_path(NumericPath::F64).unwrap();
    assert_eq!(imported_cell.id, "dock/5dev/clear/static/import/s1");
    let imported = run_cell(&imported_cell).unwrap();

    assert_eq!(imported.rounds_completed, FIXTURE_ROUNDS);
    assert_eq!(imported.rounds_failed, 0);
    assert_eq!(imported.error_2d.count, simulated.error_2d.count);
    let gap = (imported.error_2d.median - simulated.error_2d.median).abs();
    assert!(
        gap <= IMPORT_MEDIAN_BAND_M,
        "imported median {:.3} m vs simulated {:.3} m: gap {gap:.3} m exceeds {} m",
        imported.error_2d.median,
        simulated.error_2d.median,
        IMPORT_MEDIAN_BAND_M
    );
    let ranging_gap = (imported.ranging_median_m - simulated.ranging_median_m).abs();
    assert!(ranging_gap <= 0.1, "ranging gap {ranging_gap:.3} m");
}

#[test]
fn blind_import_reproduces_the_simulated_cell_on_the_q15_path() {
    let cell = fixture_cell().unwrap();
    let recording = record_cell(&cell).unwrap();
    let wav = uw_eval::render_campaign_wav(&recording, &RenderOptions::default()).unwrap();
    let (campaign, _) = import_campaign(&wav, &blind_params()).unwrap();

    let imported_cell = campaign.cell_with_path(NumericPath::Q15).unwrap();
    assert_eq!(imported_cell.id, "dock/5dev/clear/static/q15/import/s1");
    let imported = run_cell(&imported_cell).unwrap();

    // Simulated Q15 reference at the fixture's round count.
    let q15_matrix = ScenarioMatrix {
        numeric_paths: vec![NumericPath::Q15],
        recordings: vec![],
        rounds_per_cell: FIXTURE_ROUNDS,
        fidelity: Fidelity::Hybrid,
        ..ScenarioMatrix::q15_dock()
    };
    let simulated = run_cell(&q15_matrix.expand().unwrap().remove(0)).unwrap();

    assert_eq!(imported.rounds_completed, FIXTURE_ROUNDS);
    assert_eq!(imported.rounds_failed, 0);
    let gap = (imported.error_2d.median - simulated.error_2d.median).abs();
    assert!(
        gap <= IMPORT_MEDIAN_BAND_M,
        "Q15 imported median {:.3} m vs simulated {:.3} m: gap {gap:.3} m exceeds {} m",
        imported.error_2d.median,
        simulated.error_2d.median,
        IMPORT_MEDIAN_BAND_M
    );
}

#[test]
fn skewed_recorders_are_fit_and_compensated_within_the_relaxed_band() {
    let cell = fixture_cell().unwrap();
    let simulated = run_cell(&cell).unwrap();

    let recording = record_cell(&cell).unwrap();
    let opts = RenderOptions {
        skew_ppm: PLANTED_SKEW_PPM.to_vec(),
        ..RenderOptions::default()
    };
    let wav = uw_eval::render_campaign_wav(&recording, &opts).unwrap();
    let (campaign, report) = import_campaign(&wav, &blind_params()).unwrap();

    // The skew fit recovers each planted offset. ±1-sample detection
    // jitter over a FIXTURE_ROUNDS-round baseline bounds the fit error
    // well under 15 ppm.
    assert_eq!(campaign.manifest.skew_ppm.len(), PLANTED_SKEW_PPM.len());
    assert_eq!(campaign.manifest.skew_ppm[0], 0.0, "leader is the clock");
    for (device, (&fit, &planted)) in campaign
        .manifest
        .skew_ppm
        .iter()
        .zip(PLANTED_SKEW_PPM.iter())
        .enumerate()
    {
        assert!(
            (fit - planted).abs() <= 15.0,
            "device {device}: fitted {fit:.1} ppm vs planted {planted:.1} ppm"
        );
    }
    assert_eq!(report.rounds_detected, FIXTURE_ROUNDS);
    assert_eq!(report.segments, 4 * FIXTURE_ROUNDS);

    let imported = run_cell(&campaign.cell_with_path(NumericPath::F64).unwrap()).unwrap();
    assert_eq!(imported.rounds_completed, FIXTURE_ROUNDS);
    assert_eq!(imported.rounds_failed, 0);
    let gap = (imported.error_2d.median - simulated.error_2d.median).abs();
    assert!(
        gap <= SKEWED_MEDIAN_BAND_M,
        "skewed-import median {:.3} m vs simulated {:.3} m: gap {gap:.3} m exceeds {} m",
        imported.error_2d.median,
        simulated.error_2d.median,
        SKEWED_MEDIAN_BAND_M
    );
}

#[test]
fn manifest_survives_a_byte_roundtrip_and_revalidates() {
    let cell = fixture_cell().unwrap();
    let recording = record_cell(&cell).unwrap();
    let wav = uw_eval::render_campaign_wav(&recording, &RenderOptions::default()).unwrap();
    let (campaign, report) = import_campaign(&wav, &blind_params()).unwrap();

    let bytes = campaign.manifest.to_bytes().unwrap();
    let back = uw_audio::CampaignManifest::from_bytes(&bytes).unwrap();
    assert_eq!(back, campaign.manifest);
    back.validate(report.total_frames).unwrap();
}
