//! End-to-end differential band: the single-precision f32 dock cell
//! against the f64 dock cell.
//!
//! This is the system-level leg of the f32 differential-testing harness
//! (the primitive-level legs live in `uw-dsp/tests/fixed_vs_float.rs`):
//! the same dock scenario runs once with the waveform DSP on the `f64`
//! oracle and once on the f32 lane-kernel path, both at hybrid fidelity,
//! and the f32 cell's median 2D error must stay within
//! [`F32_MEDIAN_BAND_M`] of the f64 cell's.
//!
//! Single precision carries ~100 dB of SQNR through the correlator — some
//! 50 dB above Q15 — so its band is a fifth of the fixed-point one.
//! Measured at this revision the two cells are *identical*: every integer
//! tap decision (detection peak, direct-path taps) lands on the same
//! sample as the f64 path at testbed SNRs, so the half-sample-quantised
//! arrival estimates agree exactly. The band exists to catch regressions
//! that push single-precision rounding far enough to move taps.

use uw_core::config::NumericPath;
use uw_eval::guide::{check_bands, FIGURE_MAP};
use uw_eval::runner::run_matrix;
use uw_eval::ScenarioMatrix;

/// Maximum allowed gap between the f32 and f64 dock-cell median 2D errors
/// (metres). Documented in `docs/EVALUATION.md`'s `ext. f32` row.
pub const F32_MEDIAN_BAND_M: f64 = 0.1;

#[test]
fn f32_dock_cell_median_stays_within_the_f64_band() {
    let f32_matrix = ScenarioMatrix::f32_dock();
    let f64_matrix = ScenarioMatrix {
        numeric_paths: vec![NumericPath::F64],
        ..ScenarioMatrix::f32_dock()
    };
    let f32_report = run_matrix(&f32_matrix).unwrap();
    let f64_report = run_matrix(&f64_matrix).unwrap();
    let f32_cell = &f32_report.cells[0];
    let f64_cell = &f64_report.cells[0];
    assert_eq!(f32_cell.id, "dock/5dev/clear/static/f32/s1");
    assert_eq!(f64_cell.id, "dock/5dev/clear/static/s1");
    assert_eq!(f32_cell.numeric_path, "f32");
    assert_eq!(f64_cell.numeric_path, "f64");

    // Both cells complete every round: the f32 pipeline detects and ranges
    // on every leader link the f64 pipeline does.
    assert_eq!(f32_cell.rounds_completed, f32_cell.rounds, "{f32_cell:?}");
    assert_eq!(f64_cell.rounds_completed, f64_cell.rounds);

    // The differential band: single-precision rounding may not move the
    // cell median by more than the documented band.
    let gap = (f32_cell.error_2d.median - f64_cell.error_2d.median).abs();
    assert!(
        gap <= F32_MEDIAN_BAND_M,
        "f32 median {:.4} m vs f64 median {:.4} m: gap {gap:.4} m exceeds {} m",
        f32_cell.error_2d.median,
        f64_cell.error_2d.median,
        F32_MEDIAN_BAND_M
    );
    // Ranging accuracy likewise stays at the oracle's level, with a band
    // half the Q15 test's.
    let ranging_gap = (f32_cell.ranging_median_m - f64_cell.ranging_median_m).abs();
    assert!(ranging_gap <= 0.1, "ranging gap {ranging_gap:.4} m");

    // The guide's `ext. f32` acceptance band holds for the cell.
    let claim = FIGURE_MAP
        .iter()
        .find(|c| c.cell_id == "dock/5dev/clear/static/f32/s1")
        .expect("the guide maps the f32 cell");
    let measured = claim.metric.read(f32_cell);
    assert!(
        measured >= claim.lo && measured <= claim.hi,
        "f32 cell median {measured:.3} outside guide band [{}, {}]",
        claim.lo,
        claim.hi
    );
    assert!(check_bands(&f32_report, false).is_empty());
}

#[test]
fn f32_cell_is_deterministic() {
    let matrix = ScenarioMatrix::f32_dock();
    let a = run_matrix(&matrix).unwrap();
    let b = run_matrix(&matrix).unwrap();
    assert_eq!(a.to_json(), b.to_json());
}
