//! Multi-seed smoke test: the matrix's `seeds` axis on one dock cell.
//!
//! Groundwork for the ROADMAP's seed-sweep/confidence-interval item: three
//! seeds expand to three cells of one scenario, every seed is
//! deterministic in isolation, and the aggregated report carries all of
//! them (so a future CI layer can fold per-seed cells into intervals).

use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::EnvironmentKind;
use uw_eval::runner::run_matrix;
use uw_eval::{LinkProfile, MobilityProfile, ScenarioMatrix, Topology};

fn three_seed_matrix() -> ScenarioMatrix {
    ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Clear],
        mobilities: vec![MobilityProfile::Static],
        numeric_paths: vec![NumericPath::F64],
        faults: vec![None],
        seeds: vec![1, 2, 3],
        recordings: vec![],
        rounds_per_cell: 4,
        fidelity: Fidelity::Statistical,
    }
}

#[test]
fn three_seeds_expand_run_and_aggregate() {
    let matrix = three_seed_matrix();
    assert_eq!(matrix.cell_count(), 3);
    let report = run_matrix(&matrix).unwrap();
    assert_eq!(report.cells.len(), 3);
    for (cell, seed) in report.cells.iter().zip([1u64, 2, 3]) {
        assert_eq!(cell.id, format!("dock/5dev/clear/static/s{seed}"));
        assert_eq!(cell.seed, seed);
        assert_eq!(cell.rounds_completed, 4);
        // 4 rounds × 4 non-leader devices of real statistics per seed.
        assert_eq!(cell.error_2d.count, 16);
        assert!(cell.error_2d.median > 0.0 && cell.error_2d.median < 5.0);
    }
    // Seeds drive the stochastic channel: the per-seed statistics differ
    // (the geometry is identical, so equality would mean the seed axis is
    // not reaching the sessions).
    assert_ne!(
        report.cells[0].error_2d.median,
        report.cells[1].error_2d.median
    );
    assert_ne!(
        report.cells[1].error_2d.median,
        report.cells[2].error_2d.median
    );
    // The JSON report serialises every seed's cell.
    let json = report.to_json();
    for seed in 1..=3 {
        assert!(json.contains(&format!("dock/5dev/clear/static/s{seed}")));
    }
}

#[test]
fn per_seed_runs_are_deterministic() {
    let a = run_matrix(&three_seed_matrix()).unwrap();
    let b = run_matrix(&three_seed_matrix()).unwrap();
    assert_eq!(a.to_json(), b.to_json());
    // A single-seed slice reproduces the same cell as the three-seed run:
    // cells are independent, so aggregation does not perturb per-seed
    // statistics.
    let single = ScenarioMatrix {
        seeds: vec![2],
        ..three_seed_matrix()
    };
    let single_report = run_matrix(&single).unwrap();
    assert_eq!(
        single_report.cells[0], a.cells[1],
        "seed 2's cell must not depend on which seeds ran alongside it"
    );
}
