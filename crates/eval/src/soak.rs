//! Fleet-scale soak harness: hundreds of dive-group cells under scripted
//! fault schedules, with invariants checked after every round.
//!
//! The eval matrix answers "how accurate is the system"; the soak harness
//! answers "does the system stay *sane* under faults". A [`SoakPlan`]
//! expands a master seed into many fleet cells — single groups and
//! two-group fleets whose schedules carry mutual [`FaultKind::Interference`]
//! windows (two dive groups sharing the acoustic channel) — mixing packet
//! loss, churn, clock skew and leader failover. [`run_cell`] drives each
//! cell round by round and checks, after every round, that:
//!
//! * every error is a *structured* round failure
//!   ([`uw_core::SystemError::RoundFailed`]) — never a panic, never an
//!   opaque layer error;
//! * no `NaN` leaks outside churn excision (silent devices are the only
//!   ones allowed NaN horizontal state);
//! * dropping below 3 live devices degrades gracefully
//!   ([`RoundFailureReason::TooFewLiveDevices`]) and the session keeps
//!   running;
//! * fault-free control cells hold the accuracy band
//!   ([`CONTROL_MEDIAN_BAND_M`]);
//! * a leader failover is followed by a successor group (the survivors
//!   re-initialised under the next device as leader) that localizes again;
//! * the whole cell is bitwise reproducible from `(seed, schedule)` — the
//!   outcome digest of a re-run must match exactly.
//!
//! Any violation is reported with a one-line repro command
//! ([`SoakCell::repro_command`]) that replays exactly that cell. A
//! test-only sabotage hook ([`Sabotage::Nan`]) injects a deliberate NaN so
//! the checker itself can be exercised end to end.

use std::collections::BTreeMap;

use uw_core::faults::{FaultEvent, FaultKind, FaultSchedule, RoundFailureReason};
use uw_core::prelude::*;
use uw_core::session::SessionOutcome;
use uw_core::{Result, SystemError};

/// Schema identifier stamped into every soak report.
pub const SOAK_SCHEMA: &str = "uwgps-soak-v1";

/// Accuracy band enforced on fault-free control cells: the median 2D error
/// over all rounds must stay below this (the eval matrix holds medians of
/// 1.2–2.2 m across sites and group sizes; 4 m flags a broken solver, not
/// a noisy draw).
pub const CONTROL_MEDIAN_BAND_M: f64 = 4.0;

/// Marker used in a cell spec for "no fault schedule".
const NO_SCHEDULE: &str = "-";

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-fleet draw stream (independent of global RNG state).
struct Stream {
    state: u64,
}

impl Stream {
    fn new(master_seed: u64, fleet: usize) -> Self {
        Self {
            state: splitmix64(master_seed ^ splitmix64(0xF1EE7 ^ fleet as u64)),
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform draw in `lo..hi` (exclusive upper bound).
    fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

fn environment_from_slug(slug: &str) -> Option<EnvironmentKind> {
    EnvironmentKind::ALL.into_iter().find(|k| k.slug() == slug)
}

/// One soak cell: a dive group in an environment, run for a number of
/// rounds under an optional fault schedule. The textual spec
/// `env:n:rounds:seed:<schedule>` (schedule per
/// [`FaultSchedule::to_spec`], or `-` for none) identifies the cell
/// completely — any failure replays from it alone.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakCell {
    /// Site preset.
    pub environment: EnvironmentKind,
    /// Group size (3–8 devices).
    pub n_devices: usize,
    /// Rounds to run.
    pub rounds: usize,
    /// Scenario RNG seed.
    pub seed: u64,
    /// Scripted faults, if any.
    pub faults: Option<FaultSchedule>,
}

impl SoakCell {
    /// The cell's one-line spec: `env:n:rounds:seed:<schedule>`.
    pub fn spec(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.environment.slug(),
            self.n_devices,
            self.rounds,
            self.seed,
            self.faults
                .as_ref()
                .map_or_else(|| NO_SCHEDULE.into(), |f| f.to_spec()),
        )
    }

    /// Parses a cell spec produced by [`SoakCell::spec`].
    pub fn parse(spec: &str) -> Result<Self> {
        let bad = |reason: String| SystemError::InvalidConfig { reason };
        let mut parts = spec.splitn(5, ':');
        let mut next = |what: &str| {
            parts
                .next()
                .ok_or_else(|| bad(format!("soak cell spec '{spec}': missing {what}")))
        };
        let env_slug = next("environment")?;
        let environment = environment_from_slug(env_slug)
            .ok_or_else(|| bad(format!("soak cell spec: unknown environment '{env_slug}'")))?;
        let n_devices: usize = next("device count")?
            .parse()
            .map_err(|e| bad(format!("soak cell spec: bad device count: {e}")))?;
        let rounds: usize = next("round count")?
            .parse()
            .map_err(|e| bad(format!("soak cell spec: bad round count: {e}")))?;
        let seed: u64 = next("seed")?
            .parse()
            .map_err(|e| bad(format!("soak cell spec: bad seed: {e}")))?;
        let schedule = next("fault schedule")?;
        let faults = if schedule == NO_SCHEDULE {
            None
        } else {
            let f = FaultSchedule::parse(schedule)?;
            f.validate(n_devices)?;
            Some(f)
        };
        Ok(Self {
            environment,
            n_devices,
            rounds,
            seed,
            faults,
        })
    }

    /// The one-line command that replays exactly this cell.
    pub fn repro_command(&self) -> String {
        format!(
            "cargo run --release -p uw-bench --bin uw_soak -- --cell '{}'",
            self.spec()
        )
    }
}

/// Test-only invariant sabotage: deliberately corrupt an outcome so the
/// checker's detection (and its repro line) can be verified end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sabotage {
    /// No sabotage (the normal mode).
    #[default]
    None,
    /// Overwrite one live device's horizontal estimate with NaN in the
    /// first successful round.
    Nan,
}

impl Sabotage {
    /// Parses a `--sabotage` argument value.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "none" => Ok(Sabotage::None),
            "nan" => Ok(Sabotage::Nan),
            other => Err(SystemError::InvalidConfig {
                reason: format!("unknown sabotage mode '{other}' (expected 'none' or 'nan')"),
            }),
        }
    }
}

/// A generated fleet plan: `fleets` fleet cells (some fleets are two
/// groups coupled by interference, so `cells.len() >= fleets`),
/// deterministic in `master_seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakPlan {
    /// Seed the plan was expanded from.
    pub master_seed: u64,
    /// Number of fleets requested.
    pub fleets: usize,
    /// The concrete cells, in generation order.
    pub cells: Vec<SoakCell>,
}

impl SoakPlan {
    /// Expands `master_seed` into `fleets` fleet cells with mixed fault
    /// schedules. Every third fleet is a fault-free single-group control
    /// cell (its accuracy band is enforced); the rest draw 1–3 faults, and
    /// ~40% of faulted fleets are two groups whose schedules carry mutual
    /// interference windows.
    pub fn generate(master_seed: u64, fleets: usize) -> Self {
        let mut cells = Vec::new();
        for fleet in 0..fleets {
            let mut s = Stream::new(master_seed, fleet);
            let environment = EnvironmentKind::ALL[s.range(0, EnvironmentKind::ALL.len())];
            let n_devices = s.range(4, 9);
            let rounds = s.range(6, 11);
            let seed = s.next_u64() & 0xFFFF_FFFF;
            if fleet % 3 == 0 {
                // Control cell: no faults, band enforced.
                cells.push(SoakCell {
                    environment,
                    n_devices,
                    rounds,
                    seed,
                    faults: None,
                });
                continue;
            }
            let groups = if s.unit() < 0.4 { 2 } else { 1 };
            for group in 0..groups {
                let mut schedule = FaultSchedule::new(s.next_u64() & 0xFFFF_FFFF);
                if s.unit() < 0.5 {
                    let from = s.range(1, rounds.max(2));
                    let to = (from + s.range(1, 4)).min(rounds - 1).max(from);
                    schedule = schedule.with(FaultEvent::window(
                        from,
                        to,
                        FaultKind::PacketLoss {
                            link: None,
                            prob: 0.05 + 0.3 * s.unit(),
                        },
                    ));
                }
                if s.unit() < 0.45 {
                    schedule = schedule.with(FaultEvent::from(
                        s.range(rounds / 2, rounds),
                        FaultKind::Churn {
                            device: s.range(1, n_devices),
                        },
                    ));
                }
                if s.unit() < 0.4 {
                    let magnitude = 40.0 + 260.0 * s.unit();
                    let ppm = if s.unit() < 0.5 {
                        magnitude
                    } else {
                        -magnitude
                    };
                    schedule = schedule.with(FaultEvent::from(
                        0,
                        FaultKind::ClockSkew {
                            device: s.range(1, n_devices),
                            ppm,
                        },
                    ));
                }
                if s.unit() < 0.2 {
                    schedule = schedule.with(FaultEvent::from(
                        s.range(rounds / 2, rounds),
                        FaultKind::LeaderFailover,
                    ));
                }
                if groups == 2 {
                    // Both groups hear the rival group's preambles for a
                    // shared stretch of the session.
                    let from = s.range(0, rounds / 2 + 1);
                    schedule = schedule.with(FaultEvent::window(
                        from,
                        rounds - 1,
                        FaultKind::Interference {
                            gain_db: -12.0 + 10.0 * s.unit(),
                        },
                    ));
                }
                if schedule.is_empty() {
                    // A faulted fleet always carries at least one fault.
                    schedule = schedule.with(FaultEvent::window(
                        1,
                        rounds - 1,
                        FaultKind::PacketLoss {
                            link: None,
                            prob: 0.15,
                        },
                    ));
                }
                cells.push(SoakCell {
                    environment,
                    n_devices,
                    rounds,
                    seed: seed ^ ((group as u64) << 48),
                    faults: Some(schedule),
                });
            }
        }
        Self {
            master_seed,
            fleets,
            cells,
        }
    }
}

/// One invariant violation, with everything needed to chase it.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Spec of the violating cell.
    pub cell_spec: String,
    /// 0-based round the violation surfaced in (successor-session rounds
    /// keep counting from the primary session).
    pub round: usize,
    /// What went wrong.
    pub detail: String,
    /// One-line replay command.
    pub repro: String,
}

/// Result of soaking one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell that ran.
    pub cell: SoakCell,
    /// Rounds that produced a solve.
    pub rounds_ok: usize,
    /// Rounds that failed gracefully (structured round failures).
    pub rounds_failed: usize,
    /// Active fault windows seen, counted per kind label and round.
    pub fault_rounds: BTreeMap<&'static str, usize>,
    /// Median 2D error over all successful rounds (NaN if none).
    pub median_error_2d_m: f64,
    /// Invariant violations (empty on a healthy cell).
    pub violations: Vec<Violation>,
    /// Order-sensitive digest of every round's outcome bits; two runs of
    /// the same `(seed, schedule)` must agree exactly.
    pub digest: u64,
}

/// Digest accumulator: order-sensitive mixing of outcome bits.
struct Digest {
    state: u64,
}

impl Digest {
    fn new() -> Self {
        Self {
            state: 0x000D_1E57_u64,
        }
    }

    fn mix_u64(&mut self, v: u64) {
        self.state = splitmix64(self.state ^ v);
    }

    fn mix_f64(&mut self, v: f64) {
        self.mix_u64(v.to_bits());
    }

    fn mix_str(&mut self, s: &str) {
        for b in s.bytes() {
            self.mix_u64(b as u64);
        }
    }

    fn mix_outcome(&mut self, outcome: &SessionOutcome) {
        for p in &outcome.positions {
            self.mix_f64(p.x);
            self.mix_f64(p.y);
            self.mix_f64(p.z);
        }
        for e in &outcome.errors_2d {
            self.mix_f64(*e);
        }
        for &d in &outcome.silent_devices {
            self.mix_u64(d as u64);
        }
        self.mix_u64(outcome.flipping_correct as u64);
    }
}

/// Per-round invariant checks on a successful outcome. `silent` is the
/// set of devices excused from finite horizontal state this round.
fn check_outcome(
    cell: &SoakCell,
    round: usize,
    outcome: &SessionOutcome,
    violations: &mut Vec<Violation>,
) {
    let mut violate = |detail: String| {
        violations.push(Violation {
            cell_spec: cell.spec(),
            round,
            detail,
            repro: cell.repro_command(),
        });
    };
    for (i, p) in outcome.positions.iter().enumerate() {
        let silent = outcome.silent_devices.contains(&i);
        if silent {
            continue;
        }
        if !(p.x.is_finite() && p.y.is_finite() && p.z.is_finite()) {
            violate(format!(
                "NaN position for live device {i} (outside churn excision)"
            ));
        }
    }
    for (k, e) in outcome.errors_2d.iter().enumerate() {
        let device = k + 1;
        if !outcome.silent_devices.contains(&device) && !e.is_finite() {
            violate(format!("non-finite 2D error for live device {device}"));
        }
    }
    for e in &outcome.ranging_errors {
        if !e.is_finite() {
            violate("non-finite ranging error".to_string());
        }
    }
}

/// Runs one soak cell: primary session under its schedule, and — after a
/// scripted leader failover — a successor group re-initialised from the
/// surviving devices. Checks every invariant after every round.
pub fn run_cell(cell: &SoakCell, sabotage: Sabotage) -> Result<CellResult> {
    let scenario = Scenario::for_site(cell.environment, cell.n_devices, cell.seed)?;
    let mut session = Session::new(scenario.config().clone())?;
    if let Some(faults) = &cell.faults {
        session.set_fault_schedule(faults.clone())?;
    }

    let failover_round = cell
        .faults
        .as_ref()
        .and_then(|f| f.leader_failover_round())
        .filter(|&r| r < cell.rounds);
    // Rounds the primary session runs; after a failover the survivors
    // re-form under a new leader (one failed round marks the handover).
    let primary_rounds = failover_round.map_or(cell.rounds, |r| r + 1);

    let mut digest = Digest::new();
    let mut violations = Vec::new();
    let mut fault_rounds: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut rounds_ok = 0;
    let mut rounds_failed = 0;
    let mut errors = Vec::new();
    let mut sabotaged = false;

    let mut consume = |round: usize,
                       result: &mut Result<SessionOutcome>,
                       expect_failover: bool,
                       digest: &mut Digest,
                       violations: &mut Vec<Violation>,
                       rounds_ok: &mut usize,
                       rounds_failed: &mut usize,
                       errors: &mut Vec<f64>| {
        match result {
            Ok(outcome) => {
                if sabotage == Sabotage::Nan && !sabotaged {
                    // Corrupt the first live non-leader estimate; the
                    // checker below must catch it.
                    if let Some(p) = outcome
                        .positions
                        .iter_mut()
                        .enumerate()
                        .skip(1)
                        .find(|(i, _)| !outcome.silent_devices.contains(i))
                        .map(|(_, p)| p)
                    {
                        p.x = f64::NAN;
                        sabotaged = true;
                    }
                }
                *rounds_ok += 1;
                check_outcome(cell, round, outcome, violations);
                if expect_failover {
                    violations.push(Violation {
                        cell_spec: cell.spec(),
                        round,
                        detail: "scheduled leader failover did not silence the leader".to_string(),
                        repro: cell.repro_command(),
                    });
                }
                digest.mix_outcome(outcome);
                errors.extend(outcome.errors_2d.iter().copied().filter(|e| e.is_finite()));
            }
            Err(e) => {
                *rounds_failed += 1;
                match e.round_failure() {
                    Some((_, reason)) => digest.mix_str(&reason.to_string()),
                    None => violations.push(Violation {
                        cell_spec: cell.spec(),
                        round,
                        detail: format!("non-structured error: {e}"),
                        repro: cell.repro_command(),
                    }),
                }
            }
        }
    };

    for round in 0..primary_rounds {
        if let Some(faults) = &cell.faults {
            for event in faults.active_in(round) {
                *fault_rounds.entry(event.kind.label()).or_insert(0) += 1;
            }
        }
        let expect_failover = failover_round == Some(round);
        let mut result = session.run(scenario.network());
        if expect_failover {
            // The handover round must fail as LeaderSilent, not solve.
            if let Err(e) = &result {
                if !matches!(
                    e.round_failure(),
                    Some((_, RoundFailureReason::LeaderSilent))
                ) && !matches!(
                    e.round_failure(),
                    Some((_, RoundFailureReason::TooFewLiveDevices { .. }))
                ) {
                    violations.push(Violation {
                        cell_spec: cell.spec(),
                        round,
                        detail: format!("failover round failed with '{e}'"),
                        repro: cell.repro_command(),
                    });
                }
            }
        }
        consume(
            round,
            &mut result,
            expect_failover,
            &mut digest,
            &mut violations,
            &mut rounds_ok,
            &mut rounds_failed,
            &mut errors,
        );
    }

    // Failover continuation: the survivors re-initialise as a new group
    // under the next device as leader (the protocol's initiator is always
    // device 0, so the harness — like real divers — re-forms the group).
    if let Some(fo) = failover_round {
        let survivors = scenario.network().positions_at(0.0);
        if survivors.len() >= 4 {
            let successor_network =
                DiveNetwork::new(scenario.network().environment().kind, &survivors[1..])?;
            let mut successor_config = scenario.config().clone();
            successor_config.n_devices = survivors.len() - 1;
            let mut successor = Session::new(successor_config)?;
            for round in (fo + 1)..cell.rounds {
                let mut result = successor.run(&successor_network);
                consume(
                    round,
                    &mut result,
                    false,
                    &mut digest,
                    &mut violations,
                    &mut rounds_ok,
                    &mut rounds_failed,
                    &mut errors,
                );
            }
        }
    }

    errors.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = if errors.is_empty() {
        f64::NAN
    } else {
        uw_core::metrics::percentile(&errors, 50.0)
    };
    if cell.faults.is_none() {
        // Control band: a fault-free cell must localize, and accurately.
        if !(median.is_finite() && median < CONTROL_MEDIAN_BAND_M) {
            violations.push(Violation {
                cell_spec: cell.spec(),
                round: cell.rounds.saturating_sub(1),
                detail: format!(
                    "control cell median 2D error {median:.2} m outside band (< {CONTROL_MEDIAN_BAND_M} m)"
                ),
                repro: cell.repro_command(),
            });
        }
    }

    Ok(CellResult {
        cell: cell.clone(),
        rounds_ok,
        rounds_failed,
        fault_rounds,
        median_error_2d_m: median,
        violations,
        digest: digest.state,
    })
}

/// Aggregated soak run.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Schema identifier ([`SOAK_SCHEMA`]).
    pub schema: String,
    /// Master seed the plan expanded from.
    pub master_seed: u64,
    /// Fleets requested.
    pub fleets: usize,
    /// Cells run (>= fleets; two-group fleets contribute two cells).
    pub cells_run: usize,
    /// Cells with no fault schedule (accuracy band enforced).
    pub control_cells: usize,
    /// Total rounds that produced a solve.
    pub rounds_ok: usize,
    /// Total rounds that failed gracefully.
    pub rounds_failed: usize,
    /// Active fault windows seen across all cells, per kind label.
    pub fault_rounds: BTreeMap<&'static str, usize>,
    /// Whether every cell's re-run digest matched (bitwise repro check).
    pub reproducible: bool,
    /// All invariant violations (empty on a healthy soak).
    pub violations: Vec<Violation>,
}

impl SoakReport {
    /// Serialises the report to pretty-printed JSON (hand-rolled, like
    /// [`crate::report::EvalReport::to_json`] — the vendored `serde` does
    /// not serialise at runtime).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{}\",\n", self.schema));
        out.push_str(&format!("  \"master_seed\": {},\n", self.master_seed));
        out.push_str(&format!("  \"fleets\": {},\n", self.fleets));
        out.push_str(&format!("  \"cells_run\": {},\n", self.cells_run));
        out.push_str(&format!("  \"control_cells\": {},\n", self.control_cells));
        out.push_str(&format!("  \"rounds_ok\": {},\n", self.rounds_ok));
        out.push_str(&format!("  \"rounds_failed\": {},\n", self.rounds_failed));
        out.push_str("  \"fault_rounds\": {");
        let mut first = true;
        for (label, count) in &self.fault_rounds {
            if !first {
                out.push_str(", ");
            }
            first = false;
            out.push_str(&format!("\"{label}\": {count}"));
        }
        out.push_str("},\n");
        out.push_str(&format!("  \"reproducible\": {},\n", self.reproducible));
        out.push_str(&format!(
            "  \"invariant_violations\": {},\n",
            self.violations.len()
        ));
        out.push_str("  \"violations\": [\n");
        for (k, v) in self.violations.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"round\": {}, \"detail\": \"{}\", \"repro\": \"{}\"}}{}\n",
                v.cell_spec.replace('"', "\\\""),
                v.round,
                v.detail.replace('"', "\\\""),
                v.repro.replace('"', "\\\""),
                if k + 1 < self.violations.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Runs a full plan (in parallel), optionally re-running every cell to
/// verify bitwise reproducibility from `(seed, schedule)`.
pub fn run_plan(plan: &SoakPlan, sabotage: Sabotage, recheck: bool) -> Result<SoakReport> {
    use rayon::prelude::*;
    let results: Vec<Result<(CellResult, bool)>> = plan
        .cells
        .par_iter()
        .map(|cell| {
            let result = run_cell(cell, sabotage)?;
            let matches = if recheck {
                run_cell(cell, sabotage)?.digest == result.digest
            } else {
                true
            };
            Ok((result, matches))
        })
        .collect();

    let mut report = SoakReport {
        schema: SOAK_SCHEMA.into(),
        master_seed: plan.master_seed,
        fleets: plan.fleets,
        cells_run: 0,
        control_cells: 0,
        rounds_ok: 0,
        rounds_failed: 0,
        fault_rounds: BTreeMap::new(),
        reproducible: true,
        violations: Vec::new(),
    };
    for entry in results {
        let (result, matches) = entry?;
        report.cells_run += 1;
        if result.cell.faults.is_none() {
            report.control_cells += 1;
        }
        report.rounds_ok += result.rounds_ok;
        report.rounds_failed += result.rounds_failed;
        for (&label, &count) in &result.fault_rounds {
            *report.fault_rounds.entry(label).or_insert(0) += count;
        }
        if !matches {
            report.reproducible = false;
            report.violations.push(Violation {
                cell_spec: result.cell.spec(),
                round: 0,
                detail: "re-run digest differs: cell is not bitwise reproducible".into(),
                repro: result.cell.repro_command(),
            });
        }
        report.violations.extend(result.violations);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_specs_round_trip() {
        let plan = SoakPlan::generate(42, 9);
        assert!(plan.cells.len() >= 9);
        for cell in &plan.cells {
            let parsed = SoakCell::parse(&cell.spec()).unwrap();
            assert_eq!(&parsed, cell);
            assert!(cell.repro_command().contains(&cell.spec()));
        }
        // Controls are fault-free; faulted cells never have an empty
        // schedule.
        assert!(plan.cells.iter().any(|c| c.faults.is_none()));
        assert!(plan
            .cells
            .iter()
            .filter_map(|c| c.faults.as_ref())
            .all(|f| !f.is_empty()));
    }

    #[test]
    fn generation_is_deterministic_and_schedules_validate() {
        let a = SoakPlan::generate(7, 12);
        let b = SoakPlan::generate(7, 12);
        assert_eq!(a, b);
        let c = SoakPlan::generate(8, 12);
        assert_ne!(a, c);
        for cell in &a.cells {
            if let Some(f) = &cell.faults {
                f.validate(cell.n_devices).unwrap();
            }
        }
    }

    #[test]
    fn bad_specs_are_rejected() {
        assert!(SoakCell::parse("atlantis:5:6:1:-").is_err());
        assert!(SoakCell::parse("dock:x:6:1:-").is_err());
        assert!(SoakCell::parse("dock:5:6:1").is_err());
        assert!(SoakCell::parse("dock:5:6:1:seed=1;churn:1..:99").is_err());
    }

    #[test]
    fn control_cell_soaks_clean_and_reproducibly() {
        let cell = SoakCell {
            environment: EnvironmentKind::Dock,
            n_devices: 5,
            rounds: 4,
            seed: 3,
            faults: None,
        };
        let a = run_cell(&cell, Sabotage::None).unwrap();
        let b = run_cell(&cell, Sabotage::None).unwrap();
        assert_eq!(a.digest, b.digest);
        assert!(a.violations.is_empty(), "{:?}", a.violations);
        assert_eq!(a.rounds_ok, 4);
        assert!(a.median_error_2d_m < CONTROL_MEDIAN_BAND_M);
    }

    #[test]
    fn sabotage_is_caught_with_a_working_repro_line() {
        let cell = SoakCell {
            environment: EnvironmentKind::Dock,
            n_devices: 5,
            rounds: 3,
            seed: 3,
            faults: None,
        };
        let result = run_cell(&cell, Sabotage::Nan).unwrap();
        assert!(!result.violations.is_empty());
        let v = &result.violations[0];
        assert!(v.detail.contains("NaN position"), "{}", v.detail);
        assert!(v.repro.contains("--cell 'dock:5:3:3:-'"), "{}", v.repro);
        // The repro line's spec parses back to the same cell.
        let spec = v.repro.split('\'').nth(1).unwrap();
        assert_eq!(SoakCell::parse(spec).unwrap(), cell);
    }

    #[test]
    fn failover_hands_over_to_a_successor_group() {
        let cell = SoakCell {
            environment: EnvironmentKind::Dock,
            n_devices: 5,
            rounds: 6,
            seed: 11,
            faults: Some(
                FaultSchedule::new(1).with(FaultEvent::from(3, FaultKind::LeaderFailover)),
            ),
        };
        let result = run_cell(&cell, Sabotage::None).unwrap();
        assert!(result.violations.is_empty(), "{:?}", result.violations);
        // Rounds 0–2 on the primary, round 3 is the (graceful) handover,
        // rounds 4–5 on the successor group.
        assert_eq!(result.rounds_failed, 1);
        assert_eq!(result.rounds_ok, 5);
        assert!(result.fault_rounds["failover"] >= 1);
    }

    #[test]
    fn small_plan_soaks_with_zero_violations() {
        let plan = SoakPlan::generate(2024, 6);
        let report = run_plan(&plan, Sabotage::None, true).unwrap();
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(report.reproducible);
        assert_eq!(report.cells_run, plan.cells.len());
        assert!(report.rounds_ok > 0);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"uwgps-soak-v1\""));
        assert!(json.contains("\"invariant_violations\": 0"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
