//! Recording and replaying matrix cells as real audio.
//!
//! The paper's evaluation is driven by recorded hydrophone audio; this
//! module closes the loop between the channel simulator and that workflow:
//!
//! * **Record** — [`record_cell`] renders every leader-link waveform
//!   exchange of a hybrid-fidelity cell (the exact captures
//!   `uw_core::Session` would feed its detector, via
//!   [`uw_core::session::leader_link_trials`] +
//!   [`uw_core::waveform::synthesize_dual_mic`]) into a [`Recording`],
//!   and [`Recording::to_wav_bytes`] encodes it as a standard 2-channel
//!   WAV (one channel per microphone) with a segment directory in a
//!   custom `uwRD` chunk. This is how the repo generates its own golden
//!   fixtures offline (`tests/fixtures/*.wav`).
//! * **Replay** — [`Recording::from_wav_bytes`] streams the file back
//!   through `uw-audio` (chunked decode, resampled to the pipeline rate
//!   if the recording used another one) and
//!   [`EvalCell::from_recording`] wraps it into a *replay cell*: the same
//!   scenario, rounds and statistics machinery, but with detection and
//!   channel estimation running on the decoded audio instead of simulator
//!   output. Replay cells carry a `replay` id segment
//!   (`dock/5dev/clear/static/replay/s1`) and flow through
//!   [`crate::runner::CellExecution`], [`crate::report::EvalReport`] and
//!   `uw-serve` jobs unchanged.
//!
//! Because captures are synthesized in pure `f64` regardless of the
//! receive DSP, one recording serves both numeric paths: replay it with
//! [`EvalCell::from_recording_with_path`] and [`uw_core::config::NumericPath::Q15`]
//! to run the on-device fixed-point pipeline over the identical audio.

use crate::matrix::{EvalCell, LinkProfile, MobilityProfile, ScenarioMatrix, Topology};
use std::collections::HashMap;
use std::sync::Arc;
use uw_audio::wav::{read_wav_bytes, SampleFormat, WavSpec, WavWriter};
use uw_audio::ReplaySource;
use uw_core::config::{Fidelity, NumericPath};
use uw_core::prelude::*;
use uw_core::session::leader_link_trials;
use uw_core::waveform::{synthesize_dual_mic, LinkAudioSource, LinkCapture};
use uw_core::{Result, SystemError};

/// Cell-id segment marking a replayed cell.
pub const REPLAY_SEGMENT: &str = "replay";

/// Chunk id of the segment directory inside a recording WAV.
pub const DIRECTORY_CHUNK: [u8; 4] = *b"uwRD";

/// Version byte leading the directory chunk.
const DIRECTORY_VERSION: u8 = 1;

/// Peak the encoder normalizes recordings to (headroom below full scale,
/// like a sane recording gain).
pub const NORMALIZED_PEAK: f64 = 0.98;

/// The capture of one leader-link exchange within a recording.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedLink {
    /// 0-based localization round.
    pub round: usize,
    /// The non-leader device of the exchange.
    pub device: usize,
    /// The two microphone streams.
    pub capture: LinkCapture,
}

/// A rendered (or decoded) recording of a matrix cell: everything needed
/// to rebuild the cell and feed its waveform path from audio.
#[derive(Debug, Clone, PartialEq)]
pub struct Recording {
    /// Environment of the recorded cell.
    pub environment: EnvironmentKind,
    /// Group size.
    pub n_devices: usize,
    /// Link condition.
    pub condition: LinkProfile,
    /// Mobility profile.
    pub mobility: MobilityProfile,
    /// Numeric path the cell was recorded under (captures themselves are
    /// path-independent; this is the default replay path).
    pub numeric_path: NumericPath,
    /// RNG seed of the recorded cell.
    pub seed: u64,
    /// Rounds the recording covers.
    pub rounds: usize,
    /// Per-round, per-link captures in (round, device) order.
    pub links: Vec<RecordedLink>,
}

/// Rounds covered by the committed golden fixture
/// (`tests/fixtures/dock_5dev_clear_static_s1.wav`): enough rounds for a
/// stable median over 4 devices × 3 rounds while keeping the PCM16 file
/// under a megabyte.
pub const FIXTURE_ROUNDS: usize = 3;

/// The cell the committed golden fixture records: the dock 5-device
/// clear/static headline scenario (seed 1) at hybrid fidelity on the
/// `f64` path, shortened to [`FIXTURE_ROUNDS`]. Regenerate the fixture
/// with `./scripts/record_fixtures.sh`; the tier-1 test
/// `crates/eval/tests/replay_golden.rs` replays it on both numeric paths.
pub fn fixture_cell() -> Result<EvalCell> {
    let matrix = ScenarioMatrix {
        environments: vec![EnvironmentKind::Dock],
        topologies: vec![Topology::FiveDevice],
        conditions: vec![LinkProfile::Clear],
        mobilities: vec![MobilityProfile::Static],
        numeric_paths: vec![NumericPath::F64],
        faults: vec![None],
        seeds: vec![1],
        recordings: vec![],
        rounds_per_cell: FIXTURE_ROUNDS,
        fidelity: Fidelity::Hybrid,
    };
    Ok(matrix.expand()?.remove(0))
}

/// Renders every leader-link exchange of a hybrid cell into a
/// [`Recording`] — the deterministic "recorder" with which the repository
/// generates its own golden fixtures (same seeds, same channel
/// realisations the live session would draw).
pub fn record_cell(cell: &EvalCell) -> Result<Recording> {
    let config = cell.scenario.config();
    if config.fidelity != Fidelity::Hybrid {
        return Err(SystemError::InvalidConfig {
            reason: format!(
                "cell {}: only hybrid-fidelity cells process waveforms; there is \
                 nothing to record at statistical fidelity",
                cell.id
            ),
        });
    }
    let mut links = Vec::new();
    for round in 0..cell.rounds {
        for lt in leader_link_trials(config, cell.scenario.network(), round, cell.faults.as_ref())?
        {
            links.push(RecordedLink {
                round,
                device: lt.device,
                capture: synthesize_dual_mic(&lt.trial, lt.seed)?,
            });
        }
    }
    Ok(Recording {
        environment: cell.environment,
        n_devices: cell.n_devices,
        condition: cell.condition,
        mobility: cell.mobility,
        numeric_path: cell.numeric_path,
        seed: cell.seed,
        rounds: cell.rounds,
        links,
    })
}

// ---------------------------------------------------------------------------
// Directory (de)serialisation
// ---------------------------------------------------------------------------

fn condition_tag(c: &LinkProfile) -> (u8, f64) {
    match c {
        LinkProfile::Clear => (0, 0.0),
        LinkProfile::Occluded { bias_m } => (1, *bias_m),
        LinkProfile::MissingLink => (2, 0.0),
        LinkProfile::DeviceChurn { after_round } => (3, *after_round as f64),
    }
}

fn condition_from_tag(tag: u8, param: f64) -> Result<LinkProfile> {
    Ok(match tag {
        0 => LinkProfile::Clear,
        1 => LinkProfile::Occluded { bias_m: param },
        2 => LinkProfile::MissingLink,
        3 => LinkProfile::DeviceChurn {
            after_round: param as usize,
        },
        _ => {
            return Err(SystemError::InvalidConfig {
                reason: format!("unknown link-condition tag {tag} in recording directory"),
            })
        }
    })
}

fn mobility_tag(m: &MobilityProfile) -> (u8, f64) {
    match m {
        MobilityProfile::Static => (0, 0.0),
        MobilityProfile::RopeOscillation { speed_cm_s } => (1, *speed_cm_s),
        MobilityProfile::Swimmer { speed_cm_s } => (2, *speed_cm_s),
        MobilityProfile::CurrentDrift { speed_cm_s } => (3, *speed_cm_s),
    }
}

fn mobility_from_tag(tag: u8, param: f64) -> Result<MobilityProfile> {
    Ok(match tag {
        0 => MobilityProfile::Static,
        1 => MobilityProfile::RopeOscillation { speed_cm_s: param },
        2 => MobilityProfile::Swimmer { speed_cm_s: param },
        3 => MobilityProfile::CurrentDrift { speed_cm_s: param },
        _ => {
            return Err(SystemError::InvalidConfig {
                reason: format!("unknown mobility tag {tag} in recording directory"),
            })
        }
    })
}

/// Minimal little-endian cursor over the directory chunk.
struct Dir<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Dir<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(SystemError::InvalidConfig {
                reason: "recording directory chunk is truncated".into(),
            });
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl Recording {
    /// Encodes the recording as a 2-channel WAV image (channel 0 = mic 1,
    /// channel 1 = mic 2; segments concatenated with the directory in a
    /// custom [`DIRECTORY_CHUNK`]). The audio is normalized to
    /// [`NORMALIZED_PEAK`] and the gain stored in the directory, so PCM
    /// quantisation noise is as far below the signal as the format allows
    /// and decoding restores the original amplitudes.
    pub fn to_wav_bytes(&self, format: SampleFormat) -> Result<Vec<u8>> {
        let sample_rate = uw_dsp::SAMPLE_RATE as u32;
        // Layout: per segment, the frame count is the longer of the two
        // mic streams (the shorter is zero-padded in storage only — the
        // true lengths are in the directory, so replay reconstructs the
        // exact streams).
        let mut peak = 0.0f64;
        for link in &self.links {
            for s in link.capture.mic1.iter().chain(link.capture.mic2.iter()) {
                peak = peak.max(s.abs());
            }
        }
        let scale = if peak > 0.0 {
            NORMALIZED_PEAK / peak
        } else {
            1.0
        };

        let mut dir = Vec::new();
        dir.push(DIRECTORY_VERSION);
        let env_slug = self.environment.slug().as_bytes();
        dir.push(env_slug.len() as u8);
        dir.extend_from_slice(env_slug);
        dir.extend_from_slice(&(self.n_devices as u16).to_le_bytes());
        let (ctag, cparam) = condition_tag(&self.condition);
        dir.push(ctag);
        dir.extend_from_slice(&cparam.to_bits().to_le_bytes());
        let (mtag, mparam) = mobility_tag(&self.mobility);
        dir.push(mtag);
        dir.extend_from_slice(&mparam.to_bits().to_le_bytes());
        dir.push(match self.numeric_path {
            NumericPath::F64 => 0,
            NumericPath::Q15 => 1,
            NumericPath::F32 => 2,
        });
        dir.extend_from_slice(&self.seed.to_le_bytes());
        dir.extend_from_slice(&(self.rounds as u32).to_le_bytes());
        dir.extend_from_slice(&scale.to_bits().to_le_bytes());
        dir.extend_from_slice(&(self.links.len() as u32).to_le_bytes());
        let mut start_frame = 0u64;
        for link in &self.links {
            let frames = link.capture.mic1.len().max(link.capture.mic2.len()) as u64;
            dir.extend_from_slice(&(link.round as u32).to_le_bytes());
            dir.extend_from_slice(&(link.device as u32).to_le_bytes());
            dir.extend_from_slice(&start_frame.to_le_bytes());
            dir.extend_from_slice(&(link.capture.mic1.len() as u64).to_le_bytes());
            dir.extend_from_slice(&(link.capture.mic2.len() as u64).to_le_bytes());
            start_frame += frames;
        }

        let spec = WavSpec {
            sample_rate,
            channels: 2,
            format,
        };
        let mut writer =
            WavWriter::new(std::io::Cursor::new(Vec::new()), spec).map_err(audio_err)?;
        writer.add_chunk(DIRECTORY_CHUNK, &dir).map_err(audio_err)?;
        let mut interleaved = Vec::new();
        for link in &self.links {
            let frames = link.capture.mic1.len().max(link.capture.mic2.len());
            interleaved.clear();
            interleaved.reserve(frames * 2);
            for i in 0..frames {
                interleaved.push(link.capture.mic1.get(i).copied().unwrap_or(0.0) * scale);
                interleaved.push(link.capture.mic2.get(i).copied().unwrap_or(0.0) * scale);
            }
            writer.write_interleaved(&interleaved).map_err(audio_err)?;
        }
        Ok(writer.finalize().map_err(audio_err)?.into_inner())
    }

    /// Decodes a recording from a WAV image produced by
    /// [`Recording::to_wav_bytes`] (or re-encoded at another sample rate —
    /// the audio is resampled back onto the pipeline's 44.1 kHz grid by
    /// `uw-audio`'s streaming resampler). The file is streamed in blocks;
    /// only the decoded `f64` segments are held.
    pub fn from_wav_bytes(bytes: Vec<u8>) -> Result<Self> {
        let reader = read_wav_bytes(bytes).map_err(audio_err)?;
        if reader.spec().channels != 2 {
            return Err(SystemError::InvalidConfig {
                reason: format!(
                    "a recording is a 2-channel (dual-microphone) WAV; this file has {}",
                    reader.spec().channels
                ),
            });
        }
        let dir_bytes = reader
            .chunk(DIRECTORY_CHUNK)
            .ok_or_else(|| SystemError::InvalidConfig {
                reason: "WAV has no uwRD directory chunk; not a cell recording".into(),
            })?
            .to_vec();
        let mut dir = Dir {
            bytes: &dir_bytes,
            pos: 0,
        };
        let version = dir.u8()?;
        if version != DIRECTORY_VERSION {
            return Err(SystemError::InvalidConfig {
                reason: format!("unsupported recording directory version {version}"),
            });
        }
        let slug_len = dir.u8()? as usize;
        let slug = String::from_utf8_lossy(dir.take(slug_len)?).into_owned();
        let environment = *EnvironmentKind::ALL
            .iter()
            .find(|k| k.slug() == slug)
            .ok_or_else(|| SystemError::InvalidConfig {
                reason: format!("unknown environment slug {slug:?} in recording"),
            })?;
        let n_devices = u16::from_le_bytes(dir.take(2)?.try_into().unwrap()) as usize;
        let ctag = dir.u8()?;
        let condition = condition_from_tag(ctag, dir.f64()?)?;
        let mtag = dir.u8()?;
        let mobility = mobility_from_tag(mtag, dir.f64()?)?;
        let numeric_path = match dir.u8()? {
            0 => NumericPath::F64,
            1 => NumericPath::Q15,
            2 => NumericPath::F32,
            p => {
                return Err(SystemError::InvalidConfig {
                    reason: format!("unknown numeric-path tag {p} in recording"),
                })
            }
        };
        let seed = dir.u64()?;
        let rounds = dir.u32()? as usize;
        let scale = dir.f64()?;
        if !(scale.is_finite() && scale > 0.0) {
            return Err(SystemError::InvalidConfig {
                reason: format!("recording gain {scale} is not a positive finite number"),
            });
        }
        let n_segments = dir.u32()? as usize;
        // Each entry is 32 bytes; a directory declaring more entries than
        // its remaining bytes could hold is hostile or corrupt — reject it
        // before with_capacity turns the declared count into an allocation.
        let remaining = dir_bytes.len().saturating_sub(dir.pos);
        if n_segments > remaining / 32 {
            return Err(SystemError::InvalidConfig {
                reason: format!(
                    "recording directory declares {n_segments} segments but only \
                     {remaining} bytes remain"
                ),
            });
        }
        let mut entries = Vec::with_capacity(n_segments);
        for _ in 0..n_segments {
            let round = dir.u32()? as usize;
            let device = dir.u32()? as usize;
            let start = dir.u64()?;
            let len1 = dir.u64()? as usize;
            let len2 = dir.u64()? as usize;
            entries.push((round, device, start, len1, len2));
        }

        // Stream the audio once, front to back, slicing segments off as
        // their frames arrive (segments are stored contiguously in
        // directory order). Recordings made at a non-pipeline rate are
        // resampled on the fly; segment boundaries then scale by the same
        // ratio.
        let file_rate = reader.spec().sample_rate as f64;
        let ratio = uw_dsp::SAMPLE_RATE / file_rate;
        let mut source =
            ReplaySource::new(reader, uw_dsp::SAMPLE_RATE, 1 << 15).map_err(audio_err)?;
        let mut mic1_all: Vec<f64> = Vec::new();
        let mut mic2_all: Vec<f64> = Vec::new();
        while let Some(block) = source.next_block().map_err(audio_err)? {
            let mut channels = block.channels.into_iter();
            mic1_all.extend(channels.next().expect("2 channels checked above"));
            mic2_all.extend(channels.next().expect("2 channels checked above"));
        }

        let unscale = 1.0 / scale;
        let mut links = Vec::with_capacity(n_segments);
        let mut expected_start = 0u64;
        for (round, device, start, len1, len2) in entries {
            if start != expected_start {
                return Err(SystemError::InvalidConfig {
                    reason: format!(
                        "recording segments are not contiguous (round {round} device \
                         {device} starts at {start}, expected {expected_start})"
                    ),
                });
            }
            let frames = len1.max(len2) as u64;
            let slice = |all: &[f64], len: usize| -> Result<Vec<f64>> {
                let lo = (start as f64 * ratio).round() as usize;
                let hi = lo + (len as f64 * ratio).round() as usize;
                if hi > all.len() {
                    return Err(SystemError::InvalidConfig {
                        reason: format!(
                            "recording audio ends at frame {} but the directory \
                             expects {hi}",
                            all.len()
                        ),
                    });
                }
                Ok(all[lo..hi].iter().map(|s| s * unscale).collect())
            };
            links.push(RecordedLink {
                round,
                device,
                capture: LinkCapture {
                    mic1: slice(&mic1_all, len1)?,
                    mic2: slice(&mic2_all, len2)?,
                },
            });
            expected_start += frames;
        }
        Ok(Self {
            environment,
            n_devices,
            condition,
            mobility,
            numeric_path,
            seed,
            rounds,
            links,
        })
    }

    /// Writes the recording to a WAV file.
    pub fn save(&self, path: impl AsRef<std::path::Path>, format: SampleFormat) -> Result<()> {
        let bytes = self.to_wav_bytes(format)?;
        std::fs::write(path, bytes).map_err(|e| SystemError::Layer {
            layer: "audio",
            reason: e.to_string(),
        })
    }

    /// Reads a recording from a WAV file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let bytes = std::fs::read(&path).map_err(|e| SystemError::Layer {
            layer: "audio",
            reason: format!("{}: {e}", path.as_ref().display()),
        })?;
        Self::from_wav_bytes(bytes)
    }
}

fn audio_err(e: uw_audio::AudioError) -> SystemError {
    SystemError::Layer {
        layer: "audio",
        reason: e.to_string(),
    }
}

// ---------------------------------------------------------------------------
// Replay cells
// ---------------------------------------------------------------------------

/// A decoded recording indexed for the session's per-link lookups; the
/// [`LinkAudioSource`] implementation replay cells install on their
/// sessions.
#[derive(Debug)]
pub struct ReplayAudio {
    captures: HashMap<(usize, usize), LinkCapture>,
}

impl ReplayAudio {
    /// Indexes a recording's links by (round, device).
    pub fn new(recording: &Recording) -> Self {
        Self {
            captures: recording
                .links
                .iter()
                .map(|l| ((l.round, l.device), l.capture.clone()))
                .collect(),
        }
    }

    /// Wraps an already-assembled capture map — the entry point for the
    /// field-recording importer ([`crate::import`]), whose captures come
    /// from manifest frame ranges rather than a [`Recording`].
    pub fn from_captures(captures: HashMap<(usize, usize), LinkCapture>) -> Self {
        Self { captures }
    }

    /// Number of captures available.
    pub fn len(&self) -> usize {
        self.captures.len()
    }

    /// Whether the recording holds no captures.
    pub fn is_empty(&self) -> bool {
        self.captures.is_empty()
    }
}

impl LinkAudioSource for ReplayAudio {
    fn link_capture(&self, round: usize, device: usize) -> Option<&LinkCapture> {
        self.captures.get(&(round, device))
    }
}

impl EvalCell {
    /// Builds a *replay cell* from a recording: the recorded scenario is
    /// reconstructed (same environment, topology, condition, mobility and
    /// seed, at hybrid fidelity), the decoded audio is installed as the
    /// session's [`LinkAudioSource`], and the cell id gains a
    /// [`REPLAY_SEGMENT`] before the seed
    /// (`dock/5dev/clear/static/replay/s1`), so replayed and simulated
    /// statistics never collide in a report. The cell runs through the
    /// same [`crate::runner::CellExecution`] / [`crate::report::EvalReport`]
    /// machinery — and through `uw-serve` jobs — unchanged.
    pub fn from_recording(recording: &Recording) -> Result<Self> {
        Self::from_recording_with_path(recording, recording.numeric_path)
    }

    /// As [`EvalCell::from_recording`], but replaying on an explicitly
    /// chosen numeric path. Captures are path-independent (channel
    /// synthesis is pure `f64`), so one recording drives the `f64` oracle,
    /// the single-precision f32 path, and the on-device Q15 pipeline alike.
    pub fn from_recording_with_path(recording: &Recording, path: NumericPath) -> Result<Self> {
        let matrix = ScenarioMatrix {
            environments: vec![recording.environment],
            topologies: vec![Topology::Group(recording.n_devices)],
            conditions: vec![recording.condition],
            mobilities: vec![recording.mobility],
            numeric_paths: vec![path],
            faults: vec![None],
            seeds: vec![recording.seed],
            recordings: vec![],
            rounds_per_cell: recording.rounds,
            fidelity: Fidelity::Hybrid,
        };
        let mut cell = matrix.expand()?.remove(0);
        let mut segments: Vec<&str> = cell.id.split('/').collect();
        segments.insert(segments.len() - 1, REPLAY_SEGMENT);
        let id = segments.join("/");
        cell.id = id.clone();
        cell.scenario.set_name(id);
        cell.replay = Some(Arc::new(ReplayAudio::new(recording)));
        Ok(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_cell;

    fn tiny_hybrid_cell(rounds: usize) -> EvalCell {
        let matrix = ScenarioMatrix {
            environments: vec![EnvironmentKind::Dock],
            topologies: vec![Topology::FiveDevice],
            conditions: vec![LinkProfile::Clear],
            mobilities: vec![MobilityProfile::Static],
            numeric_paths: vec![NumericPath::F64],
            faults: vec![None],
            seeds: vec![1],
            recordings: vec![],
            rounds_per_cell: rounds,
            fidelity: Fidelity::Hybrid,
        };
        matrix.expand().unwrap().remove(0)
    }

    #[test]
    fn statistical_cells_cannot_be_recorded() {
        let cell = ScenarioMatrix::smoke().expand().unwrap().remove(0);
        let err = record_cell(&cell).unwrap_err();
        assert!(err.to_string().contains("statistical"), "{err}");
    }

    #[test]
    fn recording_covers_every_round_and_link() {
        let cell = tiny_hybrid_cell(2);
        let recording = record_cell(&cell).unwrap();
        // 2 rounds × 4 leader links.
        assert_eq!(recording.links.len(), 8);
        for round in 0..2 {
            for device in 1..5 {
                assert!(
                    recording
                        .links
                        .iter()
                        .any(|l| l.round == round && l.device == device),
                    "missing capture for round {round}, device {device}"
                );
            }
        }
        // Captures hold plausible audio (non-empty, bounded).
        for link in &recording.links {
            assert!(link.capture.mic1.len() > 10_000);
            assert!(link
                .capture
                .mic1
                .iter()
                .all(|s| s.is_finite() && s.abs() < 10.0));
        }
    }

    #[test]
    fn wav_roundtrip_preserves_the_directory_and_float32_audio() {
        let cell = tiny_hybrid_cell(1);
        let recording = record_cell(&cell).unwrap();
        let bytes = recording.to_wav_bytes(SampleFormat::Float32).unwrap();
        let decoded = Recording::from_wav_bytes(bytes).unwrap();
        assert_eq!(decoded.environment, recording.environment);
        assert_eq!(decoded.n_devices, 5);
        assert_eq!(decoded.condition, LinkProfile::Clear);
        assert_eq!(decoded.mobility, MobilityProfile::Static);
        assert_eq!(decoded.seed, 1);
        assert_eq!(decoded.rounds, 1);
        assert_eq!(decoded.links.len(), recording.links.len());
        for (a, b) in decoded.links.iter().zip(recording.links.iter()) {
            assert_eq!((a.round, a.device), (b.round, b.device));
            assert_eq!(a.capture.mic1.len(), b.capture.mic1.len());
            assert_eq!(a.capture.mic2.len(), b.capture.mic2.len());
            for (x, y) in a.capture.mic1.iter().zip(b.capture.mic1.iter()) {
                assert!((x - y).abs() < 1e-6, "{x} vs {y}");
            }
        }
    }

    #[test]
    fn replay_cell_reproduces_the_simulated_cell() {
        let cell = tiny_hybrid_cell(1);
        let simulated = run_cell(&cell).unwrap();
        let recording = record_cell(&cell).unwrap();
        let bytes = recording.to_wav_bytes(SampleFormat::Float32).unwrap();
        let decoded = Recording::from_wav_bytes(bytes).unwrap();
        let replay = EvalCell::from_recording(&decoded).unwrap();
        assert_eq!(replay.id, "dock/5dev/clear/static/replay/s1");
        let replayed = run_cell(&replay).unwrap();
        assert_eq!(replayed.rounds_completed, 1);
        // Float32 storage keeps the waveform to ~1e-7; the integer tap
        // decisions are identical, so the statistics agree to float32
        // precision.
        assert!(
            (replayed.error_2d.median - simulated.error_2d.median).abs() < 1e-3,
            "replay median {} vs simulated {}",
            replayed.error_2d.median,
            simulated.error_2d.median
        );
    }

    #[test]
    fn replay_without_captures_fails_the_rounds() {
        let cell = tiny_hybrid_cell(1);
        let mut recording = record_cell(&cell).unwrap();
        recording.links.clear();
        let replay = EvalCell::from_recording(&recording).unwrap();
        let report = run_cell(&replay).unwrap();
        assert_eq!(report.rounds_completed, 0);
        assert_eq!(report.rounds_failed, 1);
    }

    #[test]
    fn malformed_recordings_are_rejected() {
        // Not a recording at all.
        let plain = uw_audio::wav::write_wav_bytes(
            WavSpec {
                sample_rate: 44_100,
                channels: 2,
                format: SampleFormat::Pcm16,
            },
            &[0.0; 64],
        )
        .unwrap();
        assert!(Recording::from_wav_bytes(plain).is_err());
        // Mono file.
        let mono = uw_audio::wav::write_wav_bytes(
            WavSpec {
                sample_rate: 44_100,
                channels: 1,
                format: SampleFormat::Pcm16,
            },
            &[0.0; 64],
        )
        .unwrap();
        assert!(Recording::from_wav_bytes(mono).is_err());
        // Truncated directory chunk.
        let cell = tiny_hybrid_cell(1);
        let recording = record_cell(&cell).unwrap();
        let good = recording.to_wav_bytes(SampleFormat::Pcm16).unwrap();
        let reader = read_wav_bytes(good).unwrap();
        let dir = reader.chunk(DIRECTORY_CHUNK).unwrap();
        let mut writer = WavWriter::new(
            std::io::Cursor::new(Vec::new()),
            WavSpec {
                sample_rate: 44_100,
                channels: 2,
                format: SampleFormat::Pcm16,
            },
        )
        .unwrap();
        writer
            .add_chunk(DIRECTORY_CHUNK, &dir[..dir.len() / 2])
            .unwrap();
        writer.write_interleaved(&[0.0; 32]).unwrap();
        let truncated = writer.finalize().unwrap().into_inner();
        let err = Recording::from_wav_bytes(truncated).unwrap_err();
        // Either the cursor bounds check or the segment-count bound fires
        // first depending on where the cut lands; both are clean errors.
        let msg = err.to_string();
        assert!(
            msg.contains("truncated") || msg.contains("segments"),
            "{msg}"
        );
    }

    #[test]
    fn hostile_segment_counts_error_instead_of_allocating() {
        // A directory declaring u32::MAX segments must be rejected by the
        // bytes-remaining bound, not fed to Vec::with_capacity.
        let cell = tiny_hybrid_cell(1);
        let recording = record_cell(&cell).unwrap();
        let good = recording.to_wav_bytes(SampleFormat::Pcm16).unwrap();
        let reader = read_wav_bytes(good).unwrap();
        let mut dir = reader.chunk(DIRECTORY_CHUNK).unwrap().to_vec();
        // n_segments sits after: version(1), slug(1+len), n_devices(2),
        // condition(1+8), mobility(1+8), path(1), seed(8), rounds(4),
        // scale(8).
        let slug_len = dir[1] as usize;
        let off = 1 + 1 + slug_len + 2 + 9 + 9 + 1 + 8 + 4 + 8;
        dir[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut writer = WavWriter::new(
            std::io::Cursor::new(Vec::new()),
            WavSpec {
                sample_rate: 44_100,
                channels: 2,
                format: SampleFormat::Pcm16,
            },
        )
        .unwrap();
        writer.add_chunk(DIRECTORY_CHUNK, &dir).unwrap();
        writer.write_interleaved(&[0.0; 32]).unwrap();
        let hostile = writer.finalize().unwrap().into_inner();
        let err = Recording::from_wav_bytes(hostile).unwrap_err();
        assert!(err.to_string().contains("segments"), "{err}");
    }
}
