//! # uw-eval — scenario-matrix evaluation engine
//!
//! The paper evaluates across four sites, two group sizes, occlusion,
//! mobility and latency sweeps. This crate turns that into a declarative,
//! repeatable grid over the whole workspace:
//!
//! * [`matrix`] — [`matrix::ScenarioMatrix`]: the cross product of
//!   environments × topologies × link conditions × mobility profiles ×
//!   numeric paths × seeds, expanded into concrete [`uw_core::Scenario`]s
//!   (paper-measured layouts where they exist, deterministic spiral
//!   layouts elsewhere). The numeric-path axis
//!   ([`uw_core::config::NumericPath`]) selects between the `f64` DSP
//!   oracle and the on-device Q15 fixed-point path for hybrid-fidelity
//!   cells.
//! * [`runner`] — the steppable cell-execution core
//!   ([`runner::CellExecution`]: one round per [`runner::CellExecution::step`],
//!   incremental aggregation, [`runner::RoundSummary`] per round) plus the
//!   batch entry points built on it ([`runner::run_matrix`] /
//!   [`runner::run_suite`]: rayon fan-out with per-cell round counts).
//!   The async serving layer (`uw-serve`) drives the same core round by
//!   round, so streamed and batch runs produce byte-identical reports.
//!   Hybrid-fidelity cells share the process-wide waveform assets (the
//!   preamble's pooled `uw_dsp::MatchedFilter` and symbol
//!   `uw_dsp::FftPlan`s) built once in [`uw_core::waveform`].
//! * [`replay`] — real-audio ingestion: [`replay::record_cell`] renders a
//!   hybrid cell's leader-link exchanges to a 2-channel WAV (via
//!   `uw-audio`'s hand-rolled codec) and [`matrix::EvalCell::from_recording`]
//!   wraps a decoded [`replay::Recording`] into a *replay cell* — same
//!   rounds, same statistics, but detection and channel estimation run on
//!   the recorded audio instead of simulator output (`replay` id segment,
//!   both numeric paths). The committed golden fixture under
//!   `tests/fixtures/` is generated this way.
//! * [`soak`] — the fleet-scale fault soak: [`soak::SoakPlan`] expands a
//!   master seed into hundreds of dive-group cells under scripted
//!   [`uw_core::faults::FaultSchedule`]s (loss, churn, clock skew, leader
//!   failover, cross-network interference), [`soak::run_plan`] checks
//!   invariants after every round, re-runs each cell to prove bitwise
//!   `(seed, schedule)` reproducibility, and emits `BENCH_soak.json`
//!   (see `docs/FAULTS.md`).
//! * [`report`] — [`report::EvalReport`]: per-cell median/p90/p99 error
//!   statistics, CDF points, flip rates, drop decisions and latency,
//!   serialised to deterministic JSON (`BENCH_eval_matrix.json`).
//! * [`guide`] — [`guide::FIGURE_MAP`]: the figure → cell → acceptance-band
//!   mapping from which `docs/EVALUATION.md`, the `--check` gate and the
//!   tier-1 smoke test are all generated, so documentation and enforcement
//!   cannot drift apart.
//!
//! The matrix extends the paper's axes with two new environments
//! ([`uw_channel::environment::EnvironmentKind::OpenWater`],
//! [`uw_channel::environment::EnvironmentKind::TidalChannel`]), a
//! device-churn link condition and a swimmer mobility profile
//! ([`uw_device::mobility::swimmer_circuit`]).
//!
//! ## Example
//!
//! ```
//! use uw_eval::matrix::{LinkProfile, MobilityProfile, ScenarioMatrix, Topology};
//! use uw_eval::runner::run_matrix;
//! use uw_core::prelude::EnvironmentKind;
//! use uw_core::config::{Fidelity, NumericPath};
//!
//! // A one-cell matrix: the dock testbed, clear links, static devices,
//! // the f64 reference DSP path.
//! let matrix = ScenarioMatrix {
//!     environments: vec![EnvironmentKind::Dock],
//!     topologies: vec![Topology::FiveDevice],
//!     conditions: vec![LinkProfile::Clear],
//!     mobilities: vec![MobilityProfile::Static],
//!     numeric_paths: vec![NumericPath::F64],
//!     faults: vec![None],
//!     seeds: vec![1],
//!     recordings: vec![],
//!     rounds_per_cell: 2,
//!     fidelity: Fidelity::Statistical,
//! };
//! let report = run_matrix(&matrix).unwrap();
//! assert_eq!(report.cells.len(), 1);
//! assert_eq!(report.cells[0].id, "dock/5dev/clear/static/s1");
//! assert!(report.cells[0].error_2d.median.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod guide;
pub mod import;
pub mod matrix;
pub mod replay;
pub mod report;
pub mod runner;
pub mod soak;

pub use import::{
    import_campaign, load_campaign, render_campaign_wav, scan_campaign, CampaignLayout,
    ImportParams, ImportReport, ImportedCampaign, RenderOptions,
};
pub use matrix::{EvalCell, LinkProfile, MobilityProfile, ScenarioMatrix, Topology};
pub use replay::{record_cell, Recording, ReplayAudio};
pub use report::{CellReport, EvalReport};
pub use runner::{run_matrix, run_suite, CellExecution, RoundSummary};
pub use soak::{SoakCell, SoakPlan, SoakReport};

#[cfg(test)]
mod tests {
    use super::*;

    /// The tier-1 smoke test behind `docs/EVALUATION.md`: re-runs the
    /// dock/boathouse 5-device headline cells and asserts every
    /// smoke-marked band in [`guide::FIGURE_MAP`] holds (smoke claims may
    /// only reference cells of [`ScenarioMatrix::smoke`] — enforced here
    /// and by `figure_map_is_internally_consistent`). If a solver or
    /// channel change moves the numbers out of the documented bands, this
    /// fails `cargo test`.
    #[test]
    fn smoke_bands_hold() {
        let report = run_matrix(&ScenarioMatrix::smoke()).unwrap();
        let smoke_claims: Vec<_> = guide::FIGURE_MAP.iter().filter(|c| c.smoke).collect();
        assert!(!smoke_claims.is_empty());
        // Every smoke claim's cell must actually be in the smoke slice.
        for claim in &smoke_claims {
            assert!(
                report.cell(claim.cell_id).is_some(),
                "smoke slice does not run {}",
                claim.cell_id
            );
        }
        let violations = guide::check_bands(&report, false);
        assert!(
            violations.is_empty(),
            "documented acceptance bands violated:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
