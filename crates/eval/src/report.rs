//! Aggregated evaluation reports and their JSON serialisation.
//!
//! The vendored `serde` stand-in does not serialise at runtime (see
//! `vendor/README.md`), so the report carries its own small JSON emitter:
//! deterministic field order, `null` for non-finite floats, no external
//! dependencies. The output lands in `BENCH_eval_matrix.json`-style
//! artifacts, next to the `BENCH_pipeline.json` trajectory the perf PRs
//! maintain.

use crate::matrix::EvalCell;

/// Schema identifier stamped into every report.
pub const REPORT_SCHEMA: &str = "uwgps-eval-matrix-v3";

/// Frozen pre-fix reference points serialised into every report, so the
/// artifact itself records how far a correctness overhaul moved a cell.
/// `(cell id, short label, median 2D error m, max 2D error m)` — measured
/// on the commit immediately before the fix landed.
pub const BASELINES: &[(&str, &str, f64, f64)] = &[(
    "dock/5dev/occluded/static/s1",
    "pre drop-validation overhaul",
    2.193,
    29.247,
)];

/// Summary statistics of one error series (metres).
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSummary {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Mean.
    pub mean: f64,
    /// Maximum.
    pub max: f64,
}

impl ErrorSummary {
    /// Builds the summary from raw samples (non-finite samples are
    /// ignored). An empty series yields NaN statistics with `count == 0`.
    pub fn from_samples(samples: &[f64]) -> Self {
        let finite: Vec<f64> = samples.iter().copied().filter(|e| e.is_finite()).collect();
        if finite.is_empty() {
            return Self {
                count: 0,
                median: f64::NAN,
                p90: f64::NAN,
                p99: f64::NAN,
                mean: f64::NAN,
                max: f64::NAN,
            };
        }
        let mut sorted = finite;
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Self {
            count: sorted.len(),
            median: uw_core::metrics::percentile(&sorted, 50.0),
            p90: uw_core::metrics::percentile(&sorted, 90.0),
            p99: uw_core::metrics::percentile(&sorted, 99.0),
            mean: sorted.iter().sum::<f64>() / sorted.len() as f64,
            max: *sorted.last().unwrap(),
        }
    }
}

/// Aggregated result of running one matrix cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Stable cell identifier (`dock/5dev/clear/static/s1`).
    pub id: String,
    /// Environment slug.
    pub environment: String,
    /// Group size.
    pub n_devices: usize,
    /// Condition slug.
    pub condition: String,
    /// Mobility slug.
    pub mobility: String,
    /// Numeric-path slug (`f64` or `q15`).
    pub numeric_path: String,
    /// Where the cell's audio came from: `sim` (channel simulator),
    /// `replay` (a recorded segment directory), or `import` (a blind
    /// import of a continuous field recording). Derived from the cell id
    /// by [`source_from_id`].
    pub source: String,
    /// RNG seed.
    pub seed: u64,
    /// Rounds requested.
    pub rounds: usize,
    /// Rounds that completed successfully.
    pub rounds_completed: usize,
    /// Rounds that failed outright (e.g. too few audible devices).
    pub rounds_failed: usize,
    /// Per-device 2D localization error statistics over all rounds.
    pub error_2d: ErrorSummary,
    /// Down-sampled empirical CDF of the 2D errors: `(error_m, fraction)`.
    pub error_cdf: Vec<(f64, f64)>,
    /// Median absolute pairwise ranging error (m).
    pub ranging_median_m: f64,
    /// Fraction of rounds whose flipping disambiguation was correct.
    pub flip_rate: f64,
    /// Mean number of links dropped by outlier detection per round.
    pub mean_dropped_links: f64,
    /// Devices configured (by churn) to be silent in the cell's final
    /// round.
    pub churn_excluded: usize,
    /// Acoustic phase latency of one round (s).
    pub latency_acoustic_s: f64,
    /// Total round latency including the report phase (s).
    pub latency_total_s: f64,
}

impl CellReport {
    /// One human-readable summary row (used by the CLI).
    pub fn row(&self) -> String {
        format!(
            "{:<38} rounds={:<3} median={:>6.2} m  p90={:>6.2} m  flip={:>4.0}%  drops={:>4.2}  lat={:>5.2} s",
            self.id,
            self.rounds_completed,
            self.error_2d.median,
            self.error_2d.p90,
            self.flip_rate * 100.0,
            self.mean_dropped_links,
            self.latency_total_s,
        )
    }
}

/// A full evaluation report: every cell of a matrix (or suite of
/// matrices), in expansion order.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Schema identifier ([`REPORT_SCHEMA`]).
    pub schema: String,
    /// Per-cell results.
    pub cells: Vec<CellReport>,
}

impl EvalReport {
    /// Creates a report over the given cells.
    pub fn new(cells: Vec<CellReport>) -> Self {
        Self {
            schema: REPORT_SCHEMA.into(),
            cells,
        }
    }

    /// Looks up a cell by its identifier.
    pub fn cell(&self, id: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.id == id)
    }

    /// Serialises the report to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 * self.cells.len().max(1));
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_str(&self.schema)));
        out.push_str("  \"baselines\": [\n");
        for (k, (id, label, median, max)) in BASELINES.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"id\": {}, \"label\": {}, \"median_m\": {}, \"max_m\": {} }}{}\n",
                json_str(id),
                json_str(label),
                json_f64(*median),
                json_f64(*max),
                if k + 1 < BASELINES.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"cells\": [\n");
        for (k, cell) in self.cells.iter().enumerate() {
            out.push_str(&cell_json(cell, "    "));
            out.push_str(if k + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn cell_json(c: &CellReport, indent: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!("{indent}{{\n"));
    let field = |s: &mut String, key: &str, value: String, last: bool| {
        s.push_str(&format!(
            "{indent}  \"{key}\": {value}{}\n",
            if last { "" } else { "," }
        ));
    };
    field(&mut s, "id", json_str(&c.id), false);
    field(&mut s, "environment", json_str(&c.environment), false);
    field(&mut s, "n_devices", c.n_devices.to_string(), false);
    field(&mut s, "condition", json_str(&c.condition), false);
    field(&mut s, "mobility", json_str(&c.mobility), false);
    field(&mut s, "numeric_path", json_str(&c.numeric_path), false);
    field(&mut s, "source", json_str(&c.source), false);
    field(&mut s, "seed", c.seed.to_string(), false);
    field(&mut s, "rounds", c.rounds.to_string(), false);
    field(
        &mut s,
        "rounds_completed",
        c.rounds_completed.to_string(),
        false,
    );
    field(&mut s, "rounds_failed", c.rounds_failed.to_string(), false);
    field(
        &mut s,
        "error_2d",
        format!(
            "{{\"count\": {}, \"median_m\": {}, \"p90_m\": {}, \"p99_m\": {}, \"mean_m\": {}, \"max_m\": {}}}",
            c.error_2d.count,
            json_f64(c.error_2d.median),
            json_f64(c.error_2d.p90),
            json_f64(c.error_2d.p99),
            json_f64(c.error_2d.mean),
            json_f64(c.error_2d.max),
        ),
        false,
    );
    let cdf = c
        .error_cdf
        .iter()
        .map(|(v, f)| format!("[{}, {}]", json_f64(*v), json_f64(*f)))
        .collect::<Vec<_>>()
        .join(", ");
    field(&mut s, "error_cdf", format!("[{cdf}]"), false);
    field(
        &mut s,
        "ranging_median_m",
        json_f64(c.ranging_median_m),
        false,
    );
    field(&mut s, "flip_rate", json_f64(c.flip_rate), false);
    field(
        &mut s,
        "mean_dropped_links",
        json_f64(c.mean_dropped_links),
        false,
    );
    field(
        &mut s,
        "churn_excluded",
        c.churn_excluded.to_string(),
        false,
    );
    field(
        &mut s,
        "latency_acoustic_s",
        json_f64(c.latency_acoustic_s),
        false,
    );
    field(&mut s, "latency_total_s", json_f64(c.latency_total_s), true);
    s.push_str(&format!("{indent}}}"));
    s
}

/// JSON string literal with the escapes the identifiers here can need.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Finite floats print with six decimals; NaN/inf become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".into()
    }
}

/// Audio provenance of a cell, read off its id segments: an `import`
/// segment marks a blind-imported field recording, a `replay` segment a
/// recorded segment directory, anything else the channel simulator.
pub fn source_from_id(id: &str) -> &'static str {
    if id
        .split('/')
        .any(|seg| seg == crate::import::IMPORT_SEGMENT)
    {
        "import"
    } else if id
        .split('/')
        .any(|seg| seg == crate::replay::REPLAY_SEGMENT)
    {
        "replay"
    } else {
        "sim"
    }
}

/// Seeds a [`CellReport`] with the cell's axes (statistics zeroed; the
/// runner fills them in).
pub fn cell_report_skeleton(cell: &EvalCell) -> CellReport {
    CellReport {
        id: cell.id.clone(),
        environment: cell.environment.slug().into(),
        n_devices: cell.n_devices,
        condition: cell.condition.slug().into(),
        mobility: cell.mobility.slug(),
        numeric_path: cell.numeric_path.slug().into(),
        source: source_from_id(&cell.id).into(),
        seed: cell.seed,
        rounds: cell.rounds,
        rounds_completed: 0,
        rounds_failed: 0,
        error_2d: ErrorSummary::from_samples(&[]),
        error_cdf: Vec::new(),
        ranging_median_m: f64::NAN,
        flip_rate: 0.0,
        mean_dropped_links: 0.0,
        churn_excluded: 0,
        latency_acoustic_s: f64::NAN,
        latency_total_s: f64::NAN,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> CellReport {
        CellReport {
            id: "dock/5dev/clear/static/s1".into(),
            environment: "dock".into(),
            n_devices: 5,
            condition: "clear".into(),
            mobility: "static".into(),
            numeric_path: "f64".into(),
            source: "sim".into(),
            seed: 1,
            rounds: 12,
            rounds_completed: 12,
            rounds_failed: 0,
            error_2d: ErrorSummary::from_samples(&[0.2, 0.4, 0.6, 0.8, 1.0]),
            error_cdf: vec![(0.2, 0.2), (1.0, 1.0)],
            ranging_median_m: 0.5,
            flip_rate: 1.0,
            mean_dropped_links: 0.25,
            churn_excluded: 0,
            latency_acoustic_s: 1.88,
            latency_total_s: 3.0,
        }
    }

    #[test]
    fn summary_statistics_are_order_free_and_skip_non_finite() {
        let a = ErrorSummary::from_samples(&[3.0, 1.0, 2.0, f64::NAN]);
        let b = ErrorSummary::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.count, 3);
        assert_eq!(a.median, 2.0);
        assert_eq!(a.max, 3.0);
        let empty = ErrorSummary::from_samples(&[]);
        assert_eq!(empty.count, 0);
        assert!(empty.median.is_nan());
    }

    #[test]
    fn json_is_well_formed_and_deterministic() {
        let report = EvalReport::new(vec![sample_cell()]);
        let json = report.to_json();
        assert_eq!(json, report.to_json());
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"schema\": \"uwgps-eval-matrix-v3\""));
        assert!(json.contains("\"source\": \"sim\""));
        assert!(json.contains("\"numeric_path\": \"f64\""));
        assert!(json.contains("\"id\": \"dock/5dev/clear/static/s1\""));
        assert!(json.contains("\"median_m\": 0.600000"));
        // Balanced braces/brackets (cheap well-formedness check — the
        // emitter never nests strings containing braces).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut cell = sample_cell();
        cell.ranging_median_m = f64::NAN;
        let json = EvalReport::new(vec![cell]).to_json();
        assert!(json.contains("\"ranging_median_m\": null"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_str("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_str("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_str("a\nb"), "\"a\\nb\"");
    }
}
