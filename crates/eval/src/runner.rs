//! Cell execution: one steppable core shared by batch and streamed runs.
//!
//! [`CellExecution`] is the single place a matrix cell is actually run:
//! it owns the cell's [`Session`], steps it one localization round at a
//! time (emitting a [`RoundSummary`] per round), accumulates the error /
//! flip / drop statistics incrementally, and finalizes into the same
//! [`CellReport`] the batch runner always produced. The batch entry points
//! ([`run_cell`], [`run_matrix`], [`run_suite`]) drive it to completion in
//! a loop; the async serving layer (`uw-serve`) drives the *same* core
//! round by round, interleaving rounds of many cells across a worker pool
//! and streaming each `RoundSummary` out as it happens. Because both paths
//! share this core, a streamed run reconstructs a byte-identical
//! [`EvalReport`] to the batch run of the same cells.
//!
//! Batch execution fans cells out over rayon. Cells are independent
//! sessions, so they parallelise perfectly; the process-wide waveform
//! assets in `uw_core::waveform` (preamble matched filter, symbol FFT
//! plans) are built once and shared by every hybrid-fidelity cell, so
//! parallel cells reuse precomputed DSP state instead of rebuilding it per
//! cell.
//!
//! Execution is deterministic: each cell's RNG stream is fully determined
//! by its seed and round index (never by which thread or shard runs it),
//! and reports keep cells in expansion/submission order, so the same
//! matrix always produces byte-identical JSON reports — batched or
//! streamed, in-order or out-of-order.

use crate::matrix::{EvalCell, ScenarioMatrix};
use crate::report::{cell_report_skeleton, CellReport, ErrorSummary, EvalReport};
use rayon::prelude::*;
use uw_core::metrics::cdf_points;
use uw_core::prelude::*;
use uw_core::Result;

/// Number of points kept from each cell's error CDF.
pub const CDF_POINTS: usize = 12;

/// What one localization round of a cell produced, as observable mid-cell
/// by a streaming consumer. The full statistics (percentiles, CDF) only
/// exist once the cell finalizes; the summary carries what is known the
/// moment the round completes.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundSummary {
    /// 0-based round index within the cell.
    pub round: usize,
    /// Whether the round completed (a failed round — e.g. too few audible
    /// devices after churn — still yields a summary with `ok == false`).
    pub ok: bool,
    /// Median per-device 2D error of this round alone (m); NaN when the
    /// round failed or produced no finite errors.
    pub median_error_2d_m: f64,
    /// Links dropped by outlier detection this round.
    pub dropped_links: usize,
    /// Whether flipping disambiguation was correct this round (false for
    /// failed rounds).
    pub flipping_correct: bool,
}

/// The steppable execution state of one cell: a session plus incremental
/// aggregation of everything a [`CellReport`] needs.
///
/// ```
/// use uw_eval::runner::CellExecution;
/// use uw_eval::ScenarioMatrix;
///
/// let mut matrix = ScenarioMatrix::smoke();
/// matrix.rounds_per_cell = 2;
/// let cell = matrix.expand().unwrap().remove(0);
/// let mut exec = CellExecution::new(&cell).unwrap();
/// while let Some(summary) = exec.step() {
///     assert!(summary.ok);
/// }
/// let report = exec.finalize();
/// assert_eq!(report.rounds_completed, 2);
/// ```
#[derive(Debug)]
pub struct CellExecution {
    cell: EvalCell,
    session: Session,
    report: CellReport,
    errors_2d: Vec<f64>,
    ranging: Vec<f64>,
    flips_correct: usize,
    dropped_links: usize,
}

impl CellExecution {
    /// Prepares a cell for execution (validates the configuration and
    /// builds the session; a replay cell's decoded audio is installed as
    /// the session's recorded-link source). No rounds run yet.
    pub fn new(cell: &EvalCell) -> Result<Self> {
        let mut session = Session::new(cell.scenario.config().clone())?;
        if let Some(replay) = &cell.replay {
            session.set_audio_source(std::sync::Arc::clone(replay) as _);
        }
        if let Some(faults) = &cell.faults {
            session.set_fault_schedule(faults.clone())?;
        }
        Ok(Self {
            cell: cell.clone(),
            session,
            report: cell_report_skeleton(cell),
            errors_2d: Vec::new(),
            ranging: Vec::new(),
            flips_correct: 0,
            dropped_links: 0,
        })
    }

    /// The cell being executed.
    pub fn cell(&self) -> &EvalCell {
        &self.cell
    }

    /// Rounds executed so far (completed + failed).
    pub fn rounds_run(&self) -> usize {
        self.report.rounds_completed + self.report.rounds_failed
    }

    /// Whether every requested round has run.
    pub fn is_complete(&self) -> bool {
        self.rounds_run() >= self.cell.rounds
    }

    /// Runs the next localization round and folds its statistics into the
    /// aggregate state. Returns `None` once the cell is complete; a round
    /// that fails outright still returns a summary (`ok == false`) so
    /// streaming consumers observe it.
    pub fn step(&mut self) -> Option<RoundSummary> {
        if self.is_complete() {
            return None;
        }
        let round = self.rounds_run();
        match self.session.run(self.cell.scenario.network()) {
            Ok(outcome) => {
                self.report.rounds_completed += 1;
                let round_errors: Vec<f64> = outcome
                    .errors_2d
                    .iter()
                    .copied()
                    .filter(|e| e.is_finite())
                    .collect();
                self.errors_2d.extend_from_slice(&round_errors);
                self.ranging.extend(outcome.ranging_errors.iter().copied());
                if outcome.flipping_correct {
                    self.flips_correct += 1;
                }
                self.dropped_links += outcome.localization.dropped_links.len();
                self.report.latency_acoustic_s = outcome.latency.acoustic_s;
                self.report.latency_total_s = outcome.latency.total_s();
                Some(RoundSummary {
                    round,
                    ok: true,
                    median_error_2d_m: ErrorSummary::from_samples(&round_errors).median,
                    dropped_links: outcome.localization.dropped_links.len(),
                    flipping_correct: outcome.flipping_correct,
                })
            }
            Err(_) => {
                self.report.rounds_failed += 1;
                Some(RoundSummary {
                    round,
                    ok: false,
                    median_error_2d_m: f64::NAN,
                    dropped_links: 0,
                    flipping_correct: false,
                })
            }
        }
    }

    /// Finalizes the aggregate statistics into the cell's report. Callable
    /// at any point — mid-cell finalization (after cancellation) reports
    /// the rounds that actually ran.
    pub fn finalize(self) -> CellReport {
        let mut report = self.report;
        // Churn exclusions come from the cell's configuration (what is
        // silent in the final round), not from the last *successful* round
        // — the two differ when late rounds fail outright.
        report.churn_excluded = (0..self.cell.n_devices)
            .filter(|&i| {
                self.cell
                    .scenario
                    .network()
                    .device_silent_in_round(i, self.cell.rounds.saturating_sub(1))
            })
            .count();
        report.error_2d = ErrorSummary::from_samples(&self.errors_2d);
        report.error_cdf = cdf_points(&self.errors_2d, CDF_POINTS);
        report.ranging_median_m = ErrorSummary::from_samples(&self.ranging).median;
        if report.rounds_completed > 0 {
            report.flip_rate = self.flips_correct as f64 / report.rounds_completed as f64;
            report.mean_dropped_links = self.dropped_links as f64 / report.rounds_completed as f64;
        }
        report
    }
}

/// Runs one expanded cell to completion and aggregates its statistics.
pub fn run_cell(cell: &EvalCell) -> Result<CellReport> {
    let mut exec = CellExecution::new(cell)?;
    while exec.step().is_some() {}
    Ok(exec.finalize())
}

/// Expands a matrix and runs every cell in parallel.
pub fn run_matrix(matrix: &ScenarioMatrix) -> Result<EvalReport> {
    let cells = matrix.expand()?;
    run_cells(&cells)
}

/// Runs a suite of matrices and merges the reports (the first matrix to
/// produce a given cell id wins, so targeted matrices can be layered over
/// broad grids without double-running shared cells).
pub fn run_suite(matrices: &[ScenarioMatrix]) -> Result<EvalReport> {
    let mut cells: Vec<EvalCell> = Vec::new();
    for matrix in matrices {
        for cell in matrix.expand()? {
            if !cells.iter().any(|c| c.id == cell.id) {
                cells.push(cell);
            }
        }
    }
    run_cells(&cells)
}

fn run_cells(cells: &[EvalCell]) -> Result<EvalReport> {
    let reports: Vec<Result<CellReport>> = cells.par_iter().map(run_cell).collect();
    let mut out = Vec::with_capacity(reports.len());
    for r in reports {
        out.push(r?);
    }
    Ok(EvalReport::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{LinkProfile, MobilityProfile, Topology};
    use uw_core::config::Fidelity;

    fn tiny_matrix() -> ScenarioMatrix {
        ScenarioMatrix {
            environments: vec![EnvironmentKind::Dock],
            topologies: vec![Topology::FiveDevice],
            conditions: vec![LinkProfile::Clear],
            mobilities: vec![MobilityProfile::Static],
            numeric_paths: vec![uw_core::config::NumericPath::F64],
            faults: vec![None],
            seeds: vec![3],
            recordings: vec![],
            rounds_per_cell: 4,
            fidelity: Fidelity::Statistical,
        }
    }

    #[test]
    fn single_cell_runs_and_aggregates() {
        let report = run_matrix(&tiny_matrix()).unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.rounds_completed, 4);
        assert_eq!(cell.rounds_failed, 0);
        // 4 rounds × 4 non-leader devices.
        assert_eq!(cell.error_2d.count, 16);
        assert!(cell.error_2d.median > 0.0 && cell.error_2d.median < 5.0);
        assert!(cell.error_2d.p90 >= cell.error_2d.median);
        assert!(cell.error_2d.p99 >= cell.error_2d.p90);
        assert!(!cell.error_cdf.is_empty());
        assert!(cell.ranging_median_m > 0.0);
        assert!((cell.latency_acoustic_s - 1.88).abs() < 0.01);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_matrix(&tiny_matrix()).unwrap();
        let b = run_matrix(&tiny_matrix()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn stepped_execution_matches_run_cell() {
        let cell = tiny_matrix().expand().unwrap().remove(0);
        let batch = run_cell(&cell).unwrap();
        let mut exec = CellExecution::new(&cell).unwrap();
        let mut summaries = Vec::new();
        while let Some(s) = exec.step() {
            summaries.push(s);
        }
        assert!(exec.is_complete());
        assert_eq!(summaries.len(), cell.rounds);
        for (k, s) in summaries.iter().enumerate() {
            assert_eq!(s.round, k);
            assert!(s.ok);
            assert!(s.median_error_2d_m.is_finite());
        }
        let streamed = exec.finalize();
        assert_eq!(batch, streamed);
    }

    #[test]
    fn mid_cell_finalization_reports_partial_rounds() {
        let cell = tiny_matrix().expand().unwrap().remove(0);
        let mut exec = CellExecution::new(&cell).unwrap();
        exec.step().unwrap();
        exec.step().unwrap();
        assert!(!exec.is_complete());
        let report = exec.finalize();
        assert_eq!(report.rounds_completed, 2);
        // 2 rounds × 4 non-leader devices.
        assert_eq!(report.error_2d.count, 8);
        assert_eq!(report.rounds, 4);
    }

    #[test]
    fn churn_cells_report_exclusions() {
        let mut m = tiny_matrix();
        m.conditions = vec![LinkProfile::DeviceChurn { after_round: 1 }];
        m.rounds_per_cell = 3;
        let report = run_matrix(&m).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.rounds_completed, 3);
        assert_eq!(cell.churn_excluded, 1);
        // Errors from the churned device's silent rounds are excluded, so
        // rounds contribute 4 + 3 + 3 device errors.
        assert_eq!(cell.error_2d.count, 10);
    }

    #[test]
    fn suite_merging_avoids_duplicate_cells() {
        let report = run_suite(&[tiny_matrix(), tiny_matrix()]).unwrap();
        assert_eq!(report.cells.len(), 1);
    }
}
