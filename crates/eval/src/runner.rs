//! Batched execution of scenario matrices.
//!
//! [`run_matrix`] expands a [`ScenarioMatrix`] and fans the cells out over
//! rayon. Cells are independent sessions, so they parallelise perfectly;
//! the process-wide waveform assets in `uw_core::waveform` (preamble
//! matched filter, symbol FFT plans) are built once and shared by every
//! hybrid-fidelity cell, so parallel cells reuse precomputed DSP state
//! instead of rebuilding it per cell.
//!
//! Execution is deterministic: each cell's RNG stream is fully determined
//! by its seed, and the ordered rayon collect keeps cells in expansion
//! order, so the same matrix always produces byte-identical JSON reports.

use crate::matrix::{EvalCell, ScenarioMatrix};
use crate::report::{cell_report_skeleton, CellReport, ErrorSummary, EvalReport};
use rayon::prelude::*;
use uw_core::metrics::cdf_points;
use uw_core::prelude::*;
use uw_core::Result;

/// Number of points kept from each cell's error CDF.
pub const CDF_POINTS: usize = 12;

/// Runs one expanded cell to completion and aggregates its statistics.
pub fn run_cell(cell: &EvalCell) -> Result<CellReport> {
    let mut report = cell_report_skeleton(cell);
    let mut session = Session::new(cell.scenario.config().clone())?;
    let mut errors_2d: Vec<f64> = Vec::new();
    let mut ranging: Vec<f64> = Vec::new();
    let mut flips_correct = 0usize;
    let mut dropped_links = 0usize;
    for _ in 0..cell.rounds {
        match session.run(cell.scenario.network()) {
            Ok(outcome) => {
                report.rounds_completed += 1;
                errors_2d.extend(outcome.errors_2d.iter().filter(|e| e.is_finite()));
                ranging.extend(outcome.ranging_errors.iter().copied());
                if outcome.flipping_correct {
                    flips_correct += 1;
                }
                dropped_links += outcome.localization.dropped_links.len();
                report.latency_acoustic_s = outcome.latency.acoustic_s;
                report.latency_total_s = outcome.latency.total_s();
            }
            Err(_) => report.rounds_failed += 1,
        }
    }
    // Churn exclusions come from the cell's configuration (what is silent
    // in the final round), not from the last *successful* round — the two
    // differ when late rounds fail outright.
    report.churn_excluded = (0..cell.n_devices)
        .filter(|&i| {
            cell.scenario
                .network()
                .device_silent_in_round(i, cell.rounds.saturating_sub(1))
        })
        .count();
    report.error_2d = ErrorSummary::from_samples(&errors_2d);
    report.error_cdf = cdf_points(&errors_2d, CDF_POINTS);
    report.ranging_median_m = ErrorSummary::from_samples(&ranging).median;
    if report.rounds_completed > 0 {
        report.flip_rate = flips_correct as f64 / report.rounds_completed as f64;
        report.mean_dropped_links = dropped_links as f64 / report.rounds_completed as f64;
    }
    Ok(report)
}

/// Expands a matrix and runs every cell in parallel.
pub fn run_matrix(matrix: &ScenarioMatrix) -> Result<EvalReport> {
    let cells = matrix.expand()?;
    run_cells(&cells)
}

/// Runs a suite of matrices and merges the reports (the first matrix to
/// produce a given cell id wins, so targeted matrices can be layered over
/// broad grids without double-running shared cells).
pub fn run_suite(matrices: &[ScenarioMatrix]) -> Result<EvalReport> {
    let mut cells: Vec<EvalCell> = Vec::new();
    for matrix in matrices {
        for cell in matrix.expand()? {
            if !cells.iter().any(|c| c.id == cell.id) {
                cells.push(cell);
            }
        }
    }
    run_cells(&cells)
}

fn run_cells(cells: &[EvalCell]) -> Result<EvalReport> {
    let reports: Vec<Result<CellReport>> = cells.par_iter().map(run_cell).collect();
    let mut out = Vec::with_capacity(reports.len());
    for r in reports {
        out.push(r?);
    }
    Ok(EvalReport::new(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::{LinkProfile, MobilityProfile, Topology};
    use uw_core::config::Fidelity;

    fn tiny_matrix() -> ScenarioMatrix {
        ScenarioMatrix {
            environments: vec![EnvironmentKind::Dock],
            topologies: vec![Topology::FiveDevice],
            conditions: vec![LinkProfile::Clear],
            mobilities: vec![MobilityProfile::Static],
            numeric_paths: vec![uw_core::config::NumericPath::F64],
            seeds: vec![3],
            rounds_per_cell: 4,
            fidelity: Fidelity::Statistical,
        }
    }

    #[test]
    fn single_cell_runs_and_aggregates() {
        let report = run_matrix(&tiny_matrix()).unwrap();
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.rounds_completed, 4);
        assert_eq!(cell.rounds_failed, 0);
        // 4 rounds × 4 non-leader devices.
        assert_eq!(cell.error_2d.count, 16);
        assert!(cell.error_2d.median > 0.0 && cell.error_2d.median < 5.0);
        assert!(cell.error_2d.p90 >= cell.error_2d.median);
        assert!(cell.error_2d.p99 >= cell.error_2d.p90);
        assert!(!cell.error_cdf.is_empty());
        assert!(cell.ranging_median_m > 0.0);
        assert!((cell.latency_acoustic_s - 1.88).abs() < 0.01);
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run_matrix(&tiny_matrix()).unwrap();
        let b = run_matrix(&tiny_matrix()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn churn_cells_report_exclusions() {
        let mut m = tiny_matrix();
        m.conditions = vec![LinkProfile::DeviceChurn { after_round: 1 }];
        m.rounds_per_cell = 3;
        let report = run_matrix(&m).unwrap();
        let cell = &report.cells[0];
        assert_eq!(cell.rounds_completed, 3);
        assert_eq!(cell.churn_excluded, 1);
        // Errors from the churned device's silent rounds are excluded, so
        // rounds contribute 4 + 3 + 3 device errors.
        assert_eq!(cell.error_2d.count, 10);
    }

    #[test]
    fn suite_merging_avoids_duplicate_cells() {
        let report = run_suite(&[tiny_matrix(), tiny_matrix()]).unwrap();
        assert_eq!(report.cells.len(), 1);
    }
}
